//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Parses the item with raw `proc_macro` tokens (no syn/quote in an
//! offline build) and emits impls of the Value-based traits. Supported
//! shapes: structs with named fields, tuple/newtype/unit structs, and
//! enums with unit/newtype/tuple/struct variants. Supported attributes:
//! container `#[serde(default)]`, `#[serde(rename_all = "snake_case")]`
//! (also `"lowercase"`/`"UPPERCASE"`/`"camelCase"`), `#[serde(untagged)]`;
//! field `#[serde(default)]` and `#[serde(default = "path")]`. Generic
//! types are not supported (none exist in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

// ---------------------------------------------------------------- model

#[derive(Default)]
struct ContainerAttrs {
    default: bool,
    untagged: bool,
    rename_all: Option<String>,
}

#[derive(Default, Clone)]
struct FieldAttrs {
    /// `None`: required. `Some(None)`: `#[serde(default)]`.
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

// --------------------------------------------------------------- parser

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut it: Iter = input.into_iter().peekable();
    let attrs = parse_attrs(&mut it).0;

    // Skip visibility.
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }

    let kind = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    let body = match kind.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item { name, attrs, body }
}

/// Consume leading `#[...]` attributes; collect serde ones into both a
/// container view and a field view (caller picks the one it needs).
fn parse_attrs(it: &mut Iter) -> (ContainerAttrs, FieldAttrs) {
    let mut c = ContainerAttrs::default();
    let mut f = FieldAttrs::default();
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let Some(TokenTree::Group(g)) = it.next() else {
            panic!("serde_derive: malformed attribute")
        };
        let mut inner = g.stream().into_iter();
        let Some(TokenTree::Ident(head)) = inner.next() else {
            continue;
        };
        if head.to_string() != "serde" {
            continue; // doc comment, cfg, etc.
        }
        let Some(TokenTree::Group(args)) = inner.next() else {
            continue;
        };
        for (key, value) in parse_attr_args(args.stream()) {
            match key.as_str() {
                "default" => f.default = Some(value.clone()),
                "untagged" => c.untagged = true,
                "rename_all" => c.rename_all = value.clone(),
                _ => {} // tolerated: not used in this workspace
            }
            if key == "default" {
                c.default = true;
            }
        }
    }
    (c, f)
}

/// Parse `ident [= "literal"]` pairs separated by commas.
fn parse_attr_args(ts: TokenStream) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let mut it = ts.into_iter().peekable();
    while let Some(tt) = it.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let mut value = None;
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            it.next();
            if let Some(TokenTree::Literal(lit)) = it.next() {
                value = Some(unquote(&lit.to_string()));
            }
        }
        out.push((key.to_string(), value));
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() != ',') {
            it.next();
        }
        it.next(); // the comma
    }
    out
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut out = Vec::new();
    let mut it: Iter = ts.into_iter().peekable();
    loop {
        if it.peek().is_none() {
            break;
        }
        let attrs = parse_attrs(&mut it).1;
        if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            it.next();
            if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                it.next();
            }
        }
        let Some(TokenTree::Ident(name)) = it.next() else {
            break; // trailing comma
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        skip_type(&mut it);
        it.next(); // the comma, if any
        out.push(Field {
            name: name.to_string(),
            attrs,
        });
    }
    out
}

/// Skip a type, stopping at a top-level `,`. Tracks `<...>` nesting so
/// commas inside generic arguments don't terminate early; (), [] and {}
/// arrive as single groups and need no tracking.
fn skip_type(it: &mut Iter) {
    let mut depth = 0i32;
    let mut prev_dash = false;
    while let Some(tt) = it.peek() {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    return;
                }
                if c == '<' {
                    depth += 1;
                } else if c == '>' && !prev_dash {
                    depth -= 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        it.next();
    }
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut it: Iter = ts.into_iter().peekable();
    let mut n = 0;
    loop {
        // Each iteration: attrs + optional vis + one type.
        let _ = parse_attrs(&mut it);
        if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            it.next();
            if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                it.next();
            }
        }
        if it.peek().is_none() {
            break;
        }
        skip_type(&mut it);
        n += 1;
        if it.next().is_none() {
            break; // no trailing comma
        }
        if it.peek().is_none() {
            break; // trailing comma
        }
    }
    n
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut it: Iter = ts.into_iter().peekable();
    loop {
        if it.peek().is_none() {
            break;
        }
        let _ = parse_attrs(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            break;
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                Shape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        // Skip to and past the separating comma (covers discriminants).
        while matches!(it.peek(), Some(tt) if !matches!(tt, TokenTree::Punct(p) if p.as_char() == ','))
        {
            it.next();
        }
        it.next();
        out.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    out
}

// ---------------------------------------------------------- case rules

/// Upstream serde's rename rules for the subset this workspace uses.
fn rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        None => name.to_string(),
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("camelCase") => {
            let mut chars = name.chars();
            match chars.next() {
                Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        }
        Some(other) => panic!("serde_derive (vendored): rename_all = \"{other}\" unsupported"),
    }
}

// -------------------------------------------------------------- codegen

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = String::from("let mut __m = ::serde::value::Map::new();\n");
            for f in fields {
                let key = rename(&f.name, item.attrs.rename_all.as_deref());
                s += &format!(
                    "__m.insert(\"{key}\", ::serde::ser::Serialize::to_value(&self.{}));\n",
                    f.name
                );
            }
            s += "::serde::value::Value::Object(__m)";
            s
        }
        Body::TupleStruct(1) => "::serde::ser::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::ser::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::value::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = rename(&v.name, item.attrs.rename_all.as_deref());
                let arm = match (&v.shape, item.attrs.untagged) {
                    (Shape::Unit, false) => format!(
                        "{name}::{v} => ::serde::value::Value::String(\"{key}\".to_string()),\n",
                        v = v.name
                    ),
                    (Shape::Unit, true) => {
                        format!("{name}::{v} => ::serde::value::Value::Null,\n", v = v.name)
                    }
                    (Shape::Tuple(n), untagged) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let content = if *n == 1 {
                            "::serde::ser::Serialize::to_value(__x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::ser::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        let expr = if untagged {
                            content
                        } else {
                            format!(
                                "{{ let mut __m = ::serde::value::Map::new(); \
                                 __m.insert(\"{key}\", {content}); \
                                 ::serde::value::Value::Object(__m) }}"
                            )
                        };
                        format!(
                            "{name}::{v}({binds}) => {expr},\n",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                    (Shape::Struct(fields), untagged) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut content =
                            String::from("{ let mut __i = ::serde::value::Map::new();\n");
                        for f in fields {
                            content += &format!(
                                "__i.insert(\"{k}\", ::serde::ser::Serialize::to_value({k}));\n",
                                k = f.name
                            );
                        }
                        content += "::serde::value::Value::Object(__i) }";
                        let expr = if untagged {
                            content
                        } else {
                            format!(
                                "{{ let mut __m = ::serde::value::Map::new(); \
                                 __m.insert(\"{key}\", {content}); \
                                 ::serde::value::Value::Object(__m) }}"
                            )
                        };
                        format!(
                            "{name}::{v} {{ {binds} }} => {expr},\n",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                };
                arms += &arm;
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .unwrap_or_else(|e| panic!("serde_derive internal error (Serialize {name}): {e}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => gen_struct_de(
            name,
            &format!("{name} {{"),
            "}",
            fields,
            item.attrs.default,
            item.attrs.rename_all.as_deref(),
            "__v",
        ),
        Body::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::de::Deserialize::from_value(__v)?))"
        ),
        Body::TupleStruct(n) => {
            let mut s = format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::de::Error::expected(\"array for {name}\", __v))?;\n\
                 if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::de::Error::custom(format!(\"expected {n} elements for {name}, got {{}}\", __arr.len()))); }}\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            s += &format!("::core::result::Result::Ok({name}({}))", items.join(", "));
            s
        }
        Body::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Body::Enum(variants) if item.attrs.untagged => {
            let mut s = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => {
                        s += &format!(
                            "if __v.is_null() {{ return ::core::result::Result::Ok({name}::{v}); }}\n",
                            v = v.name
                        );
                    }
                    Shape::Tuple(1) => {
                        s += &format!(
                            "if let ::core::result::Result::Ok(__x) = \
                             ::serde::de::Deserialize::from_value(__v) {{ \
                             return ::core::result::Result::Ok({name}::{v}(__x)); }}\n",
                            v = v.name
                        );
                    }
                    Shape::Tuple(n) => {
                        let mut attempt = format!(
                            "if let ::core::option::Option::Some(__arr) = __v.as_array() {{\n\
                             if __arr.len() == {n} {{\n\
                             let __try = (|| -> ::core::result::Result<{name}, ::serde::de::Error> {{\n\
                             ::core::result::Result::Ok({name}::{v}(",
                            v = v.name
                        );
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        attempt += &items.join(", ");
                        attempt += "))\n})();\n\
                             if let ::core::result::Result::Ok(__x) = __try { \
                             return ::core::result::Result::Ok(__x); }\n}\n}\n";
                        s += &attempt;
                    }
                    Shape::Struct(fields) => {
                        let inner = gen_struct_de(
                            name,
                            &format!("{name}::{} {{", v.name),
                            "}",
                            fields,
                            false,
                            None,
                            "__v",
                        );
                        s += &format!(
                            "{{ let __try = (|| -> ::core::result::Result<{name}, ::serde::de::Error> {{\n\
                             {inner}\n}})();\n\
                             if let ::core::result::Result::Ok(__x) = __try {{ \
                             return ::core::result::Result::Ok(__x); }} }}\n"
                        );
                    }
                }
            }
            s += &format!(
                "::core::result::Result::Err(::serde::de::Error::custom(\
                 \"data did not match any variant of untagged enum {name}\"))"
            );
            s
        }
        Body::Enum(variants) => {
            // Externally tagged: "variant" string, or { "variant": content }.
            let mut unit_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let key = rename(&v.name, item.attrs.rename_all.as_deref());
                match &v.shape {
                    Shape::Unit => {
                        unit_arms += &format!(
                            "\"{key}\" => ::core::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        );
                        obj_arms += &format!(
                            "\"{key}\" => ::core::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        );
                    }
                    Shape::Tuple(1) => {
                        obj_arms += &format!(
                            "\"{key}\" => ::core::result::Result::Ok({name}::{v}(\
                             ::serde::de::Deserialize::from_value(__content)\
                             .map_err(|__e| __e.in_field(\"{key}\"))?)),\n",
                            v = v.name
                        );
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        obj_arms += &format!(
                            "\"{key}\" => {{\n\
                             let __arr = __content.as_array().ok_or_else(|| \
                             ::serde::de::Error::expected(\"array\", __content))?;\n\
                             if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::de::Error::custom(\"wrong tuple arity for {name}::{v}\")); }}\n\
                             ::core::result::Result::Ok({name}::{v}({items}))\n}},\n",
                            v = v.name,
                            items = items.join(", ")
                        );
                    }
                    Shape::Struct(fields) => {
                        let inner = gen_struct_de(
                            name,
                            &format!("{name}::{} {{", v.name),
                            "}",
                            fields,
                            false,
                            None,
                            "__content",
                        );
                        obj_arms += &format!("\"{key}\" => {{ {inner} }},\n");
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::value::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::value::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __content) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {{\n\
                 {obj_arms}\
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::de::Error::expected(\
                 \"string or single-key object for enum {name}\", __v)),\n}}"
            )
        }
    };
    let out = format!(
        "impl ::serde::de::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) \
         -> ::core::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .unwrap_or_else(|e| panic!("serde_derive internal error (Deserialize {name}): {e}"))
}

/// Generate the named-field deserialization for a struct or struct
/// variant: `head field: ..., field: ..., tail` wrapped in Ok(...).
fn gen_struct_de(
    type_name: &str,
    head: &str,
    tail: &str,
    fields: &[Field],
    container_default: bool,
    rename_all: Option<&str>,
    value_expr: &str,
) -> String {
    let mut s = format!(
        "let __obj = {value_expr}.as_object().ok_or_else(|| \
         ::serde::de::Error::expected(\"object for {type_name}\", {value_expr}))?;\n"
    );
    if container_default && !fields.is_empty() {
        s += &format!("let __dflt: {type_name} = ::core::default::Default::default();\n");
    }
    s += &format!("::core::result::Result::Ok({head}\n");
    for f in fields {
        let key = rename(&f.name, rename_all);
        let missing = match (&f.attrs.default, container_default) {
            (Some(None), _) => "::core::default::Default::default()".to_string(),
            (Some(Some(path)), _) => format!("{path}()"),
            (None, true) => format!("__dflt.{}", f.name),
            (None, false) => format!("::serde::de::missing_field(\"{key}\")?"),
        };
        s += &format!(
            "{field}: match __obj.get(\"{key}\") {{\n\
             ::core::option::Option::Some(__x) => \
             ::serde::de::Deserialize::from_value(__x)\
             .map_err(|__e| __e.in_field(\"{key}\"))?,\n\
             ::core::option::Option::None => {missing},\n}},\n",
            field = f.name
        );
    }
    s += tail;
    s += ")";
    s
}
