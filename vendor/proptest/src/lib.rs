//! Vendored, offline stand-in for the `proptest` crate.
//!
//! Covers the subset this workspace uses: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, [`strategy::Strategy`] with `prop_map`, numeric
//! range strategies, tuple strategies, `collection::vec`, and
//! `bool::ANY`.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! seeded RNG (same values every run, varied per case index) and there
//! is no shrinking — a failing case reports the case index so it can be
//! replayed exactly by rerunning the test.

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng as _;

    /// A source of random values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Filter generated values (regenerates until `f` passes).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng.gen_range(self.clone())
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Closed upper bound: widen by one ulp so `end` is reachable.
            let (lo, hi) = (*self.start(), *self.end());
            let x: f64 = rng
                .rng
                .gen_range(lo..hi.max(lo) + (hi - lo).abs().max(1e-300) * 1e-15);
            x.min(hi)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng as _;

    /// Number of elements for a collection strategy; converts from a
    /// fixed size or a half-open/inclusive range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng.gen_range(self.size.lo..self.size.hi_excl);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng as _;

    /// Uniform strategy over `true`/`false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen::<bool>()
        }
    }
}

pub mod test_runner {
    use rand::{rngs::StdRng, SeedableRng};

    /// Test-runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// RNG handed to strategies; deterministic per (test name, case index).
    pub struct TestRng {
        pub rng: StdRng,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name so different tests get different
            // streams, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)),
            }
        }
    }

    /// A test-case failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drive one property: run `config.cases` deterministic cases,
    /// panicking (with the case index, for replay) on the first failure.
    pub fn run<F>(config: &Config, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest case {case}/{} failed: {}",
                    config.cases, e.message
                );
            }
        }
    }
}

/// The proptest entry-point macro: declares `#[test]` functions whose
/// arguments are drawn from strategies for each case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

/// Assert inside a `proptest!` body; failures are reported with the
/// case index instead of a bare panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with both values in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assert!(a != b)` with both values in the failure message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a, __b
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(
            x in -2.5f64..7.5,
            n in 3usize..9,
            b in crate::bool::ANY,
        ) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(b || !b);
        }

        /// prop_map and collection::vec compose.
        #[test]
        fn map_and_vec(
            v in collection::vec((0.0f64..1.0).prop_map(|x| x * 2.0), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0.0..2.0).contains(&x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0.0f64..1.0, 0usize..100);
        let a = s.generate(&mut TestRng::for_case("t", 5));
        let b = s.generate(&mut TestRng::for_case("t", 5));
        assert_eq!(a, b);
    }
}
