//! Vendored, offline stand-in for `serde_json`: a strict JSON parser and
//! printer over the vendored serde [`Value`] model.
//!
//! Numbers round-trip exactly: integers stay integers (i64), and floats
//! are printed with the shortest digit string that parses back to the
//! same bits (Rust's `{:?}`), which is what upstream's `float_roundtrip`
//! feature guarantees.

use std::fmt::Write as _;

pub use serde::value::{Map, Number, Value};

/// Parse or serialization failure with line/column context.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    let c = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a `Value` from JSON text.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// ------------------------------------------------------------------ api

pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    Ok(T::from_value(&parse_value(text)?)?)
}

pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T> {
    Ok(T::from_value(v)?)
}

pub fn to_value<T: serde::Serialize>(v: &T) -> Value {
    v.to_value()
}

pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    Ok(v.to_value().to_string())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &v.to_value(), 0);
    Ok(out)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                let _ = write!(out, "{:width$}", "", width = indent + STEP);
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            let _ = write!(out, "{:width$}]", "", width = indent);
        }
        Value::Object(m) if !m.is_empty() => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                let _ = write!(out, "{:width$}", "", width = indent + STEP);
                let _ = serde::value::write_json_string(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            let _ = write!(out, "{:width$}}}", "", width = indent);
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

/// Build a [`Value`] literally. Supports flat object literals with
/// expression values, array literals, `null`, and bare expressions —
/// the subset this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( ::serde::Serialize::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($key, ::serde::Serialize::to_value(&$val)); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value =
            from_str(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v["a"][0].as_i64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        assert_eq!(v["d"].as_bool(), Some(true));
        assert!(v["e"].is_null());
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for x in [0.1f64, 1.0 / 3.0, 6.02214076e23, f64::MIN_POSITIVE, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![1.0f64, 2.0];
        let v = json!({ "figure": "fig5", "rows": rows });
        assert_eq!(v["figure"], "fig5");
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_printer_is_reparseable() {
        let v = json!({ "a": [1, 2], "b": "x" });
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
