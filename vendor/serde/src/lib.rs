//! Vendored, offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal serde-compatible surface: `Serialize`/`Deserialize`
//! traits lowered through a single self-describing [`Value`] tree, plus
//! derive macros (`vendor/serde_derive`) covering the attribute subset the
//! workspace uses: `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(rename_all = "snake_case")]`, and `#[serde(untagged)]`.
//!
//! Semantics intentionally mirror upstream serde where the workspace
//! relies on them: missing `Option` fields deserialize to `None`, unknown
//! fields are ignored, unit enum variants (de)serialize as strings, data
//! variants as single-key objects, and `rename_all = "snake_case"` uses
//! upstream's case-conversion rules.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Error};
pub use ser::Serialize;
pub use value::{Map, Number, Value};

// Derive macros live in the macro namespace, the traits in the type
// namespace, so both `Serialize`s can be re-exported side by side —
// exactly how upstream serde's `derive` feature works.
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0.5f64, -3.25, 1e300, f64::MIN_POSITIVE] {
            let t = v.to_value();
            assert_eq!(f64::from_value(&t).unwrap(), v);
        }
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(<Option<f64>>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <[usize; 3]>::from_value(&[1usize, 2, 3].to_value()).unwrap(),
            [1, 2, 3]
        );
    }

    #[test]
    fn display_renders_compact_json() {
        let mut m = Map::new();
        m.insert("a", vec![1.5f64, 2.0].to_value());
        m.insert("b", "x\"y".to_value());
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"a":[1.5,2.0],"b":"x\"y"}"#);
    }

    #[test]
    fn missing_option_field_is_none() {
        assert_eq!(de::missing_field::<Option<f64>>("x").unwrap(), None);
        assert!(de::missing_field::<f64>("x").is_err());
    }
}
