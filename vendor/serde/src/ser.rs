//! The `Serialize` trait: lower any supported type into a [`Value`].

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::value::{Map, Number, Value};

pub trait Serialize {
    fn to_value(&self) -> Value;
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Render a serialized key as the JSON object key — strings directly,
/// numbers/bools via their text form (serde_json's map-key rules).
fn render_key(k: &Value) -> String {
    match k {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string-like value, got {other}"),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (render_key(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(render_key(&k.to_value()), v.to_value());
        }
        Value::Object(m)
    }
}

impl Serialize for PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Serialize for Path {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Serialize for Duration {
    /// serde's representation: `{"secs": u64, "nanos": u32}`.
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs", self.as_secs().to_value());
        m.insert("nanos", self.subsec_nanos().to_value());
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
