//! The self-describing data model every `Serialize`/`Deserialize` impl
//! targets. Unlike upstream serde's visitor architecture, this vendored
//! stand-in round-trips everything through one [`Value`] tree — simpler,
//! and exactly sufficient for the JSON-only usage in this workspace.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An order-preserving string-keyed map (JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// A number: JSON does not distinguish, but integer-ness is preserved so
/// `u64`/`i64` round-trip exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    Int(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9.22e18 => Some(f as i64),
            Number::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A dynamically-typed value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => write!(f, "{x:?}"),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (shortest f64 form that round-trips).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::Int(i)) => write!(f, "{i}"),
            Value::Number(Number::Float(x)) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest digits that parse back
                    // to the same f64, so text round-trips are bitwise.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[doc(hidden)]
pub fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

impl From<HashMap<String, Value>> for Map {
    fn from(m: HashMap<String, Value>) -> Self {
        let mut entries: Vec<_> = m.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Map { entries }
    }
}

impl From<BTreeMap<String, Value>> for Map {
    fn from(m: BTreeMap<String, Value>) -> Self {
        Map {
            entries: m.into_iter().collect(),
        }
    }
}
