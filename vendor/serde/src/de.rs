//! The `Deserialize` trait: rebuild a type from a [`Value`].

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use crate::value::Value;

/// Deserialization failure with a breadcrumb path for diagnostics.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    path: Vec<String>,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }

    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }

    /// Push a field/index breadcrumb (outermost last).
    pub fn in_field(mut self, field: &str) -> Self {
        self.path.push(field.to_string());
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.path.is_empty() {
            let path: Vec<&str> = self.path.iter().rev().map(String::as_str).collect();
            write!(f, "at {}: ", path.join("."))?;
        }
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Value to use when a struct field is absent; `None` means the field
    /// is required. `Option<T>` overrides this so optional fields work
    /// without `#[serde(default)]`, as with upstream serde.
    fn missing() -> Option<Self> {
        None
    }
}

/// Derive-macro helper: resolve an absent field via [`Deserialize::missing`].
pub fn missing_field<T: Deserialize>(field: &str) -> Result<T, Error> {
    T::missing().ok_or_else(|| Error::missing_field(field))
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        arr.iter()
            .enumerate()
            .map(|(i, x)| T::from_value(x).map_err(|e| e.in_field(&i.to_string())))
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! de_tuple {
    ($n:expr; $($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if arr.len() != $n {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got array of {}", $n, arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    };
}

de_tuple!(1; A: 0);
de_tuple!(2; A: 0, B: 1);
de_tuple!(3; A: 0, B: 1, C: 2);
de_tuple!(4; A: 0, B: 1, C: 2, D: 3);

/// Reconstruct a map key from its JSON object-key text: try the string
/// form first (String keys, unit enum variants), then the numeric form.
fn key_from_text<K: Deserialize>(text: &str) -> Result<K, Error> {
    match K::from_value(&Value::String(text.to_string())) {
        Ok(k) => Ok(k),
        Err(first) => {
            if let Ok(i) = text.parse::<i64>() {
                if let Ok(k) = K::from_value(&Value::Number(crate::value::Number::Int(i))) {
                    return Ok(k);
                }
            }
            if let Ok(x) = text.parse::<f64>() {
                if let Ok(k) = K::from_value(&Value::Number(crate::value::Number::Float(x))) {
                    return Ok(k);
                }
            }
            Err(first)
        }
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter()
            .map(|(k, x)| {
                let key = key_from_text::<K>(k).map_err(|e| e.in_field(k))?;
                V::from_value(x)
                    .map(|x| (key, x))
                    .map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        obj.iter()
            .map(|(k, x)| {
                let key = key_from_text::<K>(k).map_err(|e| e.in_field(k))?;
                V::from_value(x)
                    .map(|x| (key, x))
                    .map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

/// `&'static str` deserializes by leaking the parsed string — the
/// workspace only uses it for small device-name literals in config
/// structs, where the leak is bounded and harmless.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Deserialize for PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(PathBuf::from)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::expected("duration object", v))?;
        let secs = obj
            .get("secs")
            .ok_or_else(|| Error::missing_field("secs"))
            .and_then(u64::from_value)?;
        let nanos = obj
            .get("nanos")
            .ok_or_else(|| Error::missing_field("nanos"))
            .and_then(u32::from_value)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
