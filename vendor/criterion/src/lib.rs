//! Vendored, offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! median-of-samples timer instead of criterion's full statistical
//! machinery. Benches compile and run (`cargo bench`) and print one
//! summary line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name + parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up (not timed).
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:.3e} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  {:.3e} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {median:?} over {} samples{rate}",
            self.name, self.sample_size
        );
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, routine);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.full.clone();
        self.run_one(&name, |b| routine(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Benchmark driver; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(&name)
            .sample_size(10)
            .bench_function("bench", routine);
        self
    }
}

/// Declare a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` that runs each group, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes harness flags like `--bench`; nothing to parse
            // in this stand-in.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        g.bench_function("inc", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("add", 5), &5u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
        assert!(count > 0);
    }
}
