//! Vendored, offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over half-open and inclusive integer/float ranges.
//! The generator is xoshiro256++ seeded through splitmix64 — high quality,
//! deterministic, and dependency-free. Streams are NOT bit-compatible
//! with upstream `StdRng` (which is ChaCha12); the workspace only relies
//! on determinism for a fixed seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Uniform in `[0, 1)` for floats; full-width uniform for integers.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution of `gen()`: `[0, 1)` for floats, full range for ints.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased multiply-shift (Lemire); span <= 2^64 here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..(hi + 1)).sample(rng)
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream to expand the seed, as upstream does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_and_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k: usize = rng.gen_range(0..5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let k: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&k));
        }
    }
}
