//! Discrete conservation under periodic boundaries: the telescoping-flux
//! property of the finite-volume scheme, across dimensions, orders,
//! solvers, and pack strategies.

use mfc::core::rhs::{PackStrategy, RhsConfig};
use mfc::core::riemann::RiemannSolver;
use mfc::core::weno::WenoOrder;
use mfc::{presets, Context, Solver, SolverConfig};

fn drift(ndim: usize, cfg: SolverConfig, steps: usize) -> f64 {
    let n = match ndim {
        1 => [48, 1, 1],
        2 => [16, 16, 1],
        _ => [10, 10, 10],
    };
    let case = presets::two_phase_benchmark(ndim, n);
    let mut solver = Solver::new(&case, cfg, Context::with_workers(cfg.workers));
    let before = solver.conservation();
    solver.run_steps(steps).unwrap();
    let after = solver.conservation();
    let eq = case.eq();
    // Conserved rows: partial densities, momentum, energy (alpha rows are
    // non-conservative by construction).
    (0..=eq.energy())
        .map(|e| (after[e] - before[e]).abs() / before[e].abs().max(1e-30))
        .fold(0.0, f64::max)
}

#[test]
fn conserved_in_every_dimension() {
    for ndim in 1..=3 {
        let d = drift(ndim, SolverConfig::default(), 5);
        assert!(d < 1e-11, "ndim={ndim}: drift {d}");
    }
}

#[test]
fn conserved_for_every_order() {
    for order in [WenoOrder::First, WenoOrder::Weno3, WenoOrder::Weno5] {
        let cfg = SolverConfig {
            rhs: RhsConfig {
                order,
                ..Default::default()
            },
            ..Default::default()
        };
        let d = drift(2, cfg, 5);
        assert!(d < 1e-11, "{order:?}: drift {d}");
    }
}

#[test]
fn conserved_for_every_solver() {
    for solver in [
        RiemannSolver::Hllc,
        RiemannSolver::Hll,
        RiemannSolver::Rusanov,
    ] {
        let cfg = SolverConfig {
            rhs: RhsConfig {
                solver,
                ..Default::default()
            },
            ..Default::default()
        };
        let d = drift(2, cfg, 5);
        assert!(d < 1e-11, "{solver:?}: drift {d}");
    }
}

#[test]
fn conserved_for_every_pack_strategy() {
    for pack in [
        PackStrategy::CollapsedLoops,
        PackStrategy::Tiled,
        PackStrategy::Geam,
    ] {
        let cfg = SolverConfig {
            rhs: RhsConfig {
                pack,
                ..Default::default()
            },
            ..Default::default()
        };
        let d = drift(3, cfg, 3);
        assert!(d < 1e-11, "{pack:?}: drift {d}");
    }
}

#[test]
fn conserved_at_every_worker_count() {
    // Gang-parallel sweeps keep the telescoping-flux property: the
    // divergence accumulation writes each cell from exactly one gang, so
    // the discrete sums are the serial ones bit for bit.
    for workers in [2usize, 3, 4, 8] {
        let cfg = SolverConfig {
            workers,
            ..Default::default()
        };
        let d = drift(3, cfg, 3);
        assert!(d < 1e-11, "workers={workers}: drift {d}");
    }
}

#[test]
fn reflective_box_conserves_mass_and_energy() {
    // Slip walls: mass and energy conserved; momentum is not (walls push).
    use mfc::core::bc::BcSpec;
    use mfc::core::fluid::Fluid;
    use mfc::{CaseBuilder, PatchState, Region};
    let case = CaseBuilder::new(vec![Fluid::air()], 2, [24, 24, 1])
        .bc(BcSpec::reflective())
        .patch(Region::All, PatchState::single(1.2, [0.0; 3], 1.0e5))
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.2,
            },
            PatchState::single(1.2, [0.0; 3], 3.0e5),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    let eq = case.eq();
    let before = solver.conservation();
    solver.run_steps(20).unwrap();
    let after = solver.conservation();
    let mass = (after[eq.cont(0)] - before[eq.cont(0)]).abs() / before[eq.cont(0)];
    let energy = (after[eq.energy()] - before[eq.energy()]).abs() / before[eq.energy()];
    assert!(mass < 1e-11, "mass drift {mass}");
    assert!(energy < 1e-11, "energy drift {energy}");
}

#[test]
fn symmetric_blast_stays_symmetric() {
    // A centered 2-D pressure pulse must remain mirror-symmetric in x and
    // y for the whole run (catches any left/right bias in sweeps).
    use mfc::core::bc::BcSpec;
    use mfc::core::fluid::Fluid;
    use mfc::{CaseBuilder, PatchState, Region};
    let n = 24;
    let case = CaseBuilder::new(vec![Fluid::air()], 2, [n, n, 1])
        .bc(BcSpec::reflective())
        .smear(1.0)
        .patch(Region::All, PatchState::single(1.2, [0.0; 3], 1.0e5))
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.15,
            },
            PatchState::single(1.2, [0.0; 3], 10.0e5),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    solver.run_steps(20).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    let mut asym = 0.0f64;
    for j in 0..n {
        for i in 0..n {
            let p = prim.get(i + ng, j + ng, 0, eq.energy());
            let p_mx = prim.get(n - 1 - i + ng, j + ng, 0, eq.energy());
            let p_my = prim.get(i + ng, n - 1 - j + ng, 0, eq.energy());
            let p_t = prim.get(j + ng, i + ng, 0, eq.energy());
            asym = asym
                .max((p - p_mx).abs() / p)
                .max((p - p_my).abs() / p)
                .max((p - p_t).abs() / p);
        }
    }
    assert!(asym < 1e-10, "asymmetry {asym}");
}
