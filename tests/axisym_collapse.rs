//! Axisymmetric (spherical) bubble collapse — §III-F lists it among MFC's
//! validation problems — plus steady-state checks for the axisymmetric
//! geometric sources.

use mfc::core::axisym::Geometry;
use mfc::core::bc::{BcKind, BcSpec};
use mfc::core::fluid::Fluid;
use mfc::core::rhs::RhsConfig;
use mfc::{CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

fn collapse_case(n: usize, r0: f64, p_ambient: f64) -> CaseBuilder {
    // x = axial in [-4R, 4R], y = radial in [0, 4R]; the bubble is a
    // half-disk centered on the axis (a sphere in axisymmetric geometry).
    CaseBuilder::new(vec![Fluid::air(), Fluid::water()], 2, [2 * n, n, 1])
        .extent([-4.0 * r0, 0.0, 0.0], [4.0 * r0, 4.0 * r0, 1.0])
        .bc(BcSpec {
            lo: [
                BcKind::Transmissive,
                BcKind::Reflective,
                BcKind::Transmissive,
            ],
            hi: [
                BcKind::Transmissive,
                BcKind::Transmissive,
                BcKind::Transmissive,
            ],
        })
        .smear(1.0)
        .patch(
            Region::All,
            PatchState::two_fluid(1e-6, [1.2, 1000.0], [0.0; 3], p_ambient),
        )
        .patch(
            Region::Sphere {
                center: [0.0, 0.0, 0.0],
                radius: r0,
            },
            PatchState::two_fluid(1.0 - 1e-6, [1.2, 1000.0], [0.0; 3], 101325.0),
        )
}

fn axisym_config() -> SolverConfig {
    SolverConfig {
        rhs: RhsConfig {
            geometry: Geometry::Axisymmetric,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Gas content weighted by the cylindrical volume element (r dr dx).
fn gas_volume(solver: &Solver, case: &CaseBuilder) -> f64 {
    let prim = solver.primitives();
    let eq = case.eq();
    let dom = *solver.domain();
    let grid = solver.grid();
    let mut v = 0.0;
    for (i, j, k) in dom.interior() {
        let r = grid.y.centers()[j - dom.pad(1)];
        let dv = grid.x.widths()[i - dom.pad(0)] * grid.y.widths()[j - dom.pad(1)] * r;
        v += prim.get(i, j, k, eq.adv(0)) * dv;
    }
    v
}

#[test]
fn quiescent_axisymmetric_state_is_steady() {
    let r0 = 1.0e-3;
    // No pressure difference: nothing should move.
    let case = collapse_case(16, r0, 101325.0);
    let mut solver = Solver::new(&case, axisym_config(), Context::serial());
    solver.run_steps(10).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let dom = *solver.domain();
    let mut vmax = 0.0f64;
    for (i, j, k) in dom.interior() {
        vmax = vmax
            .max(prim.get(i, j, k, eq.mom(0)).abs())
            .max(prim.get(i, j, k, eq.mom(1)).abs());
    }
    assert!(vmax < 1e-7, "spurious axisymmetric velocity {vmax}");
}

#[test]
fn pressurized_bubble_collapses_on_the_rayleigh_time_scale() {
    let r0 = 1.0e-3;
    let p_inf = 100.0 * 101325.0; // 100 atm drives the collapse
    let case = collapse_case(24, r0, p_inf);
    let mut solver = Solver::new(&case, axisym_config(), Context::serial());

    let v0 = gas_volume(&solver, &case);
    assert!(v0 > 0.0);

    // Rayleigh collapse time: t_c = 0.915 R sqrt(rho/dp) ≈ 9.1 us here.
    let t_c = 0.915 * r0 * (1000.0f64 / (p_inf - 101325.0)).sqrt();
    let t_target = 0.35 * t_c;
    let mut steps = 0;
    while solver.time() < t_target && steps < 20_000 {
        solver.step().unwrap();
        steps += 1;
    }
    let v1 = gas_volume(&solver, &case);
    let ratio = v1 / v0;
    // Early collapse: meaningful but partial compression.
    assert!(ratio < 0.95, "bubble did not compress: V/V0 = {ratio}");
    assert!(
        ratio > 0.2,
        "bubble collapsed implausibly fast: V/V0 = {ratio}"
    );

    // The inflowing water must be moving toward the bubble: radial
    // velocity at a point outside the interface is negative (inward).
    let prim = solver.primitives();
    let eq = case.eq();
    let dom = *solver.domain();
    let grid = solver.grid();
    // Find the interior cell nearest (x=0, r=1.8 R).
    let jx = grid.y.centers().iter().position(|&r| r > 1.8 * r0).unwrap();
    let ix = grid.x.centers().iter().position(|&x| x > 0.0).unwrap();
    let ur = prim.get(ix + dom.pad(0), jx + dom.pad(1), 0, eq.mom(1));
    assert!(ur < 0.0, "water should flow inward: u_r = {ur}");
}

#[test]
fn collapse_is_much_slower_without_the_pressure_difference() {
    let r0 = 1.0e-3;
    let driven = collapse_case(16, r0, 50.0 * 101325.0);
    let undriven = collapse_case(16, r0, 101325.0);
    let cfg = axisym_config();
    let mut s1 = Solver::new(&driven, cfg, Context::serial());
    let mut s2 = Solver::new(&undriven, cfg, Context::serial());
    let (a0, b0) = (gas_volume(&s1, &driven), gas_volume(&s2, &undriven));
    // March both to the same physical time.
    let t_end = 2.0e-6;
    while s1.time() < t_end {
        s1.step().unwrap();
    }
    while s2.time() < t_end {
        s2.step().unwrap();
    }
    let shrink_driven = gas_volume(&s1, &driven) / a0;
    let shrink_undriven = gas_volume(&s2, &undriven) / b0;
    assert!(
        shrink_driven < shrink_undriven - 0.02,
        "driven {shrink_driven} vs undriven {shrink_undriven}"
    );
}
