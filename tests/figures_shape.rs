//! Every table/figure generator produces output with the paper's shape:
//! who wins, by roughly what factor, where crossovers fall.

use mfc::acc::KernelClass;
use mfc::perfmodel::figures::*;
use mfc::perfmodel::{hw, WorkloadProfile};

#[test]
fn fig1_shape() {
    let profile = WorkloadProfile::measure(12, 1);
    let pts = fig1_roofline(&profile);
    // Six points: {WENO, Riemann} x {V100, MI250X, A100}.
    assert_eq!(pts.len(), 6);
    let get = |dev: &str, k: KernelClass| {
        pts.iter()
            .find(|p| p.device == dev && p.kernel == k)
            .unwrap()
    };
    // Paper's percentages.
    assert_eq!(get("NV V100 PCIe", KernelClass::Weno).peak_fraction, 0.45);
    assert_eq!(
        get("NV V100 PCIe", KernelClass::Riemann).peak_fraction,
        0.13
    );
    assert_eq!(get("AMD MI250X GCD", KernelClass::Weno).peak_fraction, 0.21);
    assert_eq!(
        get("AMD MI250X GCD", KernelClass::Riemann).peak_fraction,
        0.03
    );
    // WENO has higher arithmetic intensity than Riemann.
    assert!(
        get("NV V100 PCIe", KernelClass::Weno).ai > get("NV V100 PCIe", KernelClass::Riemann).ai
    );
}

#[test]
fn fig2_shape() {
    let rows = fig2_weak_scaling();
    // Every point ≥ 95%-ish efficiency; monotone non-increasing.
    for machine in ["Summit", "Frontier"] {
        let series: Vec<_> = rows.iter().filter(|r| r.machine == machine).collect();
        assert!(series.len() >= 5);
        assert!(series
            .windows(2)
            .all(|w| w[0].point.devices < w[1].point.devices));
        for r in &series {
            assert!(
                r.point.efficiency > 0.93,
                "{machine} @ {}: {}",
                r.point.devices,
                r.point.efficiency
            );
        }
    }
    // Abstract numbers.
    let last = |m: &str| rows.iter().rfind(|r| r.machine == m).unwrap().point;
    assert_eq!(last("Summit").devices, 13824);
    assert_eq!(last("Frontier").devices, 65536);
    assert!((last("Summit").efficiency - 0.97).abs() < 0.015);
    assert!((last("Frontier").efficiency - 0.95).abs() < 0.015);
}

#[test]
fn fig3_shape() {
    let rows = fig3_strong_scaling();
    // Efficiency decreases with device count within each series.
    for series in [
        "8M cells/GPU base",
        "32M cells/GCD base",
        "16M cells/GCD base",
    ] {
        let pts: Vec<_> = rows.iter().filter(|r| r.series == series).collect();
        assert!(pts.len() >= 4, "{series}");
        for w in pts.windows(2) {
            assert!(
                w[1].point.efficiency <= w[0].point.efficiency + 1e-12,
                "{series}: efficiency increased"
            );
        }
    }
    // Final efficiencies match the paper.
    let last = |s: &str| {
        rows.iter()
            .rfind(|r| r.series == s)
            .unwrap()
            .point
            .efficiency
    };
    assert!((last("8M cells/GPU base") - 0.84).abs() < 0.02);
    assert!((last("32M cells/GCD base") - 0.81).abs() < 0.025);
    // The smaller problem scales worse at every shared device count.
    let big: Vec<_> = rows
        .iter()
        .filter(|r| r.series == "32M cells/GCD base")
        .collect();
    let small: Vec<_> = rows
        .iter()
        .filter(|r| r.series == "16M cells/GCD base")
        .collect();
    for (b, s) in big.iter().zip(&small) {
        assert!(s.point.efficiency <= b.point.efficiency + 1e-12);
    }
}

#[test]
fn fig4_shape() {
    let rows = fig4_gpu_aware();
    let eff = |series: &str| -> Vec<f64> {
        rows.iter()
            .filter(|r| r.series == series)
            .map(|r| r.point.efficiency)
            .collect()
    };
    let aware = eff("GPU-aware MPI");
    let staged = eff("host-staged MPI");
    assert_eq!(aware.len(), staged.len());
    // GPU-aware at least as good everywhere, and ~11 points better at 16x.
    for (a, s) in aware.iter().zip(&staged) {
        assert!(a + 1e-12 >= *s);
    }
    let gap = aware.last().unwrap() - staged.last().unwrap();
    assert!((gap - 0.11).abs() < 0.04, "gap = {gap}");
}

#[test]
fn fig5_shape() {
    let rows = fig5_speedup();
    let speedup = |cpu: &str, gpu: &str| {
        rows.iter()
            .find(|r| r.cpu == cpu && r.gpu == gpu)
            .unwrap()
            .speedup
    };
    // Paper: EPYC Genoa is the fastest CPU → smallest speedups (1.5–5.3).
    let genoa: Vec<f64> = hw::GPUS
        .iter()
        .map(|g| speedup("AMD EPYC 9654 Genoa", g.name))
        .collect();
    let lo = genoa.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = genoa.iter().cloned().fold(0.0, f64::max);
    assert!((lo - 1.5).abs() < 0.2, "lo = {lo}");
    assert!((hi - 5.3).abs() < 0.4, "hi = {hi}");
    // Power10 is slowest → largest speedups (9.1–31.3).
    let p10: Vec<f64> = hw::GPUS
        .iter()
        .map(|g| speedup("IBM Power10", g.name))
        .collect();
    let lo = p10.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = p10.iter().cloned().fold(0.0, f64::max);
    assert!((lo - 9.1).abs() < 0.5, "lo = {lo}");
    assert!((hi - 31.3).abs() < 1.5, "hi = {hi}");
    // Ordering of CPUs: Genoa < XeonMax ~ Grace < Power10 in grind time.
    assert!(
        speedup("AMD EPYC 9654 Genoa", "NV GH200") < speedup("Intel Xeon Max 9468", "NV GH200")
    );
    assert!(speedup("Intel Xeon Max 9468", "NV GH200") < speedup("IBM Power10", "NV GH200"));
}

#[test]
fn fig6_fig7_shape() {
    let rows = fig6_fig7_breakdown();
    assert_eq!(rows.len(), 5);
    let g = |dev: &str| rows.iter().find(|r| r.device == dev).unwrap();
    // Grind-time ordering: GH200 < H100 < A100 < MI250X < V100.
    let order = [
        "NV GH200",
        "NV H100 SXM",
        "NV A100 PCIe",
        "AMD MI250X GCD",
        "NV V100 PCIe",
    ];
    for w in order.windows(2) {
        assert!(
            g(w[0]).total_grind_ns < g(w[1]).total_grind_ns,
            "{} !< {}",
            w[0],
            w[1]
        );
    }
    // Packing ratios (§V): 3.71x and 2.62x vs A100.
    let pack = |dev: &str| g(dev).components.iter().find(|c| c.0 == "Pack").unwrap().1;
    assert!((pack("NV V100 PCIe") / pack("NV A100 PCIe") - 3.71).abs() < 0.05);
    assert!((pack("AMD MI250X GCD") / pack("NV A100 PCIe") - 2.62).abs() < 0.05);
    // WENO times nearly equal on A100/V100/MI250X (+5%, +4.5%).
    let weno = |dev: &str| g(dev).components.iter().find(|c| c.0 == "WENO").unwrap().1;
    assert!(weno("NV V100 PCIe") / weno("NV A100 PCIe") < 1.07);
    assert!(weno("AMD MI250X GCD") / weno("NV A100 PCIe") < 1.07);
    // Riemann +48% / +103%.
    let riem = |dev: &str| {
        g(dev)
            .components
            .iter()
            .find(|c| c.0 == "Riemann")
            .unwrap()
            .1
    };
    assert!((riem("NV V100 PCIe") / riem("NV A100 PCIe") - 1.48).abs() < 0.03);
    assert!((riem("AMD MI250X GCD") / riem("NV A100 PCIe") - 2.03).abs() < 0.03);
}

#[test]
fn json_export_round_trips() {
    let rows = fig5_speedup();
    let j = to_json("fig5", &rows);
    let v: serde_json::Value = serde_json::from_str(&j).unwrap();
    assert_eq!(v["rows"].as_array().unwrap().len(), rows.len());
}
