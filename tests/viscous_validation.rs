//! Viscous validation: shear-layer decay and Taylor–Green vortices
//! (§III-F lists TGV among MFC's validation cases).

use mfc::core::bc::BcSpec;
use mfc::core::fluid::Fluid;
use mfc::{CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

/// Periodic sinusoidal shear layer: u_x(y) = U sin(2 pi y) decays as
/// exp(-nu k^2 t) in the incompressible limit.
#[test]
fn sinusoidal_shear_decays_at_the_analytic_rate() {
    let n = 32;
    let mu = 0.3;
    let rho = 1.2;
    let nu = mu / rho;
    let u0 = 1.0; // Mach ~0.003: effectively incompressible
    let case = CaseBuilder::new(vec![Fluid::air().with_viscosity(mu)], 2, [n, n, 1])
        .bc(BcSpec::periodic())
        .patch(Region::All, PatchState::single(rho, [0.0; 3], 1.0e5));
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    let eq = case.eq();
    let ng = solver.domain().pad(0);

    // Paint the shear profile directly (constant density/pressure, so the
    // conservative momentum is rho*u).
    let kwave = 2.0 * std::f64::consts::PI;
    {
        let q = solver.state_mut();
        for j in 0..n + 2 * ng {
            let y = (j as f64 - ng as f64 + 0.5) / n as f64;
            for i in 0..n + 2 * ng {
                q.set(i, j, 0, eq.mom(0), rho * u0 * (kwave * y).sin());
            }
        }
    }

    let amplitude = |solver: &Solver| -> f64 {
        let prim = solver.primitives();
        (0..n)
            .map(|j| {
                let y = (j as f64 + 0.5) / n as f64;
                prim.get(5 + ng, j + ng, 0, eq.mom(0)) * (kwave * y).sin()
            })
            .sum::<f64>()
            * 2.0
            / n as f64
    };

    let a0 = amplitude(&solver);
    assert!((a0 - u0).abs() < 0.02);
    for _ in 0..350 {
        solver.step().unwrap();
    }
    let t = solver.time();
    let a1 = amplitude(&solver);
    let expected = u0 * (-nu * kwave * kwave * t).exp();
    let decay_measured = a1 / a0;
    let decay_expected = expected / u0;
    assert!(
        (decay_measured - decay_expected).abs() < 0.01,
        "decay {decay_measured:.4} vs analytic {decay_expected:.4} at t = {t:.3e}"
    );
    // And the decay is non-trivial (the run was long enough to matter).
    assert!(decay_expected < 0.97, "test too short to be meaningful");
}

/// 2-D Taylor–Green vortex: kinetic energy decays as exp(-4 nu t) for the
/// k = 1 mode on a 2-pi-periodic box.
#[test]
fn taylor_green_kinetic_energy_decay() {
    let n = 32;
    let mu = 0.4;
    let rho = 1.2;
    let nu = mu / rho;
    let two_pi = 2.0 * std::f64::consts::PI;
    let case = CaseBuilder::new(vec![Fluid::air().with_viscosity(mu)], 2, [n, n, 1])
        .extent([0.0; 3], [two_pi, two_pi, 1.0])
        .bc(BcSpec::periodic())
        .patch(Region::All, PatchState::single(rho, [0.0; 3], 1.0e5));
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    let eq = case.eq();
    let ng = solver.domain().pad(0);

    {
        let q = solver.state_mut();
        for j in 0..n + 2 * ng {
            let y = (j as f64 - ng as f64 + 0.5) / n as f64 * two_pi;
            for i in 0..n + 2 * ng {
                let x = (i as f64 - ng as f64 + 0.5) / n as f64 * two_pi;
                q.set(i, j, 0, eq.mom(0), rho * x.sin() * y.cos());
                q.set(i, j, 0, eq.mom(1), -rho * x.cos() * y.sin());
            }
        }
    }

    let kinetic = |solver: &Solver| -> f64 {
        let prim = solver.primitives();
        let mut ke = 0.0;
        for j in 0..n {
            for i in 0..n {
                let u = prim.get(i + ng, j + ng, 0, eq.mom(0));
                let v = prim.get(i + ng, j + ng, 0, eq.mom(1));
                ke += 0.5 * rho * (u * u + v * v);
            }
        }
        ke
    };

    let ke0 = kinetic(&solver);
    for _ in 0..250 {
        solver.step().unwrap();
    }
    let t = solver.time();
    let ke1 = kinetic(&solver);
    let expected = (-4.0 * nu * t).exp();
    let measured = ke1 / ke0;
    assert!(
        (measured - expected).abs() < 0.02,
        "KE ratio {measured:.4} vs analytic {expected:.4} at t = {t:.3e}"
    );
    assert!(expected < 0.97, "test too short to be meaningful");

    // TGV is a steady-streamline pattern: the velocity field stays a
    // (decaying) TGV, so the vorticity extremum remains at cell centers
    // pattern — sanity-check the structure survived.
    let prim = solver.primitives();
    let u_mid = prim.get(n / 4 + ng, ng, 0, eq.mom(0));
    assert!(u_mid > 0.5 * expected, "TGV structure lost: {u_mid}");
}

/// Startup channel flow between no-slip walls: momentum diffuses inward
/// from the walls, so the near-wall fluid decelerates first (Stokes'
/// first problem on both walls).
#[test]
fn noslip_walls_decelerate_the_near_wall_flow_first() {
    use mfc::core::bc::BcKind;
    let n = 32;
    let mu = 0.4;
    let u0 = 1.0;
    let case = CaseBuilder::new(vec![Fluid::air().with_viscosity(mu)], 2, [n, n, 1])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::NoSlip, BcKind::Transmissive],
            hi: [BcKind::Periodic, BcKind::NoSlip, BcKind::Transmissive],
        })
        .patch(Region::All, PatchState::single(1.2, [u0, 0.0, 0.0], 1.0e5));
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    for _ in 0..200 {
        solver.step().unwrap();
    }
    let prim = solver.primitives();
    let u_wall = prim.get(8 + ng, ng, 0, eq.mom(0)); // first cell off the wall
    let u_center = prim.get(8 + ng, n / 2 + ng, 0, eq.mom(0));
    assert!(
        u_wall < 0.8 * u_center,
        "wall {u_wall:.4} vs center {u_center:.4}"
    );
    assert!(
        u_center > 0.9 * u0,
        "core flow should be barely touched yet"
    );
    assert!(u_wall > 0.0, "flow must not reverse");
}

/// Inviscid control: without viscosity the same TGV initialization keeps
/// its kinetic energy (over the short run) to a much tighter tolerance.
#[test]
fn inviscid_tgv_conserves_kinetic_energy_far_better() {
    let n = 32;
    let rho = 1.2;
    let two_pi = 2.0 * std::f64::consts::PI;
    let case = CaseBuilder::new(vec![Fluid::air()], 2, [n, n, 1])
        .extent([0.0; 3], [two_pi, two_pi, 1.0])
        .bc(BcSpec::periodic())
        .patch(Region::All, PatchState::single(rho, [0.0; 3], 1.0e5));
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    {
        let q = solver.state_mut();
        for j in 0..n + 2 * ng {
            let y = (j as f64 - ng as f64 + 0.5) / n as f64 * two_pi;
            for i in 0..n + 2 * ng {
                let x = (i as f64 - ng as f64 + 0.5) / n as f64 * two_pi;
                q.set(i, j, 0, eq.mom(0), rho * x.sin() * y.cos());
                q.set(i, j, 0, eq.mom(1), -rho * x.cos() * y.sin());
            }
        }
    }
    let kinetic = |solver: &Solver| -> f64 {
        let prim = solver.primitives();
        let mut ke = 0.0;
        for j in 0..n {
            for i in 0..n {
                let u = prim.get(i + ng, j + ng, 0, eq.mom(0));
                let v = prim.get(i + ng, j + ng, 0, eq.mom(1));
                ke += u * u + v * v;
            }
        }
        ke
    };
    let ke0 = kinetic(&solver);
    for _ in 0..250 {
        solver.step().unwrap();
    }
    let ratio = kinetic(&solver) / ke0;
    assert!(ratio > 0.995, "inviscid KE ratio {ratio}");
}
