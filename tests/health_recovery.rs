//! Acceptance tests for the numerical-health watchdog and the
//! graceful-degradation recovery ladder.
//!
//! Three guarantees matter:
//!
//! 1. **Transparency** — arming the watchdog + ladder on a healthy run
//!    changes nothing, bitwise, for every shipped case file (the golden
//!    sums stay exactly as committed).
//! 2. **Recovery** — a run that *would* blow up (over-aggressive fixed
//!    dt, injected NaN) instead walks the ladder, completes with finite
//!    state, and logs every detection/retry/degradation event.
//! 3. **Lockstep** — on simulated ranks the verdict is collective, so a
//!    multi-rank laddered run is bitwise identical to the serial laddered
//!    run, and a corrupt checkpoint wave is skipped by *all* ranks
//!    together during rollback.

use std::sync::Arc;

use mfc_acc::{Context, Ledger, ResilienceEventKind};
use mfc_cli::{run_case, CaseFile, RunError};
use mfc_core::case::{presets, CaseBuilder};
use mfc_core::par::{
    run_distributed_resilient, run_single, ExchangeMode, GlobalField, ResilienceOpts,
};
use mfc_core::recovery::{RecoveryAction, RecoveryPolicy};
use mfc_core::solver::{DtMode, Solver, SolverConfig};
use mfc_core::HealthConfig;
use mfc_mpsim::FailurePolicy;

fn cases_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mfc_health_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A ladder deep enough to tame a 16x-overdriven fixed dt.
fn deep_ladder() -> RecoveryPolicy {
    RecoveryPolicy {
        ladder: vec![
            RecoveryAction::HalveDt,
            RecoveryAction::HalveDt,
            RecoveryAction::HalveDt,
            RecoveryAction::HalveDt,
            RecoveryAction::ZhangShu,
            RecoveryAction::Weno3,
            RecoveryAction::Rusanov,
        ],
        max_retries: 32,
        restore_after: 1_000,
        crash_dump_dir: None,
    }
}

/// Snapshot a serial solver's interior in [`GlobalField`] layout.
fn snapshot(solver: &Solver, case: &CaseBuilder) -> GlobalField {
    let dom = *solver.domain();
    let q = solver.state();
    let mut data = Vec::with_capacity(dom.interior_cells() * dom.eq.neq());
    for e in 0..dom.eq.neq() {
        for (i, j, k) in dom.interior() {
            data.push(q.get(i, j, k, e));
        }
    }
    GlobalField {
        n: case.cells,
        neq: dom.eq.neq(),
        data,
    }
}

/// A fixed dt that overdrives sod(32) past the CFL bound by ~16x.
fn overdriven_cfg() -> SolverConfig {
    let case = presets::sod(32);
    let mut probe = Solver::new(&case, SolverConfig::default(), Context::serial());
    let dt0 = probe.step().unwrap().dt;
    SolverConfig {
        dt: DtMode::Fixed(dt0 * 16.0),
        ..SolverConfig::default()
    }
}

// ---------------------------------------------------------------------
// 1. Transparency: armed == plain, bitwise, on every shipped case.
// ---------------------------------------------------------------------

#[test]
fn armed_recovery_is_bitwise_transparent_on_all_shipped_cases() {
    // Same cases and step counts as the golden harness: bitwise-equal
    // state implies bitwise-equal golden sums and probes.
    for (name, steps) in [
        ("sod", 12usize),
        ("taylor_green", 6),
        ("shock_droplet_2d", 5),
        ("bubble_cloud_2d", 5),
    ] {
        let cf = CaseFile::from_path(&cases_dir().join(format!("{name}.json"))).unwrap();
        let case = cf.to_case().unwrap();
        let cfg = cf.numerics.to_solver_config().unwrap();

        let mut plain = Solver::new(&case, cfg, Context::serial());
        plain.run_steps(steps).unwrap();

        let mut armed =
            Solver::new(&case, cfg, Context::serial()).with_recovery(RecoveryPolicy::default());
        armed.run_steps(steps).unwrap();

        assert_eq!(
            plain.state().as_slice(),
            armed.state().as_slice(),
            "{name}: arming the recovery ladder perturbed a clean run"
        );
        assert!(
            armed.context().ledger().events().is_empty(),
            "{name}: clean run must record no resilience events"
        );
        assert_eq!(armed.recovery_state().total_retries, 0);
    }
}

// ---------------------------------------------------------------------
// 2. Recovery: an overdriven run completes through the ladder.
// ---------------------------------------------------------------------

#[test]
fn overdriven_dt_without_recovery_is_a_typed_error() {
    let case = presets::sod(32);
    let mut solver = Solver::new(&case, overdriven_cfg(), Context::serial());
    let err = solver.run_steps(40).unwrap_err();
    assert_eq!(err.attempts, 1, "no policy armed: one attempt, then abort");
}

#[test]
fn overdriven_dt_completes_through_the_ladder_with_logged_events() {
    let case = presets::sod(32);
    let mut solver =
        Solver::new(&case, overdriven_cfg(), Context::serial()).with_recovery(deep_ladder());
    solver.run_steps(40).expect("ladder should ride through");
    assert!(solver.state().as_slice().iter().all(|v| v.is_finite()));
    assert!(solver.recovery_state().total_retries > 0);

    let ledger = solver.context().ledger();
    let faults = ledger.events_of(ResilienceEventKind::HealthFault);
    let retries = ledger.events_of(ResilienceEventKind::Retry);
    let degrades = ledger.events_of(ResilienceEventKind::Degrade);
    assert!(!faults.is_empty() && !retries.is_empty() && !degrades.is_empty());
    // Every degradation names its rung and action.
    assert!(degrades.iter().all(|e| e.detail.contains("rung")));
}

#[test]
fn crash_dump_is_written_when_the_ladder_is_exhausted() {
    let dir = tmp_dir("dump");
    let case = presets::sod(32);
    // One halving cannot tame a 16x overdrive: the ladder exhausts.
    let policy = RecoveryPolicy {
        ladder: vec![RecoveryAction::HalveDt],
        max_retries: 4,
        restore_after: 1_000,
        crash_dump_dir: Some(dir.clone()),
    };
    let mut solver = Solver::new(&case, overdriven_cfg(), Context::serial()).with_recovery(policy);
    let err = solver.run_steps(40).unwrap_err();
    let dump = err.crash_dump.expect("crash dump path");
    // The dump is a valid checkpoint of the last accepted state.
    let (header, q) = mfc_core::restart::load_checkpoint(&dump).unwrap();
    assert_eq!(header.steps, err.step);
    assert!(q.as_slice().iter().all(|v| v.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// 3. Lockstep: collective verdicts keep ranks bitwise identical.
// ---------------------------------------------------------------------

#[test]
fn collective_ladder_matches_serial_ladder_bitwise() {
    let case = presets::sod(32);
    let cfg = overdriven_cfg();
    let steps = 30usize;

    let mut serial = Solver::new(&case, cfg, Context::serial()).with_recovery(deep_ladder());
    serial
        .run_steps(steps)
        .expect("serial ladder rides through");
    assert!(serial.recovery_state().total_retries > 0);
    let reference = snapshot(&serial, &case);

    let dir = tmp_dir("lockstep");
    let events = Arc::new(Ledger::default());
    let opts = ResilienceOpts {
        checkpoint_every: 0,
        ckpt_dir: dir.clone(),
        faults: None,
        events: Some(Arc::clone(&events)),
        recovery: Some(deep_ladder()),
        health: HealthConfig::default(),
        trace: None,
        exchange: ExchangeMode::Sendrecv,
        failure_policy: FailurePolicy::Revive,
        spares: 0,
        ckpt_keep: 2,
    };
    let (field, _) = run_distributed_resilient(
        &case,
        cfg,
        2,
        steps,
        mfc_mpsim::Staging::DeviceDirect,
        &opts,
    )
    .expect("collective ladder rides through");
    assert_eq!(
        field.max_abs_diff(&reference),
        0.0,
        "ranks must retry/degrade in lockstep with the serial ladder"
    );
    // The same fault/retry story was recorded collectively.
    assert!(!events
        .events_of(ResilienceEventKind::HealthFault)
        .is_empty());
    assert!(!events.events_of(ResilienceEventKind::Retry).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_wave_is_skipped_during_rollback() {
    use mfc_mpsim::{DetectorConfig, FaultCtx, FaultPlan, RankDeath, RankStall};

    let steps = 12usize;
    let case = presets::sod(32);
    let cfg = SolverConfig::default();
    let serial = run_single(&case, cfg, steps);

    let dir = tmp_dir("corrupt");
    // Waves land at steps 0, 3, 6, 9; rank 1 dies at step 10, so the
    // rollback targets wave 3 (step 9). A watcher truncates both ranks'
    // wave-3 files as soon as they appear, forcing the walk back to
    // wave 2. Rank 0's stall at step 10 holds the recovery open long
    // enough for the watcher to strike first.
    let w3 = [
        mfc_core::restart::wave_path(&dir, 0, 3),
        mfc_core::restart::wave_path(&dir, 1, 3),
    ];
    let watcher = {
        let w3 = w3.clone();
        std::thread::spawn(move || {
            for _ in 0..10_000 {
                if w3.iter().all(|p| p.exists()) {
                    // Give the writes a moment to land, then truncate.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    for p in &w3 {
                        let len = std::fs::metadata(p).unwrap().len();
                        let f = std::fs::OpenOptions::new().write(true).open(p).unwrap();
                        f.set_len(len / 2).unwrap();
                    }
                    return true;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            false
        })
    };
    let plan = FaultPlan {
        deaths: vec![RankDeath {
            rank: 1,
            step: 10,
            permanent: false,
        }],
        stalls: vec![RankStall {
            rank: 0,
            step: 10,
            millis: 40,
        }],
        ..FaultPlan::none()
    };
    let events = Arc::new(Ledger::default());
    let opts = ResilienceOpts {
        checkpoint_every: 3,
        ckpt_dir: dir.clone(),
        faults: Some(Arc::new(FaultCtx::new(plan, 2).with_detector(
            DetectorConfig {
                slice_ms: 5,
                retries: 8,
                backoff: 1.5,
            },
        ))),
        events: Some(Arc::clone(&events)),
        recovery: None,
        health: HealthConfig::default(),
        trace: None,
        exchange: ExchangeMode::Sendrecv,
        failure_policy: FailurePolicy::Revive,
        spares: 0,
        ckpt_keep: 2,
    };
    let (field, _) = run_distributed_resilient(
        &case,
        cfg,
        2,
        steps,
        mfc_mpsim::Staging::DeviceDirect,
        &opts,
    )
    .expect("rollback must skip the corrupt wave and recover");
    assert!(
        watcher.join().unwrap(),
        "watcher never saw the wave-2 files"
    );

    assert_eq!(
        field.max_abs_diff(&serial),
        0.0,
        "recovery through an earlier wave must still be bitwise transparent"
    );
    // The ledger shows the corrupt wave being skipped: at least one
    // rollback event mentions an unreadable wave, and the final rollback
    // landed on an earlier wave than the committed one.
    let rollbacks = events.events_of(ResilienceEventKind::Rollback);
    assert!(
        rollbacks.iter().any(|e| e.detail.contains("unreadable")),
        "expected an unreadable-wave event, got {rollbacks:?}"
    );
    assert!(
        rollbacks
            .iter()
            .any(|e| e.detail.contains("rolled back to wave 2")),
        "expected rollback to wave 2, got {rollbacks:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// The mfc-run surface: ladder files, retry budgets, typed errors.
// ---------------------------------------------------------------------

fn overdriven_case_file(dir: &std::path::Path) -> CaseFile {
    let json = r#"{
        "name": "sod_hot",
        "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
        "ndim": 1,
        "cells": [32, 1, 1],
        "bc": "transmissive",
        "patches": [
            { "region": "all",
              "state": { "alpha": [1.0], "rho": [0.125], "vel": [0.0, 0.0, 0.0], "p": 0.1 } },
            { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
              "state": { "alpha": [1.0], "rho": [1.0], "vel": [0.0, 0.0, 0.0], "p": 1.0 } }
        ],
        "run": { "steps": 40 }
    }"#;
    let mut cf = CaseFile::from_json(json).unwrap();
    // Match overdriven_cfg(): ~16x the stable dt for this case.
    let case = cf.to_case().unwrap();
    let mut probe = Solver::new(
        &case,
        cf.numerics.to_solver_config().unwrap(),
        Context::serial(),
    );
    let dt0 = probe.step().unwrap().dt;
    cf.numerics.dt = Some(dt0 * 16.0);
    cf.output.dir = dir.to_path_buf();
    cf
}

#[test]
fn run_case_maps_ladder_exhaustion_to_a_numerical_error() {
    let dir = tmp_dir("cli_numerical");
    let cf = overdriven_case_file(&dir);
    let err = run_case(&cf).unwrap_err();
    assert!(
        matches!(err, RunError::Numerical(_)),
        "expected a numerical error, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_case_recovers_with_a_ladder_file_and_reports_events() {
    let dir = tmp_dir("cli_ladder");
    let mut cf = overdriven_case_file(&dir);
    let ladder_path = dir.join("ladder.json");
    std::fs::write(&ladder_path, serde_json::to_string(&deep_ladder()).unwrap()).unwrap();
    cf.run.recovery = Some(ladder_path);
    let summary = run_case(&cf).expect("ladder file should ride through");
    assert_eq!(summary.steps, 40);
    assert!(
        summary.resilience.contains("health_fault")
            && summary.resilience.contains("retry")
            && summary.resilience.contains("degrade"),
        "{}",
        summary.resilience
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn max_retries_alone_arms_the_default_ladder() {
    let dir = tmp_dir("cli_retries");
    let mut cf = overdriven_case_file(&dir);
    // The default ladder only halves dt twice — not enough for 16x — so
    // soften the overdrive to 4x, which two halvings tame exactly.
    let case = cf.to_case().unwrap();
    let mut probe = Solver::new(&case, SolverConfig::default(), Context::serial());
    let dt0 = probe.step().unwrap().dt;
    cf.numerics.dt = Some(dt0 * 4.0);
    cf.run.max_retries = Some(16);
    let summary = run_case(&cf).expect("default ladder should tame 4x");
    assert_eq!(summary.steps, 40);
    assert!(
        summary.resilience.contains("retry"),
        "{}",
        summary.resilience
    );
    std::fs::remove_dir_all(&dir).ok();
}
