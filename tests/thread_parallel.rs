//! Thread-equivalence suite for gang-parallel RHS execution.
//!
//! The gang scheduler in `mfc-acc` partitions every hot-path iteration
//! space across worker threads with a fixed gang → index-block mapping,
//! and every kernel body writes disjoint slots of its outputs. That
//! contract makes multi-worker runs **bitwise identical** to
//! [`Context::serial`] at every worker count — including counts that
//! oversubscribe the host, so this suite is meaningful on a 1-core CI
//! runner too. These tests are the enforcement:
//!
//! 1. Property: random 3-D domains × both sweep engines × both halo
//!    stagings × every Riemann solver × overlapped exchange, serial vs
//!    2/3/4/8 workers.
//! 2. Engagement: a deterministic case large enough that every gate
//!    (`PAR_MIN_ITEMS`) opens, checked via the trace's per-launch gang
//!    annotation — so the equivalence above is not vacuous.
//! 3. Shipped cases: every `cases/*.json` at 4 workers reproduces the
//!    1-worker state bitwise over the golden step counts, serially and
//!    on 2 simulated ranks (default and overlapped exchange).
//! 4. Recovery: the health watchdog + ladder walk the same rungs at
//!    4 workers as serially, bitwise.

use proptest::prelude::*;
use std::sync::Arc;

use mfc::core::par::{run_distributed_with_mode, run_single, ExchangeMode};
use mfc::core::recovery::{RecoveryAction, RecoveryPolicy};
use mfc::core::rhs::{RhsConfig, RhsMode};
use mfc::core::riemann::RiemannSolver;
use mfc::mpsim::Staging;
use mfc::trace::{EventKind, Tracer};
use mfc::{presets, Context, DtMode, Solver, SolverConfig};
use mfc_cli::CaseFile;

/// Worker counts exercised everywhere: an even split, a remainder split,
/// the CI target, and an oversubscribing count.
const WORKER_COUNTS: [usize; 4] = [2, 3, 4, 8];

fn cases_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases")
}

fn cfg_with(mode: RhsMode, solver: RiemannSolver, workers: usize) -> SolverConfig {
    SolverConfig {
        rhs: RhsConfig {
            mode,
            solver,
            ..Default::default()
        },
        workers,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial and gang-parallel runs agree bitwise on random 3-D domains
    /// for both sweep engines and every Riemann solver.
    #[test]
    fn random_domains_bitwise_equal_at_every_worker_count(
        nx in 8usize..=14,
        ny in 8usize..=14,
        nz in 8usize..=14,
        mode_fused in proptest::bool::ANY,
        solver_idx in 0usize..3,
    ) {
        let mode = if mode_fused { RhsMode::Fused } else { RhsMode::Staged };
        let solver = [RiemannSolver::Hllc, RiemannSolver::Hll, RiemannSolver::Rusanov][solver_idx];
        let case = presets::two_phase_benchmark(3, [nx, ny, nz]);
        let serial = run_single(&case, cfg_with(mode, solver, 1), 2);
        for workers in WORKER_COUNTS {
            let par = run_single(&case, cfg_with(mode, solver, workers), 2);
            prop_assert_eq!(
                par.max_abs_diff(&serial), 0.0,
                "{:?} {:?} workers={}", mode, solver, workers
            );
        }
    }

    /// Distributed runs keep the bitwise guarantee when worker gangs,
    /// halo staging, and the overlapped exchange all compose.
    #[test]
    fn distributed_overlap_bitwise_equal_with_worker_gangs(
        nx in 10usize..=14,
        ny in 10usize..=14,
        mode_fused in proptest::bool::ANY,
        host_staged in proptest::bool::ANY,
        workers_idx in 0usize..4,
    ) {
        let mode = if mode_fused { RhsMode::Fused } else { RhsMode::Staged };
        let staging = if host_staged { Staging::HostStaged } else { Staging::DeviceDirect };
        let workers = WORKER_COUNTS[workers_idx];
        let case = presets::two_phase_benchmark(2, [nx, ny, 1]);
        let serial = run_single(&case, cfg_with(mode, RiemannSolver::Hllc, 1), 3);
        for exchange in [ExchangeMode::Sendrecv, ExchangeMode::Overlapped] {
            let (dist, _) = run_distributed_with_mode(
                &case,
                cfg_with(mode, RiemannSolver::Hllc, workers),
                2,
                3,
                staging,
                exchange,
            )
            .unwrap();
            prop_assert_eq!(
                dist.max_abs_diff(&serial), 0.0,
                "{:?} {:?} {:?} workers={}", mode, staging, exchange, workers
            );
        }
    }
}

/// On a domain past every `PAR_MIN_ITEMS` gate the launches really do
/// split into gangs (asserted from the trace), and the state still
/// matches the serial run bitwise at every worker count.
#[test]
fn parallel_engagement_is_real_and_bitwise_transparent() {
    let case = presets::two_phase_benchmark(3, [16, 16, 16]);
    for mode in [RhsMode::Staged, RhsMode::Fused] {
        let cfg = cfg_with(mode, RiemannSolver::Hllc, 1);
        let mut serial = Solver::new(&case, cfg, Context::serial());
        serial.run_steps(2).unwrap();
        for workers in WORKER_COUNTS {
            let tracer = Arc::new(Tracer::new());
            let mut ctx = Context::with_workers(workers);
            ctx.set_tracer(tracer.handle(0));
            let mut par = Solver::new(&case, cfg, ctx);
            par.run_steps(2).unwrap();
            assert_eq!(
                serial.state().as_slice(),
                par.state().as_slice(),
                "{mode:?} workers={workers}"
            );
            // 16^3 interior => every sweep launch is past PAR_MIN_ITEMS,
            // so the gang annotations must show real splits.
            let trace = &tracer.snapshot()[0];
            let max_gangs = trace
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Kernel { gangs, .. } => Some(gangs),
                    _ => None,
                })
                .max()
                .unwrap();
            assert!(
                max_gangs as usize == workers.min(16 * 16 * 16),
                "{mode:?} workers={workers}: max gangs {max_gangs}, expected {workers}"
            );
        }
    }
}

/// Every shipped case file reproduces its 1-worker state bitwise at
/// 4 workers over the golden step counts — the same guarantee the golden
/// harness enforces for the serial path, extended to worker gangs.
#[test]
fn shipped_cases_bitwise_equal_at_four_workers() {
    for (name, steps) in [
        ("sod", 12usize),
        ("taylor_green", 6),
        ("shock_droplet_2d", 5),
        ("bubble_cloud_2d", 5),
    ] {
        let cf = CaseFile::from_path(&cases_dir().join(format!("{name}.json"))).unwrap();
        let case = cf.to_case().unwrap();
        let cfg = cf.numerics.to_solver_config().unwrap();

        let mut serial = Solver::new(&case, cfg, Context::serial());
        serial.run_steps(steps).unwrap();

        let mut par = Solver::new(&case, cfg, Context::with_workers(4));
        par.run_steps(steps).unwrap();

        assert_eq!(
            serial.state().as_slice(),
            par.state().as_slice(),
            "{name}: 4-worker state diverged from serial"
        );
        assert_eq!(
            serial.time().to_bits(),
            par.time().to_bits(),
            "{name}: dt path diverged"
        );
    }
}

/// Shipped cases on 2 simulated ranks with 4 worker gangs per rank,
/// default and overlapped exchange, still match the serial state.
#[test]
fn shipped_cases_distributed_bitwise_equal_at_four_workers() {
    for (name, steps) in [
        ("sod", 6usize),
        ("taylor_green", 4),
        ("shock_droplet_2d", 3),
        ("bubble_cloud_2d", 3),
    ] {
        let cf = CaseFile::from_path(&cases_dir().join(format!("{name}.json"))).unwrap();
        let case = cf.to_case().unwrap();
        let mut cfg = cf.numerics.to_solver_config().unwrap();
        let serial = run_single(&case, cfg, steps);
        cfg.workers = 4;
        for exchange in [ExchangeMode::Sendrecv, ExchangeMode::Overlapped] {
            let (dist, _) =
                run_distributed_with_mode(&case, cfg, 2, steps, Staging::DeviceDirect, exchange)
                    .unwrap();
            assert_eq!(
                dist.max_abs_diff(&serial),
                0.0,
                "{name} {exchange:?}: 2 ranks x 4 workers diverged from serial"
            );
        }
    }
}

/// The recovery ladder walks the same rungs under worker gangs: the
/// health scan's gang-ordered fold reports the same first violation, so
/// an overdriven run retries/degrades identically and lands bitwise on
/// the serial laddered state.
#[test]
fn recovery_ladder_retries_identically_at_four_workers() {
    let case = presets::sod(32);
    let mut probe = Solver::new(&case, SolverConfig::default(), Context::serial());
    let dt0 = probe.step().unwrap().dt;
    let cfg = SolverConfig {
        dt: DtMode::Fixed(dt0 * 16.0),
        ..Default::default()
    };
    let ladder = RecoveryPolicy {
        ladder: vec![
            RecoveryAction::HalveDt,
            RecoveryAction::HalveDt,
            RecoveryAction::HalveDt,
            RecoveryAction::HalveDt,
            RecoveryAction::ZhangShu,
            RecoveryAction::Weno3,
            RecoveryAction::Rusanov,
        ],
        max_retries: 32,
        restore_after: 1_000,
        crash_dump_dir: None,
    };

    let mut serial = Solver::new(&case, cfg, Context::serial()).with_recovery(ladder.clone());
    serial.run_steps(30).expect("serial ladder rides through");
    assert!(serial.recovery_state().total_retries > 0);

    let mut par = Solver::new(&case, cfg, Context::with_workers(4)).with_recovery(ladder);
    par.run_steps(30).expect("4-worker ladder rides through");

    assert_eq!(
        serial.recovery_state().total_retries,
        par.recovery_state().total_retries,
        "worker gangs changed the retry count"
    );
    assert_eq!(
        serial.state().as_slice(),
        par.state().as_slice(),
        "laddered state diverged under worker gangs"
    );
    assert_eq!(serial.time().to_bits(), par.time().to_bits());
}
