//! Validation against the exact Riemann solution (§III-F).

use mfc::core::fluid::Fluid;
use mfc::core::rhs::RhsConfig;
use mfc::core::riemann::{ExactRiemann, PrimSide, RiemannSolver};
use mfc::core::weno::WenoOrder;
use mfc::{presets, Context, Solver, SolverConfig};

fn sod_l1_error(n: usize, order: WenoOrder, solver_kind: RiemannSolver) -> f64 {
    let case = presets::sod(n);
    let cfg = SolverConfig {
        rhs: RhsConfig {
            order,
            solver: solver_kind,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut solver = Solver::new(&case, cfg, Context::serial());
    solver.run_until(0.15, 100_000).unwrap();

    let air = Fluid::air();
    let exact = ExactRiemann::solve(
        PrimSide {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
            fluid: air,
        },
        PrimSide {
            rho: 0.125,
            u: 0.0,
            p: 0.1,
            fluid: air,
        },
    );
    let prim = solver.primitives();
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    let t = solver.time();
    (0..n)
        .map(|i| {
            let x = (i as f64 + 0.5) / n as f64;
            let (rho_ex, _, _) = exact.sample((x - 0.5) / t);
            (prim.get(i + ng, 0, 0, eq.cont(0)) - rho_ex).abs()
        })
        .sum::<f64>()
        / n as f64
}

#[test]
fn weno5_hllc_sod_converges() {
    let coarse = sod_l1_error(100, WenoOrder::Weno5, RiemannSolver::Hllc);
    let fine = sod_l1_error(400, WenoOrder::Weno5, RiemannSolver::Hllc);
    assert!(coarse < 0.03, "coarse error {coarse}");
    assert!(fine < 0.008, "fine error {fine}");
    // Shock-dominated solutions converge at ~first order in L1.
    assert!(fine < coarse / 2.0, "no convergence: {coarse} -> {fine}");
}

#[test]
fn higher_order_reconstruction_is_more_accurate() {
    let e1 = sod_l1_error(200, WenoOrder::First, RiemannSolver::Hllc);
    let e3 = sod_l1_error(200, WenoOrder::Weno3, RiemannSolver::Hllc);
    let e5 = sod_l1_error(200, WenoOrder::Weno5, RiemannSolver::Hllc);
    assert!(e3 < e1, "WENO3 {e3} not better than first-order {e1}");
    assert!(e5 < e3 * 1.05, "WENO5 {e5} much worse than WENO3 {e3}");
}

#[test]
fn hllc_beats_the_more_diffusive_baselines() {
    let hllc = sod_l1_error(200, WenoOrder::Weno5, RiemannSolver::Hllc);
    let hll = sod_l1_error(200, WenoOrder::Weno5, RiemannSolver::Hll);
    let rusanov = sod_l1_error(200, WenoOrder::Weno5, RiemannSolver::Rusanov);
    // HLLC restores the contact wave; HLL and Rusanov smear it.
    assert!(hllc < hll, "hllc {hllc} vs hll {hll}");
    assert!(hllc < rusanov, "hllc {hllc} vs rusanov {rusanov}");
}

#[test]
fn strong_shock_tube_stays_positive() {
    // Toro test 3-like: pressure ratio 1e5 (scaled).
    use mfc::core::bc::BcSpec;
    use mfc::{CaseBuilder, PatchState, Region};
    let case = CaseBuilder::new(vec![Fluid::air()], 1, [200, 1, 1])
        .bc(BcSpec::transmissive())
        .patch(Region::All, PatchState::single(1.0, [0.0; 3], 0.01))
        .patch(
            Region::HalfSpace {
                axis: 0,
                bound: 0.5,
            },
            PatchState::single(1.0, [0.0; 3], 1000.0),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    solver.run_until(0.01, 100_000).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    for i in 0..200 {
        let rho = prim.get(i + 3, 0, 0, eq.cont(0));
        let p = prim.get(i + 3, 0, 0, eq.energy());
        assert!(rho > 0.0, "rho[{i}] = {rho}");
        assert!(p > 0.0, "p[{i}] = {p}");
    }
}

#[test]
fn air_water_shock_tube_matches_stiffened_exact_solution() {
    // High-pressure air driving into water: validates the multiphase
    // solver against the exact two-EOS Riemann solution's star state.
    use mfc::core::bc::BcSpec;
    use mfc::{CaseBuilder, PatchState, Region};
    let air = Fluid::air();
    let water = Fluid::water();
    let case = CaseBuilder::new(vec![air, water], 1, [400, 1, 1])
        .bc(BcSpec::transmissive())
        .smear(1.0)
        .patch(
            Region::All,
            PatchState::two_fluid(1e-6, [1.2, 1000.0], [0.0; 3], 1.0e5),
        )
        .patch(
            Region::HalfSpace {
                axis: 0,
                bound: 0.5,
            },
            PatchState::two_fluid(1.0 - 1e-6, [100.0, 1000.0], [0.0; 3], 1.0e7),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    solver.run_until(5.0e-5, 100_000).unwrap();

    let exact = ExactRiemann::solve(
        PrimSide {
            rho: 100.0,
            u: 0.0,
            p: 1.0e7,
            fluid: air,
        },
        PrimSide {
            rho: 1000.0,
            u: 0.0,
            p: 1.0e5,
            fluid: water,
        },
    );
    // Sample the simulation in the star region behind the transmitted
    // shock (between contact and shock).
    let prim = solver.primitives();
    let eq = case.eq();
    let t = solver.time();
    let xi = 0.5 * (exact.u_star + (exact.u_star + 300.0)); // inside right star
    let x = 0.5 + xi * t;
    let i = (x * 400.0) as usize;
    let p_sim = prim.get(i + 3, 0, 0, eq.energy());
    assert!(
        (p_sim - exact.p_star).abs() / exact.p_star < 0.25,
        "star pressure: sim {p_sim:.3e} vs exact {:.3e}",
        exact.p_star
    );
    let u_sim = prim.get(i + 3, 0, 0, eq.mom(0));
    assert!(
        (u_sim - exact.u_star).abs() < 0.25 * exact.u_star.abs().max(1.0),
        "star velocity: sim {u_sim} vs exact {}",
        exact.u_star
    );
}
