//! End-to-end tracing contract (the `mfc-trace` subsystem):
//!
//! * every traced run — any domain, rank count, sweep engine, exchange
//!   mode — yields a well-nested span tree per rank (property-tested),
//! * the chrome-trace export of a 2-rank run of the shipped Sod case is
//!   schema-valid and its per-kernel aggregated bytes/FLOPs reconcile
//!   **exactly** (bitwise) with the analytic kernel ledger,
//! * the per-rank comm/compute split — the measured counterpart of the
//!   paper's Fig. 4 analytic curve — is populated,
//! * attaching a tracer never perturbs the physics (bitwise).

use std::sync::Arc;

use proptest::prelude::*;

use mfc::core::case::presets;
use mfc::core::par::{run_distributed, run_distributed_traced, ExchangeMode};
use mfc::core::rhs::RhsMode;
use mfc::core::solver::{DtMode, SolverConfig};
use mfc::mpsim::Staging;
use mfc::trace::{chrome, nesting, reconcile_trace, splits, Tracer};
use mfc_cli::{run_case, CaseFile};

fn cfg_for(mode: RhsMode) -> SolverConfig {
    let mut cfg = SolverConfig {
        dt: DtMode::Cfl(0.4),
        ..Default::default()
    };
    cfg.rhs.mode = mode;
    cfg
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mfc_tracing_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run the shipped Sod case on 2 ranks through `run_case` with tracing
/// and the wave-file I/O path, returning the parsed trace.
fn traced_sod_case(dir: &std::path::Path) -> chrome::ParsedTrace {
    let case_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../cases/sod.json");
    let mut cf = CaseFile::from_path(std::path::Path::new(case_path)).unwrap();
    cf.run.ranks = 2;
    cf.run.steps = 8;
    cf.run.t_end = None;
    cf.output.dir = dir.join("out");
    cf.output.vtk = false;
    cf.io.wave_files = true;
    cf.io.wave = 1; // 2 ranks -> 2 writer waves, so the throttle engages
    let trace_path = dir.join("trace.json");
    cf.run.trace = Some(trace_path.clone());
    let summary = run_case(&cf).expect("traced sod run");
    assert_eq!(summary.steps, 8);

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let root: serde_json::Value = serde_json::from_str(&text).unwrap();
    let schema_errors = chrome::validate_schema(&root);
    assert!(
        schema_errors.is_empty(),
        "schema violations: {schema_errors:?}"
    );
    chrome::parse_str(&text).unwrap()
}

#[test]
fn traced_two_rank_sod_exports_valid_reconciling_chrome_trace() {
    let dir = tmpdir("sod2");
    let parsed = traced_sod_case(&dir);

    assert_eq!(parsed.ranks.len(), 2, "one timeline per rank");
    nesting::check_trace(&parsed).expect("span streams must be well-nested");
    reconcile_trace(&parsed)
        .expect("traced per-kernel totals must match the analytic ledger exactly");

    // The wave-throttled I/O shows up: every rank carries the write span
    // and its file-write leaf.
    for (rank, events) in &parsed.ranks {
        assert!(
            events.iter().any(|e| e.name == "io_wave_write"),
            "rank {rank} lacks the io_wave_write span"
        );
        assert!(
            events
                .iter()
                .any(|e| e.name == "wave_file" && e.cat == "io"),
            "rank {rank} lacks the wave_file io leaf"
        );
    }

    // Fig. 4 counterpart: a measured comm/compute split per rank.
    let sp = splits(&parsed);
    assert_eq!(sp.len(), 2);
    for s in &sp {
        assert!(s.kernel_us > 0.0, "rank {} recorded no kernel time", s.rank);
        assert!(s.comm_us > 0.0, "rank {} recorded no comm time", s.rank);
        let f = s.comm_fraction();
        assert!((0.0..1.0).contains(&f), "comm fraction {f} out of range");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tracer_attachment_is_bitwise_transparent() {
    let case = presets::sod(64);
    let cfg = cfg_for(RhsMode::Fused);
    let (plain, _) = run_distributed(&case, cfg, 2, 6, Staging::DeviceDirect).unwrap();
    let tracer = Arc::new(Tracer::new());
    let (traced, _) = run_distributed_traced(
        &case,
        cfg,
        2,
        6,
        Staging::DeviceDirect,
        ExchangeMode::Sendrecv,
        Some(Arc::clone(&tracer)),
    )
    .unwrap();
    assert_eq!(
        plain.max_abs_diff(&traced),
        0.0,
        "tracing must not perturb the physics"
    );
    assert!(!tracer.snapshot().is_empty());
}

#[test]
fn overlapped_run_traces_hidden_and_exposed_comm() {
    // The overlap phases appear as spans on every rank — halo_post
    // (posting sends/receives), interior_rhs (the compute hiding the
    // messages), halo_drain (the *exposed* remainder of the exchange),
    // shell_rhs (the boundary finish) — the stream stays well-nested,
    // and the kernel ledger still reconciles exactly.
    let case = presets::sod(64);
    let cfg = cfg_for(RhsMode::Fused);
    let tracer = Arc::new(Tracer::new());
    let (traced, _) = run_distributed_traced(
        &case,
        cfg,
        2,
        6,
        Staging::DeviceDirect,
        ExchangeMode::Overlapped,
        Some(Arc::clone(&tracer)),
    )
    .unwrap();
    let (plain, _) = run_distributed(&case, cfg, 2, 6, Staging::DeviceDirect).unwrap();
    assert_eq!(traced.max_abs_diff(&plain), 0.0);

    let traces = tracer.snapshot();
    assert_eq!(traces.len(), 2);
    let text = chrome::export_to_string(&traces);
    let parsed = chrome::parse_str(&text).unwrap();
    nesting::check_trace(&parsed).expect("overlap spans must stay well-nested");
    reconcile_trace(&parsed).expect("overlap must not break ledger reconciliation");
    for (rank, events) in &parsed.ranks {
        for phase in ["halo_post", "interior_rhs", "halo_drain", "shell_rhs"] {
            assert!(
                events.iter().any(|e| e.name == phase),
                "rank {rank} lacks the {phase} span"
            );
        }
        // The hidden/exposed accounting is measurable from the trace:
        // spans are B/E pairs, so the per-phase total is the sum of the
        // E−B gaps; the hidden-comm window (interior_rhs) must have
        // accumulated real time on every rank.
        let total = |name: &str| -> f64 {
            let mut sum = 0.0;
            let mut open: Option<f64> = None;
            for e in events.iter().filter(|e| e.name == name) {
                match e.ph {
                    'B' => open = Some(e.ts_us),
                    'E' => {
                        sum += e.ts_us - open.take().expect("E without B");
                    }
                    _ => {}
                }
            }
            assert!(open.is_none(), "unclosed {name} span on rank {rank}");
            sum
        };
        assert!(
            total("interior_rhs") > 0.0,
            "rank {rank}: no hidden-comm window"
        );
        let _ = total("halo_drain");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any traced run yields a well-nested, schema-valid, exactly
    /// reconciling span stream on every rank — across random domains,
    /// rank counts, both sweep engines, and both exchange modes.
    #[test]
    fn traced_runs_yield_well_nested_span_trees(
        nx in 16usize..32,
        two_d in proptest::bool::ANY,
        ny_2d in 6usize..12,
        rank_sel in 0usize..3,
        fused in proptest::bool::ANY,
        exchange_sel in 0usize..3,
        steps in 1usize..4,
    ) {
        let ny = if two_d { ny_2d } else { 1 };
        let ranks = [1usize, 2, 4][rank_sel];
        let ndim = if ny == 1 { 1 } else { 2 };
        let case = presets::two_phase_benchmark(ndim, [nx, ny, 1]);
        let mode = if fused { RhsMode::Fused } else { RhsMode::Staged };
        let exchange = [
            ExchangeMode::Sendrecv,
            ExchangeMode::NonBlocking,
            ExchangeMode::Overlapped,
        ][exchange_sel];
        let tracer = Arc::new(Tracer::new());
        run_distributed_traced(
            &case,
            cfg_for(mode),
            ranks,
            steps,
            Staging::DeviceDirect,
            exchange,
            Some(Arc::clone(&tracer)),
        )
        .unwrap();

        let traces = tracer.snapshot();
        prop_assert_eq!(traces.len(), ranks);
        // Raw (ns-exact) nesting check on every rank's event stream...
        for t in &traces {
            prop_assert_eq!(t.dropped, 0);
            if let Err(e) = nesting::check_events(&t.events) {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "rank {}: {e}",
                    t.rank
                )));
            }
        }
        // ...and again through the chrome-trace JSON round trip, plus the
        // exact ledger reconciliation.
        let text = chrome::export_to_string(&traces);
        let parsed = chrome::parse_str(&text).unwrap();
        if let Err(e) = nesting::check_trace(&parsed) {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "parsed nesting: {e:?}"
            )));
        }
        if let Err(e) = reconcile_trace(&parsed) {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "reconcile: {e:?}"
            )));
        }
    }
}
