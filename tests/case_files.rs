//! The shipped JSON case files in `cases/` must all parse, validate, and
//! run (briefly).

use mfc_cli::CaseFile;

fn cases_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases")
}

#[test]
fn all_shipped_case_files_parse_and_validate() {
    let mut found = 0;
    for entry in std::fs::read_dir(cases_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        found += 1;
        let cf =
            CaseFile::from_path(&path).unwrap_or_else(|e| panic!("{path:?} failed to parse: {e}"));
        cf.to_case()
            .unwrap_or_else(|e| panic!("{path:?} failed to validate: {e}"));
        cf.numerics
            .to_solver_config()
            .unwrap_or_else(|e| panic!("{path:?} bad numerics: {e}"));
    }
    assert!(found >= 4, "expected the shipped case files, found {found}");
}

#[test]
fn sod_case_file_runs_and_matches_preset() {
    let mut cf = CaseFile::from_path(&cases_dir().join("sod.json")).unwrap();
    // Shorten for the test.
    cf.run.steps = 10;
    cf.run.t_end = None;
    cf.output.dir = std::env::temp_dir().join(format!("mfc_casefile_{}", std::process::id()));
    cf.output.vtk = false;
    let summary = mfc_cli::run_case(&cf).unwrap();
    assert_eq!(summary.steps, 10);
    assert_eq!(summary.cells, 200);
    let _ = std::fs::remove_dir_all(&cf.output.dir);
}

#[test]
fn taylor_green_case_runs_with_viscosity() {
    let mut cf = CaseFile::from_path(&cases_dir().join("taylor_green.json")).unwrap();
    assert!(cf.fluids[0].viscosity > 0.0);
    cf.run.steps = 3;
    cf.output.dir = std::env::temp_dir().join(format!("mfc_casefile_tgv_{}", std::process::id()));
    let summary = mfc_cli::run_case(&cf).unwrap();
    assert_eq!(summary.steps, 3);
    let _ = std::fs::remove_dir_all(&cf.output.dir);
}

#[test]
fn droplet_case_runs_briefly_and_writes_vtk() {
    let mut cf = CaseFile::from_path(&cases_dir().join("shock_droplet_2d.json")).unwrap();
    cf.cells = [32, 32, 1];
    cf.run.steps = 3;
    cf.output.dir = std::env::temp_dir().join(format!("mfc_casefile_drop_{}", std::process::id()));
    cf.output.vtk = true;
    let summary = mfc_cli::run_case(&cf).unwrap();
    let vtk = summary.vtk_path.unwrap();
    let text = std::fs::read_to_string(vtk).unwrap();
    assert!(text.contains("SCALARS alpha_0 double 1"));
    let _ = std::fs::remove_dir_all(&cf.output.dir);
}
