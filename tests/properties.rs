//! Property-based tests (proptest) on the core data structures and
//! numerical invariants.

use proptest::prelude::*;

use mfc::core::eos::{cons_to_prim, prim_to_cons};
use mfc::core::eqidx::EqIdx;
use mfc::core::fluid::{Fluid, MixtureRules};
use mfc::core::riemann::RiemannSolver;
use mfc::core::weno::{reconstruct_line, WenoOrder};
use mfc::fft::{fft_inplace, ifft_inplace, lowpass_filter_line, Complex};
use mfc::layout::{
    pack_coalesced, transpose_3214_geam, transpose_3214_naive, transpose_3214_tiled,
    unpack_coalesced, Dims3, Dims4, Dir, Flat4D, ScalarFieldSet,
};
use mfc::mpsim::{best_block_dims, CartComm};

fn fluid_strategy() -> impl Strategy<Value = Fluid> {
    (1.05f64..7.0, 0.0f64..1e9).prop_map(|(g, pi)| Fluid::new(g, pi))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// prim -> cons -> prim is the identity for admissible states.
    #[test]
    fn prim_cons_round_trip(
        f0 in fluid_strategy(),
        f1 in fluid_strategy(),
        a in 0.01f64..0.99,
        r0 in 0.01f64..2000.0,
        r1 in 0.01f64..2000.0,
        u in -500.0f64..500.0,
        p in 1.0f64..1e8,
    ) {
        let eq = EqIdx::new(2, 1);
        let fluids = [f0, f1];
        let prim = vec![a * r0, (1.0 - a) * r1, u, p, a];
        let mut cons = vec![0.0; 5];
        let mut back = vec![0.0; 5];
        prim_to_cons(&eq, &fluids, &prim, &mut cons);
        cons_to_prim(&eq, &fluids, &cons, &mut back);
        for (x, y) in prim.iter().zip(&back) {
            prop_assert!((x - y).abs() <= 1e-8 * x.abs().max(1.0), "{prim:?} -> {back:?}");
        }
    }

    /// Mixture coefficients are convex combinations of the pure-fluid ones.
    #[test]
    fn mixture_rules_bounded(
        f0 in fluid_strategy(),
        f1 in fluid_strategy(),
        a in 0.0f64..=1.0,
    ) {
        let m = MixtureRules::evaluate(&[f0, f1], &[a, 1.0 - a]);
        let lo = f0.big_gamma().min(f1.big_gamma());
        let hi = f0.big_gamma().max(f1.big_gamma());
        prop_assert!(m.big_gamma >= lo - 1e-12 && m.big_gamma <= hi + 1e-12);
        let lo = f0.big_pi().min(f1.big_pi());
        let hi = f0.big_pi().max(f1.big_pi());
        prop_assert!(m.big_pi >= lo - 1e-6 && m.big_pi <= hi * (1.0 + 1e-12) + 1e-6);
    }

    /// WENO reconstructions stay within the local stencil bounds
    /// (essentially-non-oscillatory property, slightly relaxed).
    #[test]
    fn weno_stays_in_stencil_range(
        values in proptest::collection::vec(-10.0f64..10.0, 14..40),
    ) {
        for order in [WenoOrder::Weno3, WenoOrder::Weno5] {
            let ng = order.ghost_layers();
            let n = values.len() - 2 * ng;
            let mut left = vec![0.0; n + 1];
            let mut right = vec![0.0; n + 1];
            reconstruct_line(order, &values, n, &mut left, &mut right);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let slack = 0.4 * (hi - lo) + 1e-9;
            for m in 0..=n {
                prop_assert!(left[m] >= lo - slack && left[m] <= hi + slack);
                prop_assert!(right[m] >= lo - slack && right[m] <= hi + slack);
            }
        }
    }

    /// All Riemann solvers are consistent: F(q, q) equals the physical
    /// flux, and the returned interface velocity equals the flow velocity.
    #[test]
    fn riemann_consistency(
        f0 in fluid_strategy(),
        rho in 0.1f64..2000.0,
        u in -300.0f64..300.0,
        p in 10.0f64..1e7,
    ) {
        let eq = EqIdx::new(1, 1);
        let fluids = [f0];
        let prim = vec![rho, u, p];
        for solver in [RiemannSolver::Hllc, RiemannSolver::Hll, RiemannSolver::Rusanov] {
            let mut f = vec![0.0; 3];
            let s = solver.flux(&eq, &fluids, 0, &prim, &prim, &mut f);
            prop_assert!((s - u).abs() <= 1e-7 * u.abs().max(1.0), "{solver:?}");
            prop_assert!((f[0] - rho * u).abs() <= 1e-7 * (rho * u).abs().max(1e-12));
        }
    }

    /// HLLC wave speeds are ordered: SL <= S* <= SR.
    #[test]
    fn hllc_wave_ordering(
        rho_l in 0.1f64..100.0,
        rho_r in 0.1f64..100.0,
        u_l in -200.0f64..200.0,
        u_r in -200.0f64..200.0,
        p_l in 100.0f64..1e6,
        p_r in 100.0f64..1e6,
    ) {
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let priml = vec![rho_l, u_l, p_l];
        let primr = vec![rho_r, u_r, p_r];
        let cl = fluids[0].sound_speed(rho_l, p_l);
        let cr = fluids[0].sound_speed(rho_r, p_r);
        let sl = (u_l - cl).min(u_r - cr);
        let sr = (u_l + cl).max(u_r + cr);
        let mut f = vec![0.0; 3];
        let s = RiemannSolver::Hllc.flux(&eq, &fluids, 0, &priml, &primr, &mut f);
        prop_assert!(s >= sl - 1e-9 && s <= sr + 1e-9, "SL={sl} S*={s} SR={sr}");
    }

    /// Coalesced pack/unpack round-trips for every sweep direction.
    #[test]
    fn pack_unpack_identity(
        n1 in 1usize..12,
        n2 in 1usize..12,
        n3 in 1usize..8,
        nf in 1usize..5,
        seed in 0u64..1000,
    ) {
        let dims = Dims3::new(n1, n2, n3);
        let s = ScalarFieldSet::from_fn(dims, nf, |f, i, j, k| {
            ((seed as usize + f * 31 + i * 7 + j * 13 + k * 17) % 101) as f64
        });
        for dir in Dir::ALL {
            let mut buf = Flat4D::zeros(mfc::layout::pack::coalesced_dims(&s, dir));
            pack_coalesced(&s, dir, &mut buf);
            let mut back = ScalarFieldSet::zeros(dims, nf);
            unpack_coalesced(&buf, dir, &mut back);
            for f in 0..nf {
                prop_assert_eq!(s.field(f).as_slice(), back.field(f).as_slice());
            }
        }
    }

    /// All three (3,2,1,4) transpose strategies agree.
    #[test]
    fn transpose_strategies_agree(
        n1 in 1usize..20,
        n2 in 1usize..20,
        n3 in 1usize..10,
        n4 in 1usize..4,
        seed in 0u64..1000,
    ) {
        let dims = Dims4::new(n1, n2, n3, n4);
        let a = Flat4D::from_fn(dims, |i, j, k, f| {
            ((seed as usize + i * 3 + j * 5 + k * 7 + f * 11) % 97) as f64
        });
        let mut t_naive = Flat4D::zeros(dims.permuted_3214());
        let mut t_tiled = Flat4D::zeros(dims.permuted_3214());
        let mut t_geam = Flat4D::zeros(dims.permuted_3214());
        transpose_3214_naive(&a, &mut t_naive);
        transpose_3214_tiled(&a, &mut t_tiled);
        let mut scratch = Vec::new();
        transpose_3214_geam(&a, &mut scratch, &mut t_geam);
        prop_assert_eq!(&t_naive, &t_tiled);
        prop_assert_eq!(&t_naive, &t_geam);
    }

    /// FFT round-trip and Parseval.
    #[test]
    fn fft_round_trip_and_parseval(
        log_n in 1u32..8,
        seed in 0u64..1000,
    ) {
        let n = 1usize << log_n;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let v = ((seed as usize + i * 37) % 211) as f64 / 211.0 - 0.5;
                Complex::new(v, -v * 0.5)
            })
            .collect();
        let mut y = x.clone();
        fft_inplace(&mut y);
        let time: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq: f64 = y.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() <= 1e-9 * time.max(1.0));
        ifft_inplace(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    /// The low-pass filter is a projection: applying it twice equals once.
    #[test]
    fn lowpass_is_projection(
        log_n in 3u32..7,
        keep in 0usize..16,
        seed in 0u64..1000,
    ) {
        let n = 1usize << log_n;
        let mut once: Vec<f64> = (0..n)
            .map(|i| ((seed as usize + i * 13) % 17) as f64)
            .collect();
        lowpass_filter_line(&mut once, keep);
        let mut twice = once.clone();
        lowpass_filter_line(&mut twice, keep);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The positivity limiter always produces admissible states and never
    /// moves an already-admissible state.
    #[test]
    fn limiter_restores_admissibility(
        ar0 in -1.0f64..2.0,
        ar1 in -1.0f64..2000.0,
        u in -300.0f64..300.0,
        p in -1.0e5f64..1.0e6,
        a in 0.01f64..0.99,
    ) {
        use mfc::core::limiter::{admissible, limit_state, Limiter};
        let eq = EqIdx::new(2, 1);
        let fluids = [Fluid::air(), Fluid::water()];
        let mean = vec![0.6, 400.0, 5.0, 1.0e5, 0.5];
        let state = vec![ar0, ar1, u, p, a];
        for lim in [Limiter::FirstOrderFallback, Limiter::ZhangShu] {
            let mut s = state.clone();
            let was_admissible = admissible(&eq, &fluids, &s);
            let theta = limit_state(lim, &eq, &fluids, &mean, &mut s);
            prop_assert!(admissible(&eq, &fluids, &s), "{lim:?}: {s:?}");
            if was_admissible {
                prop_assert_eq!(theta, 1.0);
                prop_assert_eq!(&s, &state);
            } else {
                prop_assert!(theta < 1.0);
            }
        }
    }

    /// Viscous fluxes vanish identically for rigid-body (uniform) motion.
    #[test]
    fn viscous_rhs_zero_for_uniform_motion(
        u in -200.0f64..200.0,
        v in -200.0f64..200.0,
        mu in 0.001f64..2.0,
    ) {
        use mfc::core::domain::Domain;
        use mfc::core::state::StateField;
        use mfc::core::viscous::add_viscous_fluxes;
        use mfc::core::grid::Grid;
        let eq = EqIdx::new(1, 2);
        let dom = Domain::new([6, 6, 1], 3, eq);
        let grid = Grid::uniform([6, 6, 1], [0.0; 3], [1.0, 1.0, 1.0]);
        let widths = [
            grid.x.widths_with_ghosts(dom.pad(0)),
            grid.y.widths_with_ghosts(dom.pad(1)),
            grid.z.widths_with_ghosts(dom.pad(2)),
        ];
        let fluids = [Fluid::air().with_viscosity(mu)];
        let mut prim = StateField::zeros(dom);
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    prim.set(i, j, k, eq.cont(0), 1.2);
                    prim.set(i, j, k, eq.mom(0), u);
                    prim.set(i, j, k, eq.mom(1), v);
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let mut rhs = StateField::zeros(dom);
        let ctx = mfc::Context::serial();
        add_viscous_fluxes(&ctx, &dom, &fluids, &prim, &widths, &mut rhs);
        let max = rhs.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        prop_assert!(max < 1e-8, "max = {max}");
    }

    /// The block decomposition tiles the global domain exactly once.
    #[test]
    fn decomposition_tiles_domain(
        ranks in 1usize..64,
        gx in 8usize..200,
        gy in 1usize..100,
        gz in 1usize..50,
    ) {
        let dims = best_block_dims(ranks, [gx, gy, gz]);
        prop_assert_eq!(dims[0] * dims[1] * dims[2], ranks);
        // Cover axis 0 exactly (same logic applies per axis).
        let mut covered = vec![0u32; gx];
        for rank in 0..ranks {
            let cart = CartComm::new(rank, dims, [false; 3]);
            let (off, len) = cart.local_extent(0, gx);
            for c in covered.iter_mut().skip(off).take(len) {
                *c += 1;
            }
        }
        let per_x = (ranks / dims[0]) as u32;
        prop_assert!(covered.iter().all(|&c| c == per_x));
    }

    /// Overlapping the halo exchange with the interior sweeps is bitwise
    /// invisible on random domains, rank counts, and both RHS engines.
    #[test]
    fn overlapped_exchange_is_bitwise_invisible(
        gx in 12usize..28,
        gy in 12usize..24,
        ranks in 2usize..5,
        fused in proptest::bool::ANY,
    ) {
        use mfc::core::par::{run_distributed_with_mode, ExchangeMode};
        use mfc::core::rhs::{RhsConfig, RhsMode};
        use mfc::core::solver::SolverConfig;
        use mfc::mpsim::Staging;
        let case = mfc::presets::two_phase_benchmark(2, [gx, gy, 1]);
        let cfg = SolverConfig {
            rhs: RhsConfig {
                mode: if fused { RhsMode::Fused } else { RhsMode::Staged },
                ..Default::default()
            },
            ..Default::default()
        };
        let run = |mode| run_distributed_with_mode(
            &case, cfg, ranks, 2, Staging::DeviceDirect, mode,
        );
        match (run(ExchangeMode::Sendrecv), run(ExchangeMode::Overlapped)) {
            (Ok((plain, _)), Ok((over, _))) => {
                prop_assert_eq!(over.max_abs_diff(&plain), 0.0);
            }
            // Thin-rank layouts are rejected identically by both modes.
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false, "modes disagree on validity: {:?} vs {:?}", a.is_ok(), b.is_ok()
            ),
        }
    }

    /// Cartesian neighbours are mutual: my +1 neighbour's -1 neighbour is me.
    #[test]
    fn cart_neighbors_are_mutual(
        p1 in 1usize..5,
        p2 in 1usize..5,
        p3 in 1usize..5,
        rank_seed in 0usize..1000,
        periodic in proptest::bool::ANY,
    ) {
        let size = p1 * p2 * p3;
        let rank = rank_seed % size;
        let cart = CartComm::new(rank, [p1, p2, p3], [periodic; 3]);
        for axis in 0..3 {
            if let Some(nbr) = cart.neighbor(axis, 1) {
                let other = CartComm::new(nbr, [p1, p2, p3], [periodic; 3]);
                prop_assert_eq!(other.neighbor(axis, -1), Some(rank));
            }
        }
    }
}
