//! Distributed-vs-serial equivalence and the I/O strategies, exercising
//! the real halo-exchange code on simulated ranks.

use mfc::core::par::{run_distributed, run_single};
use mfc::core::rhs::RhsConfig;
use mfc::core::weno::WenoOrder;
use mfc::mpsim::{SharedFileWriter, Staging, WaveWriter, World};
use mfc::{presets, SolverConfig};

#[test]
fn distributed_matches_serial_bitwise_1d() {
    let case = presets::sod(96);
    let cfg = SolverConfig::default();
    let serial = run_single(&case, cfg, 8);
    for ranks in [2usize, 3, 4, 8] {
        let (dist, _) = run_distributed(&case, cfg, ranks, 8, Staging::DeviceDirect).unwrap();
        assert_eq!(dist.max_abs_diff(&serial), 0.0, "{ranks} ranks");
    }
}

#[test]
fn distributed_matches_serial_bitwise_2d_and_3d() {
    let cfg = SolverConfig::default();
    let case2 = presets::two_phase_benchmark(2, [24, 24, 1]);
    let serial2 = run_single(&case2, cfg, 4);
    for ranks in [2usize, 4, 6] {
        let (dist, _) = run_distributed(&case2, cfg, ranks, 4, Staging::DeviceDirect).unwrap();
        assert_eq!(dist.max_abs_diff(&serial2), 0.0, "2d {ranks} ranks");
    }
    let case3 = presets::two_phase_benchmark(3, [12, 12, 12]);
    let serial3 = run_single(&case3, cfg, 2);
    for ranks in [2usize, 4, 8] {
        let (dist, _) = run_distributed(&case3, cfg, ranks, 2, Staging::DeviceDirect).unwrap();
        assert_eq!(dist.max_abs_diff(&serial3), 0.0, "3d {ranks} ranks");
    }
}

#[test]
fn distributed_matches_serial_with_weno3() {
    let case = presets::two_phase_benchmark(2, [20, 20, 1]);
    let cfg = SolverConfig {
        rhs: RhsConfig {
            order: WenoOrder::Weno3,
            ..Default::default()
        },
        ..Default::default()
    };
    let serial = run_single(&case, cfg, 4);
    let (dist, _) = run_distributed(&case, cfg, 4, 4, Staging::DeviceDirect).unwrap();
    assert_eq!(dist.max_abs_diff(&serial), 0.0);
}

#[test]
fn transmissive_case_distributes_correctly() {
    // Non-periodic boundaries: ranks at the domain edge apply physical
    // BCs, interior faces exchange halos.
    let case = presets::shock_droplet_2d(32);
    let cfg = SolverConfig::default();
    let serial = run_single(&case, cfg, 3);
    let (dist, _) = run_distributed(&case, cfg, 4, 3, Staging::DeviceDirect).unwrap();
    assert_eq!(dist.max_abs_diff(&serial), 0.0);
}

#[test]
fn nonblocking_exchange_matches_sendrecv_bitwise() {
    use mfc::core::par::{run_distributed_with_mode, ExchangeMode};
    let case = presets::two_phase_benchmark(2, [20, 20, 1]);
    let cfg = SolverConfig::default();
    let (a, _) = run_distributed_with_mode(
        &case,
        cfg,
        4,
        4,
        Staging::DeviceDirect,
        ExchangeMode::Sendrecv,
    )
    .unwrap();
    let (b, _) = run_distributed_with_mode(
        &case,
        cfg,
        4,
        4,
        Staging::DeviceDirect,
        ExchangeMode::NonBlocking,
    )
    .unwrap();
    assert_eq!(a.max_abs_diff(&b), 0.0);
    // And both equal the serial run.
    let serial = run_single(&case, cfg, 4);
    assert_eq!(a.max_abs_diff(&serial), 0.0);
}

#[test]
fn overlapped_exchange_matches_serial_on_all_shipped_cases() {
    // The tentpole guarantee: hiding the halo exchange behind the
    // interior sweeps is bitwise invisible on every shipped case file.
    use mfc::core::par::{run_distributed_with_mode, ExchangeMode};
    use mfc_cli::CaseFile;
    let cases_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases");
    let mut found = 0;
    for entry in std::fs::read_dir(&cases_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        found += 1;
        let cf = CaseFile::from_path(&path).unwrap();
        let case = cf.to_case().unwrap();
        let cfg = cf.numerics.to_solver_config().unwrap();
        let steps = 3;
        let serial = run_single(&case, cfg, steps);
        let (dist, _) = run_distributed_with_mode(
            &case,
            cfg,
            2,
            steps,
            Staging::DeviceDirect,
            ExchangeMode::Overlapped,
        )
        .unwrap();
        assert_eq!(dist.max_abs_diff(&serial), 0.0, "{path:?}");
    }
    assert!(found >= 4, "expected the shipped case files, found {found}");
}

#[test]
fn exchange_modes_agree_bitwise_under_active_faults_4ranks() {
    // Satellite regression: with message faults in flight (delays that
    // reorder delivery *and* drops that force policied retransmits), the
    // sendrecv, nonblocking, and overlapped exchanges must all still
    // produce the fault-free serial answer, bitwise, at 4 ranks.
    use std::sync::Arc;

    use mfc::core::par::{run_distributed_resilient, ExchangeMode, ResilienceOpts};
    use mfc::mpsim::{DetectorConfig, FailurePolicy, FaultCtx, FaultPlan, MsgDelay, MsgFault};
    use mfc_core::HealthConfig;
    let case = presets::two_phase_benchmark(2, [20, 20, 1]);
    let cfg = SolverConfig::default();
    let steps = 6;
    let serial = run_single(&case, cfg, steps);
    let plan = FaultPlan {
        delays: vec![
            MsgDelay {
                src: 0,
                dst: 1,
                nth: 2,
                hold: 2,
            },
            MsgDelay {
                src: 3,
                dst: 2,
                nth: 4,
                hold: 1,
            },
        ],
        drops: vec![MsgFault {
            src: 1,
            dst: 3,
            nth: 3,
        }],
        ..FaultPlan::none()
    };
    for mode in [
        ExchangeMode::Sendrecv,
        ExchangeMode::NonBlocking,
        ExchangeMode::Overlapped,
    ] {
        let dir =
            std::env::temp_dir().join(format!("mfc_fault_modes_{}_{mode:?}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = Arc::new(
            FaultCtx::new(plan.clone(), 4).with_detector(DetectorConfig {
                slice_ms: 5,
                retries: 8,
                backoff: 1.5,
            }),
        );
        let opts = ResilienceOpts {
            checkpoint_every: 2,
            ckpt_dir: dir.clone(),
            faults: Some(faults),
            events: None,
            recovery: None,
            health: HealthConfig::default(),
            trace: None,
            exchange: mode,
            failure_policy: FailurePolicy::Revive,
            spares: 0,
            ckpt_keep: 2,
        };
        let (dist, _) =
            run_distributed_resilient(&case, cfg, 4, steps, Staging::DeviceDirect, &opts)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert_eq!(dist.max_abs_diff(&serial), 0.0, "{mode:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn host_staging_changes_cost_not_physics() {
    let case = presets::two_phase_benchmark(2, [16, 16, 1]);
    let cfg = SolverConfig::default();
    let (a, _) = run_distributed(&case, cfg, 4, 3, Staging::DeviceDirect).unwrap();
    let (b, _) = run_distributed(&case, cfg, 4, 3, Staging::HostStaged).unwrap();
    assert_eq!(a.max_abs_diff(&b), 0.0);
}

#[test]
fn halo_traffic_is_surface_not_volume() {
    let cfg = SolverConfig::default();
    let small = presets::two_phase_benchmark(3, [12, 12, 12]);
    let big = presets::two_phase_benchmark(3, [24, 24, 24]);
    let (_, s) = run_distributed(&small, cfg, 8, 1, Staging::DeviceDirect).unwrap();
    let (_, b) = run_distributed(&big, cfg, 8, 1, Staging::DeviceDirect).unwrap();
    // Linear dimension doubles: halo bytes should grow ~4x (surface), far
    // less than the 8x volume growth.
    let ratio = b.bytes as f64 / s.bytes as f64;
    assert!(ratio > 2.0 && ratio < 6.0, "ratio = {ratio}");
}

#[test]
fn wave_writer_round_trips_solver_output() {
    // File-per-process output in waves of 2, then read back and compare.
    let dir = std::env::temp_dir().join(format!("mfc_dist_io_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data_per_rank: Vec<Vec<f64>> = (0..6)
        .map(|r| (0..32).map(|i| (r * 1000 + i) as f64).collect())
        .collect();
    let dref = &data_per_rank;
    let dirref = &dir;
    World::run(6, |c| {
        WaveWriter::new(2)
            .write(&c, dirref, 7, &dref[c.rank()])
            .unwrap();
    });
    for (r, want) in data_per_rank.iter().enumerate() {
        let got = WaveWriter::read(&dir, 7, r).unwrap();
        assert_eq!(&got, want);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shared_file_and_wave_writer_agree() {
    let dir = std::env::temp_dir().join(format!("mfc_dist_io2_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dirref = &dir;
    World::run(4, |mut c| {
        let data = vec![c.rank() as f64 + 0.5; 8];
        WaveWriter::new(128).write(&c, dirref, 0, &data).unwrap();
        SharedFileWriter.write(&mut c, dirref, 0, &data).unwrap();
    });
    for r in 0..4 {
        let a = WaveWriter::read(&dir, 0, r).unwrap();
        let b = SharedFileWriter::read_block(&dir, 0, r, 8).unwrap();
        assert_eq!(a, b);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
