//! Formal order-of-accuracy of the full solver on smooth solutions.
//!
//! A smooth density wave advecting through a periodic domain returns to
//! its initial state after one period; the departure measures the
//! scheme's total discretization error.  With `dt ∝ h^(5/3)` the RK3 time
//! error scales like the WENO5 space error, so the design order is
//! observable.

use mfc::core::bc::BcSpec;
use mfc::core::fluid::Fluid;
use mfc::core::rhs::RhsConfig;
use mfc::core::weno::WenoOrder;
use mfc::{CaseBuilder, Context, DtMode, PatchState, Region, Solver, SolverConfig};

/// Advect a smooth wave for one period at resolution `n`; return the L1
/// density error against the initial condition.
fn one_period_error(n: usize, order: WenoOrder) -> f64 {
    let u0 = 50.0;
    let rho0 = 1.2;
    let amp = 0.1;
    let case = CaseBuilder::new(vec![Fluid::air()], 1, [n, 1, 1])
        .bc(BcSpec::periodic())
        .patch(Region::All, PatchState::single(rho0, [u0, 0.0, 0.0], 1.0e5));
    // dt ~ h^(5/3) so the RK3 error scales with the WENO5 error, anchored
    // at acoustic CFL 0.5 for n = 32 (c ~ 341 m/s dominates u0).
    let h = 1.0 / n as f64;
    let dt32 = 0.5 * (1.0 / 32.0) / 390.0;
    let dt = dt32 * (h / (1.0 / 32.0)).powf(5.0 / 3.0);
    let period = 1.0 / u0;
    let steps = (period / dt).round() as usize;
    let dt = period / steps as f64; // land exactly on one period

    let cfg = SolverConfig {
        rhs: RhsConfig {
            order,
            ..Default::default()
        },
        dt: DtMode::Fixed(dt),
        ..Default::default()
    };
    let mut solver = Solver::new(&case, cfg, Context::serial());
    let eq = case.eq();
    let ng = solver.domain().pad(0);

    // Smooth initial density perturbation at uniform p, u (a pure entropy
    // wave: it advects without generating acoustics).
    let rho_init = |x: f64| rho0 * (1.0 + amp * (2.0 * std::f64::consts::PI * x).sin());
    {
        let q = solver.state_mut();
        for i in 0..n + 2 * ng {
            let x = (i as f64 - ng as f64 + 0.5) * h;
            let rho = rho_init(x);
            q.set(i, 0, 0, eq.cont(0), rho);
            q.set(i, 0, 0, eq.mom(0), rho * u0);
            // E = p/(gamma-1) + 1/2 rho u^2
            q.set(i, 0, 0, eq.energy(), 1.0e5 / 0.4 + 0.5 * rho * u0 * u0);
        }
    }

    solver.run_steps(steps).unwrap();
    assert!((solver.time() - period).abs() < 1e-12);

    let prim = solver.primitives();
    (0..n)
        .map(|i| {
            let x = (i as f64 + 0.5) * h;
            (prim.get(i + ng, 0, 0, eq.cont(0)) - rho_init(x)).abs()
        })
        .sum::<f64>()
        / n as f64
}

#[test]
fn weno5_solver_converges_at_high_order() {
    let e32 = one_period_error(32, WenoOrder::Weno5);
    let e64 = one_period_error(64, WenoOrder::Weno5);
    let rate = (e32 / e64).log2();
    assert!(
        rate > 3.5,
        "observed rate {rate:.2} (e32 = {e32:.3e}, e64 = {e64:.3e})"
    );
    assert!(e64 < 1e-4, "absolute error too large: {e64:.3e}");
}

#[test]
fn weno3_solver_converges_at_lower_order_than_weno5() {
    let e3_64 = one_period_error(64, WenoOrder::Weno3);
    let e5_64 = one_period_error(64, WenoOrder::Weno5);
    assert!(
        e5_64 < e3_64 / 3.0,
        "weno5 {e5_64:.3e} vs weno3 {e3_64:.3e}"
    );
    let e3_32 = one_period_error(32, WenoOrder::Weno3);
    let rate = (e3_32 / e3_64).log2();
    assert!(rate > 2.0, "WENO3 observed rate {rate:.2}");
}

#[test]
fn wenoz_matches_or_beats_js_on_the_smooth_wave() {
    let e_js = one_period_error(48, WenoOrder::Weno5);
    let e_z = one_period_error(48, WenoOrder::Weno5Z);
    assert!(e_z < e_js * 1.5, "Z {e_z:.3e} vs JS {e_js:.3e}");
}
