//! The fused pencil sweep engine must be bitwise identical to the staged
//! pipeline: same reconstruction, same Riemann solves, same update order
//! per cell — only the loop structure and scratch layout differ.
//!
//! Covered here: all four shipped case files (serial and 2-rank
//! distributed) plus a property sweep over random domains, orders,
//! Riemann solvers, and limiters.

use proptest::prelude::*;

use mfc::core::limiter::Limiter;
use mfc::core::par::{run_distributed, run_single};
use mfc::core::rhs::RhsMode;
use mfc::core::riemann::RiemannSolver;
use mfc::core::weno::WenoOrder;
use mfc::mpsim::Staging;
use mfc::{presets, CaseBuilder, SolverConfig};
use mfc_cli::CaseFile;

fn cases_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases")
}

/// Load a shipped case, shrunk so equivalence runs stay fast.
fn shipped(name: &str, cells: [usize; 3]) -> (CaseBuilder, SolverConfig) {
    let mut cf = CaseFile::from_path(&cases_dir().join(name)).unwrap();
    cf.cells = cells;
    let case = cf.to_case().unwrap();
    let cfg = cf.numerics.to_solver_config().unwrap();
    (case, cfg)
}

fn with_mode(mut cfg: SolverConfig, mode: RhsMode) -> SolverConfig {
    cfg.rhs.mode = mode;
    cfg
}

const SHIPPED: [(&str, [usize; 3], usize); 4] = [
    ("sod.json", [200, 1, 1], 8),
    ("taylor_green.json", [32, 32, 1], 5),
    ("bubble_cloud_2d.json", [48, 48, 1], 4),
    ("shock_droplet_2d.json", [48, 48, 1], 4),
];

#[test]
fn fused_matches_staged_bitwise_on_all_shipped_cases() {
    for (name, cells, steps) in SHIPPED {
        let (case, cfg) = shipped(name, cells);
        let staged = run_single(&case, with_mode(cfg, RhsMode::Staged), steps);
        let fused = run_single(&case, with_mode(cfg, RhsMode::Fused), steps);
        assert_eq!(fused.max_abs_diff(&staged), 0.0, "{name}");
    }
}

#[test]
fn fused_matches_staged_bitwise_distributed_2_ranks() {
    for (name, cells, steps) in SHIPPED {
        let (case, cfg) = shipped(name, cells);
        let (staged, _) = run_distributed(
            &case,
            with_mode(cfg, RhsMode::Staged),
            2,
            steps,
            Staging::DeviceDirect,
        )
        .unwrap();
        let (fused, _) = run_distributed(
            &case,
            with_mode(cfg, RhsMode::Fused),
            2,
            steps,
            Staging::DeviceDirect,
        )
        .unwrap();
        assert_eq!(fused.max_abs_diff(&staged), 0.0, "{name}");
    }
}

#[test]
fn fused_matches_staged_in_3d() {
    let case = presets::two_phase_benchmark(3, [12, 12, 12]);
    let cfg = SolverConfig::default();
    let staged = run_single(&case, with_mode(cfg, RhsMode::Staged), 4);
    let fused = run_single(&case, with_mode(cfg, RhsMode::Fused), 4);
    assert_eq!(fused.max_abs_diff(&staged), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Staged and fused agree bitwise across random domain shapes,
    /// reconstruction orders, Riemann solvers, and limiters.
    #[test]
    fn fused_matches_staged_on_random_configs(
        ndim in 1usize..=3,
        nx in 6usize..20,
        ny in 6usize..16,
        nz in 6usize..12,
        order_i in 0usize..3,
        solver_i in 0usize..3,
        limiter_i in 0usize..2,
        steps in 1usize..4,
    ) {
        let n = match ndim {
            1 => [nx * 4, 1, 1],
            2 => [nx, ny, 1],
            _ => [nx, ny, nz],
        };
        let case = presets::two_phase_benchmark(ndim, n);
        let mut cfg = SolverConfig::default();
        cfg.rhs.order = [WenoOrder::Weno3, WenoOrder::Weno5, WenoOrder::Weno5Z][order_i];
        cfg.rhs.solver = [RiemannSolver::Hllc, RiemannSolver::Hll, RiemannSolver::Rusanov][solver_i];
        cfg.rhs.limiter = [Limiter::FirstOrderFallback, Limiter::ZhangShu][limiter_i];
        let staged = run_single(&case, with_mode(cfg, RhsMode::Staged), steps);
        let fused = run_single(&case, with_mode(cfg, RhsMode::Fused), steps);
        prop_assert_eq!(fused.max_abs_diff(&staged), 0.0);
    }
}
