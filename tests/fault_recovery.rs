//! Acceptance tests for the fault-injection + recovery subsystem.
//!
//! The central guarantee: a run that loses ranks, drops messages, or
//! stalls — and recovers through checkpoint rollback — produces output
//! **bitwise identical** to a fault-free run. The property test below
//! asserts this for arbitrary seeded recoverable fault plans; the
//! negative tests assert that unrecoverable plans fail fast with a
//! reported error instead of hanging.

use std::sync::{Arc, OnceLock};

use mfc_acc::{Ledger, ResilienceEventKind};
use mfc_core::case::presets;
use mfc_core::par::{
    run_distributed_resilient, run_single, ExchangeMode, GlobalField, ResilienceError,
    ResilienceOpts,
};
use mfc_core::solver::SolverConfig;
use mfc_mpsim::{
    DetectorConfig, FailurePolicy, FaultCtx, FaultPlan, MsgDelay, MsgFault, RankDeath, RankStall,
};
use proptest::prelude::*;

const STEPS: usize = 12;

fn fast_detector() -> DetectorConfig {
    DetectorConfig {
        slice_ms: 5,
        retries: 8,
        backoff: 1.5,
    }
}

fn ckpt_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mfc_frec_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The fault-free reference solution, computed once.
fn reference() -> &'static GlobalField {
    static REF: OnceLock<GlobalField> = OnceLock::new();
    REF.get_or_init(|| run_single(&presets::sod(32), SolverConfig::default(), STEPS))
}

/// Run sod(32) under `plan` on `ranks` ranks with recovery enabled and
/// return the result plus the event ledger.
fn run_with_plan(
    tag: &str,
    plan: FaultPlan,
    ranks: usize,
    checkpoint_every: u64,
) -> (Result<GlobalField, ResilienceError>, Arc<Ledger>) {
    let dir = ckpt_dir(tag);
    let events = Arc::new(Ledger::default());
    let opts = ResilienceOpts {
        checkpoint_every,
        ckpt_dir: dir.clone(),
        faults: Some(Arc::new(
            FaultCtx::new(plan, ranks).with_detector(fast_detector()),
        )),
        events: Some(Arc::clone(&events)),
        recovery: None,
        health: mfc_core::HealthConfig::default(),
        trace: None,
        exchange: ExchangeMode::Sendrecv,
        failure_policy: FailurePolicy::Revive,
        spares: 0,
        ckpt_keep: 2,
    };
    let out = run_distributed_resilient(
        &presets::sod(32),
        SolverConfig::default(),
        ranks,
        STEPS,
        mfc_mpsim::Staging::DeviceDirect,
        &opts,
    )
    .map(|(field, _)| field);
    std::fs::remove_dir_all(&dir).ok();
    (out, events)
}

#[test]
fn multi_rank_deaths_recover_bitwise_identical() {
    // Two separate ranks die at different steps; each death forces a
    // detection, a global rollback, and a replay — and the final state
    // still matches the serial fault-free run bit for bit.
    let plan = FaultPlan {
        deaths: vec![
            RankDeath {
                rank: 1,
                step: 5,
                permanent: false,
            },
            RankDeath {
                rank: 3,
                step: 9,
                permanent: false,
            },
        ],
        ..FaultPlan::none()
    };
    let (out, events) = run_with_plan("multideath", plan, 4, 3);
    let field = out.expect("both deaths are recoverable");
    assert_eq!(
        field.max_abs_diff(reference()),
        0.0,
        "recovered 4-rank run must be bitwise identical to fault-free"
    );
    assert_eq!(
        events.events_of(ResilienceEventKind::FaultDetected).len(),
        2
    );
    assert_eq!(events.events_of(ResilienceEventKind::Rollback).len(), 2);
    assert_eq!(events.events_of(ResilienceEventKind::Replay).len(), 2);
    assert!(events.events_of(ResilienceEventKind::Checkpoint).len() >= 4);
}

#[test]
fn mixed_fault_plan_recovers_bitwise_identical() {
    // Drops, a delayed (reordered) message, a stall, and a death in one
    // plan: retransmission absorbs the message faults, retry/backoff
    // absorbs the stall, rollback absorbs the death.
    let plan = FaultPlan {
        seed: 7,
        drops: vec![
            MsgFault {
                src: 0,
                dst: 1,
                nth: 2,
            },
            MsgFault {
                src: 1,
                dst: 0,
                nth: 9,
            },
        ],
        delays: vec![MsgDelay {
            src: 1,
            dst: 0,
            nth: 5,
            hold: 2,
        }],
        reorders: vec![MsgFault {
            src: 0,
            dst: 1,
            nth: 11,
        }],
        stalls: vec![RankStall {
            rank: 1,
            step: 3,
            millis: 15,
        }],
        deaths: vec![RankDeath {
            rank: 0,
            step: 7,
            permanent: false,
        }],
    };
    let (out, events) = run_with_plan("mixed", plan, 2, 4);
    let field = out.expect("plan is recoverable");
    assert_eq!(field.max_abs_diff(reference()), 0.0);
    assert!(!events.events_of(ResilienceEventKind::Rollback).is_empty());
}

#[test]
fn recovery_events_carry_timing() {
    let plan = FaultPlan {
        deaths: vec![RankDeath {
            rank: 1,
            step: 6,
            permanent: false,
        }],
        ..FaultPlan::none()
    };
    let (out, events) = run_with_plan("timing", plan, 2, 4);
    out.unwrap();
    // Replay re-executes at least two real solver steps, so its recorded
    // wall time must be non-zero; detection waited at least one slice.
    let replay = &events.events_of(ResilienceEventKind::Replay)[0];
    assert!(replay.wall.as_nanos() > 0);
    let detect = &events.events_of(ResilienceEventKind::FaultDetected)[0];
    assert!(detect.wall >= std::time::Duration::from_millis(1));
}

#[test]
fn death_without_checkpoints_errors_instead_of_hanging() {
    let plan = FaultPlan {
        deaths: vec![RankDeath {
            rank: 1,
            step: 4,
            permanent: false,
        }],
        ..FaultPlan::none()
    };
    let (out, _) = run_with_plan("nockpt", plan, 2, 0);
    assert!(matches!(
        out.unwrap_err(),
        ResilienceError::Unrecoverable { .. }
    ));
}

#[test]
fn death_before_first_commit_errors_instead_of_hanging() {
    // The rank dies at step 0, before the wave-0 commit collective can
    // complete — so there is no consistent checkpoint to roll back to.
    let plan = FaultPlan {
        deaths: vec![RankDeath {
            rank: 1,
            step: 0,
            permanent: false,
        }],
        ..FaultPlan::none()
    };
    let (out, _) = run_with_plan("early", plan, 2, 4);
    assert!(matches!(
        out.unwrap_err(),
        ResilienceError::Unrecoverable { .. }
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded recoverable fault plan — random drops and delays on
    /// both flows plus one rank death after the first committed wave —
    /// yields output bitwise equal to the fault-free reference.
    #[test]
    fn any_recoverable_plan_is_bitwise_transparent(
        seed in 0u64..1_000_000,
        drop_nths in proptest::collection::vec(0u64..48, 0..4),
        delay_nth in 0u64..32,
        delay_hold in 1u32..4,
        kill_rank in 0usize..2,
        death_step in 1u64..12,
    ) {
        let plan = FaultPlan {
            seed,
            drops: drop_nths
                .iter()
                .enumerate()
                .map(|(i, &nth)| MsgFault { src: i % 2, dst: (i + 1) % 2, nth })
                .collect(),
            delays: vec![MsgDelay { src: 1, dst: 0, nth: delay_nth, hold: delay_hold }],
            deaths: vec![RankDeath {
                rank: kill_rank,
                step: death_step,
                permanent: false,
            }],
            ..FaultPlan::none()
        };
        let tag = format!("prop{seed}_{death_step}_{kill_rank}");
        let (out, _) = run_with_plan(&tag, plan, 2, 4);
        let field = match out {
            Ok(f) => f,
            Err(e) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "recoverable plan failed: {e}"
                )))
            }
        };
        prop_assert_eq!(
            field.max_abs_diff(reference()),
            0.0,
            "fault plan must be bitwise transparent after recovery"
        );
    }
}
