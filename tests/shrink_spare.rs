//! Permanent rank loss: shrink-and-continue and spare-rank takeover.
//!
//! The tentpole guarantee: when a rank dies *permanently*, the survivors
//! either reach consensus on a shrunk communicator (recomputing the
//! Cartesian decomposition and redistributing the last committed
//! checkpoint wave cross-shard) or promote an idle hot spare into the
//! vacant slot — and in both cases the post-recovery trajectory is
//! **bitwise identical** to a fresh run from that checkpoint, which (by
//! the repo's rank-count invariance) equals the serial run. Covers both
//! sweep engines, the serial and overlapped exchanges, the recovery
//! trace spans with exact ledger reconciliation, checkpoint retention,
//! and the typed errors for unrecoverable configurations.

use std::sync::Arc;

use mfc_acc::{Ledger, ResilienceEventKind};
use mfc_core::case::presets;
use mfc_core::par::{
    run_distributed_resilient, run_single, ExchangeMode, ResilienceError, ResilienceOpts,
};
use mfc_core::restart::wave_path;
use mfc_core::rhs::RhsMode;
use mfc_core::solver::SolverConfig;
use mfc_core::HealthConfig;
use mfc_mpsim::{DetectorConfig, FailurePolicy, FaultCtx, FaultPlan, RankDeath, Staging};
use mfc_trace::{chrome, nesting, reconcile_trace, Tracer};
use proptest::prelude::*;

const STEPS: usize = 12;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mfc_shrink_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn detector() -> DetectorConfig {
    DetectorConfig {
        slice_ms: 5,
        retries: 8,
        backoff: 1.5,
    }
}

/// A plan that kills physical rank 2 permanently at step 7 — after the
/// wave-2 commit at step 6, so both policies recover from that wave.
fn perm_death_plan() -> FaultPlan {
    FaultPlan {
        deaths: vec![RankDeath {
            rank: 2,
            step: 7,
            permanent: true,
        }],
        ..FaultPlan::none()
    }
}

fn opts_for(
    dir: &std::path::Path,
    faults: Arc<FaultCtx>,
    events: &Arc<Ledger>,
    policy: FailurePolicy,
    spares: usize,
    exchange: ExchangeMode,
) -> ResilienceOpts {
    ResilienceOpts {
        checkpoint_every: 3,
        ckpt_dir: dir.to_path_buf(),
        faults: Some(faults),
        events: Some(Arc::clone(events)),
        recovery: None,
        health: HealthConfig::default(),
        trace: None,
        exchange,
        failure_policy: policy,
        spares,
        ckpt_keep: 2,
    }
}

#[test]
fn shrink_recovers_permanent_death_bitwise_all_modes() {
    // 4 ranks, rank 2 dies for good at step 7: the three survivors agree
    // on a 3-rank world, re-shard wave 2 (written by the 4-rank layout,
    // dead rank's block included), and replay. The final field must be
    // bitwise the serial answer — under both sweep engines and both the
    // paired and the overlapped halo exchange.
    let case = presets::sod(64);
    for rhs_mode in [RhsMode::Staged, RhsMode::Fused] {
        for exchange in [ExchangeMode::Sendrecv, ExchangeMode::Overlapped] {
            let mut cfg = SolverConfig::default();
            cfg.rhs.mode = rhs_mode;
            let serial = run_single(&case, cfg, STEPS);
            let dir = tmp_dir(&format!("shrink_{rhs_mode:?}_{exchange:?}"));
            let faults = Arc::new(FaultCtx::new(perm_death_plan(), 4).with_detector(detector()));
            let events = Arc::new(Ledger::default());
            let opts = opts_for(&dir, faults, &events, FailurePolicy::Shrink, 0, exchange);
            let (field, _) =
                run_distributed_resilient(&case, cfg, 4, STEPS, Staging::DeviceDirect, &opts)
                    .unwrap_or_else(|e| panic!("{rhs_mode:?}/{exchange:?}: {e}"));
            assert_eq!(
                field.max_abs_diff(&serial),
                0.0,
                "{rhs_mode:?}/{exchange:?}: shrunk run must stay bitwise serial"
            );
            use ResilienceEventKind as K;
            assert_eq!(events.events_of(K::Shrink).len(), 1, "one shrink consensus");
            assert_eq!(
                events.events_of(K::Redistribute).len(),
                1,
                "the rolled-back wave is re-sharded exactly once"
            );
            assert!(events.events_of(K::PromoteSpare).is_empty());
            assert_eq!(events.events_of(K::FaultDetected).len(), 1);
            assert_eq!(events.events_of(K::Rollback).len(), 1);
            assert_eq!(events.events_of(K::Replay).len(), 1);
            let shrink = &events.events_of(K::Shrink)[0];
            assert!(
                shrink.detail.contains("4 -> 3"),
                "shrink detail: {}",
                shrink.detail
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn spare_takeover_recovers_permanent_death_bitwise_all_modes() {
    // Same death, but a hot spare (physical rank 4) idles outside the
    // decomposition and is promoted into slot 2. No re-decomposition:
    // the spare loads the dead rank's own shard of wave 2 and the world
    // stays 4 wide — still bitwise the serial answer.
    let case = presets::sod(64);
    for rhs_mode in [RhsMode::Staged, RhsMode::Fused] {
        for exchange in [ExchangeMode::Sendrecv, ExchangeMode::Overlapped] {
            let mut cfg = SolverConfig::default();
            cfg.rhs.mode = rhs_mode;
            let serial = run_single(&case, cfg, STEPS);
            let dir = tmp_dir(&format!("spare_{rhs_mode:?}_{exchange:?}"));
            let faults = Arc::new(
                FaultCtx::new_with_spares(perm_death_plan(), 4, 1).with_detector(detector()),
            );
            let events = Arc::new(Ledger::default());
            let opts = opts_for(&dir, faults, &events, FailurePolicy::Spare, 1, exchange);
            let (field, _) =
                run_distributed_resilient(&case, cfg, 4, STEPS, Staging::DeviceDirect, &opts)
                    .unwrap_or_else(|e| panic!("{rhs_mode:?}/{exchange:?}: {e}"));
            assert_eq!(
                field.max_abs_diff(&serial),
                0.0,
                "{rhs_mode:?}/{exchange:?}: spare takeover must stay bitwise serial"
            );
            use ResilienceEventKind as K;
            assert_eq!(
                events.events_of(K::PromoteSpare).len(),
                1,
                "exactly one promotion"
            );
            assert!(
                events.events_of(K::Shrink).is_empty(),
                "no re-decomposition"
            );
            assert!(events.events_of(K::Redistribute).is_empty());
            assert_eq!(events.events_of(K::Rollback).len(), 1);
            let promo = &events.events_of(K::PromoteSpare)[0];
            assert!(
                promo.detail.contains("physical rank 4") && promo.detail.contains("slot 2"),
                "promotion detail: {}",
                promo.detail
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn recovery_spans_are_schema_valid_and_ledger_reconciles() {
    // The recovery machinery is visible in the trace: a shrunk run emits
    // `shrink` and `redistribute` spans, a spare run `promote_spare` —
    // and in both cases the chrome export is schema-valid, well-nested,
    // and the per-kernel totals still reconcile exactly against the
    // analytic ledger (dead rank's and spare's timelines included).
    let case = presets::sod(64);
    let cfg = SolverConfig::default();
    let serial = run_single(&case, cfg, STEPS);

    for (policy, spares, wanted) in [
        (FailurePolicy::Shrink, 0usize, ["shrink", "redistribute"]),
        (FailurePolicy::Spare, 1usize, ["promote_spare", "rollback"]),
    ] {
        let dir = tmp_dir(&format!("trace_{policy:?}"));
        let faults = Arc::new(
            FaultCtx::new_with_spares(perm_death_plan(), 4, spares).with_detector(detector()),
        );
        let events = Arc::new(Ledger::default());
        let tracer = Arc::new(Tracer::new());
        let mut opts = opts_for(
            &dir,
            faults,
            &events,
            policy,
            spares,
            ExchangeMode::Sendrecv,
        );
        opts.trace = Some(Arc::clone(&tracer));
        let (field, _) =
            run_distributed_resilient(&case, cfg, 4, STEPS, Staging::DeviceDirect, &opts)
                .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        assert_eq!(field.max_abs_diff(&serial), 0.0, "{policy:?}");

        let traces = tracer.snapshot();
        assert_eq!(traces.len(), 4 + spares, "one timeline per physical rank");
        let text = chrome::export_to_string(&traces);
        let root: serde_json::Value = serde_json::from_str(&text).unwrap();
        let schema_errors = chrome::validate_schema(&root);
        assert!(
            schema_errors.is_empty(),
            "{policy:?}: schema violations: {schema_errors:?}"
        );
        let parsed = chrome::parse_str(&text).unwrap();
        nesting::check_trace(&parsed).expect("recovery spans must stay well-nested");
        reconcile_trace(&parsed)
            .expect("kernel ledger must reconcile exactly across a permanent loss");
        for span in wanted {
            assert!(
                parsed
                    .ranks
                    .values()
                    .any(|events| events.iter().any(|e| e.name == span)),
                "{policy:?}: no `{span}` span in the trace"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn permanent_death_under_revive_policy_is_unrecoverable() {
    // The pre-existing transient semantics: a *permanent* death cannot
    // be revived, so the survivors report a typed error in lockstep
    // instead of hanging in the rendezvous.
    let case = presets::sod(64);
    let cfg = SolverConfig::default();
    let dir = tmp_dir("revive_perm");
    let faults = Arc::new(FaultCtx::new(perm_death_plan(), 4).with_detector(detector()));
    let events = Arc::new(Ledger::default());
    let opts = opts_for(
        &dir,
        faults,
        &events,
        FailurePolicy::Revive,
        0,
        ExchangeMode::Sendrecv,
    );
    let err = run_distributed_resilient(&case, cfg, 4, STEPS, Staging::DeviceDirect, &opts)
        .expect_err("revive cannot resurrect a permanent loss");
    match err {
        ResilienceError::Unrecoverable { detail, .. } => {
            assert!(detail.contains("Revive"), "detail: {detail}");
        }
        other => panic!("expected Unrecoverable, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_spare_pool_is_a_typed_error() {
    // Two permanent deaths, one spare: the first promotion drains the
    // pool, the second death leaves a vacant slot with no spare — a
    // typed Unrecoverable, not a hang.
    let case = presets::sod(64);
    let cfg = SolverConfig::default();
    let dir = tmp_dir("spare_exhausted");
    let plan = FaultPlan {
        deaths: vec![
            RankDeath {
                rank: 2,
                step: 7,
                permanent: true,
            },
            RankDeath {
                rank: 1,
                step: 10,
                permanent: true,
            },
        ],
        ..FaultPlan::none()
    };
    let faults = Arc::new(FaultCtx::new_with_spares(plan, 4, 1).with_detector(detector()));
    let events = Arc::new(Ledger::default());
    let opts = opts_for(
        &dir,
        faults,
        &events,
        FailurePolicy::Spare,
        1,
        ExchangeMode::Sendrecv,
    );
    let err = run_distributed_resilient(&case, cfg, 4, 16, Staging::DeviceDirect, &opts)
        .expect_err("second permanent death exhausts the single spare");
    match err {
        ResilienceError::Unrecoverable { detail, .. } => {
            assert!(detail.contains("spare pool exhausted"), "detail: {detail}");
        }
        other => panic!("expected Unrecoverable, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_without_survivor_quorum_is_rejected_host_side() {
    // Killing every rank permanently leaves no one to reach consensus;
    // the plan is rejected before any rank is spawned (typed config
    // error, not a hang).
    let case = presets::sod(64);
    let cfg = SolverConfig::default();
    let dir = tmp_dir("no_quorum");
    let deaths = (0..2)
        .map(|r| RankDeath {
            rank: r,
            step: 4,
            permanent: true,
        })
        .collect();
    let plan = FaultPlan {
        deaths,
        ..FaultPlan::none()
    };
    let faults = Arc::new(FaultCtx::new(plan, 2).with_detector(detector()));
    let events = Arc::new(Ledger::default());
    let opts = opts_for(
        &dir,
        faults,
        &events,
        FailurePolicy::Shrink,
        0,
        ExchangeMode::Sendrecv,
    );
    let err = run_distributed_resilient(&case, cfg, 2, STEPS, Staging::DeviceDirect, &opts)
        .expect_err("a plan with no survivors must be rejected");
    match err {
        ResilienceError::Plan { detail } => {
            assert!(detail.contains("quorum"), "detail: {detail}");
        }
        other => panic!("expected Plan, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_spare_pool_is_rejected_host_side() {
    // The fault board must be provisioned for active + spare physical
    // ranks; a board built without the pool is a config error.
    let case = presets::sod(64);
    let cfg = SolverConfig::default();
    let dir = tmp_dir("bad_board");
    let faults = Arc::new(FaultCtx::new(perm_death_plan(), 4).with_detector(detector()));
    let events = Arc::new(Ledger::default());
    let opts = opts_for(
        &dir,
        faults,
        &events,
        FailurePolicy::Spare,
        1,
        ExchangeMode::Sendrecv,
    );
    let err = run_distributed_resilient(&case, cfg, 4, STEPS, Staging::DeviceDirect, &opts)
        .expect_err("board without the spare pool must be rejected");
    assert!(matches!(err, ResilienceError::Plan { .. }), "got {err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_retention_keeps_exactly_the_newest_waves() {
    // ckpt_keep = 2 over 5 committed waves: only the two newest survive
    // on disk for every rank, and the newest committed wave is present.
    let case = presets::sod(64);
    let cfg = SolverConfig::default();
    let dir = tmp_dir("retention");
    let mut opts = ResilienceOpts::fault_free(&dir, 2);
    opts.ckpt_keep = 2;
    let (_, _) =
        run_distributed_resilient(&case, cfg, 2, 10, Staging::DeviceDirect, &opts).unwrap();
    // Waves 0..=4 were committed (steps 0, 2, 4, 6, 8).
    for rank in 0..2 {
        for wave in 0..=2u64 {
            assert!(
                !wave_path(&dir, rank, wave).exists(),
                "rank {rank} wave {wave} should have been garbage-collected"
            );
        }
        for wave in 3..=4u64 {
            assert!(
                wave_path(&dir, rank, wave).exists(),
                "rank {rank} wave {wave} must be retained"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gc_never_starves_a_rollback() {
    // The tightest retention (keep 1) with a death immediately after a
    // commit: GC has just deleted everything but the newest committed
    // wave, and the rollback must still find it and recover bitwise.
    // (GC only runs between commits and never touches the newest
    // committed wave, so a rollback candidate scan cannot race it.)
    let case = presets::sod(64);
    let cfg = SolverConfig::default();
    let serial = run_single(&case, cfg, 10);
    let dir = tmp_dir("gc_rollback");
    let plan = FaultPlan {
        deaths: vec![RankDeath {
            rank: 1,
            step: 7,
            permanent: false,
        }],
        ..FaultPlan::none()
    };
    let faults = Arc::new(FaultCtx::new(plan, 2).with_detector(detector()));
    let events = Arc::new(Ledger::default());
    let mut opts = opts_for(
        &dir,
        faults,
        &events,
        FailurePolicy::Revive,
        0,
        ExchangeMode::Sendrecv,
    );
    opts.checkpoint_every = 3;
    opts.ckpt_keep = 1;
    let (field, _) =
        run_distributed_resilient(&case, cfg, 2, 10, Staging::DeviceDirect, &opts).unwrap();
    assert_eq!(field.max_abs_diff(&serial), 0.0);
    assert_eq!(
        events.events_of(ResilienceEventKind::Rollback).len(),
        1,
        "the newest committed wave was loadable on the first try"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_checkpoint_write_is_a_collective_typed_error() {
    // Satellite regression: a checkpoint write failure used to panic one
    // rank mid-collective ("checkpoint write") while its peers hung. A
    // directory squatting on rank 1's wave-1 file defeats the atomic
    // rename; now every rank returns the same typed I/O error.
    let case = presets::sod(64);
    let cfg = SolverConfig::default();
    let dir = tmp_dir("bad_write");
    std::fs::create_dir_all(wave_path(&dir, 1, 1)).unwrap();
    let opts = ResilienceOpts::fault_free(&dir, 2);
    let err = run_distributed_resilient(&case, cfg, 2, 10, Staging::DeviceDirect, &opts)
        .expect_err("rank 1 cannot rename its wave over a directory");
    assert!(matches!(err, ResilienceError::Io { .. }), "got {err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Rank-count invariance of the resilient driver itself: on random
    /// domains, under both sweep engines and the overlapped exchange,
    /// `run_distributed_resilient` at R ranks is bitwise identical to
    /// R' ranks (both fault-free, so this pins the driver's layout and
    /// checkpoint plumbing, not the fault machinery).
    #[test]
    fn resilient_driver_is_rank_count_invariant(
        nx in 40usize..72,
        steps in 4usize..8,
        fused in proptest::bool::ANY,
        pair_idx in 0usize..3,
    ) {
        let case = presets::sod(nx);
        let mut cfg = SolverConfig::default();
        cfg.rhs.mode = if fused { RhsMode::Fused } else { RhsMode::Staged };
        let (r_a, r_b) = [(2usize, 3usize), (2, 4), (3, 4)][pair_idx];
        let mut fields = Vec::new();
        for ranks in [r_a, r_b] {
            let dir = tmp_dir(&format!("prop_{nx}_{steps}_{fused}_{ranks}"));
            let mut opts = ResilienceOpts::fault_free(&dir, 2);
            opts.exchange = ExchangeMode::Overlapped;
            let (field, _) =
                run_distributed_resilient(&case, cfg, ranks, steps, Staging::DeviceDirect, &opts)
                    .unwrap();
            fields.push(field);
            std::fs::remove_dir_all(&dir).ok();
        }
        prop_assert_eq!(
            fields[0].max_abs_diff(&fields[1]),
            0.0,
            "{} vs {} ranks diverged", r_a, r_b
        );
    }
}
