//! 3-D cylindrical coordinates (§III-A: "Cartesian, axisymmetric, and
//! cylindrical coordinates are supported").
//!
//! Axis convention: 0 = axial z, 1 = radial r, 2 = azimuthal theta
//! (periodic, extent in radians).

use mfc::core::axisym::Geometry;
use mfc::core::bc::{BcKind, BcSpec};
use mfc::core::fluid::Fluid;
use mfc::core::rhs::RhsConfig;
use mfc::core::solver::DtMode;
use mfc::{CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

fn cyl_case(n: [usize; 3]) -> CaseBuilder {
    CaseBuilder::new(vec![Fluid::air()], 3, n)
        // z in [0,1], r in [0.2, 1.2] (axis excluded), theta in [0, 2 pi).
        .extent([0.0, 0.2, 0.0], [1.0, 1.2, 2.0 * std::f64::consts::PI])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::Reflective, BcKind::Periodic],
            hi: [BcKind::Periodic, BcKind::Reflective, BcKind::Periodic],
        })
        .patch(Region::All, PatchState::single(1.2, [0.0; 3], 1.0e5))
}

fn cyl_config() -> SolverConfig {
    SolverConfig {
        rhs: RhsConfig {
            geometry: Geometry::Cylindrical3D,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn quiescent_cylindrical_state_is_steady() {
    let case = cyl_case([8, 8, 8]);
    let mut solver = Solver::new(&case, cyl_config(), Context::serial());
    solver.run_steps(8).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let dom = *solver.domain();
    let mut vmax = 0.0f64;
    for (i, j, k) in dom.interior() {
        for d in 0..3 {
            vmax = vmax.max(prim.get(i, j, k, eq.mom(d)).abs());
        }
    }
    assert!(vmax < 1e-7, "spurious velocity {vmax}");
}

#[test]
fn uniform_axial_flow_is_steady() {
    let case = CaseBuilder::new(vec![Fluid::air()], 3, [8, 8, 8])
        .extent([0.0, 0.2, 0.0], [1.0, 1.2, 2.0 * std::f64::consts::PI])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::Reflective, BcKind::Periodic],
            hi: [BcKind::Periodic, BcKind::Reflective, BcKind::Periodic],
        })
        .patch(
            Region::All,
            PatchState::single(1.2, [40.0, 0.0, 0.0], 1.0e5),
        );
    let mut solver = Solver::new(&case, cyl_config(), Context::serial());
    solver.run_steps(8).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let dom = *solver.domain();
    for (i, j, k) in dom.interior() {
        let uz = prim.get(i, j, k, eq.mom(0));
        let ur = prim.get(i, j, k, eq.mom(1));
        let p = prim.get(i, j, k, eq.energy());
        assert!((uz - 40.0).abs() < 1e-6, "uz = {uz}");
        assert!(ur.abs() < 1e-6, "ur = {ur}");
        assert!((p - 1.0e5).abs() / 1.0e5 < 1e-8, "p = {p}");
    }
}

#[test]
fn azimuthal_cfl_is_tighter_near_the_axis() {
    // The theta cell width is r * dtheta: the same grid with a smaller
    // inner radius must take smaller steps — the CFL restriction the
    // paper's FFT filter exists to relax.
    let mut near = cyl_case([8, 8, 32]);
    near.lo[1] = 0.02;
    near.hi[1] = 1.02;
    let far = cyl_case([8, 8, 32]);
    let mut s_near = Solver::new(&near, cyl_config(), Context::serial());
    let mut s_far = Solver::new(&far, cyl_config(), Context::serial());
    let dt_near = s_near.step().unwrap().dt;
    let dt_far = s_far.step().unwrap().dt;
    assert!(
        dt_near < 0.6 * dt_far,
        "dt near axis {dt_near:.3e} vs away {dt_far:.3e}"
    );
}

#[test]
fn solid_body_rotation_is_near_equilibrium() {
    // u_theta = Omega r with dp/dr = rho Omega^2 r is an exact steady
    // solution; the discrete solver should hold it to truncation error.
    let n = [4usize, 24, 8];
    let (r0, r1) = (0.2, 1.2);
    let omega = 30.0; // max u_theta = 36 m/s, Mach ~0.1
    let rho = 1.2;
    let p_ref = 1.0e5;
    let case = CaseBuilder::new(vec![Fluid::air()], 3, n)
        .extent([0.0, r0, 0.0], [0.5, r1, 2.0 * std::f64::consts::PI])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::Reflective, BcKind::Periodic],
            hi: [BcKind::Periodic, BcKind::Reflective, BcKind::Periodic],
        })
        .patch(Region::All, PatchState::single(rho, [0.0; 3], p_ref));
    let cfg = SolverConfig {
        rhs: RhsConfig {
            geometry: Geometry::Cylindrical3D,
            ..Default::default()
        },
        dt: DtMode::Cfl(0.4),
        ..Default::default()
    };
    let mut solver = Solver::new(&case, cfg, Context::serial());
    let eq = case.eq();
    let dom = *solver.domain();
    let grid = solver.grid().clone();
    {
        let q = solver.state_mut();
        for j in 0..dom.ext(1) {
            let jr = j as isize - dom.pad(1) as isize;
            let r = if jr < 0 {
                grid.y.centers()[0] - (-jr) as f64 * grid.y.widths()[0]
            } else if (jr as usize) < grid.y.n() {
                grid.y.centers()[jr as usize]
            } else {
                grid.y.centers()[grid.y.n() - 1]
                    + (jr as usize - grid.y.n() + 1) as f64 * grid.y.widths()[grid.y.n() - 1]
            };
            let ut = omega * r;
            let p = p_ref + 0.5 * rho * omega * omega * (r * r - r0 * r0);
            for k in 0..dom.ext(2) {
                for i in 0..dom.ext(0) {
                    let q_e = p / 0.4 + 0.5 * rho * ut * ut;
                    q.set(i, j, k, eq.cont(0), rho);
                    q.set(i, j, k, eq.mom(0), 0.0);
                    q.set(i, j, k, eq.mom(1), 0.0);
                    q.set(i, j, k, eq.mom(2), rho * ut);
                    q.set(i, j, k, eq.energy(), q_e);
                }
            }
        }
    }
    let ut_max = omega * r1;
    for _ in 0..20 {
        solver.step().unwrap();
    }
    let prim = solver.primitives();
    let mut ur_max = 0.0f64;
    for (i, j, k) in dom.interior() {
        ur_max = ur_max.max(prim.get(i, j, k, eq.mom(1)).abs());
    }
    // Radial velocities stay a small fraction of the rotation speed
    // (truncation-level imbalance only).
    assert!(
        ur_max < 0.02 * ut_max,
        "equilibrium broke: ur_max = {ur_max:.3} of u_theta {ut_max}"
    );
}

#[test]
fn azimuthally_uniform_cylindrical_matches_axisymmetric() {
    // With no theta dependence and u_theta = 0, every theta slice of a
    // cylindrical run must evolve exactly like the 2-D axisymmetric run
    // (fixed dt to share the clock).
    let nz = 12;
    let nr = 10;
    let mk3 = || {
        CaseBuilder::new(vec![Fluid::air()], 3, [nz, nr, 4])
            .extent([0.0, 0.2, 0.0], [1.0, 1.2, 2.0 * std::f64::consts::PI])
            .bc(BcSpec {
                lo: [BcKind::Transmissive, BcKind::Reflective, BcKind::Periodic],
                hi: [BcKind::Transmissive, BcKind::Reflective, BcKind::Periodic],
            })
            .smear(1.0)
            .patch(Region::All, PatchState::single(1.2, [0.0; 3], 1.0e5))
            .patch(
                Region::Box {
                    lo: [0.0, 0.2, -9.0],
                    hi: [0.4, 1.3, 9.0],
                },
                PatchState::single(1.2, [0.0; 3], 3.0e5),
            )
    };
    let mk2 = || {
        CaseBuilder::new(vec![Fluid::air()], 2, [nz, nr, 1])
            .extent([0.0, 0.2, 0.0], [1.0, 1.2, 1.0])
            .bc(BcSpec {
                lo: [
                    BcKind::Transmissive,
                    BcKind::Reflective,
                    BcKind::Transmissive,
                ],
                hi: [
                    BcKind::Transmissive,
                    BcKind::Reflective,
                    BcKind::Transmissive,
                ],
            })
            .smear(1.0)
            .patch(Region::All, PatchState::single(1.2, [0.0; 3], 1.0e5))
            .patch(
                Region::Box {
                    lo: [0.0, 0.2, -9.0],
                    hi: [0.4, 1.3, 9.0],
                },
                PatchState::single(1.2, [0.0; 3], 3.0e5),
            )
    };
    let dt = 1.0e-5;
    let cfg3 = SolverConfig {
        rhs: RhsConfig {
            geometry: Geometry::Cylindrical3D,
            ..Default::default()
        },
        dt: DtMode::Fixed(dt),
        ..Default::default()
    };
    let cfg2 = SolverConfig {
        rhs: RhsConfig {
            geometry: Geometry::Axisymmetric,
            ..Default::default()
        },
        dt: DtMode::Fixed(dt),
        ..Default::default()
    };
    let case3 = mk3();
    let case2 = mk2();
    let mut s3 = Solver::new(&case3, cfg3, Context::serial());
    let mut s2 = Solver::new(&case2, cfg2, Context::serial());
    s3.run_steps(6).unwrap();
    s2.run_steps(6).unwrap();
    let (p3, p2) = (s3.primitives(), s2.primitives());
    let eq3 = case3.eq();
    let eq2 = case2.eq();
    let ng = 3;
    let mut max_diff = 0.0f64;
    for j in 0..nr {
        for i in 0..nz {
            let a = p2.get(i + ng, j + ng, 0, eq2.energy());
            for k in 0..4 {
                let b = p3.get(i + ng, j + ng, k + ng, eq3.energy());
                max_diff = max_diff.max((a - b).abs() / a.abs());
            }
        }
    }
    assert!(max_diff < 1e-10, "cyl vs axisym pressure diff {max_diff}");
}
