//! Ensemble-equivalence suite for the `mfc-sched` scheduler.
//!
//! The scheduler multiplexes jobs onto a shared elastic worker pool and
//! resizes their gang counts at step boundaries. By the worker- and
//! lane-invariance guarantees (see `tests/thread_parallel.rs` and
//! `tests/vector_lanes.rs`), none of that may be visible in the physics:
//! every completed job's final checkpoint must be **bitwise identical**
//! to a standalone serial run of the same case. These tests enforce
//! that, plus the scheduler's own contracts:
//!
//! 1. Shipped-case ensemble across budgets {1, 2, 4, 8} — byte-equal
//!    checkpoints at every budget, under queueing and elastic resizes.
//! 2. Property: random arrival order, priorities, and budget — the
//!    outcome of every job is independent of who else was in the pool.
//! 3. Elasticity is real (a surviving job absorbs a departing job's
//!    workers) and still bitwise invisible.
//! 4. Per-job fault isolation: an injected NaN fails one job through the
//!    solver's own watchdog; its siblings finish byte-identical.
//! 5. Cooperative cancellation and deadlines stop at step boundaries
//!    with the documented terminal states.
//! 6. Typed admission control: backpressure on a full queue, rejection
//!    of invalid cases at submit time.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use mfc::core::restart::save_checkpoint;
use mfc::{Context, Solver};
use mfc_cli::CaseFile;
use mfc_sched::{JobSpec, JobState, SchedConfig, SchedError, Scheduler};

fn cases_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases")
}

fn sod_path() -> PathBuf {
    cases_dir().join("sod.json")
}

/// Fresh per-test scratch directory (tests in one binary run in
/// parallel, so the pid alone is not unique).
fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mfc_ensemble_{}_{tag}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Standalone serial reference: the same case under the same step
/// budget, mirroring the scheduler's stopping rule (`t_end` or the step
/// budget, whichever first), checkpointed with the same writer.
fn standalone_ckpt(case_path: &Path, steps: usize, out: &Path) {
    let cf = CaseFile::from_path(case_path).unwrap();
    let case = cf.to_case().unwrap();
    let cfg = cf.numerics.to_solver_config().unwrap();
    let ctx = Context::with_workers(1).with_vector_width(cfg.vector_width);
    let mut solver = Solver::new(&case, cfg, ctx);
    let t_end = cf.run.t_end.unwrap_or(f64::INFINITY);
    while solver.time() < t_end && solver.steps() < steps as u64 {
        solver.step().unwrap();
    }
    save_checkpoint(out, solver.state(), solver.time(), solver.steps()).unwrap();
}

fn spec(name: &str, steps: usize, priority: i64) -> JobSpec {
    let mut s = JobSpec::new(sod_path());
    s.name = Some(name.to_string());
    s.priority = priority;
    s.max_steps = Some(steps);
    s
}

fn sched(budget: usize, out_dir: PathBuf) -> Scheduler {
    Scheduler::new(SchedConfig {
        budget,
        queue_cap: 16,
        aging_rounds: 2,
        out_dir,
        write_checkpoints: true,
    })
}

fn assert_bitwise(job: &str, got: &Path, want: &Path) {
    assert!(
        fs::read(got).unwrap() == fs::read(want).unwrap(),
        "{job}: scheduler checkpoint {} differs from standalone {}",
        got.display(),
        want.display()
    );
}

/// A six-job mixed-priority ensemble completes at every budget with
/// byte-identical outputs: worker shares, queue waits, and elastic
/// resizes are all numerically invisible.
#[test]
fn shipped_case_ensemble_bitwise_across_budgets() {
    let jobs: [(&str, usize, i64); 6] = [
        ("long", 24, 0),
        ("mid_a", 18, 2),
        ("mid_b", 12, 1),
        ("short_a", 9, 3),
        ("short_b", 6, 0),
        ("tiny", 3, 5),
    ];
    let refs = tmp_dir("refs");
    for (name, steps, _) in jobs {
        standalone_ckpt(&sod_path(), steps, &refs.join(format!("{name}.ckpt")));
    }
    for budget in [1usize, 2, 4, 8] {
        let out = tmp_dir("budgets");
        let mut s = sched(budget, out.clone());
        for (name, steps, prio) in jobs {
            s.submit(spec(name, steps, prio)).unwrap();
        }
        let records = s.run();
        assert_eq!(records.len(), jobs.len());
        for (r, (name, steps, _)) in records.iter().zip(jobs) {
            assert_eq!(
                r.state,
                JobState::Done,
                "budget {budget}: {name} {:?}",
                r.reason
            );
            assert_eq!(r.steps, steps as u64, "budget {budget}: {name}");
            let got = r.output.as_ref().expect("done job writes a checkpoint");
            assert_bitwise(name, got, &refs.join(format!("{name}.ckpt")));
        }
        let _ = fs::remove_dir_all(&out);
    }
    let _ = fs::remove_dir_all(&refs);
}

/// The pool really is elastic: when the short job departs, the long
/// job's gang grows at a step boundary (observable in the ledger) — and
/// its checkpoint still matches the standalone run bitwise.
#[test]
fn elastic_resize_is_applied_and_bitwise_invisible() {
    let refs = tmp_dir("elastic_ref");
    standalone_ckpt(&sod_path(), 100, &refs.join("long.ckpt"));
    let out = tmp_dir("elastic");
    let mut s = sched(2, out.clone());
    s.submit(spec("quick", 3, 10)).unwrap();
    s.submit(spec("long", 100, 0)).unwrap();
    let records = s.run();
    assert!(records.iter().all(|r| r.state == JobState::Done));
    let long = &records[1];
    assert!(
        long.resizes > 0 && long.final_share == 2,
        "long job never absorbed the freed worker: resizes {}, final share {}",
        long.resizes,
        long.final_share
    );
    assert_bitwise(
        "long",
        long.output.as_ref().unwrap(),
        &refs.join("long.ckpt"),
    );
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&refs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arrival order, priorities, and the worker budget never leak into
    /// any job's output: every completed checkpoint matches its
    /// standalone reference byte-for-byte.
    #[test]
    fn random_arrival_order_and_budget_bitwise_equal(
        perm in 0usize..24,
        budget in 1usize..=8,
        prios in proptest::collection::vec(-2i64..=2, 4),
    ) {
        let steps = [4usize, 6, 8, 10];
        // perm indexes the 4! arrival orders via the Lehmer code.
        let mut pool: Vec<usize> = (0..4).collect();
        let (mut order, mut code) = (Vec::new(), perm);
        for radix in (1..=4).rev() {
            order.push(pool.remove(code % radix));
            code /= radix;
        }
        let refs = tmp_dir("prop_refs");
        for (i, &st) in steps.iter().enumerate() {
            standalone_ckpt(&sod_path(), st, &refs.join(format!("j{i}.ckpt")));
        }
        let out = tmp_dir("prop");
        let mut s = sched(budget, out.clone());
        let mut ids = [0u64; 4];
        for (slot, &job) in order.iter().enumerate() {
            ids[job] = s.submit(spec(&format!("j{job}"), steps[job], prios[slot])).unwrap();
        }
        let records = s.run();
        for job in 0..4 {
            let r = &records[ids[job] as usize];
            prop_assert_eq!(r.state, JobState::Done, "j{} {:?}", job, r.reason.clone());
            prop_assert_eq!(r.steps, steps[job] as u64);
            assert_bitwise(
                &format!("j{job}"),
                r.output.as_ref().unwrap(),
                &refs.join(format!("j{job}.ckpt")),
            );
        }
        let _ = fs::remove_dir_all(&out);
        let _ = fs::remove_dir_all(&refs);
    }
}

/// An injected NaN fails exactly one job, through the solver's own
/// numerical-health watchdog, without touching its siblings.
#[test]
fn injected_fault_fails_alone() {
    let refs = tmp_dir("fault_refs");
    standalone_ckpt(&sod_path(), 12, &refs.join("a.ckpt"));
    standalone_ckpt(&sod_path(), 8, &refs.join("b.ckpt"));
    let out = tmp_dir("fault");
    let mut s = sched(2, out.clone());
    s.submit(spec("a", 12, 0)).unwrap();
    let mut faulty = spec("faulty", 12, 0);
    faulty.fault_at_step = Some(4);
    s.submit(faulty).unwrap();
    s.submit(spec("b", 8, 0)).unwrap();
    let records = s.run();

    assert_eq!(records[1].state, JobState::Failed);
    let reason = records[1].reason.as_deref().unwrap();
    assert!(
        reason.contains("not_finite"),
        "fault must fail through the watchdog, got: {reason}"
    );
    assert!(records[1].output.is_none(), "failed jobs write no output");

    for (idx, name, steps) in [(0usize, "a", 12u64), (2, "b", 8)] {
        let r = &records[idx];
        assert_eq!(r.state, JobState::Done, "{name}: {:?}", r.reason);
        assert_eq!(r.steps, steps);
        assert_bitwise(
            name,
            r.output.as_ref().unwrap(),
            &refs.join(format!("{name}.ckpt")),
        );
    }
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&refs);
}

/// Cooperative cancellation stops exactly at the requested step
/// boundary, and the partial result is still the deterministic prefix of
/// the standalone run.
#[test]
fn cancellation_stops_at_the_step_boundary() {
    let refs = tmp_dir("cancel_refs");
    standalone_ckpt(&sod_path(), 5, &refs.join("prefix.ckpt"));
    let out = tmp_dir("cancel");
    let mut s = sched(1, out.clone());
    let mut c = spec("cancelme", 40, 0);
    c.cancel_at_step = Some(5);
    s.submit(c).unwrap();
    let records = s.run();
    assert_eq!(records[0].state, JobState::Cancelled);
    assert_eq!(records[0].steps, 5);
    assert_bitwise(
        "cancelme",
        records[0].output.as_ref().unwrap(),
        &refs.join("prefix.ckpt"),
    );
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&refs);
}

/// An already-expired deadline times the job out at its first step
/// boundary, before any stepping.
#[test]
fn expired_deadline_times_out_without_stepping() {
    let out = tmp_dir("deadline");
    let mut s = sched(1, out.clone());
    let mut d = spec("late", 40, 0);
    d.deadline_ms = Some(0);
    s.submit(d).unwrap();
    let records = s.run();
    assert_eq!(records[0].state, JobState::TimedOut);
    assert_eq!(records[0].steps, 0);
    let _ = fs::remove_dir_all(&out);
}

/// The bounded admission queue pushes back with a typed error instead of
/// growing without limit, and invalid jobs are rejected at submit time —
/// not discovered mid-ensemble.
#[test]
fn admission_control_is_typed() {
    let out = tmp_dir("admission");
    let mut s = Scheduler::new(SchedConfig {
        budget: 1,
        queue_cap: 2,
        aging_rounds: 2,
        out_dir: out.clone(),
        write_checkpoints: false,
    });
    s.submit(spec("a", 2, 0)).unwrap();
    s.submit(spec("b", 2, 0)).unwrap();
    match s.submit(spec("c", 2, 0)) {
        Err(SchedError::QueueFull { cap }) => assert_eq!(cap, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }

    let missing = JobSpec::new(out.join("no_such_case.json"));
    assert!(matches!(
        s.submit(missing),
        Err(SchedError::Rejected { .. })
    ));

    // A multi-rank case is valid for `mfc-run` but not for the
    // in-process serial-rank ensemble engine.
    let multirank = out.join("multirank.json");
    let text = fs::read_to_string(sod_path())
        .unwrap()
        .replace("\"ranks\": 1", "\"ranks\": 2");
    fs::write(&multirank, text).unwrap();
    assert!(matches!(
        s.submit(JobSpec::new(multirank)),
        Err(SchedError::Rejected { .. })
    ));
    let _ = fs::remove_dir_all(&out);
}

/// The JSONL ledger round-trips: one parseable record per line, in
/// submission order, with the terminal accounting filled in.
#[test]
fn ledger_roundtrips_as_jsonl() {
    let out = tmp_dir("ledger");
    let mut s = sched(2, out.clone());
    s.submit(spec("a", 4, 1)).unwrap();
    s.submit(spec("b", 2, 0)).unwrap();
    let records = s.run();
    let path = out.join("ledger.jsonl");
    mfc_sched::write_ledger(&path, &records).unwrap();
    let text = fs::read_to_string(&path).unwrap();
    let parsed: Vec<mfc_sched::JobRecord> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(parsed.len(), 2);
    for (i, r) in parsed.iter().enumerate() {
        assert_eq!(r.id, i as u64);
        assert!(r.state.is_terminal());
        assert!(r.wall_ms >= r.cpu_ms, "turnaround includes service time");
        assert!(r.worker_seconds > 0.0);
    }
    let _ = fs::remove_dir_all(&out);
}
