//! Integration tests for the immersed boundary method and the azimuthal
//! filter working inside full solver runs.

use mfc::core::bc::{BcKind, BcSpec};
use mfc::core::filter::apply_azimuthal_filter;
use mfc::core::fluid::Fluid;
use mfc::core::ibm::{Body, Circle, GhostCellIbm, NacaAirfoil};
use mfc::fft::LowpassPlan;
use mfc::{presets, CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

#[test]
fn flow_over_cylinder_stays_stable_and_decelerates_at_body() {
    let n = 48;
    let u_inf = 80.0;
    let case = presets::uniform_flow(2, [n, n, 1], [u_inf, 0.0, 0.0])
        .bc(BcSpec::all(BcKind::Transmissive));
    let ibm = GhostCellIbm::new(Box::new(Circle {
        center: [0.5, 0.5],
        radius: 0.12,
    }));
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial()).with_body(ibm);
    solver.run_steps(60).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    // Everything finite and positive.
    for j in 0..n {
        for i in 0..n {
            let p = prim.get(i + ng, j + ng, 0, eq.energy());
            assert!(p.is_finite() && p > 0.0, "p[{i},{j}] = {p}");
        }
    }
    // Flow decelerates just upstream of the cylinder.
    let iu = (0.34 * n as f64) as usize + ng; // x ~ 0.35, upstream of 0.38
    let jm = n / 2 + ng;
    let u_body = prim.get(iu, jm, 0, eq.mom(0));
    assert!(u_body < 0.85 * u_inf, "u at body = {u_body}");
    // Far corner stays near free stream.
    let u_far = prim.get(2 + ng, (n - 3) + ng, 0, eq.mom(0));
    assert!((u_far - u_inf).abs() < 0.2 * u_inf, "far field u = {u_far}");
}

#[test]
fn airfoil_at_aoa_deflects_flow_asymmetrically() {
    let n = 64;
    let case = presets::uniform_flow(2, [n, n, 1], [100.0, 0.0, 0.0])
        .extent([-1.0, -1.0, 0.0], [1.0, 1.0, 1.0])
        .bc(BcSpec::all(BcKind::Transmissive));
    let foil = NacaAirfoil::naca2412([-0.4, 0.0], 0.8);
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial())
        .with_body(GhostCellIbm::new(Box::new(foil)));
    solver.run_steps(50).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    // At 15° nose-up the flow acquires vertical velocity near the foil;
    // compare |v| near the body vs the inflow edge.
    let mut v_near = 0.0f64;
    for j in 0..n {
        for i in 0..n {
            let x = -1.0 + 2.0 * (i as f64 + 0.5) / n as f64;
            let y = -1.0 + 2.0 * (j as f64 + 0.5) / n as f64;
            if (0.0..0.6).contains(&x) && y.abs() < 0.4 {
                v_near = v_near.max(prim.get(i + ng, j + ng, 0, eq.mom(1)).abs());
            }
        }
    }
    let v_inflow = prim.get(ng, n / 2 + ng, 0, eq.mom(1)).abs();
    assert!(v_near > 5.0, "no flow deflection: {v_near}");
    assert!(v_near > 5.0 * v_inflow.max(0.1));
}

#[test]
fn solid_interior_velocity_is_controlled() {
    // Deep solid cells are frozen to zero velocity each stage.
    let case = presets::uniform_flow(2, [40, 40, 1], [60.0, 0.0, 0.0]);
    let body = Circle {
        center: [0.5, 0.5],
        radius: 0.2,
    };
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial())
        .with_body(GhostCellIbm::new(Box::new(body)));
    solver.run_steps(20).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    // Center of the body (x = y = 0.5 → cell 20).
    let u_center = prim.get(20 + ng, 20 + ng, 0, eq.mom(0)).abs();
    assert!(u_center < 30.0, "deep solid velocity {u_center}");
}

#[test]
fn azimuthal_filter_inside_a_3d_run() {
    // 3-D box with a high azimuthal mode: filtering each step must keep
    // the inner rings smooth while the run stays conservative-stable.
    let n = [8usize, 8, 16];
    let case = CaseBuilder::new(vec![Fluid::air()], 3, n)
        .bc(BcSpec::periodic())
        .patch(
            Region::All,
            PatchState::single(1.2, [10.0, 0.0, 0.0], 1.0e5),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    let plan = LowpassPlan::new(n[1], n[2]);

    // Inject azimuthal noise into the density, then filter.
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    {
        let q = solver_state_mut(&mut solver);
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    let noisy = 1.2 * (1.0 + 0.01 * ((7 * k) as f64).sin());
                    q.set(i + ng, j + ng, k + ng, eq.cont(0), noisy);
                }
            }
        }
    }
    let ctx = Context::serial();
    apply_azimuthal_filter(&ctx, &plan, solver_state_mut(&mut solver));
    // Inner ring (j = 0): high-mode content mostly gone.
    let q = solver.state();
    let mean: f64 = (0..n[2])
        .map(|k| q.get(ng, ng, k + ng, eq.cont(0)))
        .sum::<f64>()
        / n[2] as f64;
    let dev: f64 = (0..n[2])
        .map(|k| (q.get(ng, ng, k + ng, eq.cont(0)) - mean).abs())
        .fold(0.0, f64::max);
    assert!(dev < 0.01 * 1.2 * 0.5, "residual azimuthal ripple {dev}");
}

fn solver_state_mut(solver: &mut Solver) -> &mut mfc::core::state::StateField {
    solver.state_mut()
}

#[test]
fn sdf_normals_point_outward() {
    let c = Circle {
        center: [0.3, -0.2],
        radius: 0.5,
    };
    for (x, y) in [(1.0, -0.2), (0.3, 0.8), (-0.5, -0.2)] {
        let n = c.normal([x, y, 0.0]);
        // Moving along the normal increases the SDF.
        let step = 1e-3;
        let before = c.sdf([x, y, 0.0]);
        let after = c.sdf([x + step * n[0], y + step * n[1], 0.0]);
        assert!(after > before);
    }
}
