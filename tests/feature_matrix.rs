//! Cross-feature integration: combinations the individual suites don't
//! cover (viscous + distributed, WENO-Z end-to-end, stretched grids,
//! mixed BCs, RK variants).

use mfc::core::bc::{BcKind, BcSpec};
use mfc::core::fluid::Fluid;
use mfc::core::par::{run_distributed, run_single};
use mfc::core::rhs::{PackStrategy, RhsConfig, RhsMode};
use mfc::core::riemann::{ExactRiemann, PrimSide, RiemannSolver};
use mfc::core::time::TimeScheme;
use mfc::core::weno::WenoOrder;
use mfc::mpsim::Staging;
use mfc::{presets, CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

#[test]
fn viscous_distributed_matches_serial_bitwise() {
    let case = CaseBuilder::new(vec![Fluid::air().with_viscosity(0.05)], 2, [16, 16, 1])
        .bc(BcSpec::periodic())
        .patch(
            Region::All,
            PatchState::single(1.2, [20.0, -5.0, 0.0], 1.0e5),
        )
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.2,
            },
            PatchState::single(1.5, [20.0, -5.0, 0.0], 1.2e5),
        );
    let cfg = SolverConfig::default();
    let serial = run_single(&case, cfg, 4);
    for ranks in [2usize, 4] {
        let (dist, _) = run_distributed(&case, cfg, ranks, 4, Staging::DeviceDirect).unwrap();
        assert_eq!(dist.max_abs_diff(&serial), 0.0, "{ranks} ranks");
    }
}

#[test]
fn wenoz_solves_sod_accurately() {
    let case = presets::sod(200);
    let cfg = SolverConfig {
        rhs: RhsConfig {
            order: WenoOrder::Weno5Z,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut solver = Solver::new(&case, cfg, Context::serial());
    solver.run_until(0.15, 100_000).unwrap();
    let air = Fluid::air();
    let exact = ExactRiemann::solve(
        PrimSide {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
            fluid: air,
        },
        PrimSide {
            rho: 0.125,
            u: 0.0,
            p: 0.1,
            fluid: air,
        },
    );
    let prim = solver.primitives();
    let eq = case.eq();
    let t = solver.time();
    let mut l1 = 0.0;
    for i in 0..200 {
        let x = (i as f64 + 0.5) / 200.0;
        let (rho_ex, _, _) = exact.sample((x - 0.5) / t);
        l1 += (prim.get(i + 3, 0, 0, eq.cont(0)) - rho_ex).abs();
    }
    l1 /= 200.0;
    assert!(l1 < 0.015, "WENO-Z Sod L1 error {l1}");
}

#[test]
fn wenoz_distributed_matches_serial() {
    let case = presets::two_phase_benchmark(2, [16, 16, 1]);
    let cfg = SolverConfig {
        rhs: RhsConfig {
            order: WenoOrder::Weno5Z,
            ..Default::default()
        },
        ..Default::default()
    };
    let serial = run_single(&case, cfg, 3);
    let (dist, _) = run_distributed(&case, cfg, 4, 3, Staging::DeviceDirect).unwrap();
    assert_eq!(dist.max_abs_diff(&serial), 0.0);
}

#[test]
fn shock_on_stretched_grid_stays_stable_and_conservative_interiorwise() {
    // Sod tube on a grid refined around the initial diaphragm.
    use mfc::core::bc::apply_bcs;
    use mfc::core::domain::Domain;
    use mfc::core::grid::{Grid, Grid1D};
    use mfc::core::rhs::{compute_rhs, RhsWorkspace};
    use mfc::core::state::StateField;
    use mfc::core::time::{rk_step, RkWorkspace};

    let n = 128;
    let eq = mfc::core::eqidx::EqIdx::new(1, 1);
    let dom = Domain::new([n, 1, 1], 3, eq);
    let grid = Grid::new_1d(Grid1D::stretched(n, 0.0, 1.0, 4.0, 0.5));
    let fluids = [Fluid::air()];
    let ctx = Context::serial();

    let mut prim = StateField::zeros(dom);
    for i in 0..dom.ext(0) {
        let gi = i as isize - 3;
        let x = if gi < 0 {
            0.0
        } else if gi as usize >= n {
            1.0
        } else {
            grid.x.centers()[gi as usize]
        };
        let (rho, p) = if x < 0.5 { (1.0, 1.0) } else { (0.125, 0.1) };
        prim.set(i, 0, 0, eq.cont(0), rho);
        prim.set(i, 0, 0, eq.energy(), p);
    }
    let mut q = StateField::zeros(dom);
    mfc::core::state::prim_to_cons_field(&ctx, &fluids, &prim, &mut q);
    let mut ws = RhsWorkspace::new(dom, &grid);
    let mut rk = RkWorkspace::new(&q);
    let bc = BcSpec::transmissive();
    let widths = [
        grid.x.widths_with_ghosts(3),
        grid.y.widths_with_ghosts(0),
        grid.z.widths_with_ghosts(0),
    ];
    let rhs_cfg = RhsConfig::default();
    for _ in 0..100 {
        mfc::core::state::cons_to_prim_field(&ctx, &fluids, &q, &mut ws.prim);
        let dt = mfc::core::cfl::max_dt(
            &ctx,
            &fluids,
            &ws.prim,
            [&widths[0], &widths[1], &widths[2]],
            0.5,
        );
        rk_step(TimeScheme::Rk3, dt, &mut q, &mut rk, |q, rhs| {
            apply_bcs(&ctx, q, &bc, [(false, false); 3]);
            compute_rhs(&ctx, &rhs_cfg, &fluids, q, &mut ws, rhs);
        });
    }
    // Positivity + bounded solution everywhere.
    let mut back = StateField::zeros(dom);
    mfc::core::state::cons_to_prim_field(&ctx, &fluids, &q, &mut back);
    for i in 0..n {
        let rho = back.get(i + 3, 0, 0, eq.cont(0));
        let p = back.get(i + 3, 0, 0, eq.energy());
        assert!(rho > 0.0 && rho < 1.2, "rho[{i}] = {rho}");
        assert!(p > 0.0 && p < 1.3, "p[{i}] = {p}");
    }
}

#[test]
fn mixed_bc_axes_work_together() {
    // Periodic in x, reflective in y: a channel.
    let case = CaseBuilder::new(vec![Fluid::air()], 2, [24, 16, 1])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::Reflective, BcKind::Transmissive],
            hi: [BcKind::Periodic, BcKind::Reflective, BcKind::Transmissive],
        })
        .patch(
            Region::All,
            PatchState::single(1.2, [80.0, 0.0, 0.0], 1.0e5),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    let c0 = solver.conservation();
    solver.run_steps(20).unwrap();
    let c1 = solver.conservation();
    let eq = case.eq();
    // Mass and energy conserved; the uniform axial flow is undisturbed.
    assert!((c1[eq.cont(0)] - c0[eq.cont(0)]).abs() / c0[eq.cont(0)] < 1e-11);
    assert!((c1[eq.energy()] - c0[eq.energy()]).abs() / c0[eq.energy()] < 1e-11);
    let prim = solver.primitives();
    for j in 0..16 {
        let v = prim.get(12 + 3, j + 3, 0, eq.mom(1));
        assert!(v.abs() < 1e-9, "wall-normal velocity appeared: {v}");
    }
}

#[test]
fn every_time_scheme_solves_sod() {
    for scheme in [TimeScheme::Rk1, TimeScheme::Rk2, TimeScheme::Rk3] {
        let case = presets::sod(100);
        let cfg = SolverConfig {
            scheme,
            // RK1 with WENO5 is only linearly stable at small CFL.
            dt: mfc::DtMode::Cfl(if scheme == TimeScheme::Rk1 { 0.2 } else { 0.5 }),
            ..Default::default()
        };
        let mut solver = Solver::new(&case, cfg, Context::serial());
        solver.run_until(0.1, 100_000).unwrap();
        let prim = solver.primitives();
        let eq = case.eq();
        for i in 0..100 {
            let rho = prim.get(i + 3, 0, 0, eq.cont(0));
            assert!(rho > 0.0 && rho < 1.2, "{scheme:?}: rho[{i}] = {rho}");
        }
    }
}

#[test]
fn pack_strategies_identical_in_distributed_runs() {
    let case = presets::two_phase_benchmark(3, [8, 8, 8]);
    let mut fields = Vec::new();
    for pack in [PackStrategy::CollapsedLoops, PackStrategy::Geam] {
        let cfg = SolverConfig {
            rhs: RhsConfig {
                pack,
                ..Default::default()
            },
            ..Default::default()
        };
        let (f, _) = run_distributed(&case, cfg, 2, 2, Staging::DeviceDirect).unwrap();
        fields.push(f);
    }
    assert_eq!(fields[0].max_abs_diff(&fields[1]), 0.0);
}

#[test]
fn rhs_modes_identical_across_schemes_and_orders() {
    // The sweep-engine axis composes with time schemes and orders: every
    // combination must agree bitwise between staged and fused.
    let case = presets::two_phase_benchmark(2, [16, 16, 1]);
    for scheme in [TimeScheme::Rk2, TimeScheme::Rk3] {
        for order in [WenoOrder::Weno3, WenoOrder::Weno5, WenoOrder::Weno5Z] {
            let mut fields = Vec::new();
            for mode in [RhsMode::Staged, RhsMode::Fused] {
                let cfg = SolverConfig {
                    rhs: RhsConfig {
                        order,
                        mode,
                        ..Default::default()
                    },
                    scheme,
                    ..Default::default()
                };
                fields.push(run_single(&case, cfg, 3));
            }
            assert_eq!(
                fields[0].max_abs_diff(&fields[1]),
                0.0,
                "{scheme:?} {order:?}"
            );
        }
    }
}

#[test]
fn rhs_modes_identical_with_viscosity_and_mixed_bcs() {
    // Fused sweeps feed the same divu/rhs the shared viscous and source
    // stages consume; mixed physical BCs exercise the ghost layers the
    // fused gather must still read.
    let case = CaseBuilder::new(vec![Fluid::air().with_viscosity(0.05)], 2, [20, 12, 1])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::Reflective, BcKind::Transmissive],
            hi: [BcKind::Periodic, BcKind::Reflective, BcKind::Transmissive],
        })
        .patch(
            Region::All,
            PatchState::single(1.2, [30.0, 0.0, 0.0], 1.0e5),
        )
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.2,
            },
            PatchState::single(1.5, [30.0, 0.0, 0.0], 1.2e5),
        );
    let mut fields = Vec::new();
    for mode in [RhsMode::Staged, RhsMode::Fused] {
        let cfg = SolverConfig {
            rhs: RhsConfig {
                mode,
                ..Default::default()
            },
            ..Default::default()
        };
        fields.push(run_single(&case, cfg, 4));
    }
    assert_eq!(fields[0].max_abs_diff(&fields[1]), 0.0);
}

#[test]
fn overlapped_exchange_composes_with_orders_staging_and_viscosity() {
    // The overlap axis composes with the rest of the feature matrix: both
    // RHS engines, both WENO-5 flavors, both staging modes, and a viscous
    // mixed-BC case must all agree bitwise with the serial answer when
    // the exchange hides behind the interior sweeps.
    use mfc::core::par::{run_distributed_with_mode, ExchangeMode};
    let case = presets::two_phase_benchmark(2, [20, 20, 1]);
    for mode in [RhsMode::Staged, RhsMode::Fused] {
        for order in [WenoOrder::Weno5, WenoOrder::Weno5Z] {
            for staging in [Staging::DeviceDirect, Staging::HostStaged] {
                let cfg = SolverConfig {
                    rhs: RhsConfig {
                        order,
                        mode,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let serial = run_single(&case, cfg, 3);
                let (dist, _) =
                    run_distributed_with_mode(&case, cfg, 4, 3, staging, ExchangeMode::Overlapped)
                        .unwrap();
                assert_eq!(
                    dist.max_abs_diff(&serial),
                    0.0,
                    "{mode:?} {order:?} {staging:?}"
                );
            }
        }
    }
    // Viscous + mixed physical BCs: shells see reflective/transmissive
    // ghosts, the interior never does.
    let viscous = CaseBuilder::new(vec![Fluid::air().with_viscosity(0.05)], 2, [20, 12, 1])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::Reflective, BcKind::Transmissive],
            hi: [BcKind::Periodic, BcKind::Reflective, BcKind::Transmissive],
        })
        .patch(
            Region::All,
            PatchState::single(1.2, [30.0, 0.0, 0.0], 1.0e5),
        )
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.2,
            },
            PatchState::single(1.5, [30.0, 0.0, 0.0], 1.2e5),
        );
    let cfg = SolverConfig::default();
    let serial = run_single(&viscous, cfg, 4);
    let (dist, _) = run_distributed_with_mode(
        &viscous,
        cfg,
        4,
        4,
        Staging::DeviceDirect,
        ExchangeMode::Overlapped,
    )
    .unwrap();
    assert_eq!(dist.max_abs_diff(&serial), 0.0, "viscous mixed-BC overlap");
}

#[test]
fn worker_gangs_compose_with_orders_schemes_and_modes() {
    // The worker-count axis composes with the rest of the matrix: every
    // (order, mode) pair at 3 workers reproduces its serial answer
    // bitwise, RK2 and RK3 alike.
    let case = presets::two_phase_benchmark(2, [16, 16, 1]);
    for scheme in [TimeScheme::Rk2, TimeScheme::Rk3] {
        for order in [WenoOrder::Weno3, WenoOrder::Weno5Z] {
            for mode in [RhsMode::Staged, RhsMode::Fused] {
                let mut cfg = SolverConfig {
                    rhs: RhsConfig {
                        order,
                        mode,
                        ..Default::default()
                    },
                    scheme,
                    ..Default::default()
                };
                let serial = run_single(&case, cfg, 3);
                cfg.workers = 3;
                let par = run_single(&case, cfg, 3);
                assert_eq!(
                    par.max_abs_diff(&serial),
                    0.0,
                    "{scheme:?} {order:?} {mode:?}"
                );
            }
        }
    }
}

#[test]
fn worker_gangs_compose_with_viscous_overlapped_exchange() {
    // The heaviest composition: viscous stresses + mixed physical BCs +
    // 4 simulated ranks + overlapped halo exchange + 4 worker gangs per
    // rank, against the 1-worker serial answer.
    use mfc::core::par::{run_distributed_with_mode, ExchangeMode};
    let case = CaseBuilder::new(vec![Fluid::air().with_viscosity(0.05)], 2, [20, 12, 1])
        .bc(BcSpec {
            lo: [BcKind::Periodic, BcKind::Reflective, BcKind::Transmissive],
            hi: [BcKind::Periodic, BcKind::Reflective, BcKind::Transmissive],
        })
        .patch(
            Region::All,
            PatchState::single(1.2, [30.0, 0.0, 0.0], 1.0e5),
        )
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.2,
            },
            PatchState::single(1.5, [30.0, 0.0, 0.0], 1.2e5),
        );
    let mut cfg = SolverConfig::default();
    let serial = run_single(&case, cfg, 4);
    cfg.workers = 4;
    let (dist, _) = run_distributed_with_mode(
        &case,
        cfg,
        4,
        4,
        Staging::DeviceDirect,
        ExchangeMode::Overlapped,
    )
    .unwrap();
    assert_eq!(
        dist.max_abs_diff(&serial),
        0.0,
        "viscous mixed-BC overlap at 4 ranks x 4 workers"
    );
}

#[test]
fn restart_continues_bitwise() {
    use mfc::core::restart::{load_checkpoint, save_checkpoint};
    let case = presets::two_phase_benchmark(2, [16, 16, 1]);
    let cfg = SolverConfig::default();

    // Reference: 15 uninterrupted steps.
    let mut reference = Solver::new(&case, cfg, Context::serial());
    reference.run_steps(15).unwrap();

    // Interrupted: 10 steps, checkpoint, new solver, restore, 5 more.
    let mut first = Solver::new(&case, cfg, Context::serial());
    first.run_steps(10).unwrap();
    let path = std::env::temp_dir().join(format!("mfc_restart_{}.bin", std::process::id()));
    save_checkpoint(&path, first.state(), first.time(), first.steps()).unwrap();
    drop(first);

    let (header, q) = load_checkpoint(&path).unwrap();
    let mut resumed = Solver::new(&case, cfg, Context::serial());
    resumed.restore(q, header.t, header.steps);
    resumed.run_steps(5).unwrap();
    std::fs::remove_file(&path).unwrap();

    assert_eq!(resumed.steps(), 15);
    assert_eq!(resumed.time().to_bits(), reference.time().to_bits());
    assert_eq!(resumed.state().as_slice(), reference.state().as_slice());
}

#[test]
fn rusanov_runs_the_two_phase_benchmark() {
    // Rusanov diffuses alpha and the partial densities consistently, so
    // it survives (diffusively) on multiphase problems.
    let case = presets::two_phase_benchmark(2, [16, 16, 1]);
    let cfg = SolverConfig {
        rhs: RhsConfig {
            solver: RiemannSolver::Rusanov,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut solver = Solver::new(&case, cfg, Context::serial());
    solver.run_steps(10).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let dom = *solver.domain();
    for (i, j, k) in dom.interior() {
        let p = prim.get(i, j, k, eq.energy());
        assert!(p.is_finite() && p > 0.0, "Rusanov: p = {p}");
    }
}

#[test]
fn hll_runs_single_fluid_flows() {
    // HLL averages the contact away, so the mixture EOS coefficients and
    // the partial densities drift apart at material interfaces — the
    // textbook reason diffuse-interface codes need HLLC. As a baseline it
    // is validated on single-fluid problems.
    let case = CaseBuilder::new(vec![Fluid::air()], 2, [16, 16, 1])
        .bc(BcSpec::periodic())
        .smear(1.0)
        .patch(
            Region::All,
            PatchState::single(1.2, [30.0, 10.0, 0.0], 1.0e5),
        )
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.2,
            },
            PatchState::single(0.6, [30.0, 10.0, 0.0], 1.0e5),
        );
    let cfg = SolverConfig {
        rhs: RhsConfig {
            solver: RiemannSolver::Hll,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut solver = Solver::new(&case, cfg, Context::serial());
    solver.run_steps(15).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let dom = *solver.domain();
    for (i, j, k) in dom.interior() {
        let p = prim.get(i, j, k, eq.energy());
        assert!(p.is_finite() && p > 0.0, "HLL: p = {p}");
    }
}
