//! Golden-file regression harness for the shipped case files.
//!
//! Every case under `cases/` runs for a short, fixed number of steps;
//! after each step the harness records (a) the interior sum of every
//! conserved quantity and (b) a probe trace at the domain-center cell.
//! Both are stored as **bit-exact** hex-encoded `f64`s in
//! `tests/golden/<case>.json`, so the comparison catches a single-ulp
//! drift anywhere in the numerics.
//!
//! To regenerate after an intentional physics change:
//!
//! ```text
//! MFC_BLESS=1 cargo test --test golden
//! ```

use mfc_acc::Context;
use mfc_cli::CaseFile;
use mfc_core::solver::Solver;
use serde::{Deserialize, Serialize};

fn cases_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases")
}

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// One case's regression record. All floats are hex-encoded IEEE-754
/// bits (`{:016x}` of `f64::to_bits`), so the file is exact and diffs
/// are meaningful.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenRecord {
    case: String,
    steps: usize,
    /// Per step, per equation: interior sum of the conserved variable.
    sums: Vec<Vec<String>>,
    /// Per step, per equation: the state at the domain-center cell.
    probes: Vec<Vec<String>>,
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn unhex(s: &str) -> f64 {
    f64::from_bits(u64::from_str_radix(s, 16).expect("bad hex f64 in golden file"))
}

/// Distance in representable values between two floats (same sign
/// assumed, which holds for matching physics); 0 means bitwise equal.
fn ulp_distance(a: f64, b: f64) -> u64 {
    (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
}

/// Run `name` serially for `steps` steps, recording sums and probes.
fn record_case(name: &str, steps: usize) -> GoldenRecord {
    let cf = CaseFile::from_path(&cases_dir().join(format!("{name}.json")))
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let case = cf.to_case().unwrap();
    let cfg = cf.numerics.to_solver_config().unwrap();
    let mut solver = Solver::new(&case, cfg, Context::serial());
    let dom = *solver.domain();
    let neq = dom.eq.neq();
    let center = (
        dom.pad(0) + dom.n[0] / 2,
        dom.pad(1) + dom.n[1] / 2,
        dom.pad(2) + dom.n[2] / 2,
    );
    let mut sums = Vec::with_capacity(steps);
    let mut probes = Vec::with_capacity(steps);
    for _ in 0..steps {
        solver.step().unwrap();
        let q = solver.state();
        let mut step_sums = Vec::with_capacity(neq);
        let mut step_probe = Vec::with_capacity(neq);
        for e in 0..neq {
            // Fixed iteration order => bitwise-reproducible sum.
            let mut acc = 0.0f64;
            for (i, j, k) in dom.interior() {
                acc += q.get(i, j, k, e);
            }
            step_sums.push(hex(acc));
            step_probe.push(hex(q.get(center.0, center.1, center.2, e)));
        }
        sums.push(step_sums);
        probes.push(step_probe);
    }
    GoldenRecord {
        case: name.to_string(),
        steps,
        sums,
        probes,
    }
}

/// Bit-exact comparison; reports every mismatch with its ulp distance.
fn compare(golden: &GoldenRecord, actual: &GoldenRecord) -> Result<(), String> {
    if golden.steps != actual.steps {
        return Err(format!(
            "step count changed: golden {} vs actual {}",
            golden.steps, actual.steps
        ));
    }
    let mut report = String::new();
    for (kind, g, a) in [
        ("sum", &golden.sums, &actual.sums),
        ("probe", &golden.probes, &actual.probes),
    ] {
        for (step, (gs, as_)) in g.iter().zip(a).enumerate() {
            if gs.len() != as_.len() {
                return Err(format!(
                    "{kind} step {step}: equation count changed ({} vs {})",
                    gs.len(),
                    as_.len()
                ));
            }
            for (e, (gh, ah)) in gs.iter().zip(as_).enumerate() {
                if gh != ah {
                    let (gv, av) = (unhex(gh), unhex(ah));
                    report.push_str(&format!(
                        "{kind} step {step} eq {e}: golden {gv:e} ({gh}) vs actual {av:e} ({ah}), {} ulp\n",
                        ulp_distance(gv, av)
                    ));
                }
            }
        }
    }
    if report.is_empty() {
        Ok(())
    } else {
        Err(report)
    }
}

/// Run one case against its committed golden, or regenerate it when
/// `MFC_BLESS=1` is set.
fn check(name: &str, steps: usize) {
    let actual = record_case(name, steps);
    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var("MFC_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden_dir()).unwrap();
        let text = serde_json::to_string_pretty(&actual).unwrap();
        std::fs::write(&path, text + "\n").unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {path:?} ({e}); generate with MFC_BLESS=1 cargo test --test golden")
    });
    let golden: GoldenRecord = serde_json::from_str(&text).unwrap();
    if let Err(diff) = compare(&golden, &actual) {
        panic!(
            "{name} drifted from its golden record:\n{diff}\
             If the change is intentional, regenerate with \
             MFC_BLESS=1 cargo test --test golden"
        );
    }
}

#[test]
fn golden_sod() {
    check("sod", 12);
}

#[test]
fn golden_taylor_green() {
    check("taylor_green", 6);
}

#[test]
fn golden_shock_droplet_2d() {
    check("shock_droplet_2d", 5);
}

#[test]
fn golden_bubble_cloud_2d() {
    check("bubble_cloud_2d", 5);
}

#[test]
fn comparator_rejects_one_ulp_perturbation() {
    let golden = GoldenRecord {
        case: "synthetic".into(),
        steps: 1,
        sums: vec![vec![hex(1.0), hex(-2.5)]],
        probes: vec![vec![hex(0.1), hex(3.75e5)]],
    };
    assert!(compare(&golden, &golden.clone()).is_ok());
    let mut bumped = golden.clone();
    bumped.sums[0][1] = hex(f64::from_bits(unhex(&golden.sums[0][1]).to_bits() + 1));
    let err = compare(&golden, &bumped).unwrap_err();
    assert!(err.contains("1 ulp"), "{err}");
    let mut probe_bumped = golden.clone();
    probe_bumped.probes[0][0] = hex(f64::from_bits(unhex(&golden.probes[0][0]).to_bits() - 1));
    assert!(compare(&golden, &probe_bumped).is_err());
}

#[test]
fn golden_round_trips_through_json() {
    let rec = record_case("sod", 2);
    let text = serde_json::to_string(&rec).unwrap();
    let back: GoldenRecord = serde_json::from_str(&text).unwrap();
    assert_eq!(rec, back, "hex encoding must be lossless");
}
