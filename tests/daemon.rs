//! Daemon-mode suite for the `mfc-serve` scheduler: streaming admission
//! over TCP against a live event loop.
//!
//! The batch suite (`tests/ensemble.rs`) proves the closed system —
//! submit everything, run, drain. This suite proves the *open* system
//! the daemon adds on top, without weakening the core invariant:
//!
//! 1. Jobs streamed over TCP to a running daemon produce checkpoints
//!    **bitwise identical** to manifest mode and to a standalone serial
//!    run, at budgets {1, 2, 4} — arrival timing, elastic resizes, and
//!    the transport are all numerically invisible.
//! 2. Mid-run `submit` / `cancel` / `drain`: admission closes exactly
//!    once, queued work still completes, post-drain submissions fail
//!    typed, and the exit leaves zero queued/running jobs behind.
//! 3. `shutdown` cancels cooperatively at step boundaries and the
//!    ledger still holds one terminal record per job.
//! 4. Protocol robustness: malformed frames are typed error *responses*
//!    on a surviving connection; a client dying mid-frame is detected
//!    and contained, and the daemon keeps serving others.
//! 5. Satellite regressions: out-of-range priorities are rejected at
//!    admission (typed), and queue aging is starvation-free under a
//!    continuous stream of high-priority arrivals (property test).

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use proptest::prelude::*;
use serde_json::Value;

use mfc::core::restart::save_checkpoint;
use mfc::trace::Tracer;
use mfc::{Context, Solver};
use mfc_cli::CaseFile;
use mfc_sched::{
    AdmissionQueue, JobRecord, JobSpec, JobState, Request, SchedClient, SchedConfig, SchedError,
    Scheduler, Server, PRIORITY_LIMIT,
};

fn sod_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases/sod.json")
}

/// Fresh per-test scratch directory (tests in one binary run in
/// parallel, so the pid alone is not unique).
fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mfc_daemon_{}_{tag}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Standalone serial reference checkpoint, mirroring the scheduler's
/// stopping rule.
fn standalone_ckpt(steps: usize, out: &Path) {
    let cf = CaseFile::from_path(&sod_path()).unwrap();
    let case = cf.to_case().unwrap();
    let cfg = cf.numerics.to_solver_config().unwrap();
    let ctx = Context::with_workers(1).with_vector_width(cfg.vector_width);
    let mut solver = Solver::new(&case, cfg, ctx);
    let t_end = cf.run.t_end.unwrap_or(f64::INFINITY);
    while solver.time() < t_end && solver.steps() < steps as u64 {
        solver.step().unwrap();
    }
    save_checkpoint(out, solver.state(), solver.time(), solver.steps()).unwrap();
}

fn spec(name: &str, steps: usize, priority: i64) -> JobSpec {
    spec_for(&sod_path(), name, steps, priority)
}

fn spec_for(case: &Path, name: &str, steps: usize, priority: i64) -> JobSpec {
    let mut s = JobSpec::new(case);
    s.name = Some(name.to_string());
    s.priority = priority;
    s.max_steps = Some(steps);
    s
}

/// A deliberately slow variant of the Sod case (80× the cells, no
/// meaningful `t_end` cap) so mid-run tests can land commands while a
/// job is genuinely running — the shipped case finishes in
/// microseconds.
fn slow_case(dir: &Path) -> PathBuf {
    let case = r#"{
  "name": "sod_slow",
  "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
  "ndim": 1,
  "cells": [16000, 1, 1],
  "lo": [0.0, 0.0, 0.0],
  "hi": [1.0, 1.0, 1.0],
  "bc": "transmissive",
  "patches": [
    { "region": "all",
      "state": { "alpha": [1.0], "rho": [0.125], "vel": [0.0, 0.0, 0.0], "p": 0.1 } },
    { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
      "state": { "alpha": [1.0], "rho": [1.0], "vel": [0.0, 0.0, 0.0], "p": 1.0 } }
  ],
  "numerics": { "order": "weno5", "solver": "hllc", "pack": "tiled", "scheme": "rk3", "cfl": 0.5, "dt": null },
  "run": { "steps": 0, "t_end": 1.0e9, "ranks": 1 },
  "output": { "dir": "out/sod_slow", "vtk": false }
}"#;
    let path = dir.join("sod_slow.json");
    fs::write(&path, case).unwrap();
    path
}

fn config(budget: usize, out_dir: PathBuf) -> SchedConfig {
    SchedConfig {
        budget,
        queue_cap: 16,
        aging_rounds: 2,
        out_dir,
        write_checkpoints: true,
    }
}

/// An in-process daemon: scheduler loop on its own thread, real TCP
/// server in front of it, exactly as `mfc-serve --listen` wires them.
struct Daemon {
    addr: SocketAddr,
    loop_thread: JoinHandle<Vec<JobRecord>>,
}

impl Daemon {
    fn start(budget: usize, out_dir: PathBuf, tracer: Option<Arc<Tracer>>) -> Daemon {
        let (client, events) = SchedClient::pair();
        let tl = tracer.as_ref().map(|t| t.handle(0));
        let mut server = Server::bind("127.0.0.1:0", client.clone(), tl).unwrap();
        let addr = server.addr();
        let loop_thread = std::thread::spawn(move || {
            let mut sched = Scheduler::new(config(budget, out_dir));
            if let Some(t) = tracer {
                sched = sched.with_tracer(t);
            }
            let records = sched.serve(&client, events);
            server.stop();
            records
        });
        Daemon { addr, loop_thread }
    }

    /// Wait for the loop to exit (after a drain/shutdown command) and
    /// return the ledger.
    fn join(self) -> Vec<JobRecord> {
        self.loop_thread.join().unwrap()
    }
}

/// A test client speaking the wire protocol over real TCP.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// One raw line out, one response line back.
    fn roundtrip(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        assert!(resp.ends_with('\n'), "truncated response: {resp:?}");
        serde_json::from_str(&resp).unwrap()
    }

    fn request(&mut self, req: &Request) -> Value {
        self.roundtrip(&req.to_line())
    }

    /// Submit and return the accepted job id.
    fn submit(&mut self, job: JobSpec) -> u64 {
        let v = self.request(&Request::Submit(job));
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        v["id"].as_u64().unwrap()
    }

    fn metrics(&mut self) -> Value {
        let v = self.request(&Request::Metrics);
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        v["metrics"].clone()
    }
}

fn error_kind(v: &Value) -> String {
    assert_eq!(v["ok"].as_bool(), Some(false), "expected an error: {v:?}");
    v["error"]["kind"].as_str().unwrap().to_string()
}

fn assert_bitwise(job: &str, got: &Path, want: &Path) {
    assert!(
        fs::read(got).unwrap() == fs::read(want).unwrap(),
        "{job}: daemon checkpoint {} differs from reference {}",
        got.display(),
        want.display()
    );
}

/// Jobs streamed over TCP produce checkpoints byte-identical to the
/// same ensemble run from a manifest and to standalone serial runs, at
/// every budget — the transport and arrival timing are invisible.
#[test]
fn streamed_submission_matches_manifest_and_standalone_bitwise() {
    let jobs: [(&str, usize, i64); 4] =
        [("alpha", 12, 1), ("beta", 8, 0), ("gamma", 5, 2), ("delta", 3, 0)];
    let refs = tmp_dir("stream_refs");
    for (name, steps, _) in jobs {
        standalone_ckpt(steps, &refs.join(format!("{name}.ckpt")));
    }
    for budget in [1usize, 2, 4] {
        // Manifest mode: everything submitted up front, then run().
        let out_m = tmp_dir("stream_manifest");
        let mut sched = Scheduler::new(config(budget, out_m.clone()));
        for (name, steps, prio) in jobs {
            sched.submit(spec(name, steps, prio)).unwrap();
        }
        let manifest_records = sched.run();

        // Daemon mode: the same jobs arrive over TCP, one frame each.
        let out_d = tmp_dir("stream_daemon");
        let daemon = Daemon::start(budget, out_d.clone(), None);
        let mut client = Client::connect(daemon.addr);
        let mut ids = Vec::new();
        for (name, steps, prio) in jobs {
            ids.push(client.submit(spec(name, steps, prio)));
        }
        let v = client.request(&Request::Drain);
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        assert_eq!(v["draining"].as_bool(), Some(true), "{v:?}");
        let records = daemon.join();

        assert_eq!(records.len(), jobs.len(), "budget {budget}");
        for ((r, m), (name, steps, _)) in records.iter().zip(&manifest_records).zip(jobs) {
            assert_eq!(r.state, JobState::Done, "budget {budget}: {name} {:?}", r.reason);
            assert_eq!(r.steps, steps as u64, "budget {budget}: {name}");
            assert!(r.final_share >= 1, "budget {budget}: {name} ran with no worker");
            let got = r.output.as_ref().expect("done job writes a checkpoint");
            assert_bitwise(name, got, &refs.join(format!("{name}.ckpt")));
            assert_bitwise(name, got, m.output.as_ref().unwrap());
        }
        let _ = fs::remove_dir_all(&out_m);
        let _ = fs::remove_dir_all(&out_d);
    }
    let _ = fs::remove_dir_all(&refs);
}

/// The open system in motion: submissions and a cancellation land while
/// the ensemble runs, drain closes admission exactly once, queued work
/// still completes, and the exit leaves nothing queued or running.
#[test]
fn midrun_submit_cancel_drain() {
    let out = tmp_dir("midrun");
    let slow = slow_case(&out);
    let daemon = Daemon::start(1, out.clone(), None);
    let mut client = Client::connect(daemon.addr);

    // Budget 1: job 0 occupies the pool for a while (hundreds of
    // milliseconds), everything later queues behind it.
    let long = client.submit(spec_for(&slow, "long", 150, 0));
    let doomed = client.submit(spec_for(&slow, "doomed", 150, 0));
    let late = client.submit(spec("late", 4, 0));

    let m = client.metrics();
    assert_eq!(m["submitted"].as_u64(), Some(3));
    assert_eq!(m["budget"].as_u64(), Some(1));
    assert!(m["running"].as_u64().unwrap() <= 1);
    assert_eq!(m["draining"].as_bool(), Some(false));

    let v = client.request(&Request::Cancel(doomed));
    assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
    // Cancelling a job twice is typed, not fatal.
    let v = client.request(&Request::Cancel(doomed));
    assert!(
        error_kind(&v) == "terminal" || error_kind(&v) == "unknown_job",
        "{v:?}"
    );

    let v = client.request(&Request::Drain);
    assert_eq!(v["metrics"]["draining"].as_bool(), Some(true), "{v:?}");
    // Admission is closed: a post-drain submission fails typed while
    // the queued job still gets to run.
    let v = client.request(&Request::Submit(spec("rejected", 2, 0)));
    assert_eq!(error_kind(&v), "draining");

    let records = daemon.join();
    assert_eq!(records.len(), 3);
    assert_eq!(records[long as usize].state, JobState::Done);
    assert_eq!(records[doomed as usize].state, JobState::Cancelled);
    assert_eq!(records[late as usize].state, JobState::Done, "{:?}", records[late as usize].reason);
    assert_eq!(records[late as usize].steps, 4);
    let _ = fs::remove_dir_all(&out);
}

/// `shutdown` cancels queued and running jobs cooperatively at step
/// boundaries and still produces a complete terminal ledger.
#[test]
fn shutdown_cancels_cooperatively_with_complete_ledger() {
    let out = tmp_dir("shutdown");
    let slow = slow_case(&out);
    let daemon = Daemon::start(1, out.clone(), None);
    let mut client = Client::connect(daemon.addr);
    client.submit(spec_for(&slow, "running", 100_000, 0));
    client.submit(spec_for(&slow, "queued", 100_000, 0));
    let v = client.request(&Request::Shutdown);
    assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
    assert_eq!(v["shutting_down"].as_bool(), Some(true), "{v:?}");
    let records = daemon.join();
    assert_eq!(records.len(), 2);
    for r in &records {
        assert_eq!(r.state, JobState::Cancelled, "{}: {:?}", r.job, r.reason);
    }
    // The running job stopped at a step boundary, not after its budget.
    assert!(records[0].steps < 100_000);
    let _ = fs::remove_dir_all(&out);
}

/// Malformed frames are answered with typed errors on a connection that
/// stays open; scheduler-level rejections keep their own kinds.
#[test]
fn malformed_frames_are_typed_and_survivable() {
    let out = tmp_dir("malformed");
    let daemon = Daemon::start(1, out.clone(), None);
    let mut client = Client::connect(daemon.addr);

    for bad in [
        "this is not json",
        r#"{"cmd":"warp"}"#,
        r#"{"cmd":"cancel"}"#,
        r#"{"cmd":"cancel","id":"one"}"#,
        r#"{"cmd":"metrics","stray":true}"#,
        r#"{"cmd":"submit"}"#,
        r#"[1,2,3]"#,
    ] {
        let v = client.roundtrip(bad);
        assert_eq!(error_kind(&v), "malformed_frame", "{bad}");
    }
    // Same connection still serves real traffic after every bad frame.
    let v = client.request(&Request::Ping);
    assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");

    let v = client.request(&Request::Cancel(999));
    assert_eq!(error_kind(&v), "unknown_job");
    let v = client.request(&Request::Submit(JobSpec::new(out.join("missing.json"))));
    assert_eq!(error_kind(&v), "rejected");

    // Satellite regression, wire level: an extreme priority is a typed
    // admission rejection — it must never reach the aging arithmetic.
    let v = client.request(&Request::Submit(spec("hot", 2, i64::MAX)));
    assert_eq!(error_kind(&v), "priority_out_of_range");
    let v = client.request(&Request::Submit(spec("cold", 2, i64::MIN)));
    assert_eq!(error_kind(&v), "priority_out_of_range");

    client.request(&Request::Shutdown);
    let records = daemon.join();
    assert!(records.is_empty(), "nothing was admitted: {records:?}");
    let _ = fs::remove_dir_all(&out);
}

/// A client dying mid-frame is detected (trace instant), its partial
/// frame is discarded, and the daemon keeps serving other clients.
#[test]
fn client_disconnect_midframe_is_contained() {
    let out = tmp_dir("midframe");
    let tracer = Arc::new(Tracer::new());
    let daemon = Daemon::start(1, out.clone(), Some(Arc::clone(&tracer)));

    {
        let mut dying = TcpStream::connect(daemon.addr).unwrap();
        dying.write_all(br#"{"cmd":"submit","job":{"ca"#).unwrap();
        dying.flush().unwrap();
    } // dropped: EOF mid-frame

    // The daemon still serves a healthy client afterwards.
    let mut client = Client::connect(daemon.addr);
    let v = client.request(&Request::Ping);
    assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
    let m = client.metrics();
    assert_eq!(m["submitted"].as_u64(), Some(0), "partial frame admitted a job");

    // The mid-frame disconnect is observable on the scheduler timeline.
    let mut seen = false;
    for _ in 0..100 {
        let json = mfc::trace::chrome::export_to_string(&tracer.snapshot());
        if json.contains("client_disconnect_midframe") {
            seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(seen, "mid-frame disconnect instant never reached the trace");

    client.request(&Request::Shutdown);
    let records = daemon.join();
    assert!(records.is_empty());
    let _ = fs::remove_dir_all(&out);
}

/// Satellite regression, scheduler level: out-of-range priorities are
/// rejected at admission with the typed error (pre-fix they were
/// accepted and overflowed in the queue's aging arithmetic).
#[test]
fn priority_bounds_are_enforced_at_admission() {
    let out = tmp_dir("priobounds");
    let mut sched = Scheduler::new(config(1, out.clone()));
    for bad in [i64::MAX, i64::MIN, PRIORITY_LIMIT + 1, -PRIORITY_LIMIT - 1] {
        match sched.submit(spec("extreme", 2, bad)) {
            Err(SchedError::PriorityOutOfRange { priority, limit }) => {
                assert_eq!(priority, bad);
                assert_eq!(limit, PRIORITY_LIMIT);
            }
            other => panic!("priority {bad} must be rejected, got {other:?}"),
        }
    }
    // The boundary itself is admissible.
    sched.submit(spec("edge_hi", 2, PRIORITY_LIMIT)).unwrap();
    sched.submit(spec("edge_lo", 2, -PRIORITY_LIMIT)).unwrap();
    let records = sched.run();
    assert!(records.iter().all(|r| r.state == JobState::Done));
    let _ = fs::remove_dir_all(&out);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Aging is starvation-free: one low-priority job against an
    /// endless stream of high-priority arrivals is dispatched within
    /// the analytic bound aging_rounds * (gap + 2) rounds.
    #[test]
    fn aging_is_starvation_free_under_continuous_arrivals(
        aging in 1u64..=4,
        low in -100i64..=0,
        high in 1i64..=100,
    ) {
        let mut q = AdmissionQueue::new(1024, aging);
        q.push(0, low).unwrap();
        let gap = (high - low) as u64;
        let bound = aging * (gap + 2);
        let mut won_at: Option<u64> = None;
        for round in 0..bound {
            q.push(1 + round, high).unwrap();
            if q.pop() == Some(0) {
                won_at = Some(round);
                break;
            }
        }
        prop_assert!(
            won_at.is_some(),
            "low-priority job starved for {} rounds (aging {}, gap {})",
            bound, aging, gap
        );
    }
}
