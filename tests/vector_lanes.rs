//! Lane-width equivalence suite for the SIMD vector execution layer.
//!
//! Every hot kernel is written once, generically over the `Lane` trait,
//! and instantiated at `f64` (width 1) or `VecF64<W>`. Because every lane
//! op is purely elementwise and horizontal folds extract lanes in fixed
//! serial order, each lane performs exactly the scalar op sequence — so
//! any width must reproduce the width-1 run **bitwise**, at any worker
//! count, in both sweep engines. These tests are the enforcement:
//!
//! 1. Property: random 3-D domains × widths {2, 4, 8} × workers {1, 4} ×
//!    both sweep engines × every Riemann solver, against the width-1 run.
//! 2. Shipped cases: every `cases/*.json` at the default W=4 reproduces
//!    the W=1 state bitwise over the golden step counts, serially and on
//!    2 overlapped ranks. (The golden suite itself runs at the new W=4
//!    default, so goldens recorded under scalar execution already pin
//!    this too.)
//! 3. Engagement: on a 16^3 case the trace's per-launch lane annotation
//!    shows the vector kernels really executing 4-wide packets — the
//!    equivalence above is not vacuous — and the traced per-kernel
//!    totals still reconcile exactly with the analytic ledger.

use proptest::prelude::*;
use std::sync::Arc;

use mfc::core::par::{run_distributed_with_mode, run_single, ExchangeMode};
use mfc::core::rhs::{RhsConfig, RhsMode};
use mfc::core::riemann::RiemannSolver;
use mfc::mpsim::Staging;
use mfc::trace::{chrome, reconcile_trace, EventKind, Tracer};
use mfc::{presets, Context, Solver, SolverConfig};
use mfc_cli::CaseFile;

/// Lane widths exercised against the width-1 reference.
const WIDTHS: [usize; 3] = [2, 4, 8];

fn cases_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../cases")
}

fn cfg_with(mode: RhsMode, solver: RiemannSolver, workers: usize, width: usize) -> SolverConfig {
    SolverConfig {
        rhs: RhsConfig {
            mode,
            solver,
            ..Default::default()
        },
        workers,
        vector_width: width,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Vectorized runs agree bitwise with the scalar path on random 3-D
    /// domains for both sweep engines and every Riemann solver, serial
    /// and gang-parallel.
    #[test]
    fn random_domains_bitwise_equal_at_every_lane_width(
        nx in 8usize..=14,
        ny in 8usize..=14,
        nz in 8usize..=14,
        mode_fused in proptest::bool::ANY,
        solver_idx in 0usize..3,
    ) {
        let mode = if mode_fused { RhsMode::Fused } else { RhsMode::Staged };
        let solver = [RiemannSolver::Hllc, RiemannSolver::Hll, RiemannSolver::Rusanov][solver_idx];
        let case = presets::two_phase_benchmark(3, [nx, ny, nz]);
        let scalar = run_single(&case, cfg_with(mode, solver, 1, 1), 2);
        for width in WIDTHS {
            for workers in [1usize, 4] {
                let vec = run_single(&case, cfg_with(mode, solver, workers, width), 2);
                prop_assert_eq!(
                    vec.max_abs_diff(&scalar), 0.0,
                    "{:?} {:?} W={} workers={}", mode, solver, width, workers
                );
            }
        }
    }
}

/// Every shipped case file reproduces its width-1 state bitwise at the
/// default width 4 over the golden step counts.
#[test]
fn shipped_cases_bitwise_equal_at_default_lane_width() {
    for (name, steps) in [
        ("sod", 12usize),
        ("taylor_green", 6),
        ("shock_droplet_2d", 5),
        ("bubble_cloud_2d", 5),
    ] {
        let cf = CaseFile::from_path(&cases_dir().join(format!("{name}.json"))).unwrap();
        let case = cf.to_case().unwrap();
        let cfg = cf.numerics.to_solver_config().unwrap();
        assert_eq!(cfg.vector_width, 4, "{name}: shipped default must be W=4");

        let mut scalar = Solver::new(&case, cfg, Context::serial().with_vector_width(1));
        scalar.run_steps(steps).unwrap();

        let mut vec = Solver::new(&case, cfg, Context::serial().with_vector_width(4));
        vec.run_steps(steps).unwrap();

        assert_eq!(
            scalar.state().as_slice(),
            vec.state().as_slice(),
            "{name}: W=4 state diverged from scalar"
        );
        assert_eq!(
            scalar.time().to_bits(),
            vec.time().to_bits(),
            "{name}: dt path diverged"
        );
    }
}

/// Shipped cases on 2 simulated ranks with the overlapped exchange at
/// W=4 still match the scalar serial state — lane packets compose with
/// halo regions and the comm/compute overlap.
#[test]
fn shipped_cases_overlapped_two_rank_bitwise_equal_at_w4() {
    for (name, steps) in [
        ("sod", 6usize),
        ("taylor_green", 4),
        ("shock_droplet_2d", 3),
        ("bubble_cloud_2d", 3),
    ] {
        let cf = CaseFile::from_path(&cases_dir().join(format!("{name}.json"))).unwrap();
        let case = cf.to_case().unwrap();
        let mut cfg = cf.numerics.to_solver_config().unwrap();
        cfg.vector_width = 1;
        let scalar = run_single(&case, cfg, steps);
        cfg.vector_width = 4;
        let (dist, _) = run_distributed_with_mode(
            &case,
            cfg,
            2,
            steps,
            Staging::DeviceDirect,
            ExchangeMode::Overlapped,
        )
        .unwrap();
        assert_eq!(
            dist.max_abs_diff(&scalar),
            0.0,
            "{name}: 2 overlapped ranks x W=4 diverged from scalar serial"
        );
    }
}

/// On a 16^3 case the vector kernels really engage lane packets (trace
/// annotation), the state matches the scalar run bitwise, and the traced
/// per-kernel totals reconcile exactly with the analytic ledger.
#[test]
fn lane_engagement_is_real_and_ledger_reconciles() {
    let case = presets::two_phase_benchmark(3, [16, 16, 16]);
    for mode in [RhsMode::Staged, RhsMode::Fused] {
        let mut scalar = Solver::new(
            &case,
            cfg_with(mode, RiemannSolver::Hllc, 1, 1),
            Context::serial().with_vector_width(1),
        );
        scalar.run_steps(2).unwrap();

        let tracer = Arc::new(Tracer::new());
        let mut ctx = Context::serial().with_vector_width(4);
        ctx.set_tracer(tracer.handle(0));
        let mut vec = Solver::new(&case, cfg_with(mode, RiemannSolver::Hllc, 1, 4), ctx);
        vec.run_steps(2).unwrap();
        assert_eq!(
            scalar.state().as_slice(),
            vec.state().as_slice(),
            "{mode:?}: W=4 state diverged from scalar"
        );
        vec.context().flush_ledger_to_trace();

        let traces = tracer.snapshot();
        let max_lanes = traces[0]
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Kernel { lanes, .. } => Some(lanes),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(
            max_lanes, 4,
            "{mode:?}: no kernel launch recorded 4-wide lane execution"
        );

        let parsed = chrome::parse_str(&chrome::export_to_string(&traces)).unwrap();
        reconcile_trace(&parsed).unwrap_or_else(|e| {
            panic!("{mode:?}: traced totals must match the ledger exactly: {e:?}")
        });

        // The context's lane accounting saw real packets, and most
        // elements ran in them (cell rows tile 16/4 exactly; only the
        // 17-wide face rows leave 1-element tails).
        let (packets, _tail) = vec.context().lane_stats();
        assert!(packets > 0, "{mode:?}: no lane packets recorded");
        let (tail_fraction, effective) = vec.context().lane_efficiency();
        assert!(
            tail_fraction < 0.10 && effective > 3.0,
            "{mode:?}: lane tiling mostly scalar (tail {tail_fraction:.3}, eff {effective:.2})"
        );
    }
}
