//! Equilibrium and free-stream preservation — the properties that make
//! diffuse-interface schemes usable (§II-A).

use mfc::core::bc::BcSpec;
use mfc::core::fluid::Fluid;
use mfc::core::grid::Grid1D;
use mfc::core::rhs::{compute_rhs, RhsConfig, RhsWorkspace};
use mfc::core::state::StateField;
use mfc::{CaseBuilder, Context, PatchState, Region, Solver, SolverConfig};

/// A two-fluid material interface advected at uniform (p, u): pressure
/// and velocity must stay uniform to round-off while the interface moves.
#[test]
fn advected_interface_keeps_equilibrium_in_2d() {
    let case = CaseBuilder::new(vec![Fluid::air(), Fluid::water()], 2, [32, 32, 1])
        .bc(BcSpec::periodic())
        .smear(2.0)
        .patch(
            Region::All,
            PatchState::two_fluid(1.0 - 1e-6, [1.2, 1000.0], [50.0, -30.0, 0.0], 1.0e5),
        )
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.2,
            },
            PatchState::two_fluid(1e-6, [1.2, 1000.0], [50.0, -30.0, 0.0], 1.0e5),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    solver.run_steps(30).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    for j in 0..32 {
        for i in 0..32 {
            let p = prim.get(i + ng, j + ng, 0, eq.energy());
            let u = prim.get(i + ng, j + ng, 0, eq.mom(0));
            let v = prim.get(i + ng, j + ng, 0, eq.mom(1));
            assert!((p - 1.0e5).abs() / 1.0e5 < 1e-7, "p[{i},{j}] = {p}");
            assert!((u - 50.0).abs() < 1e-4, "u[{i},{j}] = {u}");
            assert!((v + 30.0).abs() < 1e-4, "v[{i},{j}] = {v}");
        }
    }
}

/// The interface must actually move at the advection speed.
#[test]
fn interface_travels_at_flow_speed() {
    let u = 80.0;
    let case = CaseBuilder::new(vec![Fluid::air(), Fluid::water()], 1, [128, 1, 1])
        .bc(BcSpec::periodic())
        .smear(2.0)
        .patch(
            Region::All,
            PatchState::two_fluid(1.0 - 1e-6, [1.2, 1000.0], [u, 0.0, 0.0], 1.0e5),
        )
        .patch(
            Region::Box {
                lo: [0.3, -1.0, -1.0],
                hi: [0.5, 2.0, 2.0],
            },
            PatchState::two_fluid(1e-6, [1.2, 1000.0], [u, 0.0, 0.0], 1.0e5),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    // Interface centroid (water-weighted x) before/after.
    let centroid = |solver: &Solver| -> f64 {
        let prim = solver.primitives();
        let eq = case.eq();
        let (mut num, mut den) = (0.0, 0.0);
        for i in 0..128 {
            let w = 1.0 - prim.get(i + 3, 0, 0, eq.adv(0)); // water fraction
            let x = (i as f64 + 0.5) / 128.0;
            num += w * x;
            den += w;
        }
        num / den
    };
    let x0 = centroid(&solver);
    solver.run_steps(40).unwrap();
    let x1 = centroid(&solver);
    let expected = u * solver.time();
    assert!(
        ((x1 - x0) - expected).abs() < 0.15 * expected,
        "moved {} expected {expected}",
        x1 - x0
    );
}

/// Uniform flow on a tanh-stretched grid must have zero RHS (free-stream
/// preservation on non-uniform meshes).
#[test]
fn free_stream_preserved_on_stretched_grid() {
    use mfc::core::domain::Domain;
    use mfc::core::eqidx::EqIdx;
    use mfc::core::grid::Grid;

    let eq = EqIdx::new(2, 1);
    let n = 48;
    let dom = Domain::new([n, 1, 1], 3, eq);
    let grid = Grid::new_1d(Grid1D::stretched(n, 0.0, 1.0, 5.0, 0.5));
    let fluids = [Fluid::air(), Fluid::water()];
    let ctx = Context::serial();

    let mut prim = StateField::zeros(dom);
    for i in 0..dom.ext(0) {
        prim.set(i, 0, 0, eq.cont(0), 1.2 * 0.4);
        prim.set(i, 0, 0, eq.cont(1), 1000.0 * 0.6);
        prim.set(i, 0, 0, eq.mom(0), 75.0);
        prim.set(i, 0, 0, eq.energy(), 2.0e5);
        prim.set(i, 0, 0, eq.adv(0), 0.4);
    }
    let mut cons = StateField::zeros(dom);
    mfc::core::state::prim_to_cons_field(&ctx, &fluids, &prim, &mut cons);
    let mut ws = RhsWorkspace::new(dom, &grid);
    let mut rhs = StateField::zeros(dom);
    compute_rhs(
        &ctx,
        &RhsConfig::default(),
        &fluids,
        &cons,
        &mut ws,
        &mut rhs,
    );
    let max = rhs.as_slice().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    assert!(max < 1e-6, "max |rhs| = {max}");
}

/// A quiescent two-phase pool under uniform pressure stays quiescent
/// (no spurious currents at the interface).
#[test]
fn no_spurious_currents_at_static_interface() {
    let case = CaseBuilder::new(vec![Fluid::air(), Fluid::water()], 2, [24, 24, 1])
        .bc(BcSpec::reflective())
        .smear(2.0)
        .patch(
            Region::All,
            PatchState::two_fluid(1e-6, [1.2, 1000.0], [0.0; 3], 1.0e5),
        )
        .patch(
            Region::Sphere {
                center: [0.5, 0.5, 0.0],
                radius: 0.25,
            },
            PatchState::two_fluid(1.0 - 1e-6, [1.2, 1000.0], [0.0; 3], 1.0e5),
        );
    let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
    solver.run_steps(25).unwrap();
    let prim = solver.primitives();
    let eq = case.eq();
    let ng = solver.domain().pad(0);
    let mut max_vel = 0.0f64;
    for j in 0..24 {
        for i in 0..24 {
            max_vel = max_vel
                .max(prim.get(i + ng, j + ng, 0, eq.mom(0)).abs())
                .max(prim.get(i + ng, j + ng, 0, eq.mom(1)).abs());
        }
    }
    assert!(max_vel < 1e-7, "spurious velocity {max_vel}");
}
