//! Local domain extents and ghost-cell bookkeeping.

use mfc_layout::{Dims3, Dims4};

use crate::eqidx::EqIdx;

/// Upper bound on the state-vector length (`2*MAX_FLUIDS + ndim` with
/// `ndim <= 3`), used for stack-allocated per-cell scratch in kernels —
/// the compile-time-sized "private arrays" of §III-D.
pub const MAX_EQ: usize = 2 * crate::eos::MAX_FLUIDS + 3;

/// The cell extents of one (rank-local) block plus its ghost width.
///
/// Ghost layers exist only along active dimensions: a 1-D problem carries
/// no y/z ghosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    /// Interior cells per axis (unused axes have extent 1).
    pub n: [usize; 3],
    /// Ghost layers on each side of each active axis (3 for WENO5).
    pub ng: usize,
    /// Equation layout.
    pub eq: EqIdx,
}

impl Domain {
    pub fn new(n: [usize; 3], ng: usize, eq: EqIdx) -> Self {
        for (d, &nd) in n.iter().enumerate().take(eq.ndim()) {
            assert!(nd >= 1, "axis {d} must have at least one cell");
            assert!(
                nd >= ng,
                "axis {d}: {nd} interior cells cannot feed {ng} ghost layers"
            );
        }
        for (d, &nd) in n.iter().enumerate().skip(eq.ndim()) {
            assert_eq!(nd, 1, "inactive axis {d} must have extent 1");
        }
        Domain { n, ng, eq }
    }

    /// Ghost padding along axis `d` (0 on inactive axes).
    #[inline(always)]
    pub fn pad(&self, d: usize) -> usize {
        if d < self.eq.ndim() {
            self.ng
        } else {
            0
        }
    }

    /// Ghost-inclusive extent along axis `d`.
    #[inline(always)]
    pub fn ext(&self, d: usize) -> usize {
        self.n[d] + 2 * self.pad(d)
    }

    /// Ghost-inclusive spatial extents.
    pub fn dims3(&self) -> Dims3 {
        Dims3::new(self.ext(0), self.ext(1), self.ext(2))
    }

    /// Ghost-inclusive 4-D extents (spatial × equations).
    pub fn dims4(&self) -> Dims4 {
        Dims4::from_spatial(self.dims3(), self.eq.neq())
    }

    /// Number of interior cells.
    pub fn interior_cells(&self) -> usize {
        self.n[0] * self.n[1] * self.n[2]
    }

    /// Number of ghost-inclusive cells.
    pub fn total_cells(&self) -> usize {
        self.ext(0) * self.ext(1) * self.ext(2)
    }

    /// Iterate interior cell coordinates in ghost-inclusive indices,
    /// x-fastest.
    pub fn interior(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (px, py, pz) = (self.pad(0), self.pad(1), self.pad(2));
        let n = self.n;
        (0..n[2]).flat_map(move |k| {
            (0..n[1]).flat_map(move |j| (0..n[0]).map(move |i| (i + px, j + py, k + pz)))
        })
    }

    /// Map an interior coordinate (0-based, no ghosts) to ghost-inclusive.
    #[inline(always)]
    pub fn to_padded(&self, c: [usize; 3]) -> (usize, usize, usize) {
        (c[0] + self.pad(0), c[1] + self.pad(1), c[2] + self.pad(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghosts_only_on_active_axes() {
        let d = Domain::new([16, 1, 1], 3, EqIdx::new(2, 1));
        assert_eq!(d.ext(0), 22);
        assert_eq!(d.ext(1), 1);
        assert_eq!(d.ext(2), 1);
        assert_eq!(d.pad(1), 0);
    }

    #[test]
    fn dims4_includes_equations() {
        let eq = EqIdx::new(2, 2);
        let d = Domain::new([8, 4, 1], 2, eq);
        let d4 = d.dims4();
        assert_eq!((d4.n1, d4.n2, d4.n3, d4.n4), (12, 8, 1, eq.neq()));
    }

    #[test]
    fn interior_iterates_every_cell_once() {
        let d = Domain::new([3, 2, 1], 2, EqIdx::new(1, 2));
        let cells: Vec<_> = d.interior().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], (2, 2, 0));
        assert_eq!(cells[1], (3, 2, 0)); // x fastest
        assert_eq!(*cells.last().unwrap(), (4, 3, 0));
    }

    #[test]
    #[should_panic]
    fn rejects_block_thinner_than_halo() {
        let _ = Domain::new([2, 1, 1], 3, EqIdx::new(1, 1));
    }

    #[test]
    #[should_panic]
    fn rejects_extent_on_inactive_axis() {
        let _ = Domain::new([8, 4, 1], 2, EqIdx::new(1, 1));
    }
}
