//! Graceful-degradation recovery ladder for numerical faults.
//!
//! When the health scan ([`crate::health`]) flags a nonphysical state, the
//! step is rejected and retried from the saved `q^n` under a progressively
//! more dissipative policy: halve the time step, engage the Zhang–Shu
//! positivity limiter, degrade WENO5→WENO3, and finally fall back to the
//! Rusanov flux — mirroring the limiter/fallback practice MFC ships for
//! production diffuse-interface runs. Once a configurable number of clean
//! steps pass, the default policy is restored. Only after the ladder is
//! exhausted does the solver abort, with a diagnostic crash-dump
//! checkpoint and the offending-cell report attached to the error.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::health::Violation;
use crate::limiter::Limiter;
use crate::riemann::RiemannSolver;
use crate::solver::{DtMode, SolverConfig};
use crate::weno::WenoOrder;

/// What the health watchdog (or the CFL kernel) detected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StepFault {
    /// A cell left the physically admissible set after the update.
    Unphysical(Violation),
    /// The CFL reduction produced a non-finite or non-positive wave-speed
    /// rate — the state was already unusable before the update.
    DegenerateWaveSpeed { rate: f64 },
}

impl std::fmt::Display for StepFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepFault::Unphysical(v) => write!(f, "unphysical state: {v}"),
            StepFault::DegenerateWaveSpeed { rate } => {
                write!(f, "degenerate wave-speed rate {rate:e} in CFL reduction")
            }
        }
    }
}

/// Terminal failure of a step after the recovery ladder is exhausted (or
/// when no recovery policy is armed).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverError {
    /// The last detected fault.
    pub fault: StepFault,
    /// Step index at which the run aborted.
    pub step: u64,
    /// Simulated time at which the run aborted.
    pub t: f64,
    /// How many retry attempts were spent before giving up.
    pub attempts: u32,
    /// Diagnostic crash-dump checkpoint, if one was written.
    pub crash_dump: Option<PathBuf>,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "numerical fault at step {} (t = {:e}) after {} attempt(s): {}",
            self.step, self.t, self.attempts, self.fault
        )?;
        if let Some(p) = &self.crash_dump {
            write!(f, " [crash dump: {}]", p.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for SolverError {}

/// Result of one accepted time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// The time-step size actually taken (after any ladder halving).
    pub dt: f64,
    /// Rejected attempts before this step was accepted (0 = clean).
    pub retries: u32,
    /// Ladder rung the step was accepted on (0 = default policy).
    pub rung: usize,
}

/// One rung of the recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RecoveryAction {
    /// Halve the time step (cumulative across rungs).
    HalveDt,
    /// Engage the Zhang–Shu positivity limiter.
    ZhangShu,
    /// Degrade the reconstruction to WENO3 (no-op below fifth order).
    Weno3,
    /// Fall back to the dissipative Rusanov flux.
    Rusanov,
}

impl RecoveryAction {
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryAction::HalveDt => "halve_dt",
            RecoveryAction::ZhangShu => "zhang_shu",
            RecoveryAction::Weno3 => "weno3",
            RecoveryAction::Rusanov => "rusanov",
        }
    }
}

/// Bounded, configurable recovery policy (`mfc-run --recovery ladder.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RecoveryPolicy {
    /// Rungs engaged cumulatively: a step rejected on rung `r` retries
    /// with `ladder[0..=r]` all applied.
    pub ladder: Vec<RecoveryAction>,
    /// Hard cap on rejected attempts per step before aborting.
    pub max_retries: u32,
    /// Clean steps after which the default policy is restored.
    pub restore_after: u64,
    /// Where to write the diagnostic crash-dump checkpoint on abort.
    pub crash_dump_dir: Option<PathBuf>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            ladder: vec![
                RecoveryAction::HalveDt,
                RecoveryAction::HalveDt,
                RecoveryAction::ZhangShu,
                RecoveryAction::Weno3,
                RecoveryAction::Rusanov,
            ],
            max_retries: 8,
            restore_after: 10,
            crash_dump_dir: None,
        }
    }
}

impl RecoveryPolicy {
    /// The solver configuration in force on ladder rung `rung` (0 = the
    /// base policy; `rung` counts how many leading ladder entries apply).
    pub fn effective_config(&self, base: &SolverConfig, rung: usize) -> SolverConfig {
        let mut cfg = *base;
        let mut halvings = 0u32;
        for action in self.ladder.iter().take(rung) {
            match action {
                RecoveryAction::HalveDt => halvings += 1,
                RecoveryAction::ZhangShu => cfg.rhs.limiter = Limiter::ZhangShu,
                RecoveryAction::Weno3 => {
                    if cfg.rhs.order.ghost_layers() > WenoOrder::Weno3.ghost_layers() {
                        cfg.rhs.order = WenoOrder::Weno3;
                    }
                }
                RecoveryAction::Rusanov => cfg.rhs.solver = RiemannSolver::Rusanov,
            }
        }
        if halvings > 0 {
            let scale = 0.5_f64.powi(halvings as i32);
            cfg.dt = match cfg.dt {
                DtMode::Cfl(c) => DtMode::Cfl(c * scale),
                DtMode::Fixed(dt) => DtMode::Fixed(dt * scale),
            };
        }
        cfg
    }

    /// Number of rungs (the ladder is exhausted past this).
    pub fn rungs(&self) -> usize {
        self.ladder.len()
    }
}

/// Per-run ladder state: current rung plus the clean-step counter that
/// drives restoration of the default policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryState {
    pub rung: usize,
    pub clean_steps: u64,
    /// Total rejected attempts over the whole run (for summaries).
    pub total_retries: u64,
}

impl RecoveryState {
    /// Record an accepted step; returns `true` if the default policy was
    /// just restored (for event logging).
    pub fn accept(&mut self, policy: &RecoveryPolicy) -> bool {
        if self.rung == 0 {
            return false;
        }
        self.clean_steps += 1;
        if self.clean_steps >= policy.restore_after {
            self.rung = 0;
            self.clean_steps = 0;
            true
        } else {
            false
        }
    }

    /// Record a rejected attempt; returns `true` while another rung is
    /// available, `false` once the ladder is exhausted.
    pub fn escalate(&mut self, policy: &RecoveryPolicy) -> bool {
        self.clean_steps = 0;
        self.total_retries += 1;
        if self.rung < policy.rungs() {
            self.rung += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rhs::RhsConfig;

    #[test]
    fn effective_config_applies_rungs_cumulatively() {
        let policy = RecoveryPolicy::default();
        let base = SolverConfig::default();
        assert_eq!(policy.effective_config(&base, 0), base);

        let r2 = policy.effective_config(&base, 2);
        match (base.dt, r2.dt) {
            (DtMode::Cfl(c0), DtMode::Cfl(c2)) => assert_eq!(c2, c0 * 0.25),
            other => panic!("unexpected dt modes {other:?}"),
        }
        assert_eq!(r2.rhs.order, base.rhs.order);

        let r5 = policy.effective_config(&base, 5);
        assert_eq!(r5.rhs.limiter, Limiter::ZhangShu);
        assert_eq!(r5.rhs.order, WenoOrder::Weno3);
        assert_eq!(r5.rhs.solver, RiemannSolver::Rusanov);
    }

    #[test]
    fn weno3_rung_never_raises_the_order() {
        let policy = RecoveryPolicy {
            ladder: vec![RecoveryAction::Weno3],
            ..RecoveryPolicy::default()
        };
        let base = SolverConfig {
            rhs: RhsConfig {
                order: WenoOrder::First,
                ..RhsConfig::default()
            },
            ..SolverConfig::default()
        };
        assert_eq!(
            policy.effective_config(&base, 1).rhs.order,
            WenoOrder::First
        );
    }

    #[test]
    fn ladder_state_escalates_and_restores() {
        let policy = RecoveryPolicy {
            restore_after: 2,
            ..RecoveryPolicy::default()
        };
        let mut st = RecoveryState::default();
        assert!(st.escalate(&policy));
        assert!(st.escalate(&policy));
        assert_eq!(st.rung, 2);
        assert!(!st.accept(&policy));
        assert!(st.accept(&policy), "second clean step restores");
        assert_eq!(st.rung, 0);
        // Exhaustion after walking every rung.
        for _ in 0..policy.rungs() {
            assert!(st.escalate(&policy));
        }
        assert!(!st.escalate(&policy));
    }

    #[test]
    fn policy_round_trips_through_json() {
        let policy = RecoveryPolicy::default();
        let j = serde_json::to_string(&policy).unwrap();
        assert!(j.contains("halve_dt") && j.contains("rusanov"), "{j}");
        let back: RecoveryPolicy = serde_json::from_str(&j).unwrap();
        assert_eq!(back, policy);
        // Partial specs fill in defaults.
        let partial: RecoveryPolicy =
            serde_json::from_str(r#"{"ladder": ["rusanov"], "max_retries": 3}"#).unwrap();
        assert_eq!(partial.ladder, vec![RecoveryAction::Rusanov]);
        assert_eq!(partial.max_retries, 3);
        assert_eq!(
            partial.restore_after,
            RecoveryPolicy::default().restore_after
        );
    }
}
