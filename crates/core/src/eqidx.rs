//! Equation ordering of the state vector.
//!
//! For `nf` fluids in `ndim` dimensions the conservative vector is
//!
//! ```text
//! [ alpha_1 rho_1, ..., alpha_nf rho_nf,   (partial densities)
//!   rho u, (rho v, (rho w)),               (momentum)
//!   rho E,                                 (total energy)
//!   alpha_1, ..., alpha_{nf-1} ]           (advected volume fractions)
//! ```
//!
//! The last volume fraction is inferred from `sum alpha_i = 1`, so the
//! system has `nf + ndim + 1 + (nf - 1)` equations; `nf = 1` recovers the
//! `ndim + 2` Euler equations.  The *primitive* vector reuses the same
//! slots: partial densities, velocity components, pressure, volume
//! fractions (MFC's convention).

use mfc_acc::Lane;

/// Index map for one problem's equation layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EqIdx {
    nf: usize,
    ndim: usize,
}

impl EqIdx {
    pub fn new(nf: usize, ndim: usize) -> Self {
        assert!(nf >= 1, "need at least one fluid");
        assert!((1..=3).contains(&ndim), "ndim must be 1..=3, got {ndim}");
        EqIdx { nf, ndim }
    }

    /// Number of fluids.
    #[inline(always)]
    pub fn nf(&self) -> usize {
        self.nf
    }

    /// Number of spatial dimensions.
    #[inline(always)]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Total number of equations (= state-vector length).
    #[inline(always)]
    pub fn neq(&self) -> usize {
        self.nf + self.ndim + 1 + (self.nf - 1)
    }

    /// Slot of fluid `i`'s partial density `alpha_i rho_i`.
    #[inline(always)]
    pub fn cont(&self, i: usize) -> usize {
        debug_assert!(i < self.nf);
        i
    }

    /// Slot of the momentum (or velocity, in primitives) along axis `d`.
    #[inline(always)]
    pub fn mom(&self, d: usize) -> usize {
        debug_assert!(d < self.ndim);
        self.nf + d
    }

    /// Slot of the total energy (pressure, in primitives).
    #[inline(always)]
    pub fn energy(&self) -> usize {
        self.nf + self.ndim
    }

    /// Slot of advected volume fraction `i` (`i < nf - 1`).
    #[inline(always)]
    pub fn adv(&self, i: usize) -> usize {
        debug_assert!(i + 1 < self.nf, "alpha_{} is inferred, not stored", i);
        self.nf + self.ndim + 1 + i
    }

    /// Number of *stored* volume fractions.
    #[inline(always)]
    pub fn n_adv(&self) -> usize {
        self.nf - 1
    }

    /// Reconstruct the full `nf`-entry volume-fraction vector (the last
    /// entry by complement) from a state slice, clamped to `[0, 1]`.
    ///
    /// Generic over [`Lane`] so packed kernels evaluate it on whole lane
    /// packets; at `L = f64` every operation is the scalar original.
    #[inline]
    pub fn alphas<L: Lane>(&self, state: &[L], out: &mut [L]) {
        debug_assert_eq!(out.len(), self.nf);
        let mut sum = L::splat(0.0);
        for i in 0..self.n_adv() {
            let a = state[self.adv(i)].clamp(0.0, 1.0);
            out[i] = a;
            sum = sum + a;
        }
        out[self.nf - 1] = (L::splat(1.0) - sum).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fluid_layout_is_euler() {
        let e = EqIdx::new(1, 3);
        assert_eq!(e.neq(), 5);
        assert_eq!(e.cont(0), 0);
        assert_eq!(e.mom(0), 1);
        assert_eq!(e.mom(2), 3);
        assert_eq!(e.energy(), 4);
        assert_eq!(e.n_adv(), 0);
    }

    #[test]
    fn two_fluid_3d_layout() {
        let e = EqIdx::new(2, 3);
        assert_eq!(e.neq(), 7);
        assert_eq!(e.cont(1), 1);
        assert_eq!(e.mom(0), 2);
        assert_eq!(e.energy(), 5);
        assert_eq!(e.adv(0), 6);
    }

    #[test]
    fn slots_are_disjoint_and_cover_neq() {
        for nf in 1..=3 {
            for ndim in 1..=3 {
                let e = EqIdx::new(nf, ndim);
                let mut seen = vec![false; e.neq()];
                for i in 0..nf {
                    seen[e.cont(i)] = true;
                }
                for d in 0..ndim {
                    seen[e.mom(d)] = true;
                }
                seen[e.energy()] = true;
                for i in 0..e.n_adv() {
                    seen[e.adv(i)] = true;
                }
                assert!(seen.iter().all(|&s| s), "nf={nf} ndim={ndim}");
            }
        }
    }

    #[test]
    fn alphas_infers_complement() {
        let e = EqIdx::new(3, 1);
        // state: [ar1, ar2, ar3, mom, E, a1, a2]
        let state = [0.0, 0.0, 0.0, 0.0, 0.0, 0.2, 0.3];
        let mut a = [0.0; 3];
        e.alphas(&state, &mut a);
        assert!((a[0] - 0.2).abs() < 1e-15);
        assert!((a[1] - 0.3).abs() < 1e-15);
        assert!((a[2] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn alphas_clamps_excursions() {
        let e = EqIdx::new(2, 1);
        let state = [0.0, 0.0, 0.0, 0.0, 1.2];
        let mut a = [0.0; 2];
        e.alphas(&state, &mut a);
        assert_eq!(a, [1.0, 0.0]);
    }
}
