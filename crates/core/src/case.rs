//! Initial-condition patches and case construction (MFC's `patch_icpp`).

use crate::bc::BcSpec;
use crate::domain::Domain;
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use crate::grid::Grid;
use crate::state::StateField;
use mfc_acc::Context;
use serde::{Deserialize, Serialize};

/// Geometric region of one patch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Region {
    /// Everything (the background patch).
    All,
    /// Axis-aligned box `[lo, hi)`.
    Box { lo: [f64; 3], hi: [f64; 3] },
    /// Sphere (circle in 2-D) of `radius` about `center`.
    Sphere { center: [f64; 3], radius: f64 },
    /// Half-space `x[axis] < bound` — shock-tube style initialization.
    HalfSpace { axis: usize, bound: f64 },
}

impl Region {
    pub fn contains(&self, x: [f64; 3]) -> bool {
        match *self {
            Region::All => true,
            Region::Box { lo, hi } => (0..3).all(|d| x[d] >= lo[d] && x[d] < hi[d]),
            Region::Sphere { center, radius } => {
                let d2: f64 = (0..3)
                    .map(|d| (x[d] - center[d]) * (x[d] - center[d]))
                    .sum();
                d2 < radius * radius
            }
            Region::HalfSpace { axis, bound } => x[axis] < bound,
        }
    }

    /// Signed distance to the region boundary (negative inside), used for
    /// diffuse-interface smearing. `None` for [`Region::All`], which has no
    /// boundary.
    pub fn signed_distance(&self, x: [f64; 3]) -> Option<f64> {
        match *self {
            Region::All => None,
            Region::Sphere { center, radius } => {
                let d2: f64 = (0..3)
                    .map(|d| (x[d] - center[d]) * (x[d] - center[d]))
                    .sum();
                Some(d2.sqrt() - radius)
            }
            Region::HalfSpace { axis, bound } => Some(x[axis] - bound),
            Region::Box { lo, hi } => {
                let mut out2 = 0.0;
                let mut inside = f64::NEG_INFINITY;
                for d in 0..3 {
                    let q = (lo[d] - x[d]).max(x[d] - hi[d]);
                    if q > 0.0 {
                        out2 += q * q;
                    }
                    inside = inside.max(q);
                }
                Some(if out2 > 0.0 { out2.sqrt() } else { inside })
            }
        }
    }
}

/// Primitive state painted by one patch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatchState {
    /// Volume fraction per fluid (must sum to ~1).
    pub alpha: Vec<f64>,
    /// *Pure-fluid* density per fluid; partial densities are
    /// `alpha_i * rho_i`.
    pub rho: Vec<f64>,
    pub vel: [f64; 3],
    pub p: f64,
}

impl PatchState {
    /// Single-fluid helper.
    pub fn single(rho: f64, vel: [f64; 3], p: f64) -> Self {
        PatchState {
            alpha: vec![1.0],
            rho: vec![rho],
            vel,
            p,
        }
    }

    /// Two-fluid helper: `alpha0` of fluid 0, the rest fluid 1.
    pub fn two_fluid(alpha0: f64, rho: [f64; 2], vel: [f64; 3], p: f64) -> Self {
        PatchState {
            alpha: vec![alpha0, 1.0 - alpha0],
            rho: rho.to_vec(),
            vel,
            p,
        }
    }
}

/// One patch: a region painted with a state (later patches overwrite
/// earlier ones, like MFC's ordered patch list).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Patch {
    pub region: Region,
    pub state: PatchState,
}

/// Declarative case description; `build` produces the initialized solver
/// inputs.
#[derive(Debug, Clone)]
pub struct CaseBuilder {
    pub fluids: Vec<Fluid>,
    pub ndim: usize,
    pub cells: [usize; 3],
    pub lo: [f64; 3],
    pub hi: [f64; 3],
    pub patches: Vec<Patch>,
    pub bc: BcSpec,
    /// Interface smearing width in cells (diffuse-interface init); 0 = sharp.
    pub smear_cells: f64,
}

impl CaseBuilder {
    pub fn new(fluids: Vec<Fluid>, ndim: usize, cells: [usize; 3]) -> Self {
        let mut c = cells;
        for extent in c.iter_mut().skip(ndim) {
            *extent = 1;
        }
        CaseBuilder {
            fluids,
            ndim,
            cells: c,
            lo: [0.0; 3],
            hi: [1.0, 1.0, 1.0],
            patches: Vec::new(),
            bc: BcSpec::transmissive(),
            smear_cells: 0.0,
        }
    }

    pub fn extent(mut self, lo: [f64; 3], hi: [f64; 3]) -> Self {
        self.lo = lo;
        self.hi = hi;
        self
    }

    pub fn bc(mut self, bc: BcSpec) -> Self {
        self.bc = bc;
        self
    }

    pub fn patch(mut self, region: Region, state: PatchState) -> Self {
        self.patches.push(Patch { region, state });
        self
    }

    pub fn smear(mut self, cells: f64) -> Self {
        self.smear_cells = cells;
        self
    }

    pub fn eq(&self) -> EqIdx {
        EqIdx::new(self.fluids.len(), self.ndim)
    }

    /// Build the global grid.
    pub fn grid(&self) -> Grid {
        Grid::uniform(self.cells, self.lo, self.hi)
    }

    /// Build the (single-rank) domain with `ng` ghost layers.
    pub fn domain(&self, ng: usize) -> Domain {
        Domain::new(self.cells, ng, self.eq())
    }

    /// Paint the initial *conservative* state onto a block whose interior
    /// covers global cells `offset .. offset + dom.n` (offset in cells;
    /// `[0,0,0]` for single-rank runs).
    pub fn init_block(
        &self,
        ctx: &Context,
        dom: &Domain,
        grid: &Grid,
        offset: [usize; 3],
    ) -> StateField {
        let eq = self.eq();
        assert_eq!(&eq, &dom.eq);
        let global = self.grid();
        let mut prim = StateField::zeros(*dom);
        let d3 = dom.dims3();
        // Paint ghost-inclusive so initial BC fill is consistent even at
        // physical boundaries (clamped sampling).
        let _ = grid;
        for k in 0..d3.n3 {
            for j in 0..d3.n2 {
                for i in 0..d3.n1 {
                    // Inactive dimensions sample at coordinate 0 so that,
                    // e.g., a circle centered at z = 0 works in 2-D.
                    let mut x = [0.0; 3];
                    for (d, xi) in x.iter_mut().enumerate().take(self.ndim) {
                        let local = match d {
                            0 => i as isize - dom.pad(0) as isize,
                            1 => j as isize - dom.pad(1) as isize,
                            _ => k as isize - dom.pad(2) as isize,
                        };
                        *xi = sample_center(&global, d, offset[d], local);
                    }
                    let state = self.state_at(x);
                    let mut cell = vec![0.0; eq.neq()];
                    for f in 0..eq.nf() {
                        cell[eq.cont(f)] = state.alpha[f].max(1e-8) * state.rho[f];
                    }
                    for d in 0..eq.ndim() {
                        cell[eq.mom(d)] = state.vel[d];
                    }
                    cell[eq.energy()] = state.p;
                    for a in 0..eq.n_adv() {
                        cell[eq.adv(a)] = state.alpha[a].clamp(1e-8, 1.0 - 1e-8);
                    }
                    prim.store_cell(i, j, k, &cell);
                }
            }
        }
        let mut cons = StateField::zeros(*dom);
        crate::state::prim_to_cons_field(ctx, &self.fluids, &prim, &mut cons);
        cons
    }

    /// The painted primitive state at physical point `x`, with optional
    /// smooth blending across the last patch's boundary.
    pub fn state_at(&self, x: [f64; 3]) -> PatchState {
        let mut current: Option<PatchState> = None;
        for patch in &self.patches {
            if self.smear_cells > 0.0 {
                if let Some(d) = patch.region.signed_distance(x) {
                    // Smooth blend over ~smear_cells cell widths.
                    let h = (self.hi[0] - self.lo[0]) / self.cells[0] as f64;
                    let w = self.smear_cells * h;
                    let t = 0.5 * (1.0 - (d / w).tanh()); // 1 inside, 0 outside
                    if t > 1e-9 {
                        let base = current.take().unwrap_or_else(|| patch.state.clone());
                        current = Some(blend(&base, &patch.state, t));
                    }
                    continue;
                }
            }
            if patch.region.contains(x) {
                current = Some(patch.state.clone());
            }
        }
        current.expect("no patch covers the point; add a Region::All background patch first")
    }
}

fn blend(a: &PatchState, b: &PatchState, t: f64) -> PatchState {
    let mix = |x: f64, y: f64| (1.0 - t) * x + t * y;
    PatchState {
        alpha: a
            .alpha
            .iter()
            .zip(&b.alpha)
            .map(|(&x, &y)| mix(x, y))
            .collect(),
        rho: a.rho.iter().zip(&b.rho).map(|(&x, &y)| mix(x, y)).collect(),
        vel: [
            mix(a.vel[0], b.vel[0]),
            mix(a.vel[1], b.vel[1]),
            mix(a.vel[2], b.vel[2]),
        ],
        p: mix(a.p, b.p),
    }
}

/// Global cell-center coordinate along `axis` for local padded index
/// `local` of a block at cell `offset`, clamping into the grid (ghost
/// cells at physical boundaries sample the edge cell).
fn sample_center(grid: &Grid, axis: usize, offset: usize, local: isize) -> f64 {
    let ax = grid.axis(axis);
    let g = offset as isize + local;
    let n = ax.n() as isize;
    if g < 0 {
        ax.centers()[0] + g as f64 * ax.widths()[0]
    } else if g >= n {
        ax.centers()[(n - 1) as usize] + (g - n + 1) as f64 * ax.widths()[(n - 1) as usize]
    } else {
        ax.centers()[g as usize]
    }
}

/// Canonical cases used throughout tests, examples, and benchmarks.
pub mod presets {
    use super::*;
    use crate::bc::BcKind;

    /// Sod shock tube (air, gamma = 1.4) on `[0, 1]`.
    pub fn sod(n: usize) -> CaseBuilder {
        CaseBuilder::new(vec![Fluid::air()], 1, [n, 1, 1])
            .extent([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
            .bc(BcSpec::transmissive())
            .patch(Region::All, PatchState::single(0.125, [0.0; 3], 0.1))
            .patch(
                Region::HalfSpace {
                    axis: 0,
                    bound: 0.5,
                },
                PatchState::single(1.0, [0.0; 3], 1.0),
            )
    }

    /// Mach-1.46 air shock impinging a water droplet (2-D analog of
    /// §VI-A). Pre-shock air at rest, post-shock state from the
    /// Rankine–Hugoniot relations, water circle at the origin.
    pub fn shock_droplet_2d(n: usize) -> CaseBuilder {
        let air = Fluid::air();
        let water = Fluid::water();
        // Rankine-Hugoniot for M = 1.46 in air at (1.2 kg/m^3, 1 atm).
        let (rho1, p1) = (1.2, 101325.0);
        let m = 1.46;
        let g = 1.4;
        let p2 = p1 * (1.0 + 2.0 * g / (g + 1.0) * (m * m - 1.0));
        let rho2 = rho1 * ((g + 1.0) * m * m) / ((g - 1.0) * m * m + 2.0);
        let c1 = air.sound_speed(rho1, p1);
        let u2 = m * c1 * (1.0 - rho1 / rho2);
        CaseBuilder::new(vec![air, water], 2, [n, n, 1])
            .extent([-5.0e-3, -5.0e-3, 0.0], [5.0e-3, 5.0e-3, 1.0])
            .bc(BcSpec::transmissive())
            .smear(1.0)
            // Background: quiescent air.
            .patch(
                Region::All,
                PatchState::two_fluid(1.0 - 1e-6, [rho1, 1000.0], [0.0; 3], p1),
            )
            // Post-shock air left of the shock.
            .patch(
                Region::HalfSpace {
                    axis: 0,
                    bound: -2.5e-3,
                },
                PatchState::two_fluid(1.0 - 1e-6, [rho2, 1000.0], [u2, 0.0, 0.0], p2),
            )
            // Water droplet of radius 1 mm at the origin.
            .patch(
                Region::Sphere {
                    center: [0.0; 3],
                    radius: 1.0e-3,
                },
                PatchState::two_fluid(1e-6, [rho1, 1000.0], [0.0; 3], p1),
            )
    }

    /// Mach-2.4 shock in water hitting a cluster of air bubbles
    /// (down-scaled 2-D analog of §VI-C).
    pub fn shock_bubble_cloud_2d(n: usize, bubbles: &[([f64; 3], f64)]) -> CaseBuilder {
        let air = Fluid::air();
        let water = Fluid::water();
        let (rho1, p1) = (1000.0, 101325.0);
        // Strong pressure pulse instead of exact RH for the liquid.
        let p2 = 50.0 * p1;
        let mut cb = CaseBuilder::new(vec![air, water], 2, [n, n, 1])
            .extent([-5.0e-3, -5.0e-3, 0.0], [5.0e-3, 5.0e-3, 1.0])
            .bc(BcSpec::transmissive())
            .smear(1.0)
            .patch(
                Region::All,
                PatchState::two_fluid(1e-6, [1.2, rho1], [0.0; 3], p1),
            )
            .patch(
                Region::HalfSpace {
                    axis: 0,
                    bound: -3.5e-3,
                },
                PatchState::two_fluid(1e-6, [1.2, rho1 * 1.2], [50.0, 0.0, 0.0], p2),
            );
        for &(c, r) in bubbles {
            cb = cb.patch(
                Region::Sphere {
                    center: c,
                    radius: r,
                },
                PatchState::two_fluid(1.0 - 1e-6, [1.2, rho1], [0.0; 3], p1),
            );
        }
        cb
    }

    /// Uniform free stream (for free-stream-preservation and IBM tests).
    pub fn uniform_flow(ndim: usize, n: [usize; 3], vel: [f64; 3]) -> CaseBuilder {
        CaseBuilder::new(vec![Fluid::air()], ndim, n)
            .bc(BcSpec::all(BcKind::Transmissive))
            .patch(Region::All, PatchState::single(1.2, vel, 101325.0))
    }

    /// The representative two-phase problem of the scaling studies: a
    /// spherical air cavity in water, periodic box.
    pub fn two_phase_benchmark(ndim: usize, n: [usize; 3]) -> CaseBuilder {
        CaseBuilder::new(vec![Fluid::air(), Fluid::water()], ndim, n)
            .extent([0.0; 3], [1.0, 1.0, 1.0])
            .bc(BcSpec::periodic())
            .smear(1.0)
            .patch(
                Region::All,
                PatchState::two_fluid(1e-6, [1.2, 1000.0], [1.0, 0.5, 0.25], 1.0e5),
            )
            .patch(
                Region::Sphere {
                    center: [0.5, 0.5, if ndim == 3 { 0.5 } else { 0.0 }],
                    radius: 0.2,
                },
                PatchState::two_fluid(1.0 - 1e-6, [1.2, 1000.0], [1.0, 0.5, 0.25], 1.0e5),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_classify_points() {
        assert!(Region::All.contains([1e9; 3]));
        let b = Region::Box {
            lo: [0.0; 3],
            hi: [1.0; 3],
        };
        assert!(b.contains([0.5, 0.5, 0.0]));
        assert!(!b.contains([1.5, 0.5, 0.0]));
        let s = Region::Sphere {
            center: [0.0; 3],
            radius: 1.0,
        };
        assert!(s.contains([0.5, 0.5, 0.5]));
        assert!(!s.contains([1.0, 1.0, 0.0]));
        let h = Region::HalfSpace {
            axis: 1,
            bound: 0.0,
        };
        assert!(h.contains([5.0, -0.1, 0.0]));
        assert!(!h.contains([5.0, 0.1, 0.0]));
    }

    #[test]
    fn later_patches_overwrite() {
        let cb = presets::sod(16);
        let left = cb.state_at([0.25, 0.5, 0.5]);
        let right = cb.state_at([0.75, 0.5, 0.5]);
        assert_eq!(left.p, 1.0);
        assert_eq!(right.p, 0.1);
    }

    #[test]
    fn init_block_produces_expected_pressures() {
        let cb = presets::sod(32);
        let ctx = Context::serial();
        let dom = cb.domain(3);
        let grid = cb.grid();
        let cons = cb.init_block(&ctx, &dom, &grid, [0, 0, 0]);
        // Convert back and check pressure jump.
        let mut prim = StateField::zeros(dom);
        crate::state::cons_to_prim_field(&ctx, &cb.fluids, &cons, &mut prim);
        let eq = cb.eq();
        assert!((prim.get(5, 0, 0, eq.energy()) - 1.0).abs() < 1e-12);
        assert!((prim.get(30, 0, 0, eq.energy()) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn offset_block_sees_shifted_coordinates() {
        let cb = presets::sod(32);
        let ctx = Context::serial();
        let eq = cb.eq();
        let dom = Domain::new([16, 1, 1], 3, eq);
        let grid = cb.grid();
        // Right half block: all cells should carry the low-pressure state.
        let cons = cb.init_block(&ctx, &dom, &grid, [16, 0, 0]);
        let mut prim = StateField::zeros(dom);
        crate::state::cons_to_prim_field(&ctx, &cb.fluids, &cons, &mut prim);
        for i in 0..16 {
            assert!((prim.get(3 + i, 0, 0, eq.energy()) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn smeared_droplet_has_diffuse_interface() {
        let cb = presets::shock_droplet_2d(64);
        // Just inside/outside the droplet radius the blend is intermediate.
        let near = cb.state_at([1.0e-3, 0.0, 0.0]);
        assert!(
            near.alpha[0] > 0.3 && near.alpha[0] < 0.7,
            "alpha={}",
            near.alpha[0]
        );
        let center = cb.state_at([0.0, 0.0, 0.0]);
        assert!(center.alpha[1] > 0.99);
    }

    #[test]
    #[should_panic]
    fn missing_background_patch_panics() {
        let cb = CaseBuilder::new(vec![Fluid::air()], 1, [8, 1, 1]);
        let _ = cb.state_at([0.5, 0.5, 0.5]);
    }
}
