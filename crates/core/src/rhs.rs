//! The finite-volume right-hand side: the paper's hot path.
//!
//! One RHS evaluation per direction does exactly what MFC does on the GPU:
//!
//! 1. pack the primitive state into a direction-coalesced flat buffer
//!    (the canonical primitive buffer *is* the x-coalesced `v_temp`; it is
//!    *reshaped* for y/z — Listings 3–4; kernel class `Pack`),
//! 2. WENO-reconstruct left/right face states along the now-unit-stride
//!    lines (class `Weno`),
//! 3. solve an approximate Riemann problem per face (class `Riemann`),
//!    recording the contact speed `S*` per face,
//! 4. accumulate the flux divergence into the RHS and the `S*` differences
//!    into the cell-centered velocity divergence (class `Update`),
//!
//! and finally closes the non-conservative volume-fraction equation with
//! `rhs[alpha_i] += alpha_i * div(u)` plus optional axisymmetric sources.
//!
//! Steps 1–4 run either as full-grid *staged* passes (each stage streams
//! the whole grid through memory) or through the cache-blocked *fused*
//! pencil engine ([`crate::fused`]) — selected by [`RhsMode`], bitwise
//! identically.

use serde::{Deserialize, Serialize};
use std::time::Instant;

use mfc_acc::{Context, KernelClass, KernelCost, Lane, LaneKernel, LaunchConfig, ParSlice};
use mfc_layout::{
    transpose_2134_geam, transpose_2134_naive, transpose_3214_geam, transpose_3214_naive,
    transpose_3214_tiled, Dims3, Dims4, Flat4D,
};

use crate::axisym::Geometry;
use crate::domain::{Domain, MAX_EQ};
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use crate::grid::Grid;
use crate::limiter::{limit_state, Limiter};
use crate::riemann::RiemannSolver;
use crate::state::StateField;
use crate::weno::{reconstruct_sweep, reconstruct_sweep_region, WenoOrder};

/// How the y/z coalescing reshapes are executed (§III-D ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PackStrategy {
    /// Fully collapsed scalar loops (slow path on MI250X).
    CollapsedLoops,
    /// Cache-tiled transposes (the cuTENSOR-like path).
    Tiled,
    /// Two-step batched GEAM decomposition (the hipBLAS path).
    Geam,
}

/// How the per-direction sweeps are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum RhsMode {
    /// Full-grid stages with grid-sized intermediates: pack, WENO, Riemann
    /// and update each stream the entire grid through memory. This mirrors
    /// the unfused GPU pipeline and stays alive as the ablation baseline.
    Staged,
    /// Cache-blocked pencil engine ([`crate::fused`]): batches of
    /// transverse lines flow through pack→WENO→Riemann→update in a single
    /// pass with small per-pencil scratch instead of grid-sized
    /// intermediates, and ghost transverse lines (whose staged outputs are
    /// never consumed) are skipped. Bitwise identical to `Staged` with
    /// substantially less memory traffic.
    #[default]
    Fused,
}

impl RhsMode {
    pub fn name(self) -> &'static str {
        match self {
            RhsMode::Staged => "staged",
            RhsMode::Fused => "fused",
        }
    }
}

/// Numerical options of one RHS evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RhsConfig {
    pub order: WenoOrder,
    pub solver: RiemannSolver,
    pub pack: PackStrategy,
    pub geometry: Geometry,
    /// Positivity enforcement for reconstructed face states.
    pub limiter: Limiter,
    /// Sweep execution engine (staged full-grid stages vs fused pencils).
    #[serde(default)]
    pub mode: RhsMode,
}

impl Default for RhsConfig {
    fn default() -> Self {
        RhsConfig {
            order: WenoOrder::Weno5,
            solver: RiemannSolver::Hllc,
            pack: PackStrategy::Tiled,
            geometry: Geometry::Cartesian,
            limiter: Limiter::default(),
            mode: RhsMode::default(),
        }
    }
}

/// Reusable buffers for RHS evaluations (the `v_temp`/`v_sf_t` analogs;
/// allocated once, never inside the time loop).
///
/// The grid-sized staged intermediates (`packed`, `left`, `right`, `flux`,
/// `ustar`) are grown lazily on the first `Staged` evaluation: the fused
/// pencil engine replaces all of them with a few KB of per-pencil scratch
/// ([`crate::fused::FusedScratch`]), so a fused-mode run never allocates
/// them at all.
pub struct RhsWorkspace {
    pub(crate) dom: Domain,
    /// Primitive state, canonical (x-coalesced) layout.
    pub prim: StateField,
    /// Direction-coalesced buffer for the current sweep (y/z reshape
    /// target; the x sweep reads the canonical `prim` buffer directly).
    packed: Vec<Flat4D>,
    /// Face states and fluxes, per direction.
    left: Vec<Flat4D>,
    right: Vec<Flat4D>,
    flux: Vec<Flat4D>,
    ustar: Vec<Flat4D>,
    /// Cell-centered velocity divergence, canonical spatial layout.
    pub(crate) divu: Vec<f64>,
    /// Ghost-inclusive cell widths per axis.
    pub(crate) widths: [Vec<f64>; 3],
    /// Radial centers (ghost-inclusive along y) for axisymmetric sources.
    pub(crate) radii: Vec<f64>,
    /// GEAM scratch.
    scratch: Vec<f64>,
    /// Per-pencil scratch of the fused sweep engine, one block per worker
    /// gang (grown lazily to the context's worker count on first use).
    pub(crate) fused: Vec<crate::fused::FusedScratch>,
}

impl RhsWorkspace {
    pub fn new(dom: Domain, grid: &Grid) -> Self {
        let d3 = dom.dims3();
        let widths = [
            grid.x.widths_with_ghosts(dom.pad(0)),
            grid.y.widths_with_ghosts(dom.pad(1)),
            grid.z.widths_with_ghosts(dom.pad(2)),
        ];
        let mut radii = vec![1.0; d3.n2];
        for (j, r) in radii.iter_mut().enumerate() {
            let jj = j as isize - dom.pad(1) as isize;
            let centers = grid.y.centers();
            *r = if jj < 0 {
                centers[0] - (0 - jj) as f64 * grid.y.widths()[0]
            } else if jj as usize >= centers.len() {
                centers[centers.len() - 1]
                    + (jj as usize - centers.len() + 1) as f64 * grid.y.widths()[centers.len() - 1]
            } else {
                centers[jj as usize]
            };
        }
        RhsWorkspace {
            dom,
            prim: StateField::zeros(dom),
            packed: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            flux: Vec::new(),
            ustar: Vec::new(),
            divu: vec![0.0; d3.len()],
            widths,
            radii,
            // Preallocated so the first 3-D GEAM z-reshape never grows a
            // buffer inside the time loop.
            scratch: if dom.eq.ndim() == 3 {
                vec![0.0; dom.dims4().len()]
            } else {
                Vec::new()
            },
            fused: Vec::new(),
        }
    }

    /// Grow the grid-sized staged sweep buffers on first staged use.
    fn ensure_staged(&mut self) {
        if !self.left.is_empty() {
            return;
        }
        let dom = self.dom;
        let neq = dom.eq.neq();
        for axis in 0..dom.eq.ndim() {
            let (e1, t1, t2) = sweep_extents(&dom, axis);
            // The x sweep reads the canonical primitive buffer directly;
            // only the y/z reshapes need a transpose target.
            self.packed.push(if axis == 0 {
                Flat4D::zeros(Dims4::new(1, 1, 1, 1))
            } else {
                Flat4D::zeros(Dims4::new(e1, t1, t2, neq))
            });
            let nf = dom.n[axis] + 1;
            self.left.push(Flat4D::zeros(Dims4::new(nf, t1, t2, neq)));
            self.right.push(Flat4D::zeros(Dims4::new(nf, t1, t2, neq)));
            self.flux.push(Flat4D::zeros(Dims4::new(nf, t1, t2, neq)));
            self.ustar.push(Flat4D::zeros(Dims4::new(nf, t1, t2, 1)));
        }
    }

    /// The velocity divergence of the last evaluation (diagnostics).
    pub fn divu(&self) -> &[f64] {
        &self.divu
    }

    /// Ghost-inclusive radial (y) cell-center coordinates.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }
}

/// Extents of the sweep buffer along `axis`: (sweep extent incl. ghosts,
/// transverse 1, transverse 2), matching the coalescing permutations
/// identity / (2,1,3,4) / (3,2,1,4).
fn sweep_extents(dom: &Domain, axis: usize) -> (usize, usize, usize) {
    let d3 = dom.dims3();
    match axis {
        0 => (d3.n1, d3.n2, d3.n3),
        1 => (d3.n2, d3.n1, d3.n3),
        2 => (d3.n3, d3.n2, d3.n1),
        _ => unreachable!(),
    }
}

/// An axis-aligned box of interior cells (0-based interior coordinates,
/// half-open on every axis) — the unit of the overlapped-stepping
/// interior/shell decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub lo: [usize; 3],
    pub hi: [usize; 3],
}

impl Region {
    /// The whole interior.
    pub fn full(dom: &Domain) -> Self {
        Region {
            lo: [0; 3],
            hi: dom.n,
        }
    }

    pub fn is_empty(&self) -> bool {
        (0..3).any(|d| self.hi[d] <= self.lo[d])
    }

    pub fn cells(&self) -> usize {
        (0..3)
            .map(|d| self.hi[d].saturating_sub(self.lo[d]))
            .product()
    }

    /// `(start, length)` along `axis`.
    #[inline]
    pub(crate) fn span(&self, axis: usize) -> (usize, usize) {
        (self.lo[axis], self.hi[axis] - self.lo[axis])
    }
}

/// A region's transverse extent in sweep coordinates for `axis`:
/// `(t1_start, t1_len, t2_start, t2_len)`, padded — the same mapping the
/// staged update stage uses for its interior bounds.
#[inline]
pub(crate) fn region_transverse(
    dom: &Domain,
    axis: usize,
    r: &Region,
) -> (usize, usize, usize, usize) {
    let (a1, a2) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (1, 0),
    };
    (
        dom.pad(a1) + r.lo[a1],
        r.hi[a1] - r.lo[a1],
        dom.pad(a2) + r.lo[a2],
        r.hi[a2] - r.lo[a2],
    )
}

/// Interior/shell split for overlapped stepping.
///
/// `interior` holds the cells whose reconstruction stencils never read a
/// ghost layer — their RHS contribution can be computed while halo
/// messages are still in flight. `shells` are disjoint boxes tiling the
/// rest of the interior exactly; they run after the exchange completes.
/// On a block too thin to have any stencil-safe core (`n[d] <= 2*ng` on
/// some padded axis) `interior` is `None` and the single shell is the
/// full block: the overlapped driver degenerates to exchange-then-compute.
#[derive(Debug, Clone)]
pub struct OverlapPlan {
    pub interior: Option<Region>,
    pub shells: Vec<Region>,
}

impl OverlapPlan {
    pub fn new(dom: &Domain) -> Self {
        // Inset by the *domain* ghost width on every padded axis (not the
        // active stencil's, which the recovery ladder may narrow): the
        // split must not depend on the ladder rung, or a mid-replay
        // degrade would change summation grouping.
        let mut lo = [0usize; 3];
        let mut hi = dom.n;
        for d in 0..3 {
            if dom.pad(d) > 0 {
                lo[d] = dom.ng.min(dom.n[d]);
                hi[d] = dom.n[d].saturating_sub(dom.ng).max(lo[d]);
            }
        }
        let interior = Region { lo, hi };
        let full = Region::full(dom);
        if interior.is_empty() {
            return OverlapPlan {
                interior: None,
                shells: vec![full],
            };
        }
        // Peel shells off the full box axis by axis — low slab, high slab,
        // shrink — leaving disjoint boxes that cover everything outside
        // the interior core.
        let mut shells = Vec::new();
        let mut core = full;
        for d in 0..3 {
            if interior.lo[d] > core.lo[d] {
                let mut s = core;
                s.hi[d] = interior.lo[d];
                shells.push(s);
                core.lo[d] = interior.lo[d];
            }
            if interior.hi[d] < core.hi[d] {
                let mut s = core;
                s.lo[d] = interior.hi[d];
                shells.push(s);
                core.hi[d] = interior.hi[d];
            }
        }
        debug_assert_eq!(core, interior);
        OverlapPlan {
            interior: Some(interior),
            shells,
        }
    }
}

/// Map sweep-layout coordinates `(s, t1, t2)` back to canonical `(i, j, k)`.
#[inline(always)]
pub(crate) fn sweep_to_canonical(
    axis: usize,
    s: usize,
    t1: usize,
    t2: usize,
) -> (usize, usize, usize) {
    match axis {
        0 => (s, t1, t2),
        1 => (t1, s, t2),
        _ => (t2, t1, s),
    }
}

/// Record a packing operation (performed by the layout library, outside
/// the launch API) in the ledger.
fn record_pack(ctx: &Context, label: &'static str, elems: usize, t0: Instant) {
    let cost = KernelCost::new(KernelClass::Pack, 0.0, 8.0, 8.0);
    ctx.record_external(label, cost, elems as u64, t0);
}

/// Evaluate `rhs = L(cons)`.
///
/// Ghost cells of `cons` must be valid (physical BCs and/or halo exchange
/// already applied). Only interior entries of `rhs` are written.
pub fn compute_rhs(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    cons: &StateField,
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
) {
    let dom = ws.dom;
    assert_eq!(cons.domain(), &dom);
    assert_eq!(rhs.domain(), &dom);
    // The ghost width only needs to *cover* the stencil: the recovery
    // ladder runs WENO3 (2 layers) inside a WENO5-sized (3-layer) domain.
    assert!(
        dom.ng >= cfg.order.ghost_layers().max(1),
        "domain ghost width {} does not cover the reconstruction stencil ({})",
        dom.ng,
        cfg.order.ghost_layers().max(1)
    );

    // 1. Primitive variables everywhere (ghosts included).
    crate::state::cons_to_prim_field(ctx, fluids, cons, &mut ws.prim);

    rhs.fill(0.0);
    ws.divu.fill(0.0);

    // 2–6. The per-direction sweeps: pack, WENO reconstruction, Riemann
    // solve, flux-divergence update — as full-grid stages or as one fused
    // cache-blocked pass, bitwise identically.
    match cfg.mode {
        RhsMode::Staged => staged_sweeps(ctx, cfg, fluids, ws, rhs),
        RhsMode::Fused => crate::fused::fused_sweeps(ctx, cfg, fluids, ws, rhs),
    }

    // 7. Non-conservative volume-fraction source: rhs[alpha] += alpha div u.
    alpha_source(ctx, &dom, &ws.prim, &ws.divu, rhs);

    // 8. Geometric sources (axisymmetric / cylindrical).
    match cfg.geometry {
        Geometry::Cartesian => {}
        Geometry::Axisymmetric => {
            crate::axisym::axisym_source(ctx, &dom, fluids, &ws.prim, &ws.radii, rhs);
        }
        Geometry::Cylindrical3D => {
            crate::axisym::cylindrical_source(ctx, &dom, fluids, &ws.prim, &ws.radii, rhs);
        }
    }

    // 9. Viscous fluxes (Navier-Stokes terms), when any fluid is viscous.
    if crate::viscous::is_viscous(fluids) {
        crate::viscous::add_viscous_fluxes(ctx, &dom, fluids, &ws.prim, &ws.widths, rhs);
    }
}

/// The staged sweep pipeline: full-grid pack / WENO / Riemann / update
/// stages with grid-sized intermediates (the unfused GPU-pipeline analog,
/// kept as the fusion-ablation baseline).
fn staged_sweeps(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
) {
    let dom = ws.dom;
    let eq = dom.eq;
    ws.ensure_staged();

    for axis in 0..eq.ndim() {
        // 3. Direction-coalesced buffer: the x sweep reads the canonical
        //    primitive buffer directly (its lines are already unit-stride);
        //    y/z reshape into the transpose target.
        staged_reshape(ctx, cfg, ws, axis);

        // 4. WENO reconstruction along the coalesced index.
        let n = dom.n[axis];
        let packed = if axis == 0 {
            ws.prim.flat()
        } else {
            &ws.packed[axis]
        };
        reconstruct_sweep(
            ctx,
            cfg.order,
            packed,
            n,
            &mut ws.left[axis],
            &mut ws.right[axis],
        );

        // 5. Riemann solve per face.
        riemann_sweep(
            ctx,
            cfg,
            fluids,
            &eq,
            axis,
            packed,
            &ws.left[axis],
            &ws.right[axis],
            &mut ws.flux[axis],
            &mut ws.ustar[axis],
        );

        // 6. Flux divergence into the canonical RHS + S* differences into
        //    div(u). In 3-D cylindrical coordinates the azimuthal cell
        //    width is r * dtheta.
        let radial_metric = if axis == 2 && cfg.geometry == Geometry::Cylindrical3D {
            Some(&ws.radii[..])
        } else {
            None
        };
        accumulate_divergence(
            ctx,
            &dom,
            axis,
            &ws.flux[axis],
            &ws.ustar[axis],
            &ws.widths[axis],
            radial_metric,
            rhs,
            &mut ws.divu,
        );
    }
}

/// Reshape the canonical primitive buffer into the direction-coalesced
/// sweep buffer for `axis` (no-op for x, whose lines are already
/// unit-stride).
fn staged_reshape(ctx: &Context, cfg: &RhsConfig, ws: &mut RhsWorkspace, axis: usize) {
    match axis {
        0 => {}
        1 => {
            let t0 = Instant::now();
            match cfg.pack {
                PackStrategy::CollapsedLoops => {
                    transpose_2134_naive(ws.prim.flat(), &mut ws.packed[1])
                }
                PackStrategy::Tiled | PackStrategy::Geam => {
                    transpose_2134_geam(ws.prim.flat(), &mut ws.packed[1])
                }
            }
            record_pack(ctx, "s_reshape_sweep_y", ws.packed[1].dims().len(), t0);
        }
        _ => {
            let t0 = Instant::now();
            match cfg.pack {
                PackStrategy::CollapsedLoops => {
                    transpose_3214_naive(ws.prim.flat(), &mut ws.packed[2])
                }
                PackStrategy::Tiled => transpose_3214_tiled(ws.prim.flat(), &mut ws.packed[2]),
                PackStrategy::Geam => {
                    transpose_3214_geam(ws.prim.flat(), &mut ws.scratch, &mut ws.packed[2])
                }
            }
            record_pack(ctx, "s_reshape_sweep_z", ws.packed[2].dims().len(), t0);
        }
    }
}

/// Phase 1 of an overlapped evaluation: convert to primitives over the
/// full padded grid and zero the accumulators.
///
/// Ghost primitives are *stale* at this point (the halo exchange has only
/// been posted), which is safe because the conversion is pointwise —
/// interior primitive values depend only on interior conservative values,
/// which no exchange or BC ever writes — and the interior regions the
/// phase-1 sweeps consume never read a ghost cell. Phase 2
/// ([`rhs_overlap_finish`]) re-runs the conversion once ghosts are valid.
pub fn rhs_overlap_begin(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    cons: &StateField,
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
) {
    let dom = ws.dom;
    assert_eq!(cons.domain(), &dom);
    assert_eq!(rhs.domain(), &dom);
    assert!(
        dom.ng >= cfg.order.ghost_layers().max(1),
        "domain ghost width {} does not cover the reconstruction stencil ({})",
        dom.ng,
        cfg.order.ghost_layers().max(1)
    );
    crate::state::cons_to_prim_field(ctx, fluids, cons, &mut ws.prim);
    rhs.fill(0.0);
    ws.divu.fill(0.0);
    if cfg.mode == RhsMode::Staged {
        ws.ensure_staged();
    }
}

/// Interior contribution of one directional sweep, restricted to the
/// stencil-safe `region` — enqueued on the async queue of `axis` by the
/// overlapped driver and run while that axis's halo messages are in
/// flight. Identical per-face arithmetic to the full sweep.
pub fn rhs_overlap_interior_axis(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
    region: &Region,
    axis: usize,
) {
    match cfg.mode {
        RhsMode::Staged => {
            staged_reshape(ctx, cfg, ws, axis);
            staged_region_sweep(ctx, cfg, fluids, ws, rhs, axis, region);
        }
        RhsMode::Fused => {
            crate::fused::fused_sweep_axis_region(ctx, cfg, fluids, ws, rhs, axis, region)
        }
    }
}

/// Phase 2 of an overlapped evaluation, after the exchange drained and
/// physical BCs were applied: refresh the primitive ghosts, sweep the
/// boundary shells (axis-major, so every cell still accumulates its x, y,
/// z contributions in that order), then the grid-global closures exactly
/// as [`compute_rhs`] steps 7–9.
pub fn rhs_overlap_finish(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    cons: &StateField,
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
    plan: &OverlapPlan,
) {
    let dom = ws.dom;
    // Re-converting the full grid reproduces every interior primitive
    // bitwise (pointwise map of unchanged conservative cells) and makes
    // the ghost primitives valid for the shell stencils.
    crate::state::cons_to_prim_field(ctx, fluids, cons, &mut ws.prim);

    for axis in 0..dom.eq.ndim() {
        match cfg.mode {
            RhsMode::Staged => {
                staged_reshape(ctx, cfg, ws, axis);
                for r in &plan.shells {
                    staged_region_sweep(ctx, cfg, fluids, ws, rhs, axis, r);
                }
            }
            RhsMode::Fused => {
                for r in &plan.shells {
                    crate::fused::fused_sweep_axis_region(ctx, cfg, fluids, ws, rhs, axis, r);
                }
            }
        }
    }

    alpha_source(ctx, &dom, &ws.prim, &ws.divu, rhs);
    match cfg.geometry {
        Geometry::Cartesian => {}
        Geometry::Axisymmetric => {
            crate::axisym::axisym_source(ctx, &dom, fluids, &ws.prim, &ws.radii, rhs);
        }
        Geometry::Cylindrical3D => {
            crate::axisym::cylindrical_source(ctx, &dom, fluids, &ws.prim, &ws.radii, rhs);
        }
    }
    if crate::viscous::is_viscous(fluids) {
        crate::viscous::add_viscous_fluxes(ctx, &dom, fluids, &ws.prim, &ws.widths, rhs);
    }
}

/// One region-restricted staged sweep along `axis`: WENO, Riemann, and
/// update over exactly the faces and transverse lines the region's cells
/// consume. The reshape is hoisted to the caller (one transpose per axis
/// per phase, shared by all shell regions). Unlike the full staged sweep
/// this computes no dead ghost-line work — which cannot change a consumed
/// bit, since the update stage of a region only reads its own faces.
fn staged_region_sweep(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
    axis: usize,
    region: &Region,
) {
    if region.is_empty() {
        return;
    }
    let dom = ws.dom;
    let eq = dom.eq;
    let n = dom.n[axis];
    let (f_lo, s_n) = region.span(axis);
    let (t1_lo, t1_n, t2_lo, t2_n) = region_transverse(&dom, axis, region);
    let packed = if axis == 0 {
        ws.prim.flat()
    } else {
        &ws.packed[axis]
    };
    reconstruct_sweep_region(
        ctx,
        cfg.order,
        packed,
        n,
        f_lo,
        s_n + 1,
        t1_lo,
        t1_n,
        t2_lo,
        t2_n,
        &mut ws.left[axis],
        &mut ws.right[axis],
    );
    riemann_sweep_region(
        ctx,
        cfg,
        fluids,
        &eq,
        axis,
        packed,
        &ws.left[axis],
        &ws.right[axis],
        &mut ws.flux[axis],
        &mut ws.ustar[axis],
        (f_lo, s_n + 1, t1_lo, t1_n, t2_lo, t2_n),
    );
    let radial_metric = if axis == 2 && cfg.geometry == Geometry::Cylindrical3D {
        Some(&ws.radii[..])
    } else {
        None
    };
    accumulate_divergence_region(
        ctx,
        &dom,
        axis,
        &ws.flux[axis],
        &ws.ustar[axis],
        &ws.widths[axis],
        radial_metric,
        rhs,
        &mut ws.divu,
        region,
    );
}

/// Solve a Riemann problem on every face of the sweep, with a first-order
/// positivity fallback when a reconstructed state is unphysical.
#[allow(clippy::too_many_arguments)]
fn riemann_sweep(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    eq: &EqIdx,
    axis: usize,
    packed: &Flat4D,
    left: &Flat4D,
    right: &Flat4D,
    flux: &mut Flat4D,
    ustar: &mut Flat4D,
) {
    // The full sweep is the region sweep over the whole face grid: item
    // decode, ordering and per-face arithmetic coincide exactly.
    let fd = left.dims();
    let window = (0, fd.n1, 0, fd.n2, 0, fd.n3);
    riemann_sweep_region(
        ctx, cfg, fluids, eq, axis, packed, left, right, flux, ustar, window,
    );
}

/// Region-restricted [`riemann_sweep`]: the same gather / positivity
/// limit / flux arithmetic on the face window `(f_lo, f_count)` ×
/// transverse lines `(t1_lo, t1_n) × (t2_lo, t2_n)` only, writing each
/// face at its absolute index.
#[allow(clippy::too_many_arguments)]
fn riemann_sweep_region(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    eq: &EqIdx,
    axis: usize,
    packed: &Flat4D,
    left: &Flat4D,
    right: &Flat4D,
    flux: &mut Flat4D,
    ustar: &mut Flat4D,
    window: (usize, usize, usize, usize, usize, usize),
) {
    let (f_lo, f_count, t1_lo, t1_n, t2_lo, t2_n) = window;
    let fd = left.dims();
    let (nf1, t1, t2) = (fd.n1, fd.n2, fd.n3);
    let neq = eq.neq();
    let face_stride = nf1 * t1 * t2;
    let cell_stride = packed.dims().n1 * t1 * t2;
    let ext1 = packed.dims().n1;
    let pad = (ext1 + 1 - nf1) / 2;
    assert!(f_lo + f_count <= nf1 && t1_lo + t1_n <= t1 && t2_lo + t2_n <= t2);
    if f_count == 0 || t1_n == 0 || t2_n == 0 {
        return;
    }

    let cost = KernelCost::new(
        KernelClass::Riemann,
        cfg.solver.flops_per_face(eq),
        2.0 * 8.0 * neq as f64,
        8.0 * (neq + 1) as f64,
    );
    let cfgl = LaunchConfig::tuned("s_riemann_solve");
    // Lane-tiled: rows are transverse lines of the window, lanes pack
    // along the face index (unit stride in every per-variable plane). The
    // generic select-form solvers make each lane bitwise the scalar solve
    // of its own face; a packet containing any inadmissible state replays
    // through the scalar path so the positivity limiter stays the scalar
    // arithmetic.
    let kernel = RiemannKernel {
        eq: *eq,
        fluids,
        solver: cfg.solver,
        limiter: cfg.limiter,
        axis,
        lsl: left.as_slice(),
        rsl: right.as_slice(),
        psl: packed.as_slice(),
        fsl: ParSlice::new(flux.as_mut_slice()),
        usl: ParSlice::new(ustar.as_mut_slice()),
        nf1,
        f_lo,
        t1_lo,
        t1_n,
        t2_lo,
        t1,
        face_stride,
        cell_stride,
        ext1,
        pad,
    };
    ctx.launch_vec(&cfgl, cost, t1_n * t2_n, f_count, &kernel);
}

/// Lane kernel of the Riemann sweeps: row = transverse line of the
/// window, col = offset into the face window.
struct RiemannKernel<'a> {
    eq: EqIdx,
    fluids: &'a [Fluid],
    solver: RiemannSolver,
    limiter: Limiter,
    axis: usize,
    lsl: &'a [f64],
    rsl: &'a [f64],
    psl: &'a [f64],
    fsl: ParSlice<'a>,
    usl: ParSlice<'a>,
    nf1: usize,
    f_lo: usize,
    t1_lo: usize,
    t1_n: usize,
    t2_lo: usize,
    /// Full first transverse extent of the face buffers.
    t1: usize,
    face_stride: usize,
    cell_stride: usize,
    ext1: usize,
    pad: usize,
}

impl RiemannKernel<'_> {
    /// `(m, line)` of one window item.
    #[inline(always)]
    fn decode(&self, lr: usize, col: usize) -> (usize, usize) {
        let m = self.f_lo + col;
        let t1i = self.t1_lo + lr % self.t1_n;
        let t2i = self.t2_lo + lr / self.t1_n;
        (m, t1i + self.t1 * t2i)
    }

    /// One face through the scalar path — gather, positivity enforcement
    /// (limit reconstructed states toward the adjacent cell averages when
    /// inadmissible: first-order fallback or Zhang-Shu scaling, per the
    /// configuration), solve, scatter.
    fn solve_scalar(&self, m: usize, line: usize) {
        let eq = &self.eq;
        let neq = eq.neq();
        let face = m + self.nf1 * line;
        let mut pl = [0.0; MAX_EQ];
        let mut pr = [0.0; MAX_EQ];
        let mut f = [0.0; MAX_EQ];
        for e in 0..neq {
            pl[e] = self.lsl[face + e * self.face_stride];
            pr[e] = self.rsl[face + e * self.face_stride];
        }
        let cell_l = (self.pad - 1 + m) + self.ext1 * line;
        let cell_r = cell_l + 1;
        let mut mean = [0.0; MAX_EQ];
        if !state_admissible(eq, self.fluids, &pl[..neq]) {
            for (e, mv) in mean.iter_mut().enumerate().take(neq) {
                *mv = self.psl[cell_l + e * self.cell_stride];
            }
            limit_state(self.limiter, eq, self.fluids, &mean[..neq], &mut pl[..neq]);
        }
        if !state_admissible(eq, self.fluids, &pr[..neq]) {
            for (e, mv) in mean.iter_mut().enumerate().take(neq) {
                *mv = self.psl[cell_r + e * self.cell_stride];
            }
            limit_state(self.limiter, eq, self.fluids, &mean[..neq], &mut pr[..neq]);
        }
        let s = self.solver.flux(
            eq,
            self.fluids,
            self.axis,
            &pl[..neq],
            &pr[..neq],
            &mut f[..neq],
        );
        for (e, &v) in f[..neq].iter().enumerate() {
            self.fsl.set(face + e * self.face_stride, v);
        }
        self.usl.set(face, s);
    }
}

impl LaneKernel for RiemannKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, lr: usize, col: usize) {
        let (m, line) = self.decode(lr, col);
        let eq = &self.eq;
        let neq = eq.neq();
        let face = m + self.nf1 * line;
        let mut pl = [L::splat(0.0); MAX_EQ];
        let mut pr = [L::splat(0.0); MAX_EQ];
        let mut f = [L::splat(0.0); MAX_EQ];
        for e in 0..neq {
            pl[e] = L::load(&self.lsl[face + e * self.face_stride..]);
            pr[e] = L::load(&self.rsl[face + e * self.face_stride..]);
        }
        let ok = L::mask_and(
            admissible_mask(eq, self.fluids, &pl[..neq]),
            admissible_mask(eq, self.fluids, &pr[..neq]),
        );
        if !L::mask_all(ok) {
            // A lane needs the positivity limiter (rare, and branchy by
            // nature): replay the whole packet face by face through the
            // scalar path, which is bitwise what the scalar sweep does —
            // including for the admissible lanes.
            for lane in 0..L::WIDTH {
                self.solve_scalar(m + lane, line);
            }
            return;
        }
        let s = self.solver.flux(
            eq,
            self.fluids,
            self.axis,
            &pl[..neq],
            &pr[..neq],
            &mut f[..neq],
        );
        for (e, v) in f.iter().enumerate().take(neq) {
            self.fsl.set_lanes(face + e * self.face_stride, *v);
        }
        self.usl.set_lanes(face, s);
    }
}

/// A primitive state is admissible if its mixture density and stiffened
/// pressure are positive.
#[inline(always)]
pub(crate) fn state_admissible(eq: &EqIdx, fluids: &[Fluid], prim: &[f64]) -> bool {
    let mut rho = 0.0;
    for i in 0..eq.nf() {
        let ar = prim[eq.cont(i)];
        if ar < 0.0 {
            return false;
        }
        rho += ar;
    }
    if rho <= 0.0 {
        return false;
    }
    let p = prim[eq.energy()];
    let min_pi = fluids
        .iter()
        .map(|f| f.pi_inf)
        .fold(f64::INFINITY, f64::min);
    p + min_pi > 0.0
}

/// Lane-wide [`state_admissible`]: each mask lane holds exactly the
/// scalar predicate of its own state (the scalar early returns become a
/// conjunction; NaNs compare false on every branch in both forms, so the
/// fall-through semantics match). Used only to pick the all-admissible
/// fast path — the mask never enters float arithmetic.
#[inline(always)]
pub(crate) fn admissible_mask<L: Lane>(eq: &EqIdx, fluids: &[Fluid], prim: &[L]) -> L::Mask {
    // All-true start: 0 >= 0 holds in every lane.
    let mut ok = L::splat(0.0).ge(L::splat(0.0));
    let mut rho = L::splat(0.0);
    for i in 0..eq.nf() {
        let ar = prim[eq.cont(i)];
        ok = L::mask_and(ok, L::mask_not(ar.lt(L::splat(0.0))));
        rho = rho + ar;
    }
    ok = L::mask_and(ok, L::mask_not(rho.le(L::splat(0.0))));
    let p = prim[eq.energy()];
    let min_pi = fluids
        .iter()
        .map(|f| f.pi_inf)
        .fold(f64::INFINITY, f64::min);
    L::mask_and(ok, (p + L::splat(min_pi)).gt(L::splat(0.0)))
}

/// `rhs[cell] += (F[m] - F[m+1]) / dx`, `divu[cell] += (S*[m+1] - S*[m]) / dx`.
///
/// `radial_metric` (3-D cylindrical azimuthal sweeps only) holds the
/// ghost-inclusive radii indexed by the first transverse coordinate; the
/// effective width becomes `r * dtheta`.
#[allow(clippy::too_many_arguments)]
fn accumulate_divergence(
    ctx: &Context,
    dom: &Domain,
    axis: usize,
    flux: &Flat4D,
    ustar: &Flat4D,
    widths: &[f64],
    radial_metric: Option<&[f64]>,
    rhs: &mut StateField,
    divu: &mut [f64],
) {
    // The full update is the region update over the whole interior: the
    // transverse bounds of `Region::full` reduce to the interior pads and
    // extents, and item decode/ordering coincide exactly.
    debug_assert_eq!(flux.dims().n1, dom.n[axis] + 1);
    accumulate_divergence_region(
        ctx,
        dom,
        axis,
        flux,
        ustar,
        widths,
        radial_metric,
        rhs,
        divu,
        &Region::full(dom),
    );
}

/// Region-restricted [`accumulate_divergence`]: identical per-cell
/// arithmetic, iterating only the region's cells.
#[allow(clippy::too_many_arguments)]
fn accumulate_divergence_region(
    ctx: &Context,
    dom: &Domain,
    axis: usize,
    flux: &Flat4D,
    ustar: &Flat4D,
    widths: &[f64],
    radial_metric: Option<&[f64]>,
    rhs: &mut StateField,
    divu: &mut [f64],
    region: &Region,
) {
    let eq = dom.eq;
    let neq = eq.neq();
    let fd = flux.dims();
    let (nf1, t1, t2) = (fd.n1, fd.n2, fd.n3);
    let face_stride = nf1 * t1 * t2;
    let ng = dom.pad(axis);
    let d3 = dom.dims3();

    let (s_lo, s_n) = region.span(axis);
    let (p1, n1i, p2, n2i) = region_transverse(dom, axis, region);
    debug_assert!(s_lo + s_n < nf1);

    let cost = KernelCost::new(
        KernelClass::Update,
        (2 * neq + 3) as f64,
        8.0 * 2.0 * (neq + 1) as f64,
        8.0 * (neq + 1) as f64,
    );
    let cfg = LaunchConfig::tuned("s_flux_divergence");
    let cells = s_n * n1i * n2i;
    if cells == 0 {
        return;
    }
    // Lane-tiled: lanes pack along the sweep coordinate, so face reads
    // are unit-stride while the canonical-cell accumulations use the
    // sweep axis's cell stride (1 / ext1 / ext1*ext2). Each cell is
    // written by exactly one lane of one item, so the `+=` order per cell
    // is unchanged.
    let kernel = UpdateKernel {
        neq,
        axis,
        s_lo,
        ng,
        nf1,
        t1,
        p1,
        n1i,
        p2,
        d3,
        block: d3.len(),
        cell_stride: match axis {
            0 => 1,
            1 => d3.n1,
            _ => d3.n1 * d3.n2,
        },
        widths,
        radial_metric,
        fsl: flux.as_slice(),
        usl: ustar.as_slice(),
        face_stride,
        rsl: ParSlice::new(rhs.as_mut_slice()),
        dsl: ParSlice::new(divu),
    };
    ctx.launch_vec(&cfg, cost, n1i * n2i, s_n, &kernel);
}

/// Lane kernel of the flux-divergence update: row = transverse cell pair,
/// col = offset along the sweep axis within the region.
struct UpdateKernel<'a> {
    neq: usize,
    axis: usize,
    s_lo: usize,
    ng: usize,
    nf1: usize,
    t1: usize,
    p1: usize,
    n1i: usize,
    p2: usize,
    d3: Dims3,
    block: usize,
    /// Canonical cell-index stride of one step along the sweep axis.
    cell_stride: usize,
    widths: &'a [f64],
    radial_metric: Option<&'a [f64]>,
    fsl: &'a [f64],
    usl: &'a [f64],
    face_stride: usize,
    rsl: ParSlice<'a>,
    dsl: ParSlice<'a>,
}

impl LaneKernel for UpdateKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, r: usize, col: usize) {
        let s = self.s_lo + col;
        let (a, b) = (r % self.n1i + self.p1, r / self.n1i + self.p2);
        let metric = self.radial_metric.map(|rm| rm[a]).unwrap_or(1.0);
        let inv_dx = L::splat(1.0) / (L::load(&self.widths[self.ng + s..]) * L::splat(metric));
        let face_lo = s + self.nf1 * (a + self.t1 * b);
        let face_hi = face_lo + 1;
        let (i, j, k) = sweep_to_canonical(self.axis, self.ng + s, a, b);
        let cell = self.d3.idx(i, j, k);
        for e in 0..self.neq {
            let flo = L::load(&self.fsl[face_lo + e * self.face_stride..]);
            let fhi = L::load(&self.fsl[face_hi + e * self.face_stride..]);
            let d = (flo - fhi) * inv_dx;
            self.rsl
                .add_lanes_strided(cell + e * self.block, self.cell_stride, d);
        }
        let ulo = L::load(&self.usl[face_lo..]);
        let uhi = L::load(&self.usl[face_hi..]);
        self.dsl
            .add_lanes_strided(cell, self.cell_stride, (uhi - ulo) * inv_dx);
    }
}

/// `rhs[alpha_i] += alpha_i * div(u)` over interior cells.
fn alpha_source(
    ctx: &Context,
    dom: &Domain,
    prim: &StateField,
    divu: &[f64],
    rhs: &mut StateField,
) {
    let eq = dom.eq;
    if eq.n_adv() == 0 {
        return;
    }
    let d3 = dom.dims3();
    let cost = KernelCost::new(
        KernelClass::Other,
        2.0 * eq.n_adv() as f64,
        8.0 * (eq.n_adv() + 1) as f64,
        8.0 * eq.n_adv() as f64,
    );
    let cfg = LaunchConfig::tuned("s_alpha_source");
    // Lane-tiled over interior x rows: alpha, div(u) and the RHS slots
    // are all unit-stride in i within a row.
    let kernel = AlphaSourceKernel {
        eq,
        ny: dom.n[1],
        pad: [dom.pad(0), dom.pad(1), dom.pad(2)],
        d3,
        block: d3.len(),
        prim: prim.as_slice(),
        divu,
        rsl: ParSlice::new(rhs.as_mut_slice()),
    };
    ctx.launch_vec(&cfg, cost, dom.n[1] * dom.n[2], dom.n[0], &kernel);
}

/// Lane kernel of the alpha source: row = interior (j, k) line, col =
/// interior x offset.
struct AlphaSourceKernel<'a> {
    eq: EqIdx,
    ny: usize,
    pad: [usize; 3],
    d3: Dims3,
    block: usize,
    prim: &'a [f64],
    divu: &'a [f64],
    rsl: ParSlice<'a>,
}

impl LaneKernel for AlphaSourceKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, row: usize, col: usize) {
        let i = col + self.pad[0];
        let j = row % self.ny + self.pad[1];
        let k = row / self.ny + self.pad[2];
        let cell = self.d3.idx(i, j, k);
        let dv = L::load(&self.divu[cell..]);
        for a in 0..self.eq.n_adv() {
            let e = self.eq.adv(a);
            let alpha = L::load(&self.prim[cell + e * self.block..]);
            self.rsl.add_lanes(cell + e * self.block, alpha * dv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::{apply_bcs, BcSpec};
    use crate::grid::Grid1D;

    fn uniform_state(dom: Domain, fluids: &[Fluid], u: [f64; 3], p: f64) -> StateField {
        let eq = dom.eq;
        let mut prim = StateField::zeros(dom);
        let d3 = dom.dims3();
        for k in 0..d3.n3 {
            for j in 0..d3.n2 {
                for i in 0..d3.n1 {
                    prim.set(i, j, k, eq.cont(0), 1.2 * 0.6);
                    if eq.nf() > 1 {
                        prim.set(i, j, k, eq.cont(1), 1000.0 * 0.4);
                        prim.set(i, j, k, eq.adv(0), 0.6);
                    }
                    for (d, &ud) in u.iter().enumerate().take(eq.ndim()) {
                        prim.set(i, j, k, eq.mom(d), ud);
                    }
                    prim.set(i, j, k, eq.energy(), p);
                }
            }
        }
        let ctx = Context::serial();
        let mut cons = StateField::zeros(dom);
        crate::state::prim_to_cons_field(&ctx, fluids, &prim, &mut cons);
        cons
    }

    /// A uniform flow must be an exact steady state (free-stream
    /// preservation) in every dimension and pack strategy.
    #[test]
    fn uniform_flow_has_zero_rhs() {
        let fluids = [Fluid::air(), Fluid::water()];
        for ndim in 1..=3 {
            let eq = EqIdx::new(2, ndim);
            let n = match ndim {
                1 => [16, 1, 1],
                2 => [8, 8, 1],
                _ => [6, 6, 6],
            };
            let dom = Domain::new(n, 3, eq);
            let grid = Grid::uniform(n, [0.0; 3], [1.0, 1.0, 1.0]);
            let mut cons = uniform_state(dom, &fluids, [30.0, -10.0, 5.0], 2.0e5);
            let ctx = Context::serial();
            apply_bcs(&ctx, &mut cons, &BcSpec::periodic(), [(false, false); 3]);
            let mut ws = RhsWorkspace::new(dom, &grid);
            let mut rhs = StateField::zeros(dom);
            for mode in [RhsMode::Staged, RhsMode::Fused] {
                for pack in [
                    PackStrategy::CollapsedLoops,
                    PackStrategy::Tiled,
                    PackStrategy::Geam,
                ] {
                    let cfg = RhsConfig {
                        pack,
                        mode,
                        ..Default::default()
                    };
                    compute_rhs(&ctx, &cfg, &fluids, &cons, &mut ws, &mut rhs);
                    let max = rhs.as_slice().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                    // Scale: energy flux ~ 1e5 * 30; relative tolerance.
                    assert!(
                        max < 1e-4,
                        "ndim={ndim} {mode:?} {pack:?}: max |rhs| = {max}"
                    );
                }
            }
        }
    }

    /// The divergence of a uniform flow is zero; of a linear velocity
    /// field u = x it is 1.
    #[test]
    fn divu_of_linear_velocity_field() {
        let fluids = [Fluid::air()];
        let eq = EqIdx::new(1, 1);
        let n = 32;
        let dom = Domain::new([n, 1, 1], 3, eq);
        let grid = Grid::new_1d(Grid1D::uniform(n, 0.0, 1.0));
        let ctx = Context::serial();
        let mut prim = StateField::zeros(dom);
        let h = 1.0 / n as f64;
        for i in 0..dom.ext(0) {
            let x = (i as f64 - 3.0 + 0.5) * h;
            prim.set(i, 0, 0, eq.cont(0), 1.0);
            prim.set(i, 0, 0, eq.mom(0), 0.01 * x); // gentle, subsonic
            prim.set(i, 0, 0, eq.energy(), 1.0e5);
        }
        let mut cons = StateField::zeros(dom);
        crate::state::prim_to_cons_field(&ctx, &fluids, &prim, &mut cons);
        let mut ws = RhsWorkspace::new(dom, &grid);
        let mut rhs = StateField::zeros(dom);
        let cfg = RhsConfig::default();
        compute_rhs(&ctx, &cfg, &fluids, &cons, &mut ws, &mut rhs);
        // Interior (away from unfilled ghost effects): divu ≈ 0.01.
        let d3 = dom.dims3();
        for i in 8..n - 8 {
            let dv = ws.divu()[d3.idx(i + 3, 0, 0)];
            assert!((dv - 0.01).abs() < 1e-4, "divu[{i}] = {dv}");
        }
    }

    /// All pack strategies must produce bitwise-identical RHS values (they
    /// reorder memory, not arithmetic).
    #[test]
    fn pack_strategies_are_bitwise_equivalent() {
        let fluids = [Fluid::air(), Fluid::water()];
        let eq = EqIdx::new(2, 3);
        let dom = Domain::new([6, 5, 4], 3, eq);
        let grid = Grid::uniform([6, 5, 4], [0.0; 3], [1.0, 1.0, 1.0]);
        let ctx = Context::serial();
        // A non-trivial smooth state.
        let mut prim = StateField::zeros(dom);
        let d3 = dom.dims3();
        for k in 0..d3.n3 {
            for j in 0..d3.n2 {
                for i in 0..d3.n1 {
                    let s = (i + 2 * j + 3 * k) as f64 * 0.05;
                    let a = 0.3 + 0.4 * s.sin().abs().min(0.99);
                    prim.set(i, j, k, eq.cont(0), 1.2 * a);
                    prim.set(i, j, k, eq.cont(1), 1000.0 * (1.0 - a));
                    prim.set(i, j, k, eq.mom(0), 10.0 * s.cos());
                    prim.set(i, j, k, eq.mom(1), -5.0 * s.sin());
                    prim.set(i, j, k, eq.mom(2), 2.0);
                    prim.set(i, j, k, eq.energy(), 1.0e5 * (1.0 + 0.1 * s.sin()));
                    prim.set(i, j, k, eq.adv(0), a);
                }
            }
        }
        let mut cons = StateField::zeros(dom);
        crate::state::prim_to_cons_field(&ctx, &fluids, &prim, &mut cons);
        apply_bcs(&ctx, &mut cons, &BcSpec::periodic(), [(false, false); 3]);

        let mut results = Vec::new();
        for pack in [
            PackStrategy::CollapsedLoops,
            PackStrategy::Tiled,
            PackStrategy::Geam,
        ] {
            let mut ws = RhsWorkspace::new(dom, &grid);
            let mut rhs = StateField::zeros(dom);
            let cfg = RhsConfig {
                pack,
                mode: RhsMode::Staged,
                ..Default::default()
            };
            compute_rhs(&ctx, &cfg, &fluids, &cons, &mut ws, &mut rhs);
            results.push(rhs);
        }
        // The fused pencil engine reorders memory, not arithmetic: it must
        // land in the same bucket.
        {
            let mut ws = RhsWorkspace::new(dom, &grid);
            let mut rhs = StateField::zeros(dom);
            let cfg = RhsConfig {
                mode: RhsMode::Fused,
                ..Default::default()
            };
            compute_rhs(&ctx, &cfg, &fluids, &cons, &mut ws, &mut rhs);
            results.push(rhs);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(results[2], results[3]);
    }

    /// Kernel classes show up in the ledger with the paper's structure:
    /// WENO and Riemann dominate items, Pack appears for y/z reshapes.
    #[test]
    fn ledger_records_paper_kernel_classes() {
        let fluids = [Fluid::air(), Fluid::water()];
        let eq = EqIdx::new(2, 3);
        let dom = Domain::new([8, 8, 8], 3, eq);
        let grid = Grid::uniform([8, 8, 8], [0.0; 3], [1.0; 3]);
        let ctx = Context::serial();
        let mut cons = uniform_state(dom, &fluids, [1.0, 2.0, 3.0], 1.0e5);
        apply_bcs(&ctx, &mut cons, &BcSpec::periodic(), [(false, false); 3]);
        let mut ws = RhsWorkspace::new(dom, &grid);
        let mut rhs = StateField::zeros(dom);
        compute_rhs(
            &ctx,
            &RhsConfig::default(),
            &fluids,
            &cons,
            &mut ws,
            &mut rhs,
        );
        let by_class = ctx.ledger().by_class();
        for class in [
            KernelClass::Weno,
            KernelClass::Riemann,
            KernelClass::Pack,
            KernelClass::Update,
            KernelClass::Fused,
        ] {
            assert!(by_class.contains_key(&class), "missing {class:?}");
        }
        assert!(by_class[&KernelClass::Weno].flops > 0.0);
        assert!(by_class[&KernelClass::Riemann].items > 0);

        // The staged pipeline decomposes into the same classes (minus the
        // fusion marker) and declares strictly more traffic: it sweeps
        // ghost transverse lines the update never consumes.
        let sctx = Context::serial();
        let mut ws2 = RhsWorkspace::new(dom, &grid);
        let cfg = RhsConfig {
            mode: RhsMode::Staged,
            ..Default::default()
        };
        compute_rhs(&sctx, &cfg, &fluids, &cons, &mut ws2, &mut rhs);
        let staged = sctx.ledger().by_class();
        assert!(!staged.contains_key(&KernelClass::Fused));
        for class in [KernelClass::Weno, KernelClass::Riemann] {
            assert!(
                staged[&class].bytes_read > by_class[&class].bytes_read,
                "{class:?}: staged should move more declared bytes than fused"
            );
        }
    }
}
