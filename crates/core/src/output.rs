//! Simulation output and post-processing (§III-A's I/O pipeline).
//!
//! MFC writes MPI-I/O binary files from the ranks, then host code reads
//! them back and produces SILO databases for Paraview/VisIt.  The
//! reproduction's pipeline:
//!
//! * each rank writes its interior block with the wave-throttled
//!   [`mfc_mpsim::WaveWriter`] (file-per-process; MFC's production wave
//!   width is [`mfc_mpsim::DEFAULT_WAVE_SIZE`] = 128 writers, overridable
//!   per run via `mfc-run --io-wave` / the `io.wave` case key),
//! * [`postprocess_wave_files`] plays the host role: it reassembles the
//!   global field from the per-rank files using the same decomposition
//!   arithmetic the ranks used,
//! * [`write_vtk_rectilinear`] emits a legacy-VTK rectilinear dataset —
//!   the open substitute for SILO — loadable by Paraview/VisIt.

use std::io::{self, Write};
use std::path::Path;

use mfc_mpsim::{CartComm, WaveWriter};

use crate::eqidx::EqIdx;
use crate::grid::Grid;
use crate::par::GlobalField;
use crate::state::StateField;

/// Serialize one rank's interior block in the canonical order
/// (equation-major, then z, y, x-fastest) — the payload of each wave file.
pub fn block_to_vec(q: &StateField) -> Vec<f64> {
    let dom = *q.domain();
    let mut out = Vec::with_capacity(dom.interior_cells() * dom.eq.neq());
    for e in 0..dom.eq.neq() {
        for (i, j, k) in dom.interior() {
            out.push(q.get(i, j, k, e));
        }
    }
    out
}

/// Reassemble the global field of one output step from per-rank wave
/// files, recomputing each rank's block extents from the topology.
pub fn postprocess_wave_files(
    dir: &Path,
    step: usize,
    global_n: [usize; 3],
    eq: EqIdx,
    dims: [usize; 3],
) -> io::Result<GlobalField> {
    let n_ranks: usize = dims.iter().product();
    let neq = eq.neq();
    let mut data = vec![0.0; global_n[0] * global_n[1] * global_n[2] * neq];
    for rank in 0..n_ranks {
        let cart = CartComm::new(rank, dims, [false; 3]);
        let mut off = [0usize; 3];
        let mut n = [1usize; 3];
        for d in 0..eq.ndim() {
            let (o, l) = cart.local_extent(d, global_n[d]);
            off[d] = o;
            n[d] = l;
        }
        let block = WaveWriter::read(dir, step, rank)?;
        if block.len() != n[0] * n[1] * n[2] * neq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "rank {rank} block has {} values, expected {}",
                    block.len(),
                    n[0] * n[1] * n[2] * neq
                ),
            ));
        }
        let mut idx = 0usize;
        for e in 0..neq {
            for k in 0..n[2] {
                for j in 0..n[1] {
                    for i in 0..n[0] {
                        let gi = off[0] + i;
                        let gj = off[1] + j;
                        let gk = off[2] + k;
                        data[gi + global_n[0] * (gj + global_n[1] * (gk + global_n[2] * e))] =
                            block[idx];
                        idx += 1;
                    }
                }
            }
        }
    }
    Ok(GlobalField {
        n: global_n,
        neq,
        data,
    })
}

/// Write a legacy-VTK (ASCII) rectilinear dataset with one cell-data
/// scalar array per named field.
///
/// `fields` maps a name to an equation slot of `gf`.
pub fn write_vtk_rectilinear(
    path: &Path,
    grid: &Grid,
    gf: &GlobalField,
    fields: &[(&str, usize)],
) -> io::Result<()> {
    let [nx, ny, nz] = gf.n;
    if grid.x.n() != nx {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "grid/field extent mismatch on x: grid has {} cells, field {nx}",
                grid.x.n()
            ),
        ));
    }
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "mfc-rs output")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET RECTILINEAR_GRID")?;
    writeln!(w, "DIMENSIONS {} {} {}", nx + 1, ny + 1, nz + 1)?;
    let write_coords =
        |w: &mut dyn Write, label: &str, faces: &[f64], n: usize| -> io::Result<()> {
            writeln!(w, "{label}_COORDINATES {} double", n + 1)?;
            for f in faces.iter().take(n + 1) {
                write!(w, "{f} ")?;
            }
            writeln!(w)
        };
    write_coords(&mut w, "X", grid.x.faces(), nx)?;
    write_coords(&mut w, "Y", grid.y.faces(), ny)?;
    write_coords(&mut w, "Z", grid.z.faces(), nz)?;
    writeln!(w, "CELL_DATA {}", nx * ny * nz)?;
    for (name, slot) in fields {
        if *slot >= gf.neq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("field slot {slot} out of range (neq = {})", gf.neq),
            ));
        }
        writeln!(w, "SCALARS {name} double 1")?;
        writeln!(w, "LOOKUP_TABLE default")?;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    writeln!(w, "{}", gf.get(i, j, k, *slot))?;
                }
            }
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use mfc_mpsim::World;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mfc_output_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn block_serialization_order_is_equation_major() {
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([3, 1, 1], 1, eq);
        let mut q = StateField::zeros(dom);
        for e in 0..eq.neq() {
            for i in 0..3 {
                q.set(i + 1, 0, 0, e, (e * 10 + i) as f64);
            }
        }
        let v = block_to_vec(&q);
        assert_eq!(v, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0, 20.0, 21.0, 22.0]);
    }

    #[test]
    fn wave_files_reassemble_into_the_global_field() {
        let dir = tmpdir("reassemble");
        let eq = EqIdx::new(1, 2);
        let global_n = [8usize, 6, 1];
        let dims = [2usize, 2, 1];
        // Each rank writes f(e, gi, gj) over its block.
        let dirref = &dir;
        World::run(4, |c| {
            let cart = CartComm::new(c.rank(), dims, [false; 3]);
            let (ox, lx) = cart.local_extent(0, global_n[0]);
            let (oy, ly) = cart.local_extent(1, global_n[1]);
            let mut block = Vec::new();
            for e in 0..eq.neq() {
                for j in 0..ly {
                    for i in 0..lx {
                        block.push((e * 1000 + (oy + j) * 100 + (ox + i)) as f64);
                    }
                }
            }
            WaveWriter::paper_default()
                .write(&c, dirref, 0, &block)
                .unwrap();
        });
        let gf = postprocess_wave_files(&dir, 0, global_n, eq, dims).unwrap();
        for e in 0..eq.neq() {
            for j in 0..6 {
                for i in 0..8 {
                    assert_eq!(gf.get(i, j, 0, e), (e * 1000 + j * 100 + i) as f64);
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vtk_file_has_expected_structure() {
        let dir = tmpdir("vtk");
        let grid = Grid::uniform([4, 3, 1], [0.0; 3], [1.0, 1.0, 1.0]);
        let gf = GlobalField {
            n: [4, 3, 1],
            neq: 2,
            data: (0..24).map(|i| i as f64).collect(),
        };
        let path = dir.join("out.vtk");
        write_vtk_rectilinear(&path, &grid, &gf, &[("density", 0), ("pressure", 1)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("DATASET RECTILINEAR_GRID"));
        assert!(text.contains("DIMENSIONS 5 4 2"));
        assert!(text.contains("CELL_DATA 12"));
        assert!(text.contains("SCALARS density double 1"));
        assert!(text.contains("SCALARS pressure double 1"));
        // 12 cells per field, both fields present.
        let values: Vec<&str> = text.lines().collect();
        assert!(values.iter().any(|l| l.trim() == "11")); // density last cell
        assert!(values.iter().any(|l| l.trim() == "23")); // pressure last cell
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn postprocess_reports_missing_rank_file() {
        // A 2-rank decomposition with only rank 0's file on disk: the
        // reassembly must surface the missing file as an I/O error, not
        // silently zero-fill the absent block.
        let dir = tmpdir("missing");
        let dirref = &dir;
        World::run(1, |c| {
            WaveWriter::paper_default()
                .write(&c, dirref, 0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
                .unwrap();
        });
        let err = postprocess_wave_files(&dir, 0, [4, 1, 1], EqIdx::new(1, 1), [2, 1, 1])
            .expect_err("rank 1's file is missing");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn postprocess_rejects_truncated_payload() {
        // Truncate a rank file mid-payload (a crashed writer): the block
        // comes back short and the reassembly must refuse it.
        let dir = tmpdir("truncated");
        let dirref = &dir;
        World::run(1, |c| {
            WaveWriter::paper_default()
                .write(&c, dirref, 0, &[1.0, 2.0, 3.0, 4.0])
                .unwrap();
        });
        let path = WaveWriter::rank_path(&dir, 0, 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = postprocess_wave_files(&dir, 0, [4, 1, 1], EqIdx::new(1, 1), [1, 1, 1])
            .expect_err("truncated payload must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn postprocess_rejects_wrong_block_size() {
        let dir = tmpdir("badblock");
        let dirref = &dir;
        World::run(1, |c| {
            WaveWriter::paper_default()
                .write(&c, dirref, 0, &[1.0, 2.0])
                .unwrap();
        });
        let r = postprocess_wave_files(&dir, 0, [4, 1, 1], EqIdx::new(1, 1), [1, 1, 1]);
        assert!(r.is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
