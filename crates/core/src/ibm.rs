//! Ghost-cell immersed boundary method (§VI-B's airfoil machinery).
//!
//! Solid bodies are described by a signed distance function (negative
//! inside).  After each ghost/BC fill, solid cells near the interface are
//! populated from their image point across the boundary with the normal
//! velocity reflected (slip wall), so the fluid sees an impermeable
//! surface without any mesh fitting.

use mfc_acc::{Context, KernelClass, KernelCost, LaunchConfig};

use crate::domain::{Domain, MAX_EQ};
use crate::fluid::Fluid;
use crate::grid::Grid;
use crate::state::StateField;

/// A rigid body immersed in the flow.
pub trait Body: Sync + Send {
    /// Signed distance: negative inside the solid, positive in the fluid.
    fn sdf(&self, x: [f64; 3]) -> f64;

    /// Outward unit normal, default via central differences of the SDF.
    fn normal(&self, x: [f64; 3]) -> [f64; 3] {
        let h = 1e-6;
        let mut n = [0.0; 3];
        for d in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[d] += h;
            xm[d] -= h;
            n[d] = (self.sdf(xp) - self.sdf(xm)) / (2.0 * h);
        }
        let mag = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt().max(1e-300);
        [n[0] / mag, n[1] / mag, n[2] / mag]
    }
}

/// A circle (2-D) / cylinder section.
#[derive(Debug, Clone, Copy)]
pub struct Circle {
    pub center: [f64; 2],
    pub radius: f64,
}

impl Body for Circle {
    fn sdf(&self, x: [f64; 3]) -> f64 {
        let dx = x[0] - self.center[0];
        let dy = x[1] - self.center[1];
        (dx * dx + dy * dy).sqrt() - self.radius
    }
}

/// A sphere (3-D).
#[derive(Debug, Clone, Copy)]
pub struct SphereBody {
    pub center: [f64; 3],
    pub radius: f64,
}

impl Body for SphereBody {
    fn sdf(&self, x: [f64; 3]) -> f64 {
        let d: f64 = (0..3).map(|d| (x[d] - self.center[d]).powi(2)).sum();
        d.sqrt() - self.radius
    }
}

/// A NACA 4-digit airfoil at an angle of attack (the NACA 2412 of §VI-B is
/// `NacaAirfoil::naca4(0.02, 0.4, 0.12, ...)`).
///
/// The signed distance is computed against a sampled surface polyline;
/// inside/outside comes from the thickness envelope around the camber
/// line. Accurate to the sampling resolution, which is plenty for a
/// diffuse ghost-cell treatment.
#[derive(Debug, Clone)]
pub struct NacaAirfoil {
    /// Leading-edge position.
    pub origin: [f64; 2],
    /// Chord length.
    pub chord: f64,
    /// Angle of attack in radians (positive nose-up; flow along +x).
    pub alpha: f64,
    /// Max camber (fraction of chord), e.g. 0.02 for NACA 2412.
    pub camber: f64,
    /// Camber position (fraction of chord), e.g. 0.4.
    pub camber_pos: f64,
    /// Thickness (fraction of chord), e.g. 0.12.
    pub thickness: f64,
    /// Sampled surface points in body coordinates.
    surface: Vec<[f64; 2]>,
}

impl NacaAirfoil {
    pub fn new(
        origin: [f64; 2],
        chord: f64,
        alpha_deg: f64,
        camber: f64,
        camber_pos: f64,
        thickness: f64,
    ) -> Self {
        let mut foil = NacaAirfoil {
            origin,
            chord,
            alpha: alpha_deg.to_radians(),
            camber,
            camber_pos,
            thickness,
            surface: Vec::new(),
        };
        // Cosine-clustered chordwise sampling (fine at the leading edge).
        let nsamp = 400;
        for i in 0..=nsamp {
            let theta = std::f64::consts::PI * i as f64 / nsamp as f64;
            let xc = 0.5 * (1.0 - theta.cos());
            let (yu, yl) = foil.surfaces_at(xc);
            foil.surface.push([xc, yu]);
            foil.surface.push([xc, yl]);
        }
        foil
    }

    /// NACA 2412 at 15° angle of attack, as in the paper's demo.
    pub fn naca2412(origin: [f64; 2], chord: f64) -> Self {
        NacaAirfoil::new(origin, chord, 15.0, 0.02, 0.4, 0.12)
    }

    /// Camber line at chord fraction `x`.
    fn camber_at(&self, x: f64) -> f64 {
        let (m, p) = (self.camber, self.camber_pos);
        if m == 0.0 {
            0.0
        } else if x < p {
            m / (p * p) * (2.0 * p * x - x * x)
        } else {
            m / ((1.0 - p) * (1.0 - p)) * ((1.0 - 2.0 * p) + 2.0 * p * x - x * x)
        }
    }

    /// Half-thickness at chord fraction `x` (closed trailing edge).
    fn half_thickness(&self, x: f64) -> f64 {
        let t = self.thickness;
        5.0 * t
            * (0.2969 * x.sqrt() - 0.1260 * x - 0.3516 * x * x + 0.2843 * x * x * x
                - 0.1036 * x * x * x * x)
    }

    /// Upper and lower surface y at chord fraction `x` (thin-camber
    /// approximation: thickness applied vertically).
    fn surfaces_at(&self, x: f64) -> (f64, f64) {
        let yc = self.camber_at(x);
        let yt = self.half_thickness(x);
        (yc + yt, yc - yt)
    }

    /// Physical → body (chord-fraction) coordinates.
    fn to_body(&self, x: [f64; 3]) -> [f64; 2] {
        let dx = x[0] - self.origin[0];
        let dy = x[1] - self.origin[1];
        let (c, s) = (self.alpha.cos(), self.alpha.sin());
        // Rotate by +alpha (nose-up AoA rotates the foil clockwise in
        // flow frame; equivalently rotate the point counterclockwise).
        [
            (dx * c - dy * s) / self.chord,
            (dx * s + dy * c) / self.chord,
        ]
    }
}

impl Body for NacaAirfoil {
    fn sdf(&self, x: [f64; 3]) -> f64 {
        let b = self.to_body(x);
        // Distance to the sampled surface.
        let mut d2 = f64::INFINITY;
        for p in &self.surface {
            let dx = b[0] - p[0];
            let dy = b[1] - p[1];
            d2 = d2.min(dx * dx + dy * dy);
        }
        let d = d2.sqrt() * self.chord;
        // Inside test via the thickness envelope.
        let inside = b[0] > 0.0 && b[0] < 1.0 && {
            let (yu, yl) = self.surfaces_at(b[0]);
            b[1] < yu && b[1] > yl
        };
        if inside {
            -d
        } else {
            d
        }
    }
}

/// The ghost-cell IBM operator.
pub struct GhostCellIbm {
    body: Box<dyn Body>,
}

impl GhostCellIbm {
    pub fn new(body: Box<dyn Body>) -> Self {
        GhostCellIbm { body }
    }

    pub fn body(&self) -> &dyn Body {
        self.body.as_ref()
    }

    /// Impose the slip-wall condition: populate solid cells near the
    /// interface from their image points with reflected normal velocity.
    ///
    /// Operates on *primitive-convertible* conservative data: the field is
    /// converted per-cell as needed.  Call after every ghost fill, before
    /// the RHS.
    pub fn apply(&self, ctx: &Context, grid: &Grid, fluids: &[Fluid], q: &mut StateField) {
        let dom = *q.domain();
        let eq = dom.eq;
        let neq = eq.neq();
        let centers = CellCenters::new(&dom, grid);
        let band = 2.0 * centers.max_width();

        // Pass 1: collect ghost-cell updates (reads unmodified field).
        let mut updates: Vec<((usize, usize, usize), [f64; MAX_EQ])> = Vec::new();
        for (i, j, k) in dom.interior() {
            let x = centers.at(i, j, k);
            let phi = self.body.sdf(x);
            if phi >= 0.0 {
                continue;
            }
            let mut cell = [0.0; MAX_EQ];
            if phi > -band {
                let n = self.body.normal(x);
                let ip = [
                    x[0] - 2.0 * phi * n[0],
                    x[1] - 2.0 * phi * n[1],
                    x[2] - 2.0 * phi * n[2],
                ];
                let mut prim_ip = [0.0; MAX_EQ];
                centers.interp_prim(q, fluids, ip, &mut prim_ip[..neq]);
                // Slip wall: reflect the normal velocity.
                let mut vn = 0.0;
                for d in 0..eq.ndim() {
                    vn += prim_ip[eq.mom(d)] * n[d];
                }
                for d in 0..eq.ndim() {
                    prim_ip[eq.mom(d)] -= 2.0 * vn * n[d];
                }
                crate::eos::prim_to_cons(&eq, fluids, &prim_ip[..neq], &mut cell[..neq]);
            } else {
                // Deep solid: freeze to zero velocity, keep thermodynamics.
                let mut prim = [0.0; MAX_EQ];
                let mut cons = [0.0; MAX_EQ];
                q.load_cell(i, j, k, &mut cons[..neq]);
                crate::eos::cons_to_prim(&eq, fluids, &cons[..neq], &mut prim[..neq]);
                for d in 0..eq.ndim() {
                    prim[eq.mom(d)] = 0.0;
                }
                crate::eos::prim_to_cons(&eq, fluids, &prim[..neq], &mut cell[..neq]);
            }
            updates.push(((i, j, k), cell));
        }

        // Pass 2: apply.
        let cost = KernelCost::new(KernelClass::Other, 30.0, 8.0 * neq as f64, 8.0 * neq as f64);
        let cfg = LaunchConfig::tuned("s_ibm_ghost_cells");
        ctx.launch(&cfg, cost, updates.len(), |u| {
            let ((i, j, k), cell) = &updates[u];
            q.store_cell(*i, *j, *k, &cell[..neq]);
        });
    }
}

/// Cached cell-center coordinates plus inverse lookup for interpolation.
struct CellCenters {
    cx: Vec<f64>,
    cy: Vec<f64>,
    cz: Vec<f64>,
    dom: Domain,
}

impl CellCenters {
    fn new(dom: &Domain, grid: &Grid) -> Self {
        let pad_centers = |axis: usize| -> Vec<f64> {
            let ax = grid.axis(axis);
            let ng = dom.pad(axis);
            let n = ax.n();
            (0..dom.ext(axis))
                .map(|i| {
                    let g = i as isize - ng as isize;
                    if g < 0 {
                        ax.centers()[0] + g as f64 * ax.widths()[0]
                    } else if g as usize >= n {
                        ax.centers()[n - 1] + (g as usize - n + 1) as f64 * ax.widths()[n - 1]
                    } else {
                        ax.centers()[g as usize]
                    }
                })
                .collect()
        };
        CellCenters {
            cx: pad_centers(0),
            cy: pad_centers(1),
            cz: pad_centers(2),
            dom: *dom,
        }
    }

    fn at(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        [self.cx[i], self.cy[j], self.cz[k]]
    }

    fn max_width(&self) -> f64 {
        let w = |c: &[f64]| c.windows(2).map(|p| p[1] - p[0]).fold(0.0f64, f64::max);
        w(&self.cx).max(w(&self.cy)).max(w(&self.cz))
    }

    /// Index of the last center <= x (clamped to a valid lower cell).
    fn locate(c: &[f64], x: f64) -> usize {
        match c.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => i.min(c.len().saturating_sub(2)),
            Err(0) => 0,
            Err(i) => (i - 1).min(c.len().saturating_sub(2)),
        }
    }

    /// Trilinear interpolation of the *primitive* state at point `x`.
    fn interp_prim(&self, q: &StateField, fluids: &[Fluid], x: [f64; 3], out: &mut [f64]) {
        let eq = self.dom.eq;
        let neq = eq.neq();
        let i0 = Self::locate(&self.cx, x[0]);
        let j0 = if eq.ndim() >= 2 {
            Self::locate(&self.cy, x[1])
        } else {
            0
        };
        let k0 = if eq.ndim() >= 3 {
            Self::locate(&self.cz, x[2])
        } else {
            0
        };
        let fx = frac(&self.cx, i0, x[0]);
        let fy = if eq.ndim() >= 2 {
            frac(&self.cy, j0, x[1])
        } else {
            0.0
        };
        let fz = if eq.ndim() >= 3 {
            frac(&self.cz, k0, x[2])
        } else {
            0.0
        };

        out[..neq].fill(0.0);
        let mut cons = [0.0; MAX_EQ];
        let mut prim = [0.0; MAX_EQ];
        for (dk, wk) in [(0usize, 1.0 - fz), (1, fz)] {
            if wk == 0.0 && dk == 1 {
                continue;
            }
            for (dj, wj) in [(0usize, 1.0 - fy), (1, fy)] {
                if wj == 0.0 && dj == 1 {
                    continue;
                }
                for (di, wi) in [(0usize, 1.0 - fx), (1, fx)] {
                    if wi == 0.0 && di == 1 {
                        continue;
                    }
                    let w = wi * wj * wk;
                    if w == 0.0 {
                        continue;
                    }
                    let (ii, jj, kk) = (
                        (i0 + di).min(self.dom.ext(0) - 1),
                        (j0 + dj).min(self.dom.ext(1) - 1),
                        (k0 + dk).min(self.dom.ext(2) - 1),
                    );
                    q.load_cell(ii, jj, kk, &mut cons[..neq]);
                    crate::eos::cons_to_prim(&eq, fluids, &cons[..neq], &mut prim[..neq]);
                    for e in 0..neq {
                        out[e] += w * prim[e];
                    }
                }
            }
        }
    }
}

fn frac(c: &[f64], i0: usize, x: f64) -> f64 {
    if i0 + 1 >= c.len() {
        return 0.0;
    }
    ((x - c[i0]) / (c[i0 + 1] - c[i0])).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::presets;

    #[test]
    fn circle_sdf_signs_and_distance() {
        let c = Circle {
            center: [0.0, 0.0],
            radius: 1.0,
        };
        assert!((c.sdf([2.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((c.sdf([0.0, 0.5, 0.0]) + 0.5).abs() < 1e-12);
        let n = c.normal([2.0, 0.0, 0.0]);
        assert!((n[0] - 1.0).abs() < 1e-5 && n[1].abs() < 1e-5);
    }

    #[test]
    fn naca_airfoil_contains_camber_line() {
        let foil = NacaAirfoil::new([0.0, 0.0], 1.0, 0.0, 0.02, 0.4, 0.12);
        // Mid-chord on the camber line: inside.
        let yc = foil.camber_at(0.5);
        assert!(foil.sdf([0.5, yc, 0.0]) < 0.0);
        // Far above: outside.
        assert!(foil.sdf([0.5, 0.5, 0.0]) > 0.0);
        // Ahead of the leading edge: outside.
        assert!(foil.sdf([-0.1, 0.0, 0.0]) > 0.0);
    }

    #[test]
    fn naca_thickness_is_symmetric_without_camber() {
        let foil = NacaAirfoil::new([0.0, 0.0], 1.0, 0.0, 0.0, 0.4, 0.12);
        let (yu, yl) = foil.surfaces_at(0.3);
        assert!((yu + yl).abs() < 1e-12);
        // Max thickness for t = 0.12 is 0.06 of chord near x = 0.30.
        assert!(yu > 0.055 && yu < 0.0605, "yu = {yu}");
    }

    #[test]
    fn angle_of_attack_rotates_body_frame() {
        let foil0 = NacaAirfoil::new([0.0, 0.0], 1.0, 0.0, 0.0, 0.4, 0.12);
        let foil15 = NacaAirfoil::new([0.0, 0.0], 1.0, 15.0, 0.0, 0.4, 0.12);
        // Nose-up pitch drops the aft section below the chord line: a
        // point below mid-chord that is outside the unrotated foil ends up
        // inside the pitched one.
        let x = [0.5, -0.13, 0.0];
        assert!(foil0.sdf(x) > 0.0, "sdf0={}", foil0.sdf(x));
        assert!(foil15.sdf(x) < 0.0, "sdf15={}", foil15.sdf(x));
    }

    #[test]
    fn ghost_cells_receive_reflected_velocity() {
        // Uniform rightward flow over a circle: after IBM application,
        // near-boundary solid cells on the upstream side should carry
        // leftward (reflected) normal velocity components.
        let cb = presets::uniform_flow(2, [32, 32, 1], [100.0, 0.0, 0.0]);
        let ctx = Context::serial();
        let dom = cb.domain(3);
        let grid = cb.grid();
        let mut q = cb.init_block(&ctx, &dom, &grid, [0, 0, 0]);
        let ibm = GhostCellIbm::new(Box::new(Circle {
            center: [0.5, 0.5],
            radius: 0.15,
        }));
        ibm.apply(&ctx, &grid, &cb.fluids, &mut q);
        let eq = cb.eq();
        // Upstream boundary cell: x just inside the circle on the -x side.
        // Find the interior cell nearest (0.36, 0.5).
        let i = (0.36f64 / (1.0 / 32.0)) as usize + 3;
        let j = 16 + 3;
        let mut cons = [0.0; MAX_EQ];
        q.load_cell(i, j, 0, &mut cons[..eq.neq()]);
        let mut prim = [0.0; MAX_EQ];
        crate::eos::cons_to_prim(&eq, &cb.fluids, &cons[..eq.neq()], &mut prim[..eq.neq()]);
        let u = prim[eq.mom(0)];
        assert!(u < 0.0, "upstream ghost cell should reflect: u = {u}");
    }

    #[test]
    fn fluid_cells_are_untouched() {
        let cb = presets::uniform_flow(2, [16, 16, 1], [50.0, 0.0, 0.0]);
        let ctx = Context::serial();
        let dom = cb.domain(3);
        let grid = cb.grid();
        let mut q = cb.init_block(&ctx, &dom, &grid, [0, 0, 0]);
        let before = q.clone();
        let ibm = GhostCellIbm::new(Box::new(Circle {
            center: [0.5, 0.5],
            radius: 0.1,
        }));
        ibm.apply(&ctx, &grid, &cb.fluids, &mut q);
        let eq = cb.eq();
        // A cell far from the body keeps its exact state.
        for e in 0..eq.neq() {
            assert_eq!(q.get(4, 4, 0, e), before.get(4, 4, 0, e));
        }
    }
}
