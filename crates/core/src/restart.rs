//! Checkpoint/restart — MFC's restart files, which are what its I/O
//! subsystem (§III-A) writes: the conservative state at an output step,
//! from which a later job resumes.
//!
//! Format: a small JSON header (domain extents, ghost width, fluid count,
//! time, step) followed by the raw little-endian `f64` state, ghost cells
//! included, so a restarted run continues **bitwise** identically — which
//! the integration test asserts.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::domain::Domain;
use crate::eqidx::EqIdx;
use crate::state::StateField;

/// Header of a checkpoint file.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CheckpointHeader {
    pub n: [usize; 3],
    pub ng: usize,
    pub nf: usize,
    pub ndim: usize,
    pub t: f64,
    pub steps: u64,
}

impl CheckpointHeader {
    pub fn domain(&self) -> Domain {
        Domain::new(self.n, self.ng, EqIdx::new(self.nf, self.ndim))
    }
}

/// Path of rank `rank`'s checkpoint file for wave `wave` under `dir` —
/// the per-rank naming used by the resilient driver
/// ([`crate::par::run_distributed_resilient`]).
pub fn wave_path(dir: &Path, rank: usize, wave: u64) -> PathBuf {
    dir.join(format!("ckpt_r{rank}_w{wave}.bin"))
}

/// Write a checkpoint of `q` at simulation time `t` / step `steps`.
pub fn save_checkpoint(path: &Path, q: &StateField, t: f64, steps: u64) -> io::Result<()> {
    let dom = *q.domain();
    let header = CheckpointHeader {
        n: dom.n,
        ng: dom.ng,
        nf: dom.eq.nf(),
        ndim: dom.eq.ndim(),
        t,
        steps,
    };
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    let hjson = serde_json::to_string(&header).map_err(io::Error::other)?;
    // Length-prefixed header, then the raw state.
    w.write_all(&(hjson.len() as u64).to_le_bytes())?;
    w.write_all(hjson.as_bytes())?;
    for v in q.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read a checkpoint back: returns the header and the state.
pub fn load_checkpoint(path: &Path) -> io::Result<(CheckpointHeader, StateField)> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let hlen = u64::from_le_bytes(len8) as usize;
    if hlen > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible header length (not a checkpoint file?)",
        ));
    }
    let mut hbuf = vec![0u8; hlen];
    r.read_exact(&mut hbuf)?;
    let header: CheckpointHeader = serde_json::from_slice(&hbuf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {e}")))?;
    let dom = header.domain();
    let mut q = StateField::zeros(dom);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let expect = q.as_slice().len() * 8;
    if bytes.len() != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("state payload has {} bytes, expected {expect}", bytes.len()),
        ));
    }
    for (slot, chunk) in q.as_mut_slice().iter_mut().zip(bytes.chunks_exact(8)) {
        *slot = f64::from_le_bytes(chunk.try_into().unwrap());
    }
    Ok((header, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::presets;
    use crate::solver::{Solver, SolverConfig};
    use mfc_acc::Context;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mfc_ckpt_{name}_{}.bin", std::process::id()))
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let case = presets::two_phase_benchmark(2, [12, 12, 1]);
        let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        solver.run_steps(3);
        let path = tmp("roundtrip");
        save_checkpoint(&path, solver.state(), solver.time(), solver.steps()).unwrap();
        let (h, q) = load_checkpoint(&path).unwrap();
        assert_eq!(h.t, solver.time());
        assert_eq!(h.steps, 3);
        assert_eq!(q.as_slice(), solver.state().as_slice());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_file_is_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let case = presets::sod(16);
        let solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        let path = tmp("trunc");
        save_checkpoint(&path, solver.state(), 0.0, 0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
