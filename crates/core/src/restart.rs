//! Checkpoint/restart — MFC's restart files, which are what its I/O
//! subsystem (§III-A) writes: the conservative state at an output step,
//! from which a later job resumes.
//!
//! Format (v1, magic `MFCKPT01`):
//!
//! ```text
//! [ 8 bytes magic "MFCKPT01" ]
//! [ u64 LE header length     ]
//! [ u32 LE CRC-32/IEEE of header JSON ++ payload ]
//! [ JSON header: domain extents, ghost width, fluid count, time, step ]
//! [ raw little-endian f64 state, ghost cells included ]
//! ```
//!
//! Checkpoints are the durable state every rollback depends on, so the
//! writer is crash-safe (temp file + atomic rename: a torn write never
//! replaces a good checkpoint) and the reader verifies the CRC, rejecting
//! truncated or bit-flipped files with a typed [`CheckpointError`] instead
//! of producing silent garbage. A restarted run continues **bitwise**
//! identically — which the integration test asserts.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::domain::Domain;
use crate::eqidx::EqIdx;
use crate::state::StateField;

/// File magic: 8 bytes, versioned.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"MFCKPT01";

/// Why a checkpoint failed to save or load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file does not start with the checkpoint magic.
    NotACheckpoint,
    /// The file ends before the declared header + payload.
    Truncated { found: usize, expected: usize },
    /// Header/payload bytes do not match the stored CRC-32.
    CrcMismatch { stored: u32, computed: u32 },
    /// The header is not valid JSON (or declares an implausible size).
    BadHeader(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::NotACheckpoint => {
                write!(
                    f,
                    "missing {CHECKPOINT_MAGIC:?} magic: not a checkpoint file"
                )
            }
            CheckpointError::Truncated { found, expected } => {
                write!(
                    f,
                    "truncated checkpoint: {found} bytes, expected {expected}"
                )
            }
            CheckpointError::CrcMismatch { stored, computed } => write!(
                f,
                "checkpoint CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::BadHeader(e) => write!(f, "bad checkpoint header: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Table-driven CRC-32/IEEE (polynomial `0xEDB88320`), built at compile
/// time — no external dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32/IEEE.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(!0)
    }
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Header of a checkpoint file.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CheckpointHeader {
    pub n: [usize; 3],
    pub ng: usize,
    pub nf: usize,
    pub ndim: usize,
    pub t: f64,
    pub steps: u64,
}

impl CheckpointHeader {
    pub fn domain(&self) -> Domain {
        Domain::new(self.n, self.ng, EqIdx::new(self.nf, self.ndim))
    }
}

/// Path of rank `rank`'s checkpoint file for wave `wave` under `dir` —
/// the per-rank naming used by the resilient driver
/// ([`crate::par::run_distributed_resilient`]).
pub fn wave_path(dir: &Path, rank: usize, wave: u64) -> PathBuf {
    dir.join(format!("ckpt_r{rank}_w{wave}.bin"))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Write a checkpoint of `q` at simulation time `t` / step `steps`.
///
/// Crash-safe: the bytes land in `<path>.tmp` first and only an atomic
/// rename publishes them, so a crash mid-write leaves any previous
/// checkpoint at `path` intact.
pub fn save_checkpoint(
    path: &Path,
    q: &StateField,
    t: f64,
    steps: u64,
) -> Result<(), CheckpointError> {
    let dom = *q.domain();
    let header = CheckpointHeader {
        n: dom.n,
        ng: dom.ng,
        nf: dom.eq.nf(),
        ndim: dom.eq.ndim(),
        t,
        steps,
    };
    let hjson =
        serde_json::to_string(&header).map_err(|e| CheckpointError::BadHeader(e.to_string()))?;
    let mut crc = Crc32::new();
    crc.update(hjson.as_bytes());
    for v in q.as_slice() {
        crc.update(&v.to_le_bytes());
    }

    let tmp = tmp_path(path);
    let write = || -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(&tmp)?);
        w.write_all(CHECKPOINT_MAGIC)?;
        w.write_all(&(hjson.len() as u64).to_le_bytes())?;
        w.write_all(&crc.finish().to_le_bytes())?;
        w.write_all(hjson.as_bytes())?;
        for v in q.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
        w.flush()?;
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write().map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        CheckpointError::Io(e)
    })
}

/// Read a checkpoint back: returns the header and the state.
///
/// Rejects files without the magic, with a truncated header or payload,
/// or whose CRC-32 does not match — the resilient driver treats any of
/// these as "this wave is gone" and rolls back further.
pub fn load_checkpoint(path: &Path) -> Result<(CheckpointHeader, StateField), CheckpointError> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    read_or_truncated(&mut r, &mut magic, 8)?;
    if &magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::NotACheckpoint);
    }
    let mut len8 = [0u8; 8];
    read_or_truncated(&mut r, &mut len8, 16)?;
    let hlen = u64::from_le_bytes(len8) as usize;
    if hlen > 1 << 20 {
        return Err(CheckpointError::BadHeader(format!(
            "implausible header length {hlen}"
        )));
    }
    let mut crc4 = [0u8; 4];
    read_or_truncated(&mut r, &mut crc4, 20)?;
    let stored = u32::from_le_bytes(crc4);

    let mut hbuf = vec![0u8; hlen];
    read_or_truncated(&mut r, &mut hbuf, 20 + hlen)?;
    let header: CheckpointHeader =
        serde_json::from_slice(&hbuf).map_err(|e| CheckpointError::BadHeader(e.to_string()))?;
    let dom = header.domain();
    let mut q = StateField::zeros(dom);
    let expect = q.as_slice().len() * 8;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() != expect {
        return Err(CheckpointError::Truncated {
            found: 20 + hlen + bytes.len(),
            expected: 20 + hlen + expect,
        });
    }
    let mut crc = Crc32::new();
    crc.update(&hbuf);
    crc.update(&bytes);
    let computed = crc.finish();
    if computed != stored {
        return Err(CheckpointError::CrcMismatch { stored, computed });
    }
    for (slot, chunk) in q.as_mut_slice().iter_mut().zip(bytes.chunks_exact(8)) {
        let mut le = [0u8; 8];
        le.copy_from_slice(chunk);
        *slot = f64::from_le_bytes(le);
    }
    Ok((header, q))
}

/// Rebuild one rank's state for a **new** decomposition from the wave
/// shards of an **old** one — the state-redistribution step of
/// shrink-and-continue recovery.
///
/// The caller owns global interior cells `off .. off + dom.n` under the
/// new layout; each old rank's block under `(old_dims, old_size)` is
/// located with [`mfc_mpsim::block_extents`], every shard that intersects
/// is loaded (CRC-verified like any checkpoint), and exactly the owned
/// cells are copied across. Ghost layers are left zeroed: every consumer
/// of post-rollback state refreshes ghosts via halo exchange + boundary
/// conditions before reading them, which is what makes the redistributed
/// trajectory bitwise identical to a fresh run from this wave at the new
/// rank count.
///
/// All intersecting shards must agree on `(t, steps)` bitwise and carry
/// the layout the old decomposition implies; anything else is a
/// [`CheckpointError::BadHeader`], which the collective rollback treats
/// as "this wave is gone" and walks back further.
pub fn load_redistributed(
    dir: &Path,
    wave: u64,
    old_dims: [usize; 3],
    old_size: usize,
    global_n: [usize; 3],
    dom: Domain,
    off: [usize; 3],
) -> Result<(CheckpointHeader, StateField), CheckpointError> {
    let eq = dom.eq;
    let ndim = eq.ndim();
    let mut q = StateField::zeros(dom);
    let mut meta: Option<(f64, u64)> = None;
    let my_hi = [off[0] + dom.n[0], off[1] + dom.n[1], off[2] + dom.n[2]];
    for old in 0..old_size {
        let (ooff, on) = mfc_mpsim::block_extents(old, old_dims, global_n, ndim);
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        let mut empty = false;
        for d in 0..3 {
            lo[d] = off[d].max(ooff[d]);
            hi[d] = my_hi[d].min(ooff[d] + on[d]);
            empty |= lo[d] >= hi[d];
        }
        if empty {
            continue;
        }
        let (h, oldq) = load_checkpoint(&wave_path(dir, old, wave))?;
        if h.n != on || h.ng != dom.ng || h.nf != eq.nf() || h.ndim != ndim {
            return Err(CheckpointError::BadHeader(format!(
                "shard r{old} w{wave}: layout n={:?} ng={} nf={} ndim={} does not match \
                 the {:?}-block the old {old_dims:?} decomposition implies",
                h.n, h.ng, h.nf, h.ndim, on
            )));
        }
        match meta {
            None => meta = Some((h.t, h.steps)),
            Some((t, s)) if t.to_bits() == h.t.to_bits() && s == h.steps => {}
            Some((t, s)) => {
                return Err(CheckpointError::BadHeader(format!(
                    "shard r{old} w{wave} is at (t={}, step={}) but earlier shards are at \
                     (t={t}, step={s}); the wave is not a consistent snapshot",
                    h.t, h.steps
                )))
            }
        }
        let odom = *oldq.domain();
        for e in 0..eq.neq() {
            for gz in lo[2]..hi[2] {
                for gy in lo[1]..hi[1] {
                    for gx in lo[0]..hi[0] {
                        let (oi, oj, ok) =
                            odom.to_padded([gx - ooff[0], gy - ooff[1], gz - ooff[2]]);
                        let (ni, nj, nk) = dom.to_padded([gx - off[0], gy - off[1], gz - off[2]]);
                        q.set(ni, nj, nk, e, oldq.get(oi, oj, ok, e));
                    }
                }
            }
        }
    }
    let (t, steps) = meta.ok_or_else(|| {
        CheckpointError::BadHeader(format!(
            "no shard of the old {old_dims:?} decomposition intersects block at {off:?}"
        ))
    })?;
    let header = CheckpointHeader {
        n: dom.n,
        ng: dom.ng,
        nf: eq.nf(),
        ndim,
        t,
        steps,
    };
    Ok((header, q))
}

fn read_or_truncated(
    r: &mut impl Read,
    buf: &mut [u8],
    expected_so_far: usize,
) -> Result<(), CheckpointError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated {
                found: 0,
                expected: expected_so_far,
            }
        } else {
            CheckpointError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::presets;
    use crate::solver::{Solver, SolverConfig};
    use mfc_acc::Context;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mfc_ckpt_{name}_{}.bin", std::process::id()))
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical CRC-32/IEEE check value.
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let case = presets::two_phase_benchmark(2, [12, 12, 1]);
        let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        solver.run_steps(3).unwrap();
        let path = tmp("roundtrip");
        save_checkpoint(&path, solver.state(), solver.time(), solver.steps()).unwrap();
        let (h, q) = load_checkpoint(&path).unwrap();
        assert_eq!(h.t, solver.time());
        assert_eq!(h.steps, 3);
        assert_eq!(q.as_slice(), solver.state().as_slice());
        // No temp file left behind.
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn redistribution_reassembles_interiors_across_layouts() {
        use mfc_mpsim::{best_block_dims, block_extents};
        let eq = EqIdx::new(1, 2);
        let global = [12, 10, 1];
        let ng = 3;
        let dir = std::env::temp_dir().join(format!("mfc_redist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Write 4-rank shards of an analytic field (value = equation*1000
        // + global linear index), ghosts poisoned with NaN to prove the
        // redistribution never copies a ghost cell.
        let old_dims = best_block_dims(4, global);
        for r in 0..4 {
            let (off, n) = block_extents(r, old_dims, global, 2);
            let dom = Domain::new(n, ng, eq);
            let mut q = StateField::zeros(dom);
            q.fill(f64::NAN);
            for e in 0..eq.neq() {
                for gy in off[1]..off[1] + n[1] {
                    for gx in off[0]..off[0] + n[0] {
                        let (i, j, k) = dom.to_padded([gx - off[0], gy - off[1], 0]);
                        q.set(i, j, k, e, (e * 1000 + gy * 12 + gx) as f64);
                    }
                }
            }
            save_checkpoint(&wave_path(&dir, r, 5), &q, 0.25, 7).unwrap();
        }
        // Redistribute onto every smaller rank count.
        for new_ranks in [1usize, 2, 3] {
            let new_dims = best_block_dims(new_ranks, global);
            for r in 0..new_ranks {
                let (off, n) = block_extents(r, new_dims, global, 2);
                let dom = Domain::new(n, ng, eq);
                let (h, q) = load_redistributed(&dir, 5, old_dims, 4, global, dom, off).unwrap();
                assert_eq!(h.t, 0.25);
                assert_eq!(h.steps, 7);
                assert_eq!(h.n, n);
                for e in 0..eq.neq() {
                    for gy in off[1]..off[1] + n[1] {
                        for gx in off[0]..off[0] + n[0] {
                            let (i, j, k) = dom.to_padded([gx - off[0], gy - off[1], 0]);
                            assert_eq!(
                                q.get(i, j, k, e),
                                (e * 1000 + gy * 12 + gx) as f64,
                                "rank {r}/{new_ranks} cell ({gx},{gy}) eq {e}"
                            );
                        }
                    }
                }
            }
        }
        // A missing shard surfaces as a typed error, not garbage.
        std::fs::remove_file(wave_path(&dir, 0, 5)).unwrap();
        let (off, n) = block_extents(0, best_block_dims(2, global), global, 2);
        assert!(
            load_redistributed(&dir, 5, old_dims, 4, global, Domain::new(n, ng, eq), off).is_err()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_checkpoint_file_is_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::NotACheckpoint)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let case = presets::sod(16);
        let solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        let path = tmp("trunc");
        save_checkpoint(&path, solver.state(), 0.0, 0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Truncated { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_rejected_by_crc() {
        let case = presets::sod(16);
        let solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        let path = tmp("bitflip");
        save_checkpoint(&path, solver.state(), 0.0, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10; // single bit flip in the payload
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::CrcMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_bit_flip_is_rejected() {
        let case = presets::sod(16);
        let solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        let path = tmp("hdrflip");
        save_checkpoint(&path, solver.state(), 0.0, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the JSON header (starts at offset 20). Pick a
        // digit in the numeric fields so the JSON stays parseable.
        let pos = (20..bytes.len().min(120))
            .find(|&i| bytes[i].is_ascii_digit())
            .unwrap();
        bytes[pos] = if bytes[pos] == b'1' { b'2' } else { b'1' };
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
