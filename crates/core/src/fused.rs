//! Fused, cache-blocked RHS sweep engine.
//!
//! The staged pipeline in [`crate::rhs`] streams the full grid through
//! memory once per stage: reshape into a coalesced buffer, reconstruct
//! every face, solve every Riemann problem, then accumulate the flux
//! divergence — with grid-sized `left`/`right`/`flux`/`ustar`
//! intermediates in between. That is exactly the traffic the paper's GPU
//! kernel-fusion work eliminates; on a memory-bound CPU core the canonical
//! analog is loop fusion with cache blocking.
//!
//! This engine processes *pencils* — batches of [`PENCIL_B`] transverse
//! lines along the sweep axis — through pack → WENO → Riemann → update in
//! a single pass. All intermediates live in a few KB of per-pencil scratch
//! ([`FusedScratch`]) that stays resident in L1/L2, and the per-face
//! variable vectors are stack-allocated at `MAX_EQ` (the compile-time-sized
//! "private arrays" of §III-D). Two further sources of traffic disappear
//! structurally:
//!
//! * no grid-sized packed buffer is materialized for any direction — the
//!   gather stage copies each pencil's lines straight out of the canonical
//!   primitive buffer (the x sweep needs no gather at all), batched along
//!   the canonical-x coordinate so even the strided y/z gathers consume
//!   whole cache lines;
//! * ghost *transverse* lines are skipped. The staged kernels reconstruct
//!   and solve along every line of the padded buffer, but the update stage
//!   only ever reads faces on interior transverse coordinates, so roughly
//!   `1 - (n/(n+2*ng))^2` of the staged WENO/Riemann work is dead. Skipping
//!   it cannot change a single consumed bit.
//!
//! Per-line arithmetic is delegated to the *same* inlined kernels the
//! staged path uses ([`crate::weno::reconstruct_line_padded_vec`],
//! [`crate::limiter::limit_state`], [`RiemannSolver::flux`]) in the same
//! order, so the fused engine is bitwise identical to the staged one —
//! `tests/rhs_fusion.rs` asserts this on every shipped case.
//!
//! Unlike the staged stages, which tile lanes across whole grid rows, the
//! fused WENO/Riemann/update stages tile lane packets along the
//! *unit-stride face index within each pencil line* (OpenACC's `vector`
//! level nested inside the pencil `gang`s). Each lane still performs the
//! exact scalar op sequence on its own face, so every width remains
//! bitwise identical to the scalar engine; the gather stage stays scalar
//! (it is a pure byte shuffle with no arithmetic to vectorize).
//!
//! Every stage still lands in the `mfc-acc` ledger under its own label
//! (`f_sweep_gather`/`f_weno_reconstruct`/`f_riemann_solve`/
//! `f_flux_divergence`) with the staged-equivalent per-item costs, so
//! roofline and breakdown figures keep decomposing; an `s_fused_sweep`
//! marker of class [`KernelClass::Fused`] carries the orchestration
//! residual so total ledger wall time stays honest.

use std::time::{Duration, Instant};

use mfc_acc::{Context, KernelClass, KernelCost, Lane, LaneGangBody, ParSlice};

use crate::axisym::Geometry;
use crate::domain::{Domain, MAX_EQ};
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use crate::limiter::{limit_state, Limiter};
use crate::rhs::{
    admissible_mask, region_transverse, state_admissible, sweep_to_canonical, Region, RhsConfig,
    RhsWorkspace,
};
use crate::riemann::RiemannSolver;
use crate::state::StateField;
use crate::weno::{reconstruct_line_padded_vec, WenoOrder};

/// Transverse lines per pencil. Eight 8-byte values span one 64-byte cache
/// line, so the strided y/z gathers read (and fully consume) whole lines.
pub(crate) const PENCIL_B: usize = 8;

/// Per-pencil scratch of the fused engine: the only intermediates between
/// the sweep stages, sized `PENCIL_B * neq * max_line` — a few KB total,
/// resident in cache for the lifetime of the evaluation.
pub(crate) struct FusedScratch {
    /// Gathered pencil lines, `[b][e][s]`, line-contiguous.
    v: Vec<f64>,
    /// Reconstructed face states, `[b][e][m]`.
    left: Vec<f64>,
    right: Vec<f64>,
    /// Face fluxes, `[b][e][m]`.
    flux: Vec<f64>,
    /// Contact speeds, `[b][m]`.
    ustar: Vec<f64>,
}

impl FusedScratch {
    /// Allocate scratch for `dom` at lane width `vector_width`: per-line
    /// extents are rounded up to a lane multiple so a debug-asserted
    /// full-packet load anchored at any in-line index stays inside the
    /// allocation even on the buffer's final line.
    pub(crate) fn new(dom: &Domain, vector_width: usize) -> Self {
        let vw = vector_width.max(1);
        let round = |n: usize| n.div_ceil(vw) * vw;
        let neq = dom.eq.neq();
        let (mut vmax, mut fmax, mut umax) = (0, 0, 0);
        for axis in 0..dom.eq.ndim() {
            let ext = dom.ext(axis);
            let nf = dom.n[axis] + 1;
            vmax = vmax.max(PENCIL_B * neq * round(ext));
            fmax = fmax.max(PENCIL_B * neq * round(nf));
            umax = umax.max(PENCIL_B * round(nf));
        }
        FusedScratch {
            v: vec![0.0; vmax],
            left: vec![0.0; fmax],
            right: vec![0.0; fmax],
            flux: vec![0.0; fmax],
            ustar: vec![0.0; umax],
        }
    }
}

/// Run the three directional sweeps (steps 2–6 of [`crate::rhs::compute_rhs`])
/// through the fused pencil engine. Bitwise identical to the staged path.
pub(crate) fn fused_sweeps(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
) {
    let full = Region::full(&ws.dom);
    for axis in 0..ws.dom.eq.ndim() {
        fused_sweep_axis_region(ctx, cfg, fluids, ws, rhs, axis, &full);
    }
}

/// One fused directional sweep restricted to `region` — the full-region
/// call is the ordinary fused sweep (every index below reduces to the
/// unrestricted value), and the overlapped stepping mode runs the same
/// code over its interior core and boundary shells. Each pencil gathers
/// the region's sweep window (`s_lo .. s_lo + s_n` plus `pad` cells each
/// side), so the per-line slices feed the reconstruction the identical
/// stencil values at every produced face.
pub(crate) fn fused_sweep_axis_region(
    ctx: &Context,
    cfg: &RhsConfig,
    fluids: &[Fluid],
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
    axis: usize,
    region: &Region,
) {
    if region.is_empty() {
        return;
    }
    let RhsWorkspace {
        dom,
        prim,
        divu,
        widths,
        radii,
        fused,
        ..
    } = ws;
    let dom = *dom;
    let eq = dom.eq;
    let neq = eq.neq();
    // One scratch block per worker gang: each gang's pencils stream
    // through its own buffers, so the decomposition never changes a
    // single value any pencil reads (scratch is fully rewritten before
    // every read within a unit of work).
    let workers = ctx.workers().max(1);
    if fused.len() < workers {
        fused.resize_with(workers, || FusedScratch::new(&dom, ctx.vector_width()));
    }
    let d3 = dom.dims3();
    let (n1, n2, n3) = (d3.n1, d3.n2, d3.n3);
    let cell_stride = n1 * n2 * n3;
    let psl = prim.as_slice();
    let rsl = ParSlice::new(rhs.as_mut_slice());
    let dsl = ParSlice::new(divu);
    let gh = cfg.order.ghost_layers();

    let pad = dom.pad(axis);
    // The region's window along the sweep axis: cells `s_lo..s_lo + s_n`
    // (interior coordinates), faces `s_lo..=s_lo + s_n`, and a gathered
    // line extent of `s_n + 2*pad` covering every stencil read.
    let (s_lo, s_n) = region.span(axis);
    let rext = s_n + 2 * pad;
    let rnf = s_n + 1;
    let w = &widths[axis][..];
    let radial = if axis == 2 && cfg.geometry == Geometry::Cylindrical3D {
        Some(&radii[..])
    } else {
        None
    };
    // The region's transverse bounds in sweep coordinates (t1, t2) — the
    // exact cell set this region's update stage consumes.
    let (p1, n1i, p2, n2i) = region_transverse(&dom, axis, region);
    // Pencils batch over whichever transverse coordinate is canonical
    // x (t1 for the x/y sweeps, t2 for z), so the strided gathers of a
    // pencil read consecutive memory.
    let batch_t1 = axis < 2;
    let (bq, bcount, oq, ocount) = if batch_t1 {
        (p1, n1i, p2, n2i)
    } else {
        (p2, n2i, p1, n1i)
    };
    let nlines = n1i * n2i;

    // Gang decomposition: the sweep's unit of work is one pencil — an
    // (outer transverse coordinate, batch of PENCIL_B lines) pair. Units
    // are flattened with the batch index fastest, so the serial unit
    // order reproduces the original (outer, batch) loop nest exactly;
    // distinct units update disjoint cells, so the per-index writes
    // commute and any gang count produces bitwise-identical fields.
    let nbatches = bcount.div_ceil(PENCIL_B);
    let units = ocount * nbatches;

    let body = FusedBody {
        eq,
        fluids,
        order: cfg.order,
        solver: cfg.solver,
        limiter: cfg.limiter,
        axis,
        psl,
        rsl,
        dsl,
        w,
        radial,
        n1,
        n2,
        n3,
        cell_stride,
        sweep_stride: match axis {
            0 => 1,
            1 => n1,
            _ => n1 * n2,
        },
        pad,
        s_lo,
        s_n,
        rext,
        rnf,
        batch_t1,
        bq,
        bcount,
        oq,
        nbatches,
    };
    let t_axis = Instant::now();
    let (stage_times, gangs) =
        ctx.gang_vec_scope(units, (nlines * s_n) as u64, &mut fused[..], &body);
    // Per-stage CPU time summed over gangs in fixed gang order (exceeds
    // the axis wall clock when gangs overlap; the residual clamps at 0).
    let (mut tg, mut tw, mut tr, mut tu) = (
        Duration::ZERO,
        Duration::ZERO,
        Duration::ZERO,
        Duration::ZERO,
    );
    for t in &stage_times {
        tg += t[0];
        tw += t[1];
        tr += t[2];
        tu += t[3];
    }

    // Per-axis ledger records: each stage under its own label with the
    // staged-equivalent per-item cost, plus the Fused-class marker
    // carrying the orchestration residual. The stage events tile the
    // axis interval back-to-back so traced timelines stay monotone;
    // with >1 gang the timers sum CPU time across workers and can
    // exceed the wall interval, so scale them down to fit it.
    let wall = t_axis.elapsed();
    let total = tg + tw + tr + tu;
    if total > wall && total > Duration::ZERO {
        let scale = wall.as_secs_f64() / total.as_secs_f64();
        tg = tg.mul_f64(scale);
        tw = tw.mul_f64(scale);
        tr = tr.mul_f64(scale);
        tu = tu.mul_f64(scale);
    }
    // Analytic lane tiling of the vector stages (the same convention as
    // `launch_vec`): WENO tiles `neq` face lines and Riemann one face
    // line of `rnf` faces per pencil line; the update tiles `s_n` cells
    // per line. The scalar gather contributes no vector elements.
    let vw = ctx.vector_width();
    let face_rows = (nlines * (neq + 1)) as u64;
    ctx.note_lane_tiling(
        face_rows * (rnf / vw) as u64 + nlines as u64 * (s_n / vw) as u64,
        face_rows * (rnf % vw) as u64 + nlines as u64 * (s_n % vw) as u64,
    );
    let gangs = gangs as u32;
    let lanes = vw as u32;
    if axis != 0 {
        ctx.record_external_gangs(
            "f_sweep_gather",
            KernelCost::new(KernelClass::Pack, 0.0, 8.0, 8.0),
            (nlines * neq * rext) as u64,
            gangs,
            t_axis,
            tg,
        );
    }
    ctx.record_external_vec(
        "f_weno_reconstruct",
        KernelCost::new(
            KernelClass::Weno,
            cfg.order.flops_per_face(),
            8.0 * (2 * gh + 1) as f64,
            2.0 * 8.0,
        ),
        (nlines * neq * rnf) as u64,
        gangs,
        lanes,
        t_axis + tg,
        tw,
    );
    ctx.record_external_vec(
        "f_riemann_solve",
        KernelCost::new(
            KernelClass::Riemann,
            cfg.solver.flops_per_face(&eq),
            2.0 * 8.0 * neq as f64,
            8.0 * (neq + 1) as f64,
        ),
        (nlines * rnf) as u64,
        gangs,
        lanes,
        t_axis + tg + tw,
        tr,
    );
    ctx.record_external_vec(
        "f_flux_divergence",
        KernelCost::new(
            KernelClass::Update,
            (2 * neq + 3) as f64,
            8.0 * 2.0 * (neq + 1) as f64,
            8.0 * (neq + 1) as f64,
        ),
        (nlines * s_n) as u64,
        gangs,
        lanes,
        t_axis + tg + tw + tr,
        tu,
    );
    let residual = wall
        .checked_sub(tg + tw + tr + tu)
        .unwrap_or(Duration::ZERO);
    ctx.record_external_gangs(
        "s_fused_sweep",
        KernelCost::new(KernelClass::Fused, 0.0, 8.0, 8.0),
        nlines as u64,
        gangs,
        t_axis + tg + tw + tr + tu,
        residual,
    );
}

/// Shared environment of one fused directional sweep, executable at any
/// lane width ([`LaneGangBody`]): each gang streams its pencil range
/// through the four stages with its own [`FusedScratch`], tiling lane
/// packets along the unit-stride face index within every pencil line.
struct FusedBody<'a> {
    eq: EqIdx,
    fluids: &'a [Fluid],
    order: WenoOrder,
    solver: RiemannSolver,
    limiter: Limiter,
    axis: usize,
    /// Canonical primitive buffer.
    psl: &'a [f64],
    rsl: ParSlice<'a>,
    dsl: ParSlice<'a>,
    /// Ghost-inclusive cell widths along the sweep axis.
    w: &'a [f64],
    /// Radii by first transverse coordinate (cylindrical azimuthal sweeps).
    radial: Option<&'a [f64]>,
    n1: usize,
    n2: usize,
    n3: usize,
    /// Ghost-inclusive cells per equation block.
    cell_stride: usize,
    /// Canonical flat stride of one step along the sweep axis.
    sweep_stride: usize,
    pad: usize,
    s_lo: usize,
    s_n: usize,
    /// Gathered line extent (`s_n + 2*pad`).
    rext: usize,
    /// Faces per line (`s_n + 1`).
    rnf: usize,
    batch_t1: bool,
    bq: usize,
    bcount: usize,
    oq: usize,
    nbatches: usize,
}

impl FusedBody<'_> {
    /// Sweep coordinates (t1, t2) of batch line `b` of the unit at outer
    /// coordinate `oc`, batch origin `b0`.
    #[inline(always)]
    fn line_t(&self, oc: usize, b0: usize, b: usize) -> (usize, usize) {
        if self.batch_t1 {
            (self.bq + b0 + b, oc)
        } else {
            (oc, self.bq + b0 + b)
        }
    }

    /// Canonical flat offset of cell (s = 0) of line (t1, t2), variable
    /// `e` — lines of one pencil are consecutive in canonical x.
    #[inline(always)]
    fn line_base(&self, t1: usize, t2: usize, e: usize) -> usize {
        let (i, j, k) = sweep_to_canonical(self.axis, 0, t1, t2);
        i + self.n1 * (j + self.n2 * (k + self.n3 * e))
    }

    /// Cell value at window position `s` of line (b, e), for the
    /// positivity-fallback means.
    #[inline(always)]
    fn cell_val(&self, v: &[f64], t1: usize, t2: usize, b: usize, e: usize, s: usize) -> f64 {
        if self.axis == 0 {
            self.psl[self.line_base(t1, t2, e) + self.s_lo + s]
        } else {
            v[(b * self.eq.neq() + e) * self.rext + s]
        }
    }

    /// One face through the scalar Riemann path (the exact staged
    /// semantics): gather face states, positivity-limit toward the cell
    /// means where inadmissible, solve, store flux and contact speed.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn solve_face_scalar(
        &self,
        v: &[f64],
        left: &[f64],
        right: &[f64],
        flux: &mut [f64],
        ustar: &mut [f64],
        t1: usize,
        t2: usize,
        b: usize,
        m: usize,
    ) {
        let eq = &self.eq;
        let neq = eq.neq();
        let rnf = self.rnf;
        let mut pl = [0.0; MAX_EQ];
        let mut pr = [0.0; MAX_EQ];
        let mut f = [0.0; MAX_EQ];
        let mut mean = [0.0; MAX_EQ];
        for e in 0..neq {
            pl[e] = left[(b * neq + e) * rnf + m];
            pr[e] = right[(b * neq + e) * rnf + m];
        }
        let cl = self.pad - 1 + m;
        if !state_admissible(eq, self.fluids, &pl[..neq]) {
            for (e, mv) in mean.iter_mut().enumerate().take(neq) {
                *mv = self.cell_val(v, t1, t2, b, e, cl);
            }
            limit_state(self.limiter, eq, self.fluids, &mean[..neq], &mut pl[..neq]);
        }
        if !state_admissible(eq, self.fluids, &pr[..neq]) {
            for (e, mv) in mean.iter_mut().enumerate().take(neq) {
                *mv = self.cell_val(v, t1, t2, b, e, cl + 1);
            }
            limit_state(self.limiter, eq, self.fluids, &mean[..neq], &mut pr[..neq]);
        }
        let s = self.solver.flux(
            eq,
            self.fluids,
            self.axis,
            &pl[..neq],
            &pr[..neq],
            &mut f[..neq],
        );
        for e in 0..neq {
            flux[(b * neq + e) * rnf + m] = f[e];
        }
        ustar[b * rnf + m] = s;
    }
}

impl LaneGangBody<FusedScratch, [Duration; 4]> for FusedBody<'_> {
    fn run<L: Lane>(
        &self,
        _gang: usize,
        range: std::ops::Range<usize>,
        fs: &mut FusedScratch,
    ) -> [Duration; 4] {
        let FusedScratch {
            v,
            left,
            right,
            flux,
            ustar,
        } = fs;
        let eq = &self.eq;
        let neq = eq.neq();
        let (rext, rnf, s_n, pad, axis) = (self.rext, self.rnf, self.s_n, self.pad, self.axis);
        let mut times = [Duration::ZERO; 4];

        for unit in range {
            let o = unit / self.nbatches;
            let b0 = (unit % self.nbatches) * PENCIL_B;
            let oc = self.oq + o;
            let bw = PENCIL_B.min(self.bcount - b0);

            // --- stage 1: gather (scalar pack; skipped for x: canonical
            //     lines are already unit-stride in `prim`) ---
            if axis != 0 {
                let t0 = Instant::now();
                let sweep_stride = self.sweep_stride;
                let (t1, t2) = self.line_t(oc, b0, 0);
                for e in 0..neq {
                    let base = self.line_base(t1, t2, e) + self.s_lo * sweep_stride;
                    for s in 0..rext {
                        let src = base + s * sweep_stride;
                        let dst = e * rext + s;
                        for (b, vb) in v[dst..].iter_mut().step_by(neq * rext).take(bw).enumerate()
                        {
                            *vb = self.psl[src + b];
                        }
                    }
                }
                times[0] += t0.elapsed();
            }

            // --- stage 2: WENO reconstruction per line per variable,
            //     lane packets along the face index ---
            {
                let t0 = Instant::now();
                for b in 0..bw {
                    let (t1, t2) = self.line_t(oc, b0, b);
                    for e in 0..neq {
                        let fo = (b * neq + e) * rnf;
                        if axis == 0 {
                            let base = self.line_base(t1, t2, e) + self.s_lo;
                            reconstruct_line_padded_vec::<L>(
                                self.order,
                                &self.psl[base..base + rext],
                                pad,
                                s_n,
                                &mut left[fo..fo + rnf],
                                &mut right[fo..fo + rnf],
                            );
                        } else {
                            let lo = (b * neq + e) * rext;
                            reconstruct_line_padded_vec::<L>(
                                self.order,
                                &v[lo..lo + rext],
                                pad,
                                s_n,
                                &mut left[fo..fo + rnf],
                                &mut right[fo..fo + rnf],
                            );
                        }
                    }
                }
                times[1] += t0.elapsed();
            }

            // --- stage 3: Riemann solve per face (same positivity
            //     limiting and flux arithmetic as the staged kernel):
            //     all-admissible packets solve lane-wide, any flagged
            //     lane replays the whole packet through the scalar path ---
            {
                let t0 = Instant::now();
                for b in 0..bw {
                    let (t1, t2) = self.line_t(oc, b0, b);
                    let mut m = 0;
                    while m + L::WIDTH <= rnf {
                        let mut pl = [L::splat(0.0); MAX_EQ];
                        let mut pr = [L::splat(0.0); MAX_EQ];
                        for e in 0..neq {
                            pl[e] = L::load(&left[(b * neq + e) * rnf + m..]);
                            pr[e] = L::load(&right[(b * neq + e) * rnf + m..]);
                        }
                        let ok = L::mask_and(
                            admissible_mask(eq, self.fluids, &pl[..neq]),
                            admissible_mask(eq, self.fluids, &pr[..neq]),
                        );
                        if L::mask_all(ok) {
                            let mut f = [L::splat(0.0); MAX_EQ];
                            let s = self.solver.flux(
                                eq,
                                self.fluids,
                                axis,
                                &pl[..neq],
                                &pr[..neq],
                                &mut f[..neq],
                            );
                            for e in 0..neq {
                                f[e].store(&mut flux[(b * neq + e) * rnf + m..]);
                            }
                            s.store(&mut ustar[b * rnf + m..]);
                        } else {
                            for lane in 0..L::WIDTH {
                                self.solve_face_scalar(
                                    v,
                                    left,
                                    right,
                                    flux,
                                    ustar,
                                    t1,
                                    t2,
                                    b,
                                    m + lane,
                                );
                            }
                        }
                        m += L::WIDTH;
                    }
                    while m < rnf {
                        self.solve_face_scalar(v, left, right, flux, ustar, t1, t2, b, m);
                        m += 1;
                    }
                }
                times[2] += t0.elapsed();
            }

            // --- stage 4: flux divergence into the canonical RHS and
            //     S* differences into div(u), lane packets along the
            //     sweep index with the canonical per-axis cell stride ---
            {
                let t0 = Instant::now();
                for b in 0..bw {
                    let (t1, t2) = self.line_t(oc, b0, b);
                    let metric = self.radial.map(|r| r[t1]).unwrap_or(1.0);
                    let ub = b * rnf;
                    let cs = self.sweep_stride;
                    let mut s = 0;
                    while s + L::WIDTH <= s_n {
                        let sa = self.s_lo + s;
                        let inv_dx =
                            L::splat(1.0) / (L::load(&self.w[pad + sa..]) * L::splat(metric));
                        let (i, j, k) = sweep_to_canonical(axis, pad + sa, t1, t2);
                        let cell = i + self.n1 * (j + self.n2 * k);
                        for e in 0..neq {
                            let fb = (b * neq + e) * rnf + s;
                            let d = (L::load(&flux[fb..]) - L::load(&flux[fb + 1..])) * inv_dx;
                            self.rsl
                                .add_lanes_strided(cell + e * self.cell_stride, cs, d);
                        }
                        let dv =
                            (L::load(&ustar[ub + s + 1..]) - L::load(&ustar[ub + s..])) * inv_dx;
                        self.dsl.add_lanes_strided(cell, cs, dv);
                        s += L::WIDTH;
                    }
                    while s < s_n {
                        let sa = self.s_lo + s;
                        let inv_dx = 1.0 / (self.w[pad + sa] * metric);
                        let (i, j, k) = sweep_to_canonical(axis, pad + sa, t1, t2);
                        let cell = i + self.n1 * (j + self.n2 * k);
                        for e in 0..neq {
                            let fb = (b * neq + e) * rnf + s;
                            self.rsl.add(
                                cell + e * self.cell_stride,
                                (flux[fb] - flux[fb + 1]) * inv_dx,
                            );
                        }
                        self.dsl
                            .add(cell, (ustar[ub + s + 1] - ustar[ub + s]) * inv_dx);
                        s += 1;
                    }
                }
                times[3] += t0.elapsed();
            }
        }
        times
    }
}
