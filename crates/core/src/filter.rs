//! Azimuthal spectral filtering for 3-D cylindrical grids (§III-A).
//!
//! On cylindrical grids the azimuthal cell width shrinks as `r dtheta`
//! toward the axis, which would crush the CFL time step.  MFC applies a
//! cuFFT/hipFFT low-pass filter along the azimuthal direction near the
//! axis instead; here the transform comes from [`mfc_fft`].
//!
//! Convention: axis 0 = axial, axis 1 = radial (ring index), axis 2 =
//! azimuthal (periodic, power-of-two extent).

use mfc_acc::{Context, KernelClass, KernelCost, LaunchConfig};
use mfc_fft::LowpassPlan;

use crate::state::StateField;

/// Apply the ring-dependent azimuthal low-pass filter to every equation of
/// the interior cells.
pub fn apply_azimuthal_filter(ctx: &Context, plan: &LowpassPlan, q: &mut StateField) {
    let dom = *q.domain();
    let eq = dom.eq;
    assert_eq!(eq.ndim(), 3, "azimuthal filter requires a 3-D field");
    assert_eq!(
        plan.ntheta(),
        dom.n[2],
        "filter plan azimuthal extent must match the grid"
    );
    assert_eq!(
        plan.nr(),
        dom.n[1],
        "filter plan must cover every radial ring"
    );
    let ntheta = dom.n[2];
    let neq = eq.neq();
    let cost = KernelCost::new(
        KernelClass::Other,
        // ~5 N log2 N flops per FFT, two transforms per line.
        10.0 * (ntheta as f64).log2(),
        8.0,
        8.0,
    );
    let cfg = LaunchConfig::tuned("s_fourier_filter");
    let lines = dom.n[0] * dom.n[1] * neq;
    let mut line = vec![0.0; ntheta];
    ctx.launch(&cfg, cost, lines * ntheta, |item| {
        // One ledger item per touched element; do the work once per line.
        if item % ntheta != 0 {
            return;
        }
        let l = item / ntheta;
        let i = l % dom.n[0] + dom.pad(0);
        let j = (l / dom.n[0]) % dom.n[1];
        let e = l / (dom.n[0] * dom.n[1]);
        let jj = j + dom.pad(1);
        for (t, v) in line.iter_mut().enumerate() {
            *v = q.get(i, jj, t + dom.pad(2), e);
        }
        plan.apply_line(j, &mut line);
        for (t, v) in line.iter().enumerate() {
            q.set(i, jj, t + dom.pad(2), e, *v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::eqidx::EqIdx;

    fn setup(nr: usize, ntheta: usize) -> (Domain, StateField) {
        let eq = EqIdx::new(1, 3);
        let dom = Domain::new([4, nr, ntheta], 3, eq);
        (dom, StateField::zeros(dom))
    }

    #[test]
    fn filter_kills_high_modes_near_axis_only() {
        let (dom, mut q) = setup(8, 32);
        let plan = LowpassPlan::new(8, 32);
        // Paint a high azimuthal mode everywhere.
        for (i, j, k) in dom.interior() {
            let theta = 2.0 * std::f64::consts::PI * (k - dom.pad(2)) as f64 / 32.0;
            q.set(i, j, k, 0, (14.0 * theta).cos());
        }
        let ctx = Context::serial();
        apply_azimuthal_filter(&ctx, &plan, &mut q);
        // Inner ring (j=0): mode 14 must be gone.
        let amp = |j: usize| -> f64 {
            (0..32)
                .map(|k| q.get(4, j + 3, k + 3, 0).abs())
                .fold(0.0, f64::max)
        };
        assert!(amp(0) < 1e-10, "inner ring amplitude {}", amp(0));
        // Outer ring (j=7): cutoff is 16 >= 14, mode survives.
        assert!(amp(7) > 0.9, "outer ring amplitude {}", amp(7));
    }

    #[test]
    fn filter_preserves_azimuthal_mean() {
        let (dom, mut q) = setup(4, 16);
        let plan = LowpassPlan::new(4, 16);
        for (i, j, k) in dom.interior() {
            q.set(i, j, k, 0, 3.0 + ((i + j + k) % 5) as f64);
        }
        let mean = |q: &StateField, i: usize, j: usize| -> f64 {
            (0..16).map(|k| q.get(i, j + 3, k + 3, 0)).sum::<f64>() / 16.0
        };
        let before = mean(&q, 5, 0);
        let ctx = Context::serial();
        apply_azimuthal_filter(&ctx, &plan, &mut q);
        let after = mean(&q, 5, 0);
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_plan_extent_panics() {
        let (_, mut q) = setup(4, 16);
        let plan = LowpassPlan::new(4, 32);
        let ctx = Context::serial();
        apply_azimuthal_filter(&ctx, &plan, &mut q);
    }
}
