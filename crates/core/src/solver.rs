//! The single-device solver driver.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

use mfc_acc::{Context, ResilienceEvent, ResilienceEventKind};
use mfc_trace::Category;

use crate::bc::{apply_bcs, BcSpec};
use crate::case::CaseBuilder;
use crate::cfl;
use crate::diag::{grind_time, GrindTime};
use crate::domain::Domain;
use crate::fluid::Fluid;
use crate::grid::Grid;
use crate::health::{scan_and_convert, HealthConfig};
use crate::ibm::GhostCellIbm;
use crate::recovery::{RecoveryPolicy, RecoveryState, SolverError, StepFault, StepOutcome};

/// Directive returned by a [`Solver::run_controlled`] controller at each
/// step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepControl {
    /// Take the next step unchanged.
    Continue,
    /// Resize to this worker count, then take the next step. Bitwise-safe:
    /// results are invariant to the worker count at every step boundary.
    Resize(usize),
    /// Stop before the next step (cooperative cancellation / deadline).
    Stop,
}
use crate::rhs::{compute_rhs, RhsConfig, RhsWorkspace};
use crate::state::StateField;
use crate::time::{rk_step, RkWorkspace, TimeScheme};

/// Time-step selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DtMode {
    /// CFL-bounded adaptive step.
    Cfl(f64),
    /// Fixed step (convergence studies, deterministic benchmarks).
    Fixed(f64),
}

/// Solver options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    pub rhs: RhsConfig,
    pub scheme: TimeScheme,
    pub dt: DtMode,
    /// Worker threads (gangs) the execution context schedules kernels
    /// onto. Results are bitwise identical at every worker count; 1 runs
    /// everything on the calling thread.
    #[serde(default = "default_workers")]
    pub workers: usize,
    /// SIMD lane width for the vectorized kernels (OpenACC `vector`
    /// analog). Must be a power of two in 1..=8. Results are bitwise
    /// identical at every width; 1 disables lane packets entirely.
    #[serde(default = "default_vector_width")]
    pub vector_width: usize,
}

fn default_workers() -> usize {
    1
}

fn default_vector_width() -> usize {
    mfc_acc::DEFAULT_WIDTH
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            rhs: RhsConfig::default(),
            scheme: TimeScheme::Rk3,
            dt: DtMode::Cfl(0.5),
            workers: 1,
            vector_width: mfc_acc::DEFAULT_WIDTH,
        }
    }
}

/// A single-device (single-rank) simulation.
pub struct Solver {
    ctx: Context,
    cfg: SolverConfig,
    fluids: Vec<Fluid>,
    bc: BcSpec,
    dom: Domain,
    grid: Grid,
    q: StateField,
    /// Pre-step snapshot of `q` — the `q^n` a rejected step retries from.
    q_save: StateField,
    ws: RhsWorkspace,
    rk: RkWorkspace,
    ibm: Option<GhostCellIbm>,
    health: HealthConfig,
    recovery: Option<RecoveryPolicy>,
    rec: RecoveryState,
    t: f64,
    steps: u64,
    wall: Duration,
}

impl Solver {
    /// Build a solver from a case description.
    pub fn new(case: &CaseBuilder, cfg: SolverConfig, ctx: Context) -> Self {
        let ng = cfg.rhs.order.ghost_layers().max(1);
        let dom = case.domain(ng);
        let grid = case.grid();
        let q = case.init_block(&ctx, &dom, &grid, [0, 0, 0]);
        let ws = RhsWorkspace::new(dom, &grid);
        let rk = RkWorkspace::new(&q);
        let q_save = q.clone();
        Solver {
            ctx,
            cfg,
            fluids: case.fluids.clone(),
            bc: case.bc,
            dom,
            grid,
            q,
            q_save,
            ws,
            rk,
            ibm: None,
            health: HealthConfig::default(),
            recovery: None,
            rec: RecoveryState::default(),
            t: 0.0,
            steps: 0,
            wall: Duration::ZERO,
        }
    }

    /// Attach a ghost-cell immersed boundary.
    pub fn with_body(mut self, ibm: GhostCellIbm) -> Self {
        self.ibm = Some(ibm);
        self
    }

    /// Arm the graceful-degradation recovery ladder: faulted steps are
    /// retried from `q^n` under progressively more dissipative policies
    /// instead of aborting on the first violation.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Replace (or disarm) the recovery policy.
    pub fn set_recovery(&mut self, policy: Option<RecoveryPolicy>) {
        self.recovery = policy;
        self.rec = RecoveryState::default();
    }

    /// Adjust the health-watchdog tolerances.
    pub fn set_health(&mut self, health: HealthConfig) {
        self.health = health;
    }

    /// Ladder bookkeeping (current rung, total retries) for summaries.
    pub fn recovery_state(&self) -> RecoveryState {
        self.rec
    }

    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Elastically resize the worker count mid-run (clamped to ≥ 1).
    ///
    /// Only meaningful between steps; results stay bitwise identical at
    /// every count, so an ensemble scheduler may grow or shrink a running
    /// job whenever its share of a global budget changes. Keeps
    /// `cfg.workers` in sync so summaries report the final share.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        self.ctx.set_workers(workers);
        self.cfg.workers = workers;
    }

    pub fn domain(&self) -> &Domain {
        &self.dom
    }

    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    pub fn time(&self) -> f64 {
        self.t
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current conservative state.
    pub fn state(&self) -> &StateField {
        &self.q
    }

    /// Mutable access to the conservative state (custom initial
    /// conditions, injected perturbations, filter application).
    pub fn state_mut(&mut self) -> &mut StateField {
        &mut self.q
    }

    /// Resume from a checkpointed state: replaces the conservative state
    /// and the simulation clock (see [`crate::restart`]).
    ///
    /// # Panics
    /// If the checkpoint's domain does not match this solver's.
    pub fn restore(&mut self, q: StateField, t: f64, steps: u64) {
        assert_eq!(
            q.domain(),
            &self.dom,
            "checkpoint domain does not match the case"
        );
        self.q = q;
        self.t = t;
        self.steps = steps;
        self.wall = Duration::ZERO;
    }

    /// Freshly converted primitive state (interior and ghosts).
    pub fn primitives(&self) -> StateField {
        let mut prim = StateField::zeros(self.dom);
        crate::state::cons_to_prim_field(&self.ctx, &self.fluids, &self.q, &mut prim);
        prim
    }

    /// Run one RK update of `q` under `cfg`, returning the dt taken or the
    /// first numerical fault (degenerate CFL reduction, or a post-step
    /// health violation). On fault, `q` has already been mutated; the
    /// caller restores from [`Solver::q_save`].
    fn attempt_step(&mut self, cfg: &SolverConfig) -> Result<f64, StepFault> {
        let _dt_span = self.ctx.span("dt_select", Category::Phase);
        let dt = match cfg.dt {
            DtMode::Fixed(dt) => dt,
            DtMode::Cfl(c) => {
                crate::state::cons_to_prim_field(
                    &self.ctx,
                    &self.fluids,
                    &self.q,
                    &mut self.ws.prim,
                );
                let w = [
                    self.grid.x.widths_with_ghosts(self.dom.pad(0)),
                    self.grid.y.widths_with_ghosts(self.dom.pad(1)),
                    self.grid.z.widths_with_ghosts(self.dom.pad(2)),
                ];
                let metric = if cfg.rhs.geometry == crate::axisym::Geometry::Cylindrical3D {
                    Some(self.ws.radii())
                } else {
                    None
                };
                cfl::try_max_dt_geom(
                    &self.ctx,
                    &self.fluids,
                    &self.ws.prim,
                    [&w[0], &w[1], &w[2]],
                    c,
                    metric,
                )?
            }
        };
        drop(_dt_span);
        self.ctx.trace_counter("dt", dt);

        let _rk_span = self.ctx.span("rk_stages", Category::Phase);
        let Solver {
            ctx,
            fluids,
            bc,
            grid,
            q,
            ws,
            rk,
            ibm,
            ..
        } = self;
        rk_step(cfg.scheme, dt, q, rk, |q, rhs| {
            apply_bcs(ctx, q, bc, [(false, false); 3]);
            if let Some(ibm) = ibm {
                ibm.apply(ctx, grid, fluids, q);
            }
            compute_rhs(ctx, &cfg.rhs, fluids, q, ws, rhs);
        });
        drop(_rk_span);

        // Post-step watchdog, fused with the primitive conversion the next
        // step needs anyway. Read-only on q: a clean run is bitwise
        // identical with or without the watchdog armed.
        let _health_span = self.ctx.span("health_scan", Category::Phase);
        match scan_and_convert(
            &self.ctx,
            &self.fluids,
            &self.health,
            &self.q,
            &mut self.ws.prim,
        ) {
            None => Ok(dt),
            Some(v) => Err(StepFault::Unphysical(v)),
        }
    }

    fn record_event(&self, kind: ResilienceEventKind, wall: Duration, detail: String) {
        self.ctx.ledger().record_event(ResilienceEvent {
            kind,
            rank: 0,
            step: self.steps,
            wave: 0,
            wall,
            detail,
        });
    }

    /// Abort bookkeeping: best-effort crash-dump checkpoint + event.
    fn give_up(&mut self, fault: StepFault, attempts: u32) -> SolverError {
        let crash_dump = self
            .recovery
            .as_ref()
            .and_then(|p| p.crash_dump_dir.clone())
            .and_then(|dir| {
                let path = dir.join(format!("crash_step{}.bin", self.steps));
                std::fs::create_dir_all(&dir).ok()?;
                crate::restart::save_checkpoint(&path, &self.q_save, self.t, self.steps).ok()?;
                Some(path)
            });
        if let Some(p) = &crash_dump {
            self.record_event(
                ResilienceEventKind::CrashDump,
                Duration::ZERO,
                p.display().to_string(),
            );
        }
        // Leave the solver on the last accepted state, not the faulted
        // one — straight from the persistent snapshot, no temporary copy.
        {
            let Solver { q, q_save, .. } = self;
            q.as_mut_slice().copy_from_slice(q_save.as_slice());
        }
        SolverError {
            fault,
            step: self.steps,
            t: self.t,
            attempts,
            crash_dump,
        }
    }

    /// Advance one time step.
    ///
    /// On success the outcome reports the dt taken plus any recovery-ladder
    /// activity. A numerical fault with no (or an exhausted) recovery
    /// policy returns a typed [`SolverError`] instead of panicking; the
    /// state is left at the last accepted `q^n`.
    pub fn step(&mut self) -> Result<StepOutcome, SolverError> {
        let t0 = Instant::now();
        let _step_span = self.ctx.span("step", Category::Phase);
        {
            let Solver { q, q_save, .. } = self;
            q_save.as_mut_slice().copy_from_slice(q.as_slice());
        }
        let mut retries = 0u32;
        loop {
            let cfg = match &self.recovery {
                Some(p) => p.effective_config(&self.cfg, self.rec.rung),
                None => self.cfg,
            };
            match self.attempt_step(&cfg) {
                Ok(dt) => {
                    self.t += dt;
                    self.steps += 1;
                    self.wall += t0.elapsed();
                    let rung = self.rec.rung;
                    if let Some(p) = self.recovery.clone() {
                        if self.rec.accept(&p) {
                            self.record_event(
                                ResilienceEventKind::Restore,
                                t0.elapsed(),
                                format!(
                                    "default policy restored after {} clean steps",
                                    p.restore_after
                                ),
                            );
                        }
                    }
                    return Ok(StepOutcome { dt, retries, rung });
                }
                Err(fault) => {
                    self.ctx.trace_instant("health_fault", Category::Recovery);
                    self.record_event(
                        ResilienceEventKind::HealthFault,
                        t0.elapsed(),
                        fault.to_string(),
                    );
                    {
                        let Solver { q, q_save, .. } = self;
                        q.as_mut_slice().copy_from_slice(q_save.as_slice());
                    }
                    retries += 1;
                    let policy = match self.recovery.clone() {
                        None => {
                            self.wall += t0.elapsed();
                            return Err(self.give_up(fault, retries));
                        }
                        Some(p) => p,
                    };
                    if retries > policy.max_retries || !self.rec.escalate(&policy) {
                        self.wall += t0.elapsed();
                        return Err(self.give_up(fault, retries));
                    }
                    let engaged = policy.ladder[self.rec.rung - 1];
                    self.ctx.trace_instant("retry", Category::Recovery);
                    self.ctx.trace_instant("degrade", Category::Recovery);
                    self.record_event(
                        ResilienceEventKind::Retry,
                        t0.elapsed(),
                        format!("attempt {} from saved q^n", retries + 1),
                    );
                    self.record_event(
                        ResilienceEventKind::Degrade,
                        t0.elapsed(),
                        format!("rung {}: {}", self.rec.rung, engaged.name()),
                    );
                }
            }
        }
    }

    /// Advance `n` steps.
    pub fn run_steps(&mut self, n: usize) -> Result<(), SolverError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Advance up to `max_steps` steps under an external controller that is
    /// consulted at every step boundary — the cooperative yield point an
    /// ensemble scheduler uses for cancellation, deadlines, and elastic
    /// worker resizes (resizes between steps are bitwise-safe).
    ///
    /// The controller sees the number of steps taken *by this call* so far
    /// and the solver's absolute step count; it returns a [`StepControl`]
    /// directive. `Resize(n)` applies [`Solver::set_workers`] and then
    /// steps; `Stop` returns early with the steps taken. A step error is
    /// returned as-is (the caller isolates the fault).
    pub fn run_controlled(
        &mut self,
        max_steps: usize,
        ctrl: &mut dyn FnMut(u64, u64) -> StepControl,
    ) -> Result<u64, SolverError> {
        let mut taken = 0u64;
        while taken < max_steps as u64 {
            match ctrl(taken, self.steps) {
                StepControl::Continue => {}
                StepControl::Resize(n) => self.set_workers(n),
                StepControl::Stop => break,
            }
            self.step()?;
            taken += 1;
        }
        Ok(taken)
    }

    /// Advance until `t_end` (clipping the final step), bounded by
    /// `max_steps`.
    pub fn run_until(&mut self, t_end: f64, max_steps: usize) -> Result<(), SolverError> {
        for _ in 0..max_steps {
            if self.t >= t_end {
                break;
            }
            // Peek the dt and clip to land exactly on t_end.
            let remaining = t_end - self.t;
            let saved = self.cfg.dt;
            if let DtMode::Fixed(dt) = saved {
                if dt > remaining {
                    self.cfg.dt = DtMode::Fixed(remaining);
                }
            }
            let outcome = self.step();
            self.cfg.dt = saved;
            let dt = outcome?.dt;
            if let DtMode::Cfl(_) = saved {
                if dt > remaining {
                    // Walk back the overshoot: acceptable error O(dt) at
                    // the final instant; callers needing exact t_end use
                    // DtMode::Fixed.
                    self.t = t_end;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Conserved-variable totals.
    pub fn conservation(&self) -> Vec<f64> {
        crate::diag::conservation_totals(&self.q, &self.grid)
    }

    /// Grind time over everything run so far (ns/cell/eq/RHS-eval).
    pub fn grind(&self) -> GrindTime {
        grind_time(
            &self.dom,
            self.steps * self.cfg.scheme.stages() as u64,
            self.wall,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::presets;
    use crate::riemann::{ExactRiemann, PrimSide};

    #[test]
    fn sod_shock_tube_matches_exact_solution() {
        let case = presets::sod(200);
        let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        solver.run_until(0.15, 10_000).unwrap();
        assert!((solver.time() - 0.15).abs() < 1e-2);

        let air = Fluid::air();
        let exact = ExactRiemann::solve(
            PrimSide {
                rho: 1.0,
                u: 0.0,
                p: 1.0,
                fluid: air,
            },
            PrimSide {
                rho: 0.125,
                u: 0.0,
                p: 0.1,
                fluid: air,
            },
        );
        let prim = solver.primitives();
        let eq = case.eq();
        let t = solver.time();
        let mut l1 = 0.0;
        for i in 0..200 {
            let x = (i as f64 + 0.5) / 200.0;
            let (rho_ex, _, _) = exact.sample((x - 0.5) / t);
            l1 += (prim.get(i + 3, 0, 0, eq.cont(0)) - rho_ex).abs();
        }
        l1 /= 200.0;
        assert!(l1 < 0.015, "Sod density L1 error {l1}");
    }

    #[test]
    fn conservation_is_exact_under_periodic_bcs() {
        let case = presets::two_phase_benchmark(2, [24, 24, 1]);
        let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        let before = solver.conservation();
        solver.run_steps(10).unwrap();
        let after = solver.conservation();
        let eq = case.eq();
        // Strictly conserved: partial densities, momentum, energy.
        for e in 0..eq.energy() + 1 {
            let scale = before[e].abs().max(1e-30);
            assert!(
                (after[e] - before[e]).abs() / scale < 1e-11,
                "eq {e}: {} -> {}",
                before[e],
                after[e]
            );
        }
    }

    #[test]
    fn interface_advection_preserves_pressure_velocity_equilibrium() {
        // A material interface advected in uniform (p, u) must not disturb
        // either — the raison d'être of the 5-equation scheme.
        use crate::bc::BcSpec;
        use crate::case::{CaseBuilder, PatchState, Region};
        let case = CaseBuilder::new(vec![Fluid::air(), Fluid::water()], 1, [64, 1, 1])
            .bc(BcSpec::periodic())
            .smear(2.0)
            .patch(
                Region::All,
                PatchState::two_fluid(1.0 - 1e-6, [1.2, 1000.0], [100.0, 0.0, 0.0], 1.0e5),
            )
            .patch(
                Region::Box {
                    lo: [0.25, -1.0, -1.0],
                    hi: [0.75, 2.0, 2.0],
                },
                PatchState::two_fluid(1e-6, [1.2, 1000.0], [100.0, 0.0, 0.0], 1.0e5),
            );
        let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        solver.run_steps(50).unwrap();
        let prim = solver.primitives();
        let eq = case.eq();
        for i in 0..64 {
            let p = prim.get(i + 3, 0, 0, eq.energy());
            let u = prim.get(i + 3, 0, 0, eq.mom(0));
            assert!((p - 1.0e5).abs() / 1.0e5 < 1e-6, "p[{i}] = {p}");
            assert!((u - 100.0).abs() / 100.0 < 1e-6, "u[{i}] = {u}");
        }
        // And the interface actually moved: alpha field shifted by u*t.
        let alpha_mid = prim.get(3 + 32, 0, 0, eq.adv(0));
        assert!(alpha_mid < 0.5 || solver.time() * 100.0 < 0.1);
    }

    #[test]
    fn grind_time_is_positive_and_recorded() {
        let case = presets::two_phase_benchmark(2, [16, 16, 1]);
        let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        solver.run_steps(3).unwrap();
        let g = solver.grind();
        assert_eq!(g.rhs_evals, 9); // 3 steps × RK3
        assert!(g.ns_per_cell_eq_rhs() > 0.0);
        // The ledger saw WENO work (fused label under the default mode).
        assert!(solver
            .context()
            .ledger()
            .kernel("f_weno_reconstruct")
            .is_some());
    }

    #[test]
    fn injected_nan_is_a_typed_error_not_a_panic() {
        let case = presets::sod(64);
        let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        solver.run_steps(2).unwrap();
        let eq = case.eq();
        solver.state_mut().set(10, 0, 0, eq.energy(), f64::NAN);
        let err = solver.step().unwrap_err();
        match err.fault {
            StepFault::Unphysical(v) => {
                assert_eq!(v.kind, crate::health::ViolationKind::NotFinite)
            }
            other => panic!("unexpected fault {other:?}"),
        }
        assert_eq!(err.step, 2);
        // The attempted step was rolled back to the saved q^n: the NaN did
        // not propagate, so the injected cell is the only non-finite value.
        let bad = solver
            .state()
            .as_slice()
            .iter()
            .filter(|v| !v.is_finite())
            .count();
        assert_eq!(bad, 1, "rollback must confine the NaN to the injected cell");
    }

    #[test]
    fn ladder_recovers_overdriven_fixed_dt() {
        use crate::recovery::RecoveryAction;
        // Measure a stable dt, then drive the same case at 16x: RK3 + WENO5
        // blows up within a few steps without recovery.
        let case = presets::sod(64);
        let mut probe = Solver::new(&case, SolverConfig::default(), Context::serial());
        let dt0 = probe.step().unwrap().dt;

        let cfg = SolverConfig {
            dt: DtMode::Fixed(dt0 * 16.0),
            ..Default::default()
        };
        let mut plain = Solver::new(&case, cfg, Context::serial());
        assert!(
            plain.run_steps(40).is_err(),
            "16x-overdriven fixed dt should fault without recovery"
        );

        let policy = RecoveryPolicy {
            ladder: vec![
                RecoveryAction::HalveDt,
                RecoveryAction::HalveDt,
                RecoveryAction::HalveDt,
                RecoveryAction::HalveDt,
                RecoveryAction::ZhangShu,
                RecoveryAction::Weno3,
                RecoveryAction::Rusanov,
            ],
            max_retries: 16,
            restore_after: 1_000, // stay degraded for this short run
            crash_dump_dir: None,
        };
        let mut armed = Solver::new(&case, cfg, Context::serial()).with_recovery(policy);
        armed.run_steps(40).expect("ladder should ride through");
        assert!(armed.state().as_slice().iter().all(|v| v.is_finite()));
        assert!(armed.recovery_state().total_retries > 0);
        let ledger = armed.context().ledger();
        assert!(!ledger
            .events_of(ResilienceEventKind::HealthFault)
            .is_empty());
        assert!(!ledger.events_of(ResilienceEventKind::Degrade).is_empty());
    }

    #[test]
    fn armed_recovery_is_bitwise_transparent_when_clean() {
        let case = presets::sod(64);
        let mut plain = Solver::new(&case, SolverConfig::default(), Context::serial());
        plain.run_steps(10).unwrap();
        let mut armed = Solver::new(&case, SolverConfig::default(), Context::serial())
            .with_recovery(RecoveryPolicy::default());
        armed.run_steps(10).unwrap();
        assert_eq!(
            plain.state().as_slice(),
            armed.state().as_slice(),
            "recovery arming must not perturb a clean run"
        );
        assert!(armed.context().ledger().events().is_empty());
    }

    #[test]
    fn fixed_dt_run_until_lands_exactly() {
        let case = presets::sod(64);
        let cfg = SolverConfig {
            dt: DtMode::Fixed(1e-3),
            ..Default::default()
        };
        let mut solver = Solver::new(&case, cfg, Context::serial());
        solver.run_until(0.0105, 100).unwrap();
        assert!((solver.time() - 0.0105).abs() < 1e-12);
    }
}
