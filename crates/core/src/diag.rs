//! Diagnostics: conservation, error norms, and grind time.

use std::time::Duration;

use crate::domain::Domain;
use crate::grid::Grid;
use crate::state::StateField;

/// Integral of every conserved variable over the interior,
/// `sum_cells q dV` — must be constant in time under periodic BCs (up to
/// round-off), which is one of the validation suite's core assertions.
pub fn conservation_totals(q: &StateField, grid: &Grid) -> Vec<f64> {
    let dom = *q.domain();
    let neq = dom.eq.neq();
    let wx = grid.x.widths();
    let wy = grid.y.widths();
    let wz = grid.z.widths();
    let mut totals = vec![0.0; neq];
    for (i, j, k) in dom.interior() {
        let dv = wx[i - dom.pad(0)] * wy[j - dom.pad(1)] * wz[k - dom.pad(2)];
        for (e, t) in totals.iter_mut().enumerate() {
            *t += q.get(i, j, k, e) * dv;
        }
    }
    totals
}

/// Discrete error norms of one equation against a reference function of
/// the cell-center coordinates.
pub struct ErrorNorms {
    pub l1: f64,
    pub l2: f64,
    pub linf: f64,
}

/// Compare `q[,,,eq_slot]` against `reference(x, y, z)` over the interior.
pub fn error_norms(
    q: &StateField,
    grid: &Grid,
    eq_slot: usize,
    reference: impl Fn(f64, f64, f64) -> f64,
) -> ErrorNorms {
    let dom = *q.domain();
    let (cx, cy, cz) = (grid.x.centers(), grid.y.centers(), grid.z.centers());
    let mut l1 = 0.0;
    let mut l2 = 0.0;
    let mut linf = 0.0f64;
    let mut n = 0usize;
    for (i, j, k) in dom.interior() {
        let x = cx[i - dom.pad(0)];
        let y = cy[j - dom.pad(1)];
        let z = cz[k - dom.pad(2)];
        let e = (q.get(i, j, k, eq_slot) - reference(x, y, z)).abs();
        l1 += e;
        l2 += e * e;
        linf = linf.max(e);
        n += 1;
    }
    ErrorNorms {
        l1: l1 / n as f64,
        l2: (l2 / n as f64).sqrt(),
        linf,
    }
}

/// Cell-centered z-vorticity of a 2-D (or a z-slice of a 3-D) primitive
/// field, by central differences over the interior; the boundary ring is
/// copied from its neighbours.
///
/// Returns interior-sized data, x-fastest.
pub fn vorticity_z(prim: &StateField, grid: &Grid, k_slice: usize) -> Vec<f64> {
    let dom = *prim.domain();
    let eq = dom.eq;
    assert!(eq.ndim() >= 2, "vorticity needs at least 2 dimensions");
    let (nx, ny) = (dom.n[0], dom.n[1]);
    let k = k_slice + dom.pad(2);
    let mut out = vec![0.0; nx * ny];
    for j in 0..ny {
        for i in 0..nx {
            // Clamped central differences (one-sided at the edges).
            let (im, ip) = (i.saturating_sub(1), (i + 1).min(nx - 1));
            let (jm, jp) = (j.saturating_sub(1), (j + 1).min(ny - 1));
            let dx = grid.x.centers()[ip] - grid.x.centers()[im];
            let dy = grid.y.centers()[jp] - grid.y.centers()[jm];
            let dv_dx = (prim.get(ip + dom.pad(0), j + dom.pad(1), k, eq.mom(1))
                - prim.get(im + dom.pad(0), j + dom.pad(1), k, eq.mom(1)))
                / dx.max(1e-300);
            let du_dy = (prim.get(i + dom.pad(0), jp + dom.pad(1), k, eq.mom(0))
                - prim.get(i + dom.pad(0), jm + dom.pad(1), k, eq.mom(0)))
                / dy.max(1e-300);
            out[i + nx * j] = dv_dx - du_dy;
        }
    }
    out
}

/// Total kinetic energy `sum 1/2 rho |u|^2 dV` over the interior of a
/// primitive field.
pub fn kinetic_energy(prim: &StateField, grid: &Grid) -> f64 {
    let dom = *prim.domain();
    let eq = dom.eq;
    let (wx, wy, wz) = (grid.x.widths(), grid.y.widths(), grid.z.widths());
    let mut ke = 0.0;
    for (i, j, k) in dom.interior() {
        let dv = wx[i - dom.pad(0)] * wy[j - dom.pad(1)] * wz[k - dom.pad(2)];
        let rho: f64 = (0..eq.nf()).map(|f| prim.get(i, j, k, eq.cont(f))).sum();
        let v2: f64 = (0..eq.ndim())
            .map(|d| prim.get(i, j, k, eq.mom(d)).powi(2))
            .sum();
        ke += 0.5 * rho * v2 * dv;
    }
    ke
}

/// 1-D kinetic-energy spectrum along x: for each y-row (of slice
/// `k_slice`), FFT the velocity components and accumulate
/// `1/2 (|u_hat|^2 + |v_hat|^2)` per mode. `dom.n[0]` must be a power of
/// two. Returns `n/2 + 1` modal energies.
pub fn ke_spectrum_x(prim: &StateField, k_slice: usize) -> Vec<f64> {
    let dom = *prim.domain();
    let eq = dom.eq;
    let (nx, ny) = (dom.n[0], dom.n[1]);
    assert!(nx.is_power_of_two(), "spectrum needs a power-of-two extent");
    let k = k_slice + dom.pad(2);
    let mut spectrum = vec![0.0; nx / 2 + 1];
    let mut line = vec![0.0; nx];
    for d in 0..eq.ndim().min(2) {
        for j in 0..ny {
            for (i, v) in line.iter_mut().enumerate() {
                *v = prim.get(i + dom.pad(0), j + dom.pad(1), k, eq.mom(d));
            }
            let spec = mfc_fft::rfft(&line);
            for (m, c) in spec.iter().enumerate() {
                // One-sided spectrum: double the interior bins.
                let w = if m == 0 || m == nx / 2 { 1.0 } else { 2.0 };
                spectrum[m] += 0.5 * w * c.norm_sqr() / (nx as f64 * nx as f64);
            }
        }
    }
    for s in spectrum.iter_mut() {
        *s /= ny as f64;
    }
    spectrum
}

/// Grind-time accounting, in the paper's metric: nanoseconds per grid
/// cell per PDE (equation) per right-hand-side evaluation (Figs. 5–7).
#[derive(Debug, Clone, Copy)]
pub struct GrindTime {
    pub cells: usize,
    pub equations: usize,
    pub rhs_evals: u64,
    pub wall: Duration,
}

impl GrindTime {
    /// ns / cell / PDE / RHS evaluation.
    pub fn ns_per_cell_eq_rhs(&self) -> f64 {
        self.wall.as_nanos() as f64
            / (self.cells as f64 * self.equations as f64 * self.rhs_evals.max(1) as f64)
    }
}

/// Convenience: grind time for a domain.
pub fn grind_time(dom: &Domain, rhs_evals: u64, wall: Duration) -> GrindTime {
    GrindTime {
        cells: dom.interior_cells(),
        equations: dom.eq.neq(),
        rhs_evals,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqidx::EqIdx;

    #[test]
    fn conservation_totals_weight_by_volume() {
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([4, 1, 1], 2, eq);
        let grid = Grid::uniform([4, 1, 1], [0.0; 3], [2.0, 1.0, 1.0]); // dx = 0.5
        let mut q = StateField::zeros(dom);
        for (i, j, k) in dom.interior() {
            q.set(i, j, k, 0, 3.0);
        }
        let t = conservation_totals(&q, &grid);
        assert!((t[0] - 3.0 * 2.0).abs() < 1e-12); // rho * volume
    }

    #[test]
    fn error_norms_of_exact_match_are_zero() {
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([8, 1, 1], 2, eq);
        let grid = Grid::uniform([8, 1, 1], [0.0; 3], [1.0, 1.0, 1.0]);
        let mut q = StateField::zeros(dom);
        for (i, j, k) in dom.interior() {
            let x = grid.x.centers()[i - 2];
            q.set(i, j, k, 0, x * x);
        }
        let n = error_norms(&q, &grid, 0, |x, _, _| x * x);
        assert_eq!(n.linf, 0.0);
        assert_eq!(n.l1, 0.0);
    }

    #[test]
    fn norms_ordering_holds() {
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([16, 1, 1], 2, eq);
        let grid = Grid::uniform([16, 1, 1], [0.0; 3], [1.0, 1.0, 1.0]);
        let mut q = StateField::zeros(dom);
        for (idx, (i, j, k)) in dom.interior().enumerate() {
            q.set(i, j, k, 0, if idx == 5 { 1.0 } else { 0.0 });
        }
        let n = error_norms(&q, &grid, 0, |_, _, _| 0.0);
        assert!(n.l1 <= n.l2 && n.l2 <= n.linf);
    }

    #[test]
    fn vorticity_of_solid_body_rotation_is_twice_omega() {
        // u = -omega*y, v = omega*x => curl = 2*omega everywhere.
        let eq = EqIdx::new(1, 2);
        let n = 16;
        let dom = Domain::new([n, n, 1], 2, eq);
        let grid = Grid::uniform([n, n, 1], [-1.0, -1.0, 0.0], [1.0, 1.0, 1.0]);
        let omega = 3.0;
        let mut prim = StateField::zeros(dom);
        for (i, j, k) in dom.interior() {
            let x = grid.x.centers()[i - 2];
            let y = grid.y.centers()[j - 2];
            prim.set(i, j, k, eq.cont(0), 1.0);
            prim.set(i, j, k, eq.mom(0), -omega * y);
            prim.set(i, j, k, eq.mom(1), omega * x);
            prim.set(i, j, k, eq.energy(), 1.0e5);
        }
        let w = vorticity_z(&prim, &grid, 0);
        // Interior points (edges are one-sided): exact for linear fields.
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                assert!((w[i + n * j] - 2.0 * omega).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn kinetic_energy_matches_manual_sum() {
        let eq = EqIdx::new(1, 2);
        let dom = Domain::new([4, 4, 1], 2, eq);
        let grid = Grid::uniform([4, 4, 1], [0.0; 3], [1.0, 1.0, 1.0]);
        let mut prim = StateField::zeros(dom);
        for (i, j, k) in dom.interior() {
            prim.set(i, j, k, eq.cont(0), 2.0);
            prim.set(i, j, k, eq.mom(0), 3.0);
            prim.set(i, j, k, eq.mom(1), 4.0);
        }
        // 1/2 * 2 * 25 per unit volume over a unit box.
        let ke = kinetic_energy(&prim, &grid);
        assert!((ke - 25.0).abs() < 1e-12);
    }

    #[test]
    fn ke_spectrum_peaks_at_the_initialized_mode() {
        let eq = EqIdx::new(1, 2);
        let n = 32;
        let dom = Domain::new([n, 8, 1], 2, eq);
        let mut prim = StateField::zeros(dom);
        let k0 = 4;
        for (i, j, k) in dom.interior() {
            let x = (i - 2) as f64 / n as f64;
            prim.set(i, j, k, eq.cont(0), 1.0);
            prim.set(
                i,
                j,
                k,
                eq.mom(0),
                (2.0 * std::f64::consts::PI * k0 as f64 * x).sin(),
            );
        }
        let spec = ke_spectrum_x(&prim, 0);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k0);
        // Parseval-ish: modal sum matches mean KE per unit volume for the
        // unit-amplitude sine (1/2 * <u^2> = 1/4).
        let total: f64 = spec.iter().sum();
        assert!((total - 0.25).abs() < 1e-10, "total = {total}");
    }

    #[test]
    fn grind_time_units() {
        let eq = EqIdx::new(2, 3);
        let dom = Domain::new([10, 10, 10], 3, eq);
        let g = grind_time(&dom, 100, Duration::from_millis(700));
        // 7e8 ns / (1000 cells * 7 eq * 100 rhs) = 1000 ns exactly.
        assert!((g.ns_per_cell_eq_rhs() - 1000.0).abs() < 1e-9);
    }
}
