//! Structured grids: uniform and hyperbolic-tangent-stretched (§III-A).

use serde::{Deserialize, Serialize};

/// One axis of a structured grid: `n` cells with faces, centers, widths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid1D {
    faces: Vec<f64>,
    centers: Vec<f64>,
    widths: Vec<f64>,
}

impl Grid1D {
    /// Uniform spacing over `[x0, x1]`.
    pub fn uniform(n: usize, x0: f64, x1: f64) -> Self {
        assert!(n >= 1 && x1 > x0);
        let dx = (x1 - x0) / n as f64;
        let faces: Vec<f64> = (0..=n).map(|i| x0 + i as f64 * dx).collect();
        Grid1D::from_faces(faces)
    }

    /// Local refinement via a smooth hyperbolic stretching (Vinokur-style):
    /// cells cluster around `focus` (a fraction of the axis length in
    /// `[0, 1]`); `beta > 0` controls how hard (0 → uniform).
    ///
    /// Uses the monotone map `x(s) = x0 + L (g(s)-g(0))/(g(1)-g(0))` with
    /// `g(s) = sinh(beta (s - focus))`, whose slope is smallest at the
    /// focus, so that is where cells are finest.
    pub fn stretched(n: usize, x0: f64, x1: f64, beta: f64, focus: f64) -> Self {
        assert!(n >= 1 && x1 > x0);
        assert!(beta > 0.0, "beta must be positive (use uniform() instead)");
        assert!((0.0..=1.0).contains(&focus));
        let g = |s: f64| (beta * (s - focus)).sinh();
        let (g0, g1) = (g(0.0), g(1.0));
        let l = x1 - x0;
        let faces: Vec<f64> = (0..=n)
            .map(|i| {
                let s = i as f64 / n as f64;
                x0 + l * (g(s) - g0) / (g1 - g0)
            })
            .collect();
        Grid1D::from_faces(faces)
    }

    /// Build from an explicit, strictly increasing face list.
    pub fn from_faces(faces: Vec<f64>) -> Self {
        assert!(faces.len() >= 2, "need at least one cell");
        assert!(
            faces.windows(2).all(|w| w[1] > w[0]),
            "faces must be strictly increasing"
        );
        let centers = faces.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        let widths = faces.windows(2).map(|w| w[1] - w[0]).collect();
        Grid1D {
            faces,
            centers,
            widths,
        }
    }

    /// A degenerate single-cell axis of unit width (for unused dimensions).
    pub fn collapsed() -> Self {
        Grid1D::uniform(1, 0.0, 1.0)
    }

    pub fn n(&self) -> usize {
        self.widths.len()
    }

    pub fn faces(&self) -> &[f64] {
        &self.faces
    }

    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    pub fn widths(&self) -> &[f64] {
        &self.widths
    }

    pub fn x0(&self) -> f64 {
        self.faces[0]
    }

    pub fn x1(&self) -> f64 {
        *self.faces.last().unwrap()
    }

    pub fn length(&self) -> f64 {
        self.x1() - self.x0()
    }

    pub fn min_width(&self) -> f64 {
        self.widths.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Cell widths padded with `ng` replicated ghost widths on each side,
    /// indexed by the ghost-inclusive cell index.
    pub fn widths_with_ghosts(&self, ng: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.n() + 2 * ng);
        v.extend(std::iter::repeat_n(self.widths[0], ng));
        v.extend_from_slice(&self.widths);
        v.extend(std::iter::repeat_n(*self.widths.last().unwrap(), ng));
        v
    }

    /// Extract the sub-axis covering cells `[offset, offset+len)` — the
    /// local grid of one rank's block.
    pub fn slice(&self, offset: usize, len: usize) -> Grid1D {
        assert!(offset + len <= self.n());
        Grid1D::from_faces(self.faces[offset..=offset + len].to_vec())
    }
}

/// A full (up to 3-D) tensor-product grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    pub x: Grid1D,
    pub y: Grid1D,
    pub z: Grid1D,
}

impl Grid {
    pub fn new_1d(x: Grid1D) -> Self {
        Grid {
            x,
            y: Grid1D::collapsed(),
            z: Grid1D::collapsed(),
        }
    }

    pub fn new_2d(x: Grid1D, y: Grid1D) -> Self {
        Grid {
            x,
            y,
            z: Grid1D::collapsed(),
        }
    }

    pub fn new_3d(x: Grid1D, y: Grid1D, z: Grid1D) -> Self {
        Grid { x, y, z }
    }

    /// Uniform grid over a box.
    pub fn uniform(n: [usize; 3], lo: [f64; 3], hi: [f64; 3]) -> Self {
        Grid {
            x: Grid1D::uniform(n[0], lo[0], hi[0]),
            y: if n[1] > 0 {
                Grid1D::uniform(n[1].max(1), lo[1], hi[1])
            } else {
                Grid1D::collapsed()
            },
            z: if n[2] > 0 {
                Grid1D::uniform(n[2].max(1), lo[2], hi[2])
            } else {
                Grid1D::collapsed()
            },
        }
    }

    pub fn axis(&self, d: usize) -> &Grid1D {
        match d {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis {d} out of range"),
        }
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.x.n() * self.y.n() * self.z.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spacing_is_constant() {
        let g = Grid1D::uniform(10, 0.0, 1.0);
        for w in g.widths() {
            assert!((w - 0.1).abs() < 1e-14);
        }
        assert_eq!(g.n(), 10);
        assert!((g.centers()[0] - 0.05).abs() < 1e-14);
    }

    #[test]
    fn stretched_clusters_at_focus() {
        let g = Grid1D::stretched(100, 0.0, 1.0, 4.0, 0.5);
        // Endpoints preserved.
        assert!((g.x0()).abs() < 1e-12 && (g.x1() - 1.0).abs() < 1e-12);
        // Smallest cell near the middle, larger at the ends.
        let mid = g.widths()[50];
        assert!(mid < g.widths()[0]);
        assert!(mid < g.widths()[99]);
        assert!((g.min_width() - mid).abs() < mid * 0.1);
    }

    #[test]
    fn stretched_is_monotone_and_covers_domain() {
        let g = Grid1D::stretched(64, -2.0, 3.0, 6.0, 0.25);
        assert!(g.faces().windows(2).all(|w| w[1] > w[0]));
        let total: f64 = g.widths().iter().sum();
        assert!((total - 5.0).abs() < 1e-10);
    }

    #[test]
    fn ghost_widths_replicate_edges() {
        let g = Grid1D::stretched(8, 0.0, 1.0, 3.0, 0.0);
        let w = g.widths_with_ghosts(2);
        assert_eq!(w.len(), 12);
        assert_eq!(w[0], w[2]);
        assert_eq!(w[1], w[2]);
        assert_eq!(w[11], w[9]);
    }

    #[test]
    fn slice_extracts_local_block() {
        let g = Grid1D::uniform(10, 0.0, 1.0);
        let s = g.slice(3, 4);
        assert_eq!(s.n(), 4);
        assert!((s.x0() - 0.3).abs() < 1e-14);
        assert!((s.x1() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn grid_cells_product() {
        let g = Grid::uniform([4, 5, 6], [0.0; 3], [1.0, 1.0, 1.0]);
        assert_eq!(g.cells(), 120);
        assert_eq!(Grid::new_1d(Grid1D::uniform(7, 0.0, 1.0)).cells(), 7);
    }
}
