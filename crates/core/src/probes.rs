//! Time-series probes: pointwise histories of primitive quantities
//! (MFC's `probe_wrt` facility).
//!
//! A [`ProbeSet`] holds fixed physical locations; on each call to
//! [`ProbeSet::sample`] it records `(t, rho, u…, p, alpha…)` at the
//! interior cell containing each point. Histories export as CSV.

use std::io::{self, Write};

use crate::domain::{Domain, MAX_EQ};
use crate::eos::cons_to_prim;
use crate::fluid::Fluid;
use crate::grid::Grid;
use crate::state::StateField;

/// One probe's identity and location.
#[derive(Debug, Clone)]
pub struct Probe {
    pub name: String,
    pub x: [f64; 3],
}

/// One recorded sample: time plus the full primitive vector.
#[derive(Debug, Clone)]
pub struct Sample {
    pub t: f64,
    pub prim: Vec<f64>,
}

/// A set of probes plus their recorded histories.
#[derive(Debug, Clone)]
pub struct ProbeSet {
    probes: Vec<Probe>,
    /// Cell indices (ghost-inclusive), resolved once.
    cells: Vec<(usize, usize, usize)>,
    history: Vec<Vec<Sample>>,
}

impl ProbeSet {
    /// Resolve probe locations to cells of this domain/grid.
    ///
    /// # Panics
    /// If a probe lies outside the domain.
    pub fn new(probes: Vec<Probe>, dom: &Domain, grid: &Grid) -> Self {
        let cells = probes
            .iter()
            .map(|p| {
                let mut c = [0usize; 3];
                for (d, cd) in c.iter_mut().enumerate().take(dom.eq.ndim()) {
                    let ax = grid.axis(d);
                    assert!(
                        p.x[d] >= ax.x0() && p.x[d] <= ax.x1(),
                        "probe '{}' coordinate {} outside [{}, {}] on axis {d}",
                        p.name,
                        p.x[d],
                        ax.x0(),
                        ax.x1()
                    );
                    // Last face <= x.
                    let idx = ax
                        .faces()
                        .windows(2)
                        .position(|w| p.x[d] >= w[0] && p.x[d] <= w[1])
                        .unwrap_or(ax.n() - 1);
                    *cd = idx + dom.pad(d);
                }
                (c[0], c[1], c[2])
            })
            .collect();
        let n = probes.len();
        ProbeSet {
            probes,
            cells,
            history: vec![Vec::new(); n],
        }
    }

    pub fn len(&self) -> usize {
        self.probes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Record the current state at every probe.
    pub fn sample(&mut self, t: f64, fluids: &[Fluid], q: &StateField) {
        let dom = *q.domain();
        let neq = dom.eq.neq();
        let mut cons = [0.0; MAX_EQ];
        let mut prim = [0.0; MAX_EQ];
        for (slot, &(i, j, k)) in self.cells.iter().enumerate() {
            q.load_cell(i, j, k, &mut cons[..neq]);
            cons_to_prim(&dom.eq, fluids, &cons[..neq], &mut prim[..neq]);
            self.history[slot].push(Sample {
                t,
                prim: prim[..neq].to_vec(),
            });
        }
    }

    /// Recorded history of probe `idx`.
    pub fn history(&self, idx: usize) -> &[Sample] {
        &self.history[idx]
    }

    /// Extract one primitive slot's time series for probe `idx`.
    pub fn series(&self, idx: usize, slot: usize) -> Vec<(f64, f64)> {
        self.history[idx]
            .iter()
            .map(|s| (s.t, s.prim[slot]))
            .collect()
    }

    /// Write one probe's history as CSV (`t, q0, q1, ...`).
    pub fn write_csv(&self, idx: usize, w: &mut impl Write) -> io::Result<()> {
        let mut buf = io::BufWriter::new(w);
        for s in &self.history[idx] {
            write!(buf, "{}", s.t)?;
            for v in &s.prim {
                write!(buf, ",{v}")?;
            }
            writeln!(buf)?;
        }
        buf.flush()
    }

    pub fn probe(&self, idx: usize) -> &Probe {
        &self.probes[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::presets;
    use crate::solver::{Solver, SolverConfig};
    use mfc_acc::Context;

    #[test]
    fn probe_resolves_to_the_containing_cell() {
        let case = presets::sod(10);
        let dom = case.domain(3);
        let grid = case.grid();
        let ps = ProbeSet::new(
            vec![Probe {
                name: "mid".into(),
                x: [0.55, 0.0, 0.0],
            }],
            &dom,
            &grid,
        );
        // x = 0.55 lies in cell 5 of 10 → padded index 8.
        assert_eq!(ps.cells[0], (8, 0, 0));
    }

    #[test]
    #[should_panic]
    fn probe_outside_domain_panics() {
        let case = presets::sod(10);
        let _ = ProbeSet::new(
            vec![Probe {
                name: "bad".into(),
                x: [2.0, 0.0, 0.0],
            }],
            &case.domain(3),
            &case.grid(),
        );
    }

    #[test]
    fn sod_probe_sees_the_shock_arrive() {
        let case = presets::sod(100);
        let mut solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        let mut probes = ProbeSet::new(
            vec![Probe {
                name: "right".into(),
                x: [0.75, 0.0, 0.0],
            }],
            solver.domain(),
            solver.grid(),
        );
        let eq = case.eq();
        for _ in 0..400 {
            solver.step().unwrap();
            probes.sample(solver.time(), &case.fluids, solver.state());
            if solver.time() > 0.17 {
                break;
            }
        }
        let p_series = probes.series(0, eq.energy());
        let first = p_series.first().unwrap().1;
        let last = p_series.last().unwrap().1;
        // Initially at the low-pressure value; after the shock passes the
        // pressure jumps toward p* = 0.30313.
        assert!((first - 0.1).abs() < 1e-6, "first p = {first}");
        assert!(last > 0.27, "shock never arrived: p = {last}");
        // Monotone-ish arrival: max equals the post-shock plateau.
        let max = p_series.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        assert!((max - 0.30313).abs() < 0.03, "plateau {max}");
    }

    #[test]
    fn csv_export_has_one_row_per_sample() {
        let case = presets::sod(16);
        let solver = Solver::new(&case, SolverConfig::default(), Context::serial());
        let mut probes = ProbeSet::new(
            vec![Probe {
                name: "a".into(),
                x: [0.25, 0.0, 0.0],
            }],
            solver.domain(),
            solver.grid(),
        );
        probes.sample(0.0, &case.fluids, solver.state());
        probes.sample(0.1, &case.fluids, solver.state());
        let mut out = Vec::new();
        probes.write_csv(0, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("0,"));
    }
}
