//! Physical boundary conditions: ghost-cell population.
//!
//! Applied axis-by-axis over the full (ghost-inclusive) transverse extent,
//! so edge/corner ghost regions are filled consistently by the sequence of
//! sweeps — the same strategy as MFC's `s_populate_variables_buffers`.

use mfc_acc::{Context, KernelClass, KernelCost, LaunchConfig};
use serde::{Deserialize, Serialize};

use crate::state::StateField;

/// Boundary condition applied at one face of the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BcKind {
    /// Wrap around to the opposite side.
    Periodic,
    /// Slip wall: mirror the state, negate the normal velocity/momentum.
    Reflective,
    /// No-slip wall: mirror the state, negate every velocity/momentum
    /// component (viscous walls).
    NoSlip,
    /// Zero-gradient outflow (copy the nearest interior cell).
    Transmissive,
}

/// Boundary conditions for every face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BcSpec {
    pub lo: [BcKind; 3],
    pub hi: [BcKind; 3],
}

impl BcSpec {
    pub fn all(kind: BcKind) -> Self {
        BcSpec {
            lo: [kind; 3],
            hi: [kind; 3],
        }
    }

    pub fn periodic() -> Self {
        Self::all(BcKind::Periodic)
    }

    pub fn reflective() -> Self {
        Self::all(BcKind::Reflective)
    }

    pub fn transmissive() -> Self {
        Self::all(BcKind::Transmissive)
    }

    /// Set both faces of one axis.
    pub fn with_axis(mut self, axis: usize, kind: BcKind) -> Self {
        self.lo[axis] = kind;
        self.hi[axis] = kind;
        self
    }

    /// Whether both faces of `axis` are periodic (then the distributed
    /// topology wraps too).
    pub fn axis_periodic(&self, axis: usize) -> bool {
        self.lo[axis] == BcKind::Periodic && self.hi[axis] == BcKind::Periodic
    }
}

/// Fill every ghost layer of `field` (works on conservative or primitive
/// data: the reflective sign flip targets the `mom(axis)` slot, which holds
/// momentum resp. velocity — both flip).
///
/// `skip` marks axes whose ghosts are owned by the halo exchange (interior
/// block faces of a distributed run); `skip = [(false,false); 3]` applies
/// physical BCs everywhere.
pub fn apply_bcs(ctx: &Context, field: &mut StateField, bc: &BcSpec, skip: [(bool, bool); 3]) {
    let dom = *field.domain();
    let ng = dom.ng;
    let neq = dom.eq.neq();
    let cost = KernelCost::new(KernelClass::Other, 1.0, 8.0 * neq as f64, 8.0 * neq as f64);

    for (axis, &(skip_lo, skip_hi)) in skip.iter().enumerate().take(dom.eq.ndim()) {
        let n = dom.n[axis];
        // Transverse extents (full, ghost-inclusive, so corners fill).
        let t1 = if axis == 0 { dom.ext(1) } else { dom.ext(0) };
        let t2 = if axis == 2 { dom.ext(1) } else { dom.ext(2) };
        let plane = t1 * t2;

        for (side, is_hi) in [(0usize, false), (1usize, true)] {
            if (side == 0 && skip_lo) || (side == 1 && skip_hi) {
                continue;
            }
            let kind = if is_hi { bc.hi[axis] } else { bc.lo[axis] };
            let cfg = LaunchConfig::tuned("s_populate_buffers");
            ctx.launch(&cfg, cost, plane * ng, |item| {
                let g = item / plane;
                let r = item % plane;
                let (a, b) = (r % t1, r / t1);
                // (ghost index, source index) along `axis`.
                // flip: 0 = none, 1 = normal momentum, 2 = all momenta.
                let (gi, si, flip) = match (kind, is_hi) {
                    (BcKind::Periodic, false) => (ng - 1 - g, ng + n - 1 - g, 0u8),
                    (BcKind::Periodic, true) => (ng + n + g, ng + g, 0),
                    (BcKind::Reflective, false) => (ng - 1 - g, ng + g, 1),
                    (BcKind::Reflective, true) => (ng + n + g, ng + n - 1 - g, 1),
                    (BcKind::NoSlip, false) => (ng - 1 - g, ng + g, 2),
                    (BcKind::NoSlip, true) => (ng + n + g, ng + n - 1 - g, 2),
                    (BcKind::Transmissive, false) => (ng - 1 - g, ng, 0),
                    (BcKind::Transmissive, true) => (ng + n + g, ng + n - 1, 0),
                };
                let to_coord = |along: usize| -> (usize, usize, usize) {
                    match axis {
                        0 => (along, a, b),
                        1 => (a, along, b),
                        _ => (a, b, along),
                    }
                };
                let (gi3, si3) = (to_coord(gi), to_coord(si));
                for e in 0..neq {
                    let mut v = field.get(si3.0, si3.1, si3.2, e);
                    let is_momentum = (0..dom.eq.ndim()).any(|d| e == dom.eq.mom(d));
                    if (flip == 1 && e == dom.eq.mom(axis)) || (flip == 2 && is_momentum) {
                        v = -v;
                    }
                    field.set(gi3.0, gi3.1, gi3.2, e, v);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::eqidx::EqIdx;

    fn field_1d(n: usize, ng: usize) -> StateField {
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([n, 1, 1], ng, eq);
        let mut s = StateField::zeros(dom);
        for i in 0..n {
            for e in 0..eq.neq() {
                s.set(ng + i, 0, 0, e, (10 * (i + 1) + e) as f64);
            }
        }
        s
    }

    #[test]
    fn periodic_wraps() {
        let ctx = Context::serial();
        let mut s = field_1d(4, 2);
        apply_bcs(&ctx, &mut s, &BcSpec::periodic(), [(false, false); 3]);
        // lo ghosts = last interior cells
        assert_eq!(s.get(1, 0, 0, 0), s.get(5, 0, 0, 0)); // ghost ng-1 = interior n-1
        assert_eq!(s.get(0, 0, 0, 0), s.get(4, 0, 0, 0));
        // hi ghosts = first interior cells
        assert_eq!(s.get(6, 0, 0, 0), s.get(2, 0, 0, 0));
        assert_eq!(s.get(7, 0, 0, 0), s.get(3, 0, 0, 0));
    }

    #[test]
    fn reflective_mirrors_and_flips_momentum() {
        let ctx = Context::serial();
        let mut s = field_1d(4, 2);
        let eq = EqIdx::new(1, 1);
        apply_bcs(&ctx, &mut s, &BcSpec::reflective(), [(false, false); 3]);
        // ghost ng-1 mirrors interior 0
        assert_eq!(s.get(1, 0, 0, 0), s.get(2, 0, 0, 0));
        assert_eq!(s.get(1, 0, 0, eq.mom(0)), -s.get(2, 0, 0, eq.mom(0)));
        assert_eq!(s.get(1, 0, 0, eq.energy()), s.get(2, 0, 0, eq.energy()));
        // ghost 0 mirrors interior 1
        assert_eq!(s.get(0, 0, 0, 0), s.get(3, 0, 0, 0));
        // hi side
        assert_eq!(s.get(6, 0, 0, 0), s.get(5, 0, 0, 0));
        assert_eq!(s.get(7, 0, 0, eq.mom(0)), -s.get(4, 0, 0, eq.mom(0)));
    }

    #[test]
    fn noslip_flips_every_velocity_component() {
        let ctx = Context::serial();
        let eq = EqIdx::new(1, 2);
        let dom = Domain::new([3, 3, 1], 2, eq);
        let mut s = StateField::zeros(dom);
        for (i, j, k) in dom.interior() {
            s.set(i, j, k, 0, 1.0);
            s.set(i, j, k, eq.mom(0), 5.0);
            s.set(i, j, k, eq.mom(1), -2.0);
            s.set(i, j, k, eq.energy(), 9.0);
        }
        apply_bcs(
            &ctx,
            &mut s,
            &BcSpec::all(BcKind::NoSlip),
            [(false, false); 3],
        );
        // x-lo ghost mirrors interior 0 with BOTH velocities negated.
        assert_eq!(s.get(1, 2, 0, eq.mom(0)), -5.0);
        assert_eq!(s.get(1, 2, 0, eq.mom(1)), 2.0);
        assert_eq!(s.get(1, 2, 0, eq.energy()), 9.0);
        // Wall-tangential velocity also flips (unlike Reflective).
        let mut r = StateField::zeros(dom);
        for (i, j, k) in dom.interior() {
            r.set(i, j, k, eq.mom(1), -2.0);
            r.set(i, j, k, 0, 1.0);
            r.set(i, j, k, eq.energy(), 9.0);
        }
        apply_bcs(&ctx, &mut r, &BcSpec::reflective(), [(false, false); 3]);
        assert_eq!(r.get(1, 2, 0, eq.mom(1)), -2.0); // tangential kept
    }

    #[test]
    fn transmissive_copies_edge_cell() {
        let ctx = Context::serial();
        let mut s = field_1d(4, 2);
        apply_bcs(&ctx, &mut s, &BcSpec::transmissive(), [(false, false); 3]);
        for g in 0..2 {
            assert_eq!(s.get(g, 0, 0, 0), s.get(2, 0, 0, 0));
            assert_eq!(s.get(6 + g, 0, 0, 0), s.get(5, 0, 0, 0));
        }
    }

    #[test]
    fn skip_leaves_ghosts_untouched() {
        let ctx = Context::serial();
        let mut s = field_1d(4, 2);
        apply_bcs(
            &ctx,
            &mut s,
            &BcSpec::periodic(),
            [(true, false), (false, false), (false, false)],
        );
        assert_eq!(s.get(0, 0, 0, 0), 0.0); // lo skipped
        assert_ne!(s.get(6, 0, 0, 0), 0.0); // hi filled
    }

    #[test]
    fn corners_filled_in_2d() {
        let ctx = Context::serial();
        let eq = EqIdx::new(1, 2);
        let dom = Domain::new([3, 3, 1], 2, eq);
        let mut s = StateField::zeros(dom);
        for (i, j, k) in dom.interior() {
            s.set(i, j, k, 0, 7.0);
        }
        apply_bcs(&ctx, &mut s, &BcSpec::periodic(), [(false, false); 3]);
        // A corner ghost cell must carry interior data after both sweeps.
        assert_eq!(s.get(0, 0, 0, 0), 7.0);
        assert_eq!(s.get(6, 6, 0, 0), 7.0);
    }
}
