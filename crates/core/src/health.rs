//! Numerical-health watchdog: a cheap per-step scan fused into the
//! conservative→primitive pass.
//!
//! Diffuse-interface multiphase states go nonphysical mid-run — NaN from an
//! over-aggressive time step, negative partial densities at a vanishing
//! phase, vacuum pressure below the stiffened-gas floor `p = -Π`. MFC
//! answers with the Zhang–Shu positivity limiter and low-dissipation
//! fallbacks; this module supplies the *detection* half: scan the freshly
//! updated conservative field, convert each interior cell to primitives
//! (the work the next step needs anyway), and report the first offending
//! cell so the recovery ladder in [`crate::recovery`] can react instead of
//! the process aborting.
//!
//! The scan is instrumented as an `mfc-acc` kernel (`s_health_scan`) with
//! FLOP/byte counts like every other sweep, and is read-only with respect
//! to the conservative state — running it cannot perturb the trajectory,
//! which is what keeps recovery-armed runs bitwise identical to plain runs
//! when no fault triggers.

use mfc_acc::{with_lane_width, Context, KernelClass, KernelCost, Lane, LaunchConfig, ParSlice};
use serde::{Deserialize, Serialize};

use crate::domain::MAX_EQ;
use crate::eos::{cons_to_prim, MAX_FLUIDS};
use crate::eqidx::EqIdx;
use crate::fluid::{Fluid, MixtureRules};
use crate::state::StateField;

/// Tolerances of the health scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct HealthConfig {
    /// Allowed excursion of stored volume fractions outside `[0, 1]`.
    ///
    /// High-order reconstruction legitimately overshoots alpha by O(1e-3)
    /// at diffuse interfaces (the EOS clamps before mixture evaluation);
    /// only excursions beyond this slack are flagged as faults.
    pub alpha_slack: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig { alpha_slack: 1e-2 }
    }
}

/// What went nonphysical in a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ViolationKind {
    /// A conservative component is NaN or infinite.
    NotFinite,
    /// The (unfloored) mixture density is `<= 0`.
    NonPositiveDensity,
    /// Pressure is NaN or below the mixture stiffened-gas floor
    /// `p (1 + Gamma) + Pi <= 0`, where the frozen sound speed turns
    /// imaginary. Stiffened liquids legitimately sustain tension
    /// (`p < 0`) well above that floor.
    VacuumPressure,
    /// A stored volume fraction left `[0, 1]` by more than the slack.
    AlphaOutOfRange,
}

impl ViolationKind {
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::NotFinite => "not_finite",
            ViolationKind::NonPositiveDensity => "non_positive_density",
            ViolationKind::VacuumPressure => "vacuum_pressure",
            ViolationKind::AlphaOutOfRange => "alpha_out_of_range",
        }
    }
}

/// First offending cell found by a health scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Ghost-inclusive cell coordinates in the local block.
    pub cell: [usize; 3],
    /// Offending equation slot (first bad one for `NotFinite`/alpha).
    pub eq: usize,
    /// The offending value (density, pressure, alpha, or component).
    pub value: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at cell ({}, {}, {}) eq {}: value {:e}",
            self.kind.name(),
            self.cell[0],
            self.cell[1],
            self.cell[2],
            self.eq,
            self.value
        )
    }
}

/// Scan the interior of a conservative field, writing primitives as a side
/// product, and return the first violation (in x-fastest cell order).
///
/// The fused kernel does the conservative→primitive conversion the next
/// step needs anyway, so the marginal cost of the watchdog is a handful of
/// comparisons per cell. `prim` interior cells are overwritten; ghosts are
/// left untouched (callers refill them before any sweep).
pub fn scan_and_convert(
    ctx: &Context,
    fluids: &[Fluid],
    health: &HealthConfig,
    cons: &StateField,
    prim: &mut StateField,
) -> Option<Violation> {
    let dom = *cons.domain();
    assert_eq!(prim.domain(), &dom);
    let eq = dom.eq;
    let neq = eq.neq();
    let (nx, ny, _nz) = (dom.n[0], dom.n[1], dom.n[2]);
    let (px, py, pz) = (dom.pad(0), dom.pad(1), dom.pad(2));
    let slack = health.alpha_slack;

    // Conversion FLOPs plus the watchdog comparisons (~3 per equation)
    // and the per-cell mixture-floor evaluation (~4 per fluid).
    let cost = KernelCost::new(
        KernelClass::Other,
        (8 * eq.nf() + 7 * eq.ndim() + 13 + 3 * neq) as f64,
        8.0 * neq as f64,
        8.0 * neq as f64,
    );
    let cfg = LaunchConfig::tuned("s_health_scan");

    // Gang-decomposed scan: each gang walks its contiguous item range in
    // x-fastest order and stops at its first offender; folding the
    // per-gang results in gang order reproduces the serial scan's "first
    // violation" exactly (gangs partition the space in ascending order).
    // On a faulted step later gangs may convert cells the serial scan
    // would have skipped, but faulted steps are discarded and retried, so
    // the extra primitive stores never reach a sweep.
    //
    // Within a gang the walk is lane-tiled: a full packet that passes
    // every check lane-wide converts and stores `WIDTH` cells at once;
    // any flagged lane drops the packet back to the scalar walk, which
    // preserves the exact "first violation in x-fastest order" semantics
    // (and bitwise-identical primitive stores, since the lane conversion
    // is the generic scalar op sequence per lane).
    let d3 = dom.dims3();
    let scanner = HealthScanner {
        eq,
        fluids,
        slack,
        src: cons.as_slice(),
        out: ParSlice::new(prim.as_mut_slice()),
        nx,
        ny,
        pad: [px, py, pz],
        ext1: d3.n1,
        ext2: d3.n2,
        block: d3.len(),
    };
    let vw = ctx.vector_width();
    let results = ctx.launch_gangs(
        &cfg,
        cost,
        dom.interior_cells(),
        |_gang, range| with_lane_width!(vw, L => scanner.scan_range::<L>(range)),
    );
    results.into_iter().flatten().next()
}

/// State of the fused health scan, shared by the lane fast path and the
/// scalar fallback walk.
struct HealthScanner<'a> {
    eq: EqIdx,
    fluids: &'a [Fluid],
    slack: f64,
    src: &'a [f64],
    out: ParSlice<'a>,
    nx: usize,
    ny: usize,
    pad: [usize; 3],
    ext1: usize,
    ext2: usize,
    /// Ghost-inclusive cells per equation block.
    block: usize,
}

impl HealthScanner<'_> {
    /// Walk a contiguous interior item range, lane packets first, and
    /// return the first violation.
    fn scan_range<L: Lane>(&self, range: std::ops::Range<usize>) -> Option<Violation> {
        let mut item = range.start;
        while item < range.end {
            // Packets never cross an x row (loads are unit-stride in x).
            let avail = (range.end - item).min(self.nx - item % self.nx);
            if L::WIDTH > 1 && avail >= L::WIDTH && self.packet_healthy::<L>(item) {
                item += L::WIDTH;
                continue;
            }
            if let Some(v) = self.scan_cell(item) {
                return Some(v);
            }
            item += 1;
        }
        None
    }

    /// Check one full packet lane-wide; on an all-healthy verdict the
    /// converted primitives are stored and `true` returned. `false` means
    /// "at least one lane needs the ordered scalar walk" — it is always
    /// safe, never a verdict by itself.
    #[inline(always)]
    fn packet_healthy<L: Lane>(&self, item: usize) -> bool {
        let eq = &self.eq;
        let neq = eq.neq();
        let i = item % self.nx + self.pad[0];
        let j = (item / self.nx) % self.ny + self.pad[1];
        let k = item / (self.nx * self.ny) + self.pad[2];
        let cell = i + self.ext1 * (j + self.ext2 * k);
        let mut c = [L::splat(0.0); MAX_EQ];
        for (e, v) in c.iter_mut().enumerate().take(neq) {
            *v = L::load(&self.src[cell + e * self.block..]);
        }
        let mut ok = L::splat(0.0).ge(L::splat(0.0)); // all-true
        for v in &c[..neq] {
            ok = L::mask_and(ok, v.finite());
        }
        let mut rho = L::splat(0.0);
        for f in 0..eq.nf() {
            rho = rho + c[eq.cont(f)];
        }
        ok = L::mask_and(ok, rho.gt(L::splat(0.0)));
        for a in 0..eq.n_adv() {
            let alpha = c[eq.adv(a)];
            ok = L::mask_and(ok, alpha.ge(L::splat(-self.slack)));
            ok = L::mask_and(ok, alpha.le(L::splat(1.0 + self.slack)));
        }
        if !L::mask_all(ok) {
            return false;
        }
        let mut p = [L::splat(0.0); MAX_EQ];
        cons_to_prim(eq, self.fluids, &c[..neq], &mut p[..neq]);
        let mut alphas = [L::splat(0.0); MAX_FLUIDS];
        eq.alphas(&c[..neq], &mut alphas[..eq.nf()]);
        let mix = MixtureRules::evaluate(self.fluids, &alphas[..eq.nf()]);
        let pres = p[eq.energy()];
        let floor = pres * (L::splat(1.0) + mix.big_gamma) + mix.big_pi;
        // Healthy iff finite and NOT (floor <= 0) — the exact complement
        // of the scalar flag, so a NaN floor stays healthy on both paths.
        ok = L::mask_and(pres.finite(), L::mask_not(floor.le(L::splat(0.0))));
        if !L::mask_all(ok) {
            return false;
        }
        for (e, v) in p.iter().enumerate().take(neq) {
            self.out.set_lanes(cell + e * self.block, *v);
        }
        true
    }

    /// The scalar per-cell scan: flag the first violation or store the
    /// converted primitives.
    fn scan_cell(&self, item: usize) -> Option<Violation> {
        let eq = &self.eq;
        let neq = eq.neq();
        let i = item % self.nx + self.pad[0];
        let j = (item / self.nx) % self.ny + self.pad[1];
        let k = item / (self.nx * self.ny) + self.pad[2];
        let cell = i + self.ext1 * (j + self.ext2 * k);
        let mut c = [0.0; MAX_EQ];
        for (e, v) in c.iter_mut().enumerate().take(neq) {
            *v = self.src[cell + e * self.block];
        }

        for (e, &v) in c[..neq].iter().enumerate() {
            if !v.is_finite() {
                return Some(Violation {
                    kind: ViolationKind::NotFinite,
                    cell: [i, j, k],
                    eq: e,
                    value: v,
                });
            }
        }
        // Unfloored mixture density: the EOS floors each partial density
        // at zero, so a positive unfloored sum guarantees a safe convert.
        let mut rho = 0.0;
        for f in 0..eq.nf() {
            rho += c[eq.cont(f)];
        }
        if rho <= 0.0 {
            return Some(Violation {
                kind: ViolationKind::NonPositiveDensity,
                cell: [i, j, k],
                eq: eq.cont(0),
                value: rho,
            });
        }
        for a in 0..eq.n_adv() {
            let alpha = c[eq.adv(a)];
            if !(-self.slack..=1.0 + self.slack).contains(&alpha) {
                return Some(Violation {
                    kind: ViolationKind::AlphaOutOfRange,
                    cell: [i, j, k],
                    eq: eq.adv(a),
                    value: alpha,
                });
            }
        }
        let mut p = [0.0; MAX_EQ];
        cons_to_prim(eq, self.fluids, &c[..neq], &mut p[..neq]);
        // The stiffened-gas floor is a *mixture* quantity: the frozen
        // sound speed c^2 = (p (1 + Gamma) + Pi) / (Gamma rho) stays
        // real iff p (1 + Gamma) + Pi > 0. A global per-fluid bound
        // would flag admissible tension states in stiffened liquids.
        let mut alphas = [0.0; MAX_FLUIDS];
        eq.alphas(&c[..neq], &mut alphas[..eq.nf()]);
        let mix = MixtureRules::evaluate(self.fluids, &alphas[..eq.nf()]);
        let pres = p[eq.energy()];
        if !pres.is_finite() || pres * (1.0 + mix.big_gamma) + mix.big_pi <= 0.0 {
            return Some(Violation {
                kind: ViolationKind::VacuumPressure,
                cell: [i, j, k],
                eq: eq.energy(),
                value: pres,
            });
        }
        for (e, &v) in p[..neq].iter().enumerate() {
            self.out.set(cell + e * self.block, v);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::eqidx::EqIdx;
    use crate::state::prim_to_cons_field;

    fn setup() -> (Context, [Fluid; 2], Domain, StateField) {
        let ctx = Context::serial();
        let fluids = [Fluid::air(), Fluid::water()];
        let dom = Domain::new([6, 4, 1], 2, EqIdx::new(2, 2));
        let mut prim = StateField::zeros(dom);
        let eq = dom.eq;
        let d3 = dom.dims3();
        for k in 0..d3.n3 {
            for j in 0..d3.n2 {
                for i in 0..d3.n1 {
                    let a = 0.3 + 0.4 * (i as f64 / d3.n1 as f64);
                    prim.set(i, j, k, eq.cont(0), 1.2 * a);
                    prim.set(i, j, k, eq.cont(1), 1000.0 * (1.0 - a));
                    prim.set(i, j, k, eq.mom(0), 5.0);
                    prim.set(i, j, k, eq.mom(1), -2.0);
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                    prim.set(i, j, k, eq.adv(0), a);
                }
            }
        }
        let mut cons = StateField::zeros(dom);
        prim_to_cons_field(&ctx, &fluids, &prim, &mut cons);
        (ctx, fluids, dom, cons)
    }

    #[test]
    fn healthy_field_passes_and_converts() {
        let (ctx, fluids, dom, cons) = setup();
        let mut prim = StateField::zeros(dom);
        let v = scan_and_convert(&ctx, &fluids, &HealthConfig::default(), &cons, &mut prim);
        assert!(v.is_none(), "unexpected violation {v:?}");
        // Interior primitives were written.
        let (i, j) = (dom.pad(0), dom.pad(1));
        assert!(prim.get(i, j, 0, dom.eq.energy()) > 0.0);
        let stats = ctx.ledger().kernel("s_health_scan").unwrap();
        assert_eq!(stats.items as usize, dom.interior_cells());
    }

    #[test]
    fn nan_reports_first_offending_cell() {
        let (ctx, fluids, dom, mut cons) = setup();
        let eq = dom.eq;
        // Plant NaN at two cells; the x-fastest-first one must be reported.
        cons.set(4, 3, 0, eq.energy(), f64::NAN);
        cons.set(3, 3, 0, eq.mom(0), f64::NAN);
        let mut prim = StateField::zeros(dom);
        let v = scan_and_convert(&ctx, &fluids, &HealthConfig::default(), &cons, &mut prim)
            .expect("violation");
        assert_eq!(v.kind, ViolationKind::NotFinite);
        assert_eq!(v.cell, [3, 3, 0]);
        assert_eq!(v.eq, eq.mom(0));
    }

    #[test]
    fn negative_density_and_vacuum_pressure_detected() {
        let (ctx, fluids, dom, cons) = setup();
        let eq = dom.eq;
        let mut prim = StateField::zeros(dom);

        let mut bad = cons.clone();
        bad.set(3, 2, 0, eq.cont(0), -2.0);
        bad.set(3, 2, 0, eq.cont(1), 1.0);
        let v = scan_and_convert(&ctx, &fluids, &HealthConfig::default(), &bad, &mut prim)
            .expect("violation");
        assert_eq!(v.kind, ViolationKind::NonPositiveDensity);

        let mut bad = cons.clone();
        // Drain the energy so the recovered pressure dives below -min_pi.
        bad.set(3, 2, 0, eq.energy(), -1.0e9);
        let v = scan_and_convert(&ctx, &fluids, &HealthConfig::default(), &bad, &mut prim)
            .expect("violation");
        assert_eq!(v.kind, ViolationKind::VacuumPressure);
        assert_eq!(v.eq, eq.energy());
    }

    #[test]
    fn alpha_slack_tolerates_small_overshoot_only() {
        let (ctx, fluids, dom, cons) = setup();
        let eq = dom.eq;
        let mut prim = StateField::zeros(dom);
        let h = HealthConfig::default();

        let mut ok = cons.clone();
        ok.set(2, 2, 0, eq.adv(0), 1.0 + h.alpha_slack / 2.0);
        assert!(scan_and_convert(&ctx, &fluids, &h, &ok, &mut prim).is_none());

        let mut bad = cons.clone();
        bad.set(2, 2, 0, eq.adv(0), 1.5);
        let v = scan_and_convert(&ctx, &fluids, &h, &bad, &mut prim).expect("violation");
        assert_eq!(v.kind, ViolationKind::AlphaOutOfRange);
        assert_eq!(v.value, 1.5);
    }

    #[test]
    fn ghost_cells_are_not_scanned() {
        let (ctx, fluids, dom, mut cons) = setup();
        // Corrupt a ghost cell (i = 0 is outside the interior pad of 2).
        cons.set(0, 0, 0, dom.eq.energy(), f64::NAN);
        let mut prim = StateField::zeros(dom);
        assert!(
            scan_and_convert(&ctx, &fluids, &HealthConfig::default(), &cons, &mut prim).is_none()
        );
    }
}
