//! The flow state: a flattened, x-coalesced 4-D array plus sweep kernels.

use mfc_acc::{Context, KernelClass, KernelCost, Lane, LaneKernel, LaunchConfig, ParSlice};
use mfc_layout::Flat4D;

use crate::domain::{Domain, MAX_EQ};
use crate::eos::{cons_to_prim, prim_to_cons};
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;

/// The state of one block: ghost-inclusive cells × equations, stored as a
/// single contiguous [`Flat4D`] with x fastest and the equation index
/// slowest — the packed layout the paper converged on for all hot kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct StateField {
    dom: Domain,
    data: Flat4D,
}

impl StateField {
    pub fn zeros(dom: Domain) -> Self {
        StateField {
            dom,
            data: Flat4D::zeros(dom.dims4()),
        }
    }

    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.dom
    }

    /// Ghost-inclusive element access.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize, k: usize, e: usize) -> f64 {
        self.data.get(i, j, k, e)
    }

    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, k: usize, e: usize, v: f64) {
        self.data.set(i, j, k, e, v);
    }

    /// Copy one cell's state vector into stack scratch.
    #[inline(always)]
    pub fn load_cell(&self, i: usize, j: usize, k: usize, out: &mut [f64]) {
        for (e, o) in out.iter_mut().enumerate().take(self.dom.eq.neq()) {
            *o = self.data.get(i, j, k, e);
        }
    }

    /// Write one cell's state vector back.
    #[inline(always)]
    pub fn store_cell(&mut self, i: usize, j: usize, k: usize, cell: &[f64]) {
        for (e, &v) in cell.iter().enumerate().take(self.dom.eq.neq()) {
            self.data.set(i, j, k, e, v);
        }
    }

    /// The contiguous 3-D block of one equation.
    #[inline]
    pub fn eq_slice(&self, e: usize) -> &[f64] {
        let d = self.data.dims();
        let block = d.n1 * d.n2 * d.n3;
        &self.data.as_slice()[e * block..(e + 1) * block]
    }

    /// Mutable variant of [`StateField::eq_slice`].
    #[inline]
    pub fn eq_slice_mut(&mut self, e: usize) -> &mut [f64] {
        let d = self.data.dims();
        let block = d.n1 * d.n2 * d.n3;
        &mut self.data.as_mut_slice()[e * block..(e + 1) * block]
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        self.data.as_slice()
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data.as_mut_slice()
    }

    #[inline]
    pub fn flat(&self) -> &Flat4D {
        &self.data
    }

    /// `self = a*x + b*y` elementwise — the SSP-RK stage combination.
    pub fn lincomb(&mut self, a: f64, x: &StateField, b: f64, y: &StateField) {
        let out = self.data.as_mut_slice();
        let xs = x.data.as_slice();
        let ys = y.data.as_slice();
        assert_eq!(out.len(), xs.len());
        assert_eq!(out.len(), ys.len());
        for ((o, &xv), &yv) in out.iter_mut().zip(xs).zip(ys) {
            *o = a * xv + b * yv;
        }
    }

    /// `self += s * other` elementwise.
    pub fn axpy(&mut self, s: f64, other: &StateField) {
        let out = self.data.as_mut_slice();
        let os = other.data.as_slice();
        assert_eq!(out.len(), os.len());
        for (o, &v) in out.iter_mut().zip(os) {
            *o += s * v;
        }
    }

    pub fn fill(&mut self, v: f64) {
        self.data.as_mut_slice().fill(v);
    }
}

/// Approximate FLOPs of one cell's conservative→primitive conversion
/// (divisions counted as 4): nf adds + ndim (div + mul-adds) + mixture
/// evaluation + pressure. Used for ledger accounting only.
fn convert_flops(dom: &Domain) -> f64 {
    (4 * dom.eq.nf() + 7 * dom.eq.ndim() + 10) as f64
}

/// Convert a whole field conservative→primitive (ghosts included; callers
/// run it after the ghost fill so sweeps can reconstruct across faces).
pub fn cons_to_prim_field(
    ctx: &Context,
    fluids: &[Fluid],
    cons: &StateField,
    prim: &mut StateField,
) {
    let dom = *cons.domain();
    assert_eq!(prim.domain(), &dom);
    let d3 = dom.dims3();
    let neq = dom.eq.neq();
    let cost = KernelCost::new(
        KernelClass::Other,
        convert_flops(&dom),
        8.0 * neq as f64,
        8.0 * neq as f64,
    );
    let cfg = LaunchConfig::tuned("s_convert_to_primitive");
    // Lane-tiled over the x-coalesced cell index: each equation is a
    // contiguous block, so a packet loads `WIDTH` consecutive cells of
    // each variable with unit stride. Item count/ordering match the
    // scalar launch exactly.
    let kernel = ConvertKernel {
        eq: dom.eq,
        fluids,
        src: cons.as_slice(),
        out: ParSlice::new(prim.as_mut_slice()),
        n1: d3.n1,
        block: d3.len(),
        to_prim: true,
    };
    ctx.launch_vec(&cfg, cost, d3.n2 * d3.n3, d3.n1, &kernel);
}

/// Convert a whole field primitive→conservative.
pub fn prim_to_cons_field(
    ctx: &Context,
    fluids: &[Fluid],
    prim: &StateField,
    cons: &mut StateField,
) {
    let dom = *prim.domain();
    assert_eq!(cons.domain(), &dom);
    let d3 = dom.dims3();
    let neq = dom.eq.neq();
    let cost = KernelCost::new(
        KernelClass::Other,
        convert_flops(&dom),
        8.0 * neq as f64,
        8.0 * neq as f64,
    );
    let cfg = LaunchConfig::tuned("s_convert_to_conservative");
    let kernel = ConvertKernel {
        eq: dom.eq,
        fluids,
        src: prim.as_slice(),
        out: ParSlice::new(cons.as_mut_slice()),
        n1: d3.n1,
        block: d3.len(),
        to_prim: false,
    };
    ctx.launch_vec(&cfg, cost, d3.n2 * d3.n3, d3.n1, &kernel);
}

/// Lane kernel of the two field conversions: row = (j, k) line, col = i.
/// The per-cell EOS arithmetic is the generic [`cons_to_prim`] /
/// [`prim_to_cons`], so each lane is bitwise the scalar conversion of its
/// own cell; `to_prim` selects the direction uniformly per launch.
struct ConvertKernel<'a> {
    eq: EqIdx,
    fluids: &'a [Fluid],
    src: &'a [f64],
    out: ParSlice<'a>,
    /// Cells along the coalesced x direction.
    n1: usize,
    /// Cells per equation block.
    block: usize,
    to_prim: bool,
}

impl LaneKernel for ConvertKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, row: usize, col: usize) {
        let idx = row * self.n1 + col;
        let neq = self.eq.neq();
        let mut a = [L::splat(0.0); MAX_EQ];
        let mut b = [L::splat(0.0); MAX_EQ];
        for (e, v) in a.iter_mut().enumerate().take(neq) {
            *v = L::load(&self.src[idx + e * self.block..]);
        }
        if self.to_prim {
            cons_to_prim(&self.eq, self.fluids, &a[..neq], &mut b[..neq]);
        } else {
            prim_to_cons(&self.eq, self.fluids, &a[..neq], &mut b[..neq]);
        }
        for (e, v) in b.iter().enumerate().take(neq) {
            self.out.set_lanes(idx + e * self.block, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqidx::EqIdx;

    fn dom() -> Domain {
        Domain::new([4, 3, 1], 2, EqIdx::new(2, 2))
    }

    fn sample_prim_field(dom: Domain) -> StateField {
        let mut s = StateField::zeros(dom);
        let eq = dom.eq;
        let d3 = dom.dims3();
        for k in 0..d3.n3 {
            for j in 0..d3.n2 {
                for i in 0..d3.n1 {
                    let a = 0.2 + 0.6 * (i as f64 / d3.n1 as f64);
                    s.set(i, j, k, eq.cont(0), 1.2 * a);
                    s.set(i, j, k, eq.cont(1), 1000.0 * (1.0 - a));
                    s.set(i, j, k, eq.mom(0), 10.0 + i as f64);
                    s.set(i, j, k, eq.mom(1), -3.0 + j as f64);
                    s.set(i, j, k, eq.energy(), 1.0e5 * (1.0 + 0.1 * k as f64));
                    s.set(i, j, k, eq.adv(0), a);
                }
            }
        }
        s
    }

    #[test]
    fn eq_slice_is_contiguous_block_per_equation() {
        let mut s = StateField::zeros(dom());
        s.set(0, 0, 0, 1, 42.0);
        assert_eq!(s.eq_slice(1)[0], 42.0);
        assert_eq!(s.eq_slice(0)[0], 0.0);
    }

    #[test]
    fn field_conversion_round_trip() {
        let ctx = Context::serial();
        let fluids = [Fluid::air(), Fluid::water()];
        let prim = sample_prim_field(dom());
        let mut cons = StateField::zeros(dom());
        let mut back = StateField::zeros(dom());
        prim_to_cons_field(&ctx, &fluids, &prim, &mut cons);
        cons_to_prim_field(&ctx, &fluids, &cons, &mut back);
        let err = prim
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| (a - b).abs() / a.abs().max(1.0))
            .fold(0.0, f64::max);
        assert!(err < 1e-10, "round-trip err {err}");
    }

    #[test]
    fn conversions_land_in_ledger() {
        let ctx = Context::serial();
        let fluids = [Fluid::air(), Fluid::water()];
        let prim = sample_prim_field(dom());
        let mut cons = StateField::zeros(dom());
        prim_to_cons_field(&ctx, &fluids, &prim, &mut cons);
        let stats = ctx.ledger().kernel("s_convert_to_conservative").unwrap();
        assert_eq!(stats.items as usize, dom().total_cells());
    }

    #[test]
    fn lincomb_and_axpy() {
        let d = dom();
        let mut a = StateField::zeros(d);
        let mut x = StateField::zeros(d);
        let mut y = StateField::zeros(d);
        x.fill(2.0);
        y.fill(3.0);
        a.lincomb(0.5, &x, 2.0, &y); // 1 + 6 = 7
        assert!(a.as_slice().iter().all(|&v| v == 7.0));
        a.axpy(-1.0, &x);
        assert!(a.as_slice().iter().all(|&v| v == 5.0));
    }

    #[test]
    fn load_store_cell_round_trip() {
        let d = dom();
        let mut s = StateField::zeros(d);
        // EqIdx(2, 2) has neq = 6.
        let cell = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        s.store_cell(2, 1, 0, &cell);
        let mut back = [0.0; 6];
        s.load_cell(2, 1, 0, &mut back);
        assert_eq!(cell, back);
    }
}
