//! Positivity-preserving limiting of reconstructed face states.
//!
//! High-order reconstructions can push a vanishing phase's partial
//! density (or the pressure) out of the admissible set near strong shocks
//! and diffuse interfaces. Two remedies are implemented:
//!
//! * [`Limiter::FirstOrderFallback`] — replace the whole reconstructed
//!   vector by the adjacent cell average when inadmissible (robust,
//!   locally first-order; MFC's practical behaviour).
//! * [`Limiter::ZhangShu`] — scale the reconstruction toward the cell
//!   average by the *minimal* factor restoring admissibility
//!   (Zhang & Shu 2010): `q_lim = mean + theta (q - mean)` with the
//!   largest admissible `theta` in [0, 1]. Retains more of the
//!   high-order information than the full fallback.

use serde::{Deserialize, Serialize};

use crate::eqidx::EqIdx;
use crate::fluid::Fluid;

/// Positivity enforcement strategy for reconstructed face states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
#[derive(Default)]
pub enum Limiter {
    /// Replace inadmissible reconstructions by the cell average.
    #[default]
    FirstOrderFallback,
    /// Zhang–Shu linear scaling toward the cell average.
    ZhangShu,
}

/// Floor on partial densities and on the stiffened pressure, relative to
/// the cell-average magnitude.
const POS_EPS: f64 = 1e-12;

/// Whether a primitive state is admissible (positive partial densities
/// and stiffened pressure).
#[inline(always)]
pub fn admissible(eq: &EqIdx, fluids: &[Fluid], prim: &[f64]) -> bool {
    let mut rho = 0.0;
    for i in 0..eq.nf() {
        let ar = prim[eq.cont(i)];
        if ar < 0.0 {
            return false;
        }
        rho += ar;
    }
    if rho <= 0.0 {
        return false;
    }
    let min_pi = fluids
        .iter()
        .map(|f| f.pi_inf)
        .fold(f64::INFINITY, f64::min);
    prim[eq.energy()] + min_pi > 0.0
}

/// Apply the limiter to one reconstructed primitive state `prim`, given
/// the admissible cell average `mean`. Returns the theta actually used
/// (1 = untouched, 0 = full fallback).
pub fn limit_state(
    limiter: Limiter,
    eq: &EqIdx,
    fluids: &[Fluid],
    mean: &[f64],
    prim: &mut [f64],
) -> f64 {
    if admissible(eq, fluids, prim) {
        return 1.0;
    }
    // If the cell average itself is (transiently) inadmissible — violent
    // collapse can momentarily under-shoot a vanishing phase — there is
    // nothing better than the average to fall back on; scaling toward it
    // cannot help, so use it directly.
    if !admissible(eq, fluids, mean) {
        prim.copy_from_slice(mean);
        return 0.0;
    }
    match limiter {
        Limiter::FirstOrderFallback => {
            prim.copy_from_slice(mean);
            0.0
        }
        Limiter::ZhangShu => {
            // Largest theta keeping every constrained quantity above its
            // floor. Constraints are affine in theta, so each gives a
            // closed-form bound.
            let mut theta: f64 = 1.0;
            for i in 0..eq.nf() {
                let e = eq.cont(i);
                let floor = POS_EPS * mean[e].abs();
                if prim[e] < floor {
                    // mean + t (prim - mean) >= floor
                    let denom = mean[e] - prim[e];
                    if denom > 0.0 {
                        theta = theta.min((mean[e] - floor) / denom);
                    }
                }
            }
            let min_pi = fluids
                .iter()
                .map(|f| f.pi_inf)
                .fold(f64::INFINITY, f64::min);
            let e = eq.energy();
            let floor = POS_EPS * (mean[e].abs() + min_pi) - min_pi;
            if prim[e] < floor {
                let denom = mean[e] - prim[e];
                if denom > 0.0 {
                    theta = theta.min((mean[e] - floor) / denom);
                }
            }
            let theta = theta.clamp(0.0, 1.0);
            for (p, &m) in prim.iter_mut().zip(mean) {
                *p = m + theta * (*p - m);
            }
            theta
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq2() -> EqIdx {
        EqIdx::new(2, 1)
    }

    fn fluids() -> Vec<Fluid> {
        vec![Fluid::air(), Fluid::water()]
    }

    #[test]
    fn admissible_states_pass_untouched() {
        let eq = eq2();
        let mean = [0.6, 400.0, 5.0, 1.0e5, 0.5];
        let mut prim = [0.7, 380.0, 6.0, 1.1e5, 0.55];
        let before = prim;
        for lim in [Limiter::FirstOrderFallback, Limiter::ZhangShu] {
            let theta = limit_state(lim, &eq, &fluids(), &mean, &mut prim);
            assert_eq!(theta, 1.0);
            assert_eq!(prim, before);
        }
    }

    #[test]
    fn fallback_restores_the_mean_exactly() {
        let eq = eq2();
        let mean = [0.6, 400.0, 5.0, 1.0e5, 0.5];
        let mut prim = [-0.1, 380.0, 6.0, 1.1e5, 0.55];
        let theta = limit_state(
            Limiter::FirstOrderFallback,
            &eq,
            &fluids(),
            &mean,
            &mut prim,
        );
        assert_eq!(theta, 0.0);
        assert_eq!(prim, mean);
    }

    #[test]
    fn zhang_shu_restores_admissibility_with_maximal_theta() {
        let eq = eq2();
        let mean = [0.6, 400.0, 5.0, 1.0e5, 0.5];
        let mut prim = [-0.2, 380.0, 6.0, 1.1e5, 0.55];
        let theta = limit_state(Limiter::ZhangShu, &eq, &fluids(), &mean, &mut prim);
        assert!(theta > 0.0 && theta < 1.0, "theta = {theta}");
        assert!(admissible(&eq, &fluids(), &prim));
        // The limited density sits essentially at its floor: theta was
        // maximal, not conservative.
        assert!(prim[0].abs() < 1e-6);
        // Other components moved proportionally toward the mean.
        assert!((prim[1] - (mean[1] + theta * (380.0 - mean[1]))).abs() < 1e-9);
    }

    #[test]
    fn zhang_shu_handles_negative_pressure() {
        let eq = eq2();
        let mean = [0.6, 400.0, 5.0, 1.0e5, 0.5];
        let mut prim = [0.6, 400.0, 5.0, -5.0e4, 0.5];
        let theta = limit_state(Limiter::ZhangShu, &eq, &fluids(), &mean, &mut prim);
        assert!(theta < 1.0);
        assert!(admissible(&eq, &fluids(), &prim), "{prim:?}");
    }

    #[test]
    fn zhang_shu_preserves_more_information_than_fallback() {
        let eq = eq2();
        let mean = [0.6, 400.0, 5.0, 1.0e5, 0.5];
        let bad = [-0.05, 390.0, 8.0, 1.2e5, 0.52];
        let mut zs = bad;
        let mut fb = bad;
        limit_state(Limiter::ZhangShu, &eq, &fluids(), &mean, &mut zs);
        limit_state(Limiter::FirstOrderFallback, &eq, &fluids(), &mean, &mut fb);
        // The ZS state stays closer to the reconstruction in momentum.
        let d_zs = (zs[2] - bad[2]).abs();
        let d_fb = (fb[2] - bad[2]).abs();
        assert!(d_zs < d_fb);
    }

    #[test]
    fn stiffened_pressure_floor_respects_pi_inf() {
        // Pure-water fluids: pressure may legitimately be negative down
        // to -pi_inf; the limiter must allow moderately negative p.
        let eq = EqIdx::new(1, 1);
        let water = vec![Fluid::water()];
        let mean = [1000.0, 0.0, 1.0e5];
        let mut prim = [1000.0, 0.0, -1.0e6]; // fine under 3.43e8 stiffness
        let theta = limit_state(Limiter::ZhangShu, &eq, &water, &mean, &mut prim);
        assert_eq!(theta, 1.0, "stiffened negative pressure is admissible");
    }
}
