//! CFL-based time-step selection.

use mfc_acc::{Context, KernelClass, KernelCost, Lane, LaneMaxKernel, LaunchConfig};

use crate::domain::MAX_EQ;
use crate::eos::sound_speed;
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use crate::recovery::StepFault;
use crate::state::StateField;

/// Largest stable time step for the given primitive state:
/// `dt = cfl / max_cells sum_d (|u_d| + c) / dx_d`.
///
/// `widths[d]` are the ghost-inclusive cell widths along axis `d`.
pub fn max_dt(
    ctx: &Context,
    fluids: &[Fluid],
    prim: &StateField,
    widths: [&[f64]; 3],
    cfl: f64,
) -> f64 {
    max_dt_geom(ctx, fluids, prim, widths, cfl, None)
}

/// [`max_dt`] with an optional azimuthal metric: in 3-D cylindrical
/// coordinates the azimuthal cell width is `r * dtheta`, so pass the
/// ghost-inclusive radial centers to tighten the theta CFL bound (the
/// restriction the paper's FFT filter exists to relax).
pub fn max_dt_geom(
    ctx: &Context,
    fluids: &[Fluid],
    prim: &StateField,
    widths: [&[f64]; 3],
    cfl: f64,
    radial_metric: Option<&[f64]>,
) -> f64 {
    match try_max_dt_geom(ctx, fluids, prim, widths, cfl, radial_metric) {
        Ok(dt) => dt,
        Err(StepFault::DegenerateWaveSpeed { rate }) => {
            panic!("degenerate wave-speed rate {rate}")
        }
        Err(f) => panic!("{f}"),
    }
}

/// Fallible variant of [`max_dt_geom`]: a non-finite or non-positive
/// wave-speed reduction (an all-NaN or vacuum state) becomes a typed
/// [`StepFault`] for the recovery ladder instead of a panic.
pub fn try_max_dt_geom(
    ctx: &Context,
    fluids: &[Fluid],
    prim: &StateField,
    widths: [&[f64]; 3],
    cfl: f64,
    radial_metric: Option<&[f64]>,
) -> Result<f64, StepFault> {
    assert!(cfl > 0.0 && cfl <= 1.0, "cfl must be in (0, 1], got {cfl}");
    let dom = *prim.domain();
    let eq = dom.eq;
    let neq = eq.neq();
    let (nx, ny) = (dom.n[0], dom.n[1]);
    let cost = KernelCost::new(
        KernelClass::Other,
        (20 + 6 * eq.ndim()) as f64,
        8.0 * neq as f64,
        8.0,
    );
    let cfg = LaunchConfig::tuned("s_compute_dt");
    // Lane-tiled max reduction: packets along the unit-stride x row, and
    // the horizontal fold extracts lanes in ascending order, so the
    // reduction visits bitwise the scalar per-cell rates in the scalar
    // item order.
    let kernel = DtKernel {
        eq,
        fluids,
        src: prim.as_slice(),
        widths,
        radial_metric,
        viscous: crate::viscous::is_viscous(fluids),
        ny,
        pad: [dom.pad(0), dom.pad(1), dom.pad(2)],
        ext1: dom.ext(0),
        ext2: dom.ext(1),
        block: dom.ext(0) * dom.ext(1) * dom.ext(2),
    };
    let nz = dom.n[2];
    let rate = ctx.launch_max_vec(&cfg, cost, ny * nz, nx, &kernel);
    if rate.is_finite() && rate > 0.0 {
        Ok(cfl / rate)
    } else {
        Err(StepFault::DegenerateWaveSpeed { rate })
    }
}

/// Lane kernel of the CFL reduction: row = (j, k) interior line, col =
/// interior x offset. Each lane computes the scalar wave-speed rate of
/// its own cell; transverse widths and the azimuthal metric are uniform
/// per row and enter as splats.
struct DtKernel<'a> {
    eq: EqIdx,
    fluids: &'a [Fluid],
    src: &'a [f64],
    widths: [&'a [f64]; 3],
    radial_metric: Option<&'a [f64]>,
    viscous: bool,
    /// Interior cells along y.
    ny: usize,
    pad: [usize; 3],
    ext1: usize,
    ext2: usize,
    /// Ghost-inclusive cells per equation block.
    block: usize,
}

impl LaneMaxKernel for DtKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, row: usize, col: usize) -> L {
        let eq = &self.eq;
        let i = col + self.pad[0];
        let j = row % self.ny + self.pad[1];
        let k = row / self.ny + self.pad[2];
        let base = i + self.ext1 * (j + self.ext2 * k);
        let neq = eq.neq();
        let mut p = [L::splat(0.0); MAX_EQ];
        for (e, v) in p.iter_mut().enumerate().take(neq) {
            *v = L::load(&self.src[base + e * self.block..]);
        }
        let (rho, _, c) = sound_speed(eq, self.fluids, &p[..neq]);
        // Mixture kinematic viscosity for the diffusive stability bound.
        let nu = if self.viscous {
            let mut alphas = [L::splat(0.0); crate::eos::MAX_FLUIDS];
            eq.alphas(&p[..neq], &mut alphas[..eq.nf()]);
            let mut s = L::splat(0.0);
            for (f, a) in self.fluids.iter().zip(&alphas[..eq.nf()]) {
                s = s + *a * L::splat(f.viscosity);
            }
            s / rho.max(L::splat(1e-300))
        } else {
            L::splat(0.0)
        };
        let mut rate = L::splat(0.0);
        for d in 0..eq.ndim() {
            let h = match d {
                0 => L::load(&self.widths[0][i..]),
                1 => L::splat(self.widths[1][j]),
                _ => {
                    let mut h = L::splat(self.widths[2][k]);
                    if let Some(r) = self.radial_metric {
                        h = h * L::splat(r[j]);
                    }
                    h
                }
            };
            rate = rate + ((p[eq.mom(d)].abs() + c) / h + L::splat(2.0) * nu / (h * h));
        }
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::eqidx::EqIdx;
    use crate::grid::Grid1D;

    #[test]
    fn dt_matches_manual_1d() {
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([8, 1, 1], 3, eq);
        let ctx = Context::serial();
        let mut prim = StateField::zeros(dom);
        for i in 0..dom.ext(0) {
            prim.set(i, 0, 0, eq.cont(0), 1.4);
            prim.set(i, 0, 0, eq.mom(0), 100.0);
            prim.set(i, 0, 0, eq.energy(), 1.0e5);
        }
        let g = Grid1D::uniform(8, 0.0, 1.0);
        let wx = g.widths_with_ghosts(3);
        let ones = vec![1.0];
        let dt = max_dt(&ctx, &[Fluid::air()], &prim, [&wx, &ones, &ones], 0.5);
        // c = sqrt(1.4e5/1.4) ≈ 316.23; rate = (100 + c)/0.125.
        let c = (1.4 * 1.0e5 / 1.4f64).sqrt();
        let want = 0.5 / ((100.0 + c) / 0.125);
        assert!((dt - want).abs() < 1e-12 * want, "dt={dt} want={want}");
    }

    #[test]
    fn faster_flow_shrinks_dt() {
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([8, 1, 1], 3, eq);
        let ctx = Context::serial();
        let g = Grid1D::uniform(8, 0.0, 1.0);
        let wx = g.widths_with_ghosts(3);
        let ones = vec![1.0];
        let mk = |u: f64| {
            let mut prim = StateField::zeros(dom);
            for i in 0..dom.ext(0) {
                prim.set(i, 0, 0, eq.cont(0), 1.4);
                prim.set(i, 0, 0, eq.mom(0), u);
                prim.set(i, 0, 0, eq.energy(), 1.0e5);
            }
            prim
        };
        let slow = max_dt(&ctx, &[Fluid::air()], &mk(10.0), [&wx, &ones, &ones], 0.5);
        let fast = max_dt(&ctx, &[Fluid::air()], &mk(500.0), [&wx, &ones, &ones], 0.5);
        assert!(fast < slow);
    }

    #[test]
    fn degenerate_state_is_a_typed_fault() {
        // An all-zero "vacuum" state gives NaN sound speeds, which the
        // NaN-ignoring max-reduction collapses to -inf: a typed fault.
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([8, 1, 1], 3, eq);
        let ctx = Context::serial();
        let prim = StateField::zeros(dom);
        let g = Grid1D::uniform(8, 0.0, 1.0);
        let wx = g.widths_with_ghosts(3);
        let ones = vec![1.0];
        let err = try_max_dt_geom(&ctx, &[Fluid::air()], &prim, [&wx, &ones, &ones], 0.5, None)
            .unwrap_err();
        assert!(matches!(err, StepFault::DegenerateWaveSpeed { .. }));
    }

    #[test]
    #[should_panic]
    fn rejects_silly_cfl() {
        let eq = EqIdx::new(1, 1);
        let dom = Domain::new([4, 1, 1], 2, eq);
        let ctx = Context::serial();
        let prim = StateField::zeros(dom);
        let w = vec![1.0; 8];
        let ones = vec![1.0];
        let _ = max_dt(&ctx, &[Fluid::air()], &prim, [&w, &ones, &ones], 1.5);
    }
}
