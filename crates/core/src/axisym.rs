//! Axisymmetric (cylindrical r–z) geometric source terms.
//!
//! MFC supports Cartesian, axisymmetric, and cylindrical coordinates
//! (§III-A).  In axisymmetric form (x = axial, y = radial), the divergence
//! picks up a `1/r` term that appears as a geometric source on the
//! conservative equations:
//!
//! ```text
//! d q/dt + dF^x/dx + dF^r/dr = -(u_r / r) * G(q),
//! G = [alpha_i rho_i, rho u_x, rho u_r, rho E + p]
//! ```
//!
//! The volume-fraction rows need no geometric source: their `1/r` terms
//! cancel between the conservative flux and the `alpha div(u)` closure.

use mfc_acc::{Context, KernelClass, KernelCost, Lane, LaneKernel, LaunchConfig, ParSlice};
use serde::{Deserialize, Serialize};

use crate::domain::{Domain, MAX_EQ};
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use crate::riemann::face_state_public as face_state;
use crate::state::StateField;

/// Coordinate system of the governing equations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Geometry {
    Cartesian,
    /// 2-D axisymmetric: axis 0 is axial, axis 1 is radial.
    Axisymmetric,
    /// Full 3-D cylindrical: axis 0 = axial (z), axis 1 = radial (r),
    /// axis 2 = azimuthal (theta, periodic). The azimuthal cell width is
    /// `r * dtheta`, applied by the flux divergence; the geometric
    /// sources below add the centrifugal/Coriolis-type terms.
    Cylindrical3D,
}

impl Geometry {
    /// Whether axis 1 is a radial coordinate (cylindrical volume terms).
    pub fn has_radial_axis(self) -> bool {
        !matches!(self, Geometry::Cartesian)
    }
}

/// Add the axisymmetric geometric source to `rhs` over interior cells.
///
/// `radii` holds the ghost-inclusive radial (y) cell-center coordinates;
/// they must be positive over the interior.
pub fn axisym_source(
    ctx: &Context,
    dom: &Domain,
    fluids: &[Fluid],
    prim: &StateField,
    radii: &[f64],
    rhs: &mut StateField,
) {
    let eq = dom.eq;
    assert!(eq.ndim() >= 2, "axisymmetric source needs a radial axis");
    let neq = eq.neq();
    let cost = KernelCost::new(
        KernelClass::Other,
        (3 * neq + 10) as f64,
        8.0 * neq as f64,
        8.0 * neq as f64,
    );
    let cfg = LaunchConfig::tuned("s_axisym_source");
    let d3 = dom.dims3();
    let kernel = AxisymKernel {
        eq,
        fluids,
        src: prim.as_slice(),
        radii,
        ny: dom.n[1],
        pad: [dom.pad(0), dom.pad(1), dom.pad(2)],
        ext1: d3.n1,
        ext2: d3.n2,
        block: d3.len(),
        rsl: ParSlice::new(rhs.as_mut_slice()),
    };
    ctx.launch_vec(&cfg, cost, dom.n[1] * dom.n[2], dom.n[0], &kernel);
}

/// Lane kernel of [`axisym_source`]: row = (j, k) interior line, col =
/// interior x offset. The radius is uniform per row and enters as a
/// splat; the per-cell face-state evaluation is the generic
/// [`face_state`], so each lane is bitwise the scalar source of its cell.
struct AxisymKernel<'a> {
    eq: EqIdx,
    fluids: &'a [Fluid],
    src: &'a [f64],
    radii: &'a [f64],
    /// Interior cells along y.
    ny: usize,
    pad: [usize; 3],
    ext1: usize,
    ext2: usize,
    /// Ghost-inclusive cells per equation block.
    block: usize,
    rsl: ParSlice<'a>,
}

impl LaneKernel for AxisymKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, row: usize, col: usize) {
        let eq = &self.eq;
        let neq = eq.neq();
        let i = col + self.pad[0];
        let j = row % self.ny + self.pad[1];
        let k = row / self.ny + self.pad[2];
        let r = self.radii[j];
        debug_assert!(r > 0.0, "non-positive radius {r} at j={j}");
        let cell = i + self.ext1 * (j + self.ext2 * k);
        let mut p = [L::splat(0.0); MAX_EQ];
        for (e, v) in p.iter_mut().enumerate().take(neq) {
            *v = L::load(&self.src[cell + e * self.block..]);
        }
        let fs = face_state(eq, self.fluids, &p[..neq], 1);
        let ur = p[eq.mom(1)];
        let factor = -ur / L::splat(r);
        for f in 0..eq.nf() {
            let e = eq.cont(f);
            self.rsl.add_lanes(cell + e * self.block, factor * p[e]);
        }
        for d in 0..eq.ndim() {
            let e = eq.mom(d);
            self.rsl
                .add_lanes(cell + e * self.block, factor * fs.rho * p[e]);
        }
        self.rsl
            .add_lanes(cell + eq.energy() * self.block, factor * (fs.rho_e + fs.p));
    }
}

/// Add the full 3-D cylindrical geometric sources over interior cells:
///
/// ```text
/// S[alpha_i rho_i] = -(alpha_i rho_i) u_r / r
/// S[rho u_z]       = -(rho u_z u_r) / r
/// S[rho u_r]       =  (rho u_theta^2 - rho u_r^2) / r
/// S[rho u_theta]   = -2 rho u_r u_theta / r
/// S[rho E]         = -(rho E + p) u_r / r
/// ```
///
/// (With `u_theta = 0` this reduces to [`axisym_source`]; the volume-
/// fraction rows need no source for the same cancellation reason.)
pub fn cylindrical_source(
    ctx: &Context,
    dom: &Domain,
    fluids: &[Fluid],
    prim: &StateField,
    radii: &[f64],
    rhs: &mut StateField,
) {
    let eq = dom.eq;
    assert_eq!(eq.ndim(), 3, "3-D cylindrical needs all three axes");
    let neq = eq.neq();
    let cost = KernelCost::new(
        KernelClass::Other,
        (3 * neq + 16) as f64,
        8.0 * neq as f64,
        8.0 * neq as f64,
    );
    let cfg = LaunchConfig::tuned("s_cylindrical_source");
    let d3 = dom.dims3();
    let kernel = CylindricalKernel {
        eq,
        fluids,
        src: prim.as_slice(),
        radii,
        ny: dom.n[1],
        pad: [dom.pad(0), dom.pad(1), dom.pad(2)],
        ext1: d3.n1,
        ext2: d3.n2,
        block: d3.len(),
        rsl: ParSlice::new(rhs.as_mut_slice()),
    };
    ctx.launch_vec(&cfg, cost, dom.n[1] * dom.n[2], dom.n[0], &kernel);
}

/// Lane kernel of [`cylindrical_source`] — same decode and splat-radius
/// structure as [`AxisymKernel`] with the three-axis source rows.
struct CylindricalKernel<'a> {
    eq: EqIdx,
    fluids: &'a [Fluid],
    src: &'a [f64],
    radii: &'a [f64],
    /// Interior cells along y.
    ny: usize,
    pad: [usize; 3],
    ext1: usize,
    ext2: usize,
    /// Ghost-inclusive cells per equation block.
    block: usize,
    rsl: ParSlice<'a>,
}

impl LaneKernel for CylindricalKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, row: usize, col: usize) {
        let eq = &self.eq;
        let neq = eq.neq();
        let i = col + self.pad[0];
        let j = row % self.ny + self.pad[1];
        let k = row / self.ny + self.pad[2];
        let r = self.radii[j];
        debug_assert!(r > 0.0, "non-positive radius {r} at j={j}");
        let cell = i + self.ext1 * (j + self.ext2 * k);
        let mut p = [L::splat(0.0); MAX_EQ];
        for (e, v) in p.iter_mut().enumerate().take(neq) {
            *v = L::load(&self.src[cell + e * self.block..]);
        }
        let fs = face_state(eq, self.fluids, &p[..neq], 1);
        let (uz, ur, ut) = (p[eq.mom(0)], p[eq.mom(1)], p[eq.mom(2)]);
        let inv_r = L::splat(1.0 / r);
        for f in 0..eq.nf() {
            let e = eq.cont(f);
            self.rsl
                .add_lanes(cell + e * self.block, -p[e] * ur * inv_r);
        }
        self.rsl
            .add_lanes(cell + eq.mom(0) * self.block, -fs.rho * uz * ur * inv_r);
        self.rsl.add_lanes(
            cell + eq.mom(1) * self.block,
            fs.rho * (ut * ut - ur * ur) * inv_r,
        );
        self.rsl.add_lanes(
            cell + eq.mom(2) * self.block,
            L::splat(-2.0) * fs.rho * ur * ut * inv_r,
        );
        self.rsl.add_lanes(
            cell + eq.energy() * self.block,
            -(fs.rho_e + fs.p) * ur * inv_r,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqidx::EqIdx;

    #[test]
    fn zero_radial_velocity_gives_zero_source() {
        let eq = EqIdx::new(1, 2);
        let dom = Domain::new([4, 4, 1], 2, eq);
        let ctx = Context::serial();
        let mut prim = StateField::zeros(dom);
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    prim.set(i, j, k, eq.cont(0), 1.2);
                    prim.set(i, j, k, eq.mom(0), 100.0); // axial only
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let radii: Vec<f64> = (0..dom.ext(1)).map(|j| 0.5 + j as f64).collect();
        let mut rhs = StateField::zeros(dom);
        axisym_source(&ctx, &dom, &[Fluid::air()], &prim, &radii, &mut rhs);
        assert!(rhs.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn source_scales_inversely_with_radius() {
        let eq = EqIdx::new(1, 2);
        let dom = Domain::new([4, 4, 1], 2, eq);
        let ctx = Context::serial();
        let mut prim = StateField::zeros(dom);
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    prim.set(i, j, k, eq.cont(0), 1.0);
                    prim.set(i, j, k, eq.mom(1), 2.0); // radial outflow
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let radii: Vec<f64> = (0..dom.ext(1)).map(|j| 1.0 + j as f64).collect();
        let mut rhs = StateField::zeros(dom);
        axisym_source(&ctx, &dom, &[Fluid::air()], &prim, &radii, &mut rhs);
        // Mass source = -rho u_r / r; at j=2 (r=3), j=3 (r=4).
        let a = rhs.get(2, 2, 0, eq.cont(0));
        let b = rhs.get(2, 3, 0, eq.cont(0));
        assert!((a - (-2.0 / 3.0)).abs() < 1e-12, "a={a}");
        assert!((b - (-2.0 / 4.0)).abs() < 1e-12, "b={b}");
    }
}
