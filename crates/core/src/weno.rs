//! WENO reconstruction (Jiang–Shu), the most expensive kernel family.
//!
//! Reconstruction is componentwise on primitive variables, line-by-line
//! along the sweep direction, exactly like MFC.  The field-level kernel
//! consumes a direction-coalesced [`Flat4D`] buffer so the stencil reads
//! are unit-stride — the access pattern whose absence costs 10x (§III-C).

use mfc_acc::{Context, KernelClass, KernelCost, LaunchConfig, ParSlice};
use mfc_layout::Flat4D;
use serde::{Deserialize, Serialize};

/// Reconstruction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WenoOrder {
    /// Piecewise-constant (first-order) — baseline and fallback.
    First,
    /// Third-order WENO, 2 ghost layers.
    Weno3,
    /// Fifth-order WENO with Jiang–Shu weights, 3 ghost layers.
    Weno5,
    /// Fifth-order WENO-Z (Borges et al.): the tau-5 global smoothness
    /// ratio keeps fifth order at smooth critical points, where classic
    /// JS weights degrade.
    Weno5Z,
    /// Fifth-order mapped WENO (WENO-M, Henrick et al.): Jiang-Shu
    /// weights pushed through a mapping that restores the optimal weights
    /// faster near smooth extrema. MFC exposes exactly this trio
    /// (wenojs / wenom / wenoz).
    Weno5M,
}

impl WenoOrder {
    /// Ghost layers the stencil needs on each side.
    pub fn ghost_layers(self) -> usize {
        match self {
            WenoOrder::First => 1,
            WenoOrder::Weno3 => 2,
            WenoOrder::Weno5 | WenoOrder::Weno5Z | WenoOrder::Weno5M => 3,
        }
    }

    /// Approximate FLOPs per reconstructed face value (both sides),
    /// counted from the arithmetic below; feeds the roofline ledger.
    pub fn flops_per_face(self) -> f64 {
        match self {
            WenoOrder::First => 2.0,
            WenoOrder::Weno3 => 2.0 * 26.0,
            WenoOrder::Weno5 => 2.0 * 72.0,
            WenoOrder::Weno5Z => 2.0 * 78.0,
            WenoOrder::Weno5M => 2.0 * 92.0,
        }
    }
}

/// Jiang–Shu smoothness regularization.
const EPS: f64 = 1e-6;

/// Fifth-order upwind-biased value at the right face of the center cell,
/// from the five cell averages `v[0..5]` (center at `v[2]`).
#[inline(always)]
pub fn weno5_face(v: &[f64; 5]) -> f64 {
    // Candidate stencil reconstructions at x_{i+1/2}.
    let q0 = (2.0 * v[0] - 7.0 * v[1] + 11.0 * v[2]) / 6.0;
    let q1 = (-v[1] + 5.0 * v[2] + 2.0 * v[3]) / 6.0;
    let q2 = (2.0 * v[2] + 5.0 * v[3] - v[4]) / 6.0;
    // Smoothness indicators.
    let b0 = 13.0 / 12.0 * sq(v[0] - 2.0 * v[1] + v[2]) + 0.25 * sq(v[0] - 4.0 * v[1] + 3.0 * v[2]);
    let b1 = 13.0 / 12.0 * sq(v[1] - 2.0 * v[2] + v[3]) + 0.25 * sq(v[1] - v[3]);
    let b2 = 13.0 / 12.0 * sq(v[2] - 2.0 * v[3] + v[4]) + 0.25 * sq(3.0 * v[2] - 4.0 * v[3] + v[4]);
    // Nonlinear weights from the optimal linear weights (1/10, 6/10, 3/10).
    let a0 = 0.1 / sq(EPS + b0);
    let a1 = 0.6 / sq(EPS + b1);
    let a2 = 0.3 / sq(EPS + b2);
    (a0 * q0 + a1 * q1 + a2 * q2) / (a0 + a1 + a2)
}

/// WENO-Z regularization (larger than JS's to keep the tau ratio clean).
const EPS_Z: f64 = 1e-40;

/// Fifth-order WENO-Z value at the right face of the center cell.
#[inline(always)]
pub fn weno5z_face(v: &[f64; 5]) -> f64 {
    let q0 = (2.0 * v[0] - 7.0 * v[1] + 11.0 * v[2]) / 6.0;
    let q1 = (-v[1] + 5.0 * v[2] + 2.0 * v[3]) / 6.0;
    let q2 = (2.0 * v[2] + 5.0 * v[3] - v[4]) / 6.0;
    let b0 = 13.0 / 12.0 * sq(v[0] - 2.0 * v[1] + v[2]) + 0.25 * sq(v[0] - 4.0 * v[1] + 3.0 * v[2]);
    let b1 = 13.0 / 12.0 * sq(v[1] - 2.0 * v[2] + v[3]) + 0.25 * sq(v[1] - v[3]);
    let b2 = 13.0 / 12.0 * sq(v[2] - 2.0 * v[3] + v[4]) + 0.25 * sq(3.0 * v[2] - 4.0 * v[3] + v[4]);
    // Global fifth-order smoothness indicator.
    let tau5 = (b0 - b2).abs();
    let a0 = 0.1 * (1.0 + tau5 / (b0 + EPS_Z));
    let a1 = 0.6 * (1.0 + tau5 / (b1 + EPS_Z));
    let a2 = 0.3 * (1.0 + tau5 / (b2 + EPS_Z));
    (a0 * q0 + a1 * q1 + a2 * q2) / (a0 + a1 + a2)
}

/// Henrick's mapping: pulls a nonlinear weight toward its optimal value
/// `g` at fifth order, `g_k(w) = w (g + g^2 - 3 g w + w^2) / (g^2 + w (1 - 2 g))`.
#[inline(always)]
fn henrick_map(w: f64, g: f64) -> f64 {
    w * (g + g * g - 3.0 * g * w + w * w) / (g * g + w * (1.0 - 2.0 * g))
}

/// Fifth-order mapped WENO (WENO-M) value at the right face of the
/// center cell.
#[inline(always)]
pub fn weno5m_face(v: &[f64; 5]) -> f64 {
    let q0 = (2.0 * v[0] - 7.0 * v[1] + 11.0 * v[2]) / 6.0;
    let q1 = (-v[1] + 5.0 * v[2] + 2.0 * v[3]) / 6.0;
    let q2 = (2.0 * v[2] + 5.0 * v[3] - v[4]) / 6.0;
    let b0 = 13.0 / 12.0 * sq(v[0] - 2.0 * v[1] + v[2]) + 0.25 * sq(v[0] - 4.0 * v[1] + 3.0 * v[2]);
    let b1 = 13.0 / 12.0 * sq(v[1] - 2.0 * v[2] + v[3]) + 0.25 * sq(v[1] - v[3]);
    let b2 = 13.0 / 12.0 * sq(v[2] - 2.0 * v[3] + v[4]) + 0.25 * sq(3.0 * v[2] - 4.0 * v[3] + v[4]);
    // JS weights first...
    let a0 = 0.1 / sq(EPS + b0);
    let a1 = 0.6 / sq(EPS + b1);
    let a2 = 0.3 / sq(EPS + b2);
    let sum = a0 + a1 + a2;
    // ...then the Henrick map and renormalization.
    let m0 = henrick_map(a0 / sum, 0.1);
    let m1 = henrick_map(a1 / sum, 0.6);
    let m2 = henrick_map(a2 / sum, 0.3);
    (m0 * q0 + m1 * q1 + m2 * q2) / (m0 + m1 + m2)
}

/// Third-order variant from three cell averages (center at `v[1]`).
#[inline(always)]
pub fn weno3_face(v: &[f64; 3]) -> f64 {
    let q0 = (-v[0] + 3.0 * v[1]) / 2.0;
    let q1 = (v[1] + v[2]) / 2.0;
    let b0 = sq(v[1] - v[0]);
    let b1 = sq(v[2] - v[1]);
    let a0 = (1.0 / 3.0) / sq(EPS + b0);
    let a1 = (2.0 / 3.0) / sq(EPS + b1);
    (a0 * q0 + a1 * q1) / (a0 + a1)
}

#[inline(always)]
fn sq(x: f64) -> f64 {
    x * x
}

/// Reconstruct left/right states at every face of one padded line.
///
/// `v` holds `n + 2*ng` cell values (`ng = order.ghost_layers()`);
/// `left[m]`/`right[m]` receive the states on either side of face `m`
/// (between padded cells `ng-1+m` and `ng+m`) for `m in 0..=n`.
pub fn reconstruct_line(
    order: WenoOrder,
    v: &[f64],
    n: usize,
    left: &mut [f64],
    right: &mut [f64],
) {
    let ng = order.ghost_layers();
    assert_eq!(v.len(), n + 2 * ng, "padded line length mismatch");
    reconstruct_line_padded(order, v, ng, n, left, right);
}

/// [`reconstruct_line`] with an explicit pad width, which may exceed the
/// stencil's ghost requirement (a WENO5-sized line temporarily degraded to
/// WENO3 by the recovery ladder): the stencil just ignores the extra
/// layers. This is the per-pencil entry point of the fused sweep engine;
/// it runs the exact same face arithmetic as the staged field kernel.
pub fn reconstruct_line_padded(
    order: WenoOrder,
    v: &[f64],
    pad: usize,
    n: usize,
    left: &mut [f64],
    right: &mut [f64],
) {
    let ng = pad;
    assert!(
        pad >= order.ghost_layers(),
        "line pad {pad} narrower than the stencil"
    );
    assert_eq!(v.len(), n + 2 * pad, "padded line length mismatch");
    assert!(left.len() > n && right.len() > n);
    match order {
        WenoOrder::First => {
            for m in 0..=n {
                let c = ng - 1 + m;
                left[m] = v[c];
                right[m] = v[c + 1];
            }
        }
        WenoOrder::Weno3 => {
            for m in 0..=n {
                let c = ng - 1 + m; // cell left of face m
                left[m] = weno3_face(&[v[c - 1], v[c], v[c + 1]]);
                // Mirror the stencil for the right-biased state.
                right[m] = weno3_face(&[v[c + 2], v[c + 1], v[c]]);
            }
        }
        WenoOrder::Weno5 => {
            for m in 0..=n {
                let c = ng - 1 + m;
                left[m] = weno5_face(&[v[c - 2], v[c - 1], v[c], v[c + 1], v[c + 2]]);
                right[m] = weno5_face(&[v[c + 3], v[c + 2], v[c + 1], v[c], v[c - 1]]);
            }
        }
        WenoOrder::Weno5Z => {
            for m in 0..=n {
                let c = ng - 1 + m;
                left[m] = weno5z_face(&[v[c - 2], v[c - 1], v[c], v[c + 1], v[c + 2]]);
                right[m] = weno5z_face(&[v[c + 3], v[c + 2], v[c + 1], v[c], v[c - 1]]);
            }
        }
        WenoOrder::Weno5M => {
            for m in 0..=n {
                let c = ng - 1 + m;
                left[m] = weno5m_face(&[v[c - 2], v[c - 1], v[c], v[c + 1], v[c + 2]]);
                right[m] = weno5m_face(&[v[c + 3], v[c + 2], v[c + 1], v[c], v[c - 1]]);
            }
        }
    }
}

/// Field-level WENO sweep: reconstruct every variable along every line of a
/// direction-coalesced buffer.
///
/// `packed` has extents `(n + 2*ng, m2, m3, nv)`; `left`/`right` receive
/// `(n + 1, m2, m3, nv)` face states.  One ledger item = one face of one
/// variable (what a device thread computes).
pub fn reconstruct_sweep(
    ctx: &Context,
    order: WenoOrder,
    packed: &Flat4D,
    n: usize,
    left: &mut Flat4D,
    right: &mut Flat4D,
) {
    let ng = order.ghost_layers();
    let pd = packed.dims();
    // Derive the pad from the buffer so a wider-than-necessary buffer (a
    // WENO5-sized domain temporarily degraded to WENO3 by the recovery
    // ladder) reconstructs in place: the stencil just ignores the extra
    // ghost layers.
    assert!(
        pd.n1 > n && (pd.n1 - n).is_multiple_of(2),
        "packed extent {} incompatible with {n} interior cells",
        pd.n1
    );
    let pad = (pd.n1 - n) / 2;
    assert!(
        pad >= ng,
        "packed pad {pad} narrower than the {ng}-layer stencil"
    );
    let nlines = pd.n2 * pd.n3 * pd.n4;
    let fd = left.dims();
    assert_eq!((fd.n1, fd.n2, fd.n3, fd.n4), (n + 1, pd.n2, pd.n3, pd.n4));
    assert_eq!(right.dims(), left.dims());

    let cost = KernelCost::new(
        KernelClass::Weno,
        order.flops_per_face(),
        8.0 * (2 * ng + 1) as f64, // stencil footprint per face
        2.0 * 8.0,                 // left + right
    );
    let cfg = LaunchConfig::tuned("s_weno_reconstruct");
    let src = packed.as_slice();
    let lout = ParSlice::new(left.as_mut_slice());
    let rout = ParSlice::new(right.as_mut_slice());
    let ext = pd.n1;
    let nf1 = fd.n1;
    ctx.launch_par(&cfg, cost, nlines * (n + 1), |item| {
        let line = item / (n + 1);
        let m = item % (n + 1);
        let v = &src[line * ext..(line + 1) * ext];
        let (lv, rv) = face_pair(order, v, pad - 1 + m);
        lout.set(line * nf1 + m, lv);
        rout.set(line * nf1 + m, rv);
    });
}

/// Left/right reconstructed values at face `m` of a padded line, with the
/// center cell at `c = pad - 1 + m` — the single per-face arithmetic both
/// the full and region-restricted sweeps share.
#[inline(always)]
fn face_pair(order: WenoOrder, v: &[f64], c: usize) -> (f64, f64) {
    match order {
        WenoOrder::First => (v[c], v[c + 1]),
        WenoOrder::Weno3 => (
            weno3_face(&[v[c - 1], v[c], v[c + 1]]),
            weno3_face(&[v[c + 2], v[c + 1], v[c]]),
        ),
        WenoOrder::Weno5 => (
            weno5_face(&[v[c - 2], v[c - 1], v[c], v[c + 1], v[c + 2]]),
            weno5_face(&[v[c + 3], v[c + 2], v[c + 1], v[c], v[c - 1]]),
        ),
        WenoOrder::Weno5Z => (
            weno5z_face(&[v[c - 2], v[c - 1], v[c], v[c + 1], v[c + 2]]),
            weno5z_face(&[v[c + 3], v[c + 2], v[c + 1], v[c], v[c - 1]]),
        ),
        WenoOrder::Weno5M => (
            weno5m_face(&[v[c - 2], v[c - 1], v[c], v[c + 1], v[c + 2]]),
            weno5m_face(&[v[c + 3], v[c + 2], v[c + 1], v[c], v[c - 1]]),
        ),
    }
}

/// Region-restricted [`reconstruct_sweep`]: reconstruct only faces
/// `f_lo..f_lo + f_count` along the sweep axis, on the transverse line
/// window `t1_lo..t1_lo + t1_n` × `t2_lo..t2_lo + t2_n` (padded sweep
/// coordinates), for every variable. Face values land at their absolute
/// indices in `left`/`right` through the identical per-face arithmetic,
/// so the restricted faces are bitwise identical to a full sweep — the
/// overlapped stepping mode builds its interior and shell passes from
/// this.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_sweep_region(
    ctx: &Context,
    order: WenoOrder,
    packed: &Flat4D,
    n: usize,
    f_lo: usize,
    f_count: usize,
    t1_lo: usize,
    t1_n: usize,
    t2_lo: usize,
    t2_n: usize,
    left: &mut Flat4D,
    right: &mut Flat4D,
) {
    let ng = order.ghost_layers();
    let pd = packed.dims();
    assert!(
        pd.n1 > n && (pd.n1 - n).is_multiple_of(2),
        "packed extent {} incompatible with {n} interior cells",
        pd.n1
    );
    let pad = (pd.n1 - n) / 2;
    assert!(
        pad >= ng,
        "packed pad {pad} narrower than the {ng}-layer stencil"
    );
    assert!(f_lo + f_count <= n + 1, "face window outside the sweep");
    assert!(t1_lo + t1_n <= pd.n2 && t2_lo + t2_n <= pd.n3);
    let fd = left.dims();
    assert_eq!((fd.n1, fd.n2, fd.n3, fd.n4), (n + 1, pd.n2, pd.n3, pd.n4));
    assert_eq!(right.dims(), left.dims());
    if f_count == 0 || t1_n == 0 || t2_n == 0 {
        return;
    }

    let cost = KernelCost::new(
        KernelClass::Weno,
        order.flops_per_face(),
        8.0 * (2 * ng + 1) as f64,
        2.0 * 8.0,
    );
    let cfg = LaunchConfig::tuned("s_weno_reconstruct");
    let src = packed.as_slice();
    let lout = ParSlice::new(left.as_mut_slice());
    let rout = ParSlice::new(right.as_mut_slice());
    let ext = pd.n1;
    let nf1 = fd.n1;
    let rlines = t1_n * t2_n * pd.n4;
    ctx.launch_par(&cfg, cost, rlines * f_count, |item| {
        let m = f_lo + item % f_count;
        let lr = item / f_count;
        let t1i = t1_lo + lr % t1_n;
        let rest = lr / t1_n;
        let t2i = t2_lo + rest % t2_n;
        let e = rest / t2_n;
        let line = t1i + pd.n2 * (t2i + pd.n3 * e);
        let v = &src[line * ext..(line + 1) * ext];
        let (lv, rv) = face_pair(order, v, pad - 1 + m);
        lout.set(line * nf1 + m, lv);
        rout.set(line * nf1 + m, rv);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_layout::Dims4;

    /// Cell average of `f` over `[a, b]` via Simpson (plenty for tests).
    fn cell_avg(f: impl Fn(f64) -> f64, a: f64, b: f64) -> f64 {
        (f(a) + 4.0 * f(0.5 * (a + b)) + f(b)) / 6.0
    }

    fn weno_line_error(order: WenoOrder, n: usize, f: impl Fn(f64) -> f64 + Copy) -> f64 {
        let ng = order.ghost_layers();
        let h = 1.0 / n as f64;
        let v: Vec<f64> = (0..n + 2 * ng)
            .map(|i| {
                let a = (i as f64 - ng as f64) * h;
                cell_avg(f, a, a + h)
            })
            .collect();
        let mut left = vec![0.0; n + 1];
        let mut right = vec![0.0; n + 1];
        reconstruct_line(order, &v, n, &mut left, &mut right);
        // Compare to exact face values.
        (0..=n)
            .map(|m| {
                let x = m as f64 * h;
                (left[m] - f(x)).abs().max((right[m] - f(x)).abs())
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn weno5_exact_for_quadratics() {
        // Every 3-cell candidate reconstructs quadratics exactly from cell
        // averages, so the nonlinear combination is exact too.
        let err = weno_line_error(WenoOrder::Weno5, 16, |x| 3.0 * x * x - 2.0 * x + 1.0);
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn weno3_exact_for_linear() {
        let err = weno_line_error(WenoOrder::Weno3, 16, |x| 4.0 * x - 7.0);
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn weno5_converges_at_high_order() {
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let e1 = weno_line_error(WenoOrder::Weno5, 32, f);
        let e2 = weno_line_error(WenoOrder::Weno5, 64, f);
        let rate = (e1 / e2).log2();
        assert!(rate > 4.0, "observed rate {rate} (e1={e1}, e2={e2})");
    }

    #[test]
    fn weno3_converges_at_third_order() {
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let e1 = weno_line_error(WenoOrder::Weno3, 64, f);
        let e2 = weno_line_error(WenoOrder::Weno3, 128, f);
        let rate = (e1 / e2).log2();
        assert!(rate > 2.0, "observed rate {rate}");
    }

    #[test]
    fn weno5_is_essentially_non_oscillatory_at_a_step() {
        let n = 32;
        let ng = 3;
        let v: Vec<f64> = (0..n + 2 * ng)
            .map(|i| if i < (n + 2 * ng) / 2 { 1.0 } else { 0.0 })
            .collect();
        let mut left = vec![0.0; n + 1];
        let mut right = vec![0.0; n + 1];
        reconstruct_line(WenoOrder::Weno5, &v, n, &mut left, &mut right);
        for m in 0..=n {
            assert!(
                left[m] > -1e-6 && left[m] < 1.0 + 1e-6,
                "left[{m}]={}",
                left[m]
            );
            assert!(right[m] > -1e-6 && right[m] < 1.0 + 1e-6);
        }
    }

    #[test]
    fn constant_states_reconstruct_exactly() {
        for order in [
            WenoOrder::First,
            WenoOrder::Weno3,
            WenoOrder::Weno5,
            WenoOrder::Weno5Z,
            WenoOrder::Weno5M,
        ] {
            let ng = order.ghost_layers();
            let n = 8;
            let v = vec![5.5; n + 2 * ng];
            let mut l = vec![0.0; n + 1];
            let mut r = vec![0.0; n + 1];
            reconstruct_line(order, &v, n, &mut l, &mut r);
            assert!(l.iter().chain(r.iter()).all(|&x| (x - 5.5).abs() < 1e-13));
        }
    }

    #[test]
    fn wenoz_converges_at_fifth_order() {
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let e1 = weno_line_error(WenoOrder::Weno5Z, 32, f);
        let e2 = weno_line_error(WenoOrder::Weno5Z, 64, f);
        let rate = (e1 / e2).log2();
        assert!(rate > 4.3, "observed rate {rate} (e1={e1}, e2={e2})");
    }

    #[test]
    fn wenoz_beats_js_at_smooth_critical_points() {
        // f' = f'' = 0 at x = 0.5. At large amplitude the smoothness
        // indicators dwarf JS's epsilon, so its weights genuinely deviate
        // from optimal there and accuracy degrades; WENO-Z's tau-5 ratio
        // keeps the weights near-optimal. (At small amplitudes JS hides
        // behind epsilon = 1e-6 and both are fine.)
        let amp = 1.0e4;
        let f = move |x: f64| amp * (x - 0.5).powi(3) + 0.1 * amp;
        let e_js = weno_line_error(WenoOrder::Weno5, 32, f) / amp;
        let e_z = weno_line_error(WenoOrder::Weno5Z, 32, f) / amp;
        assert!(e_z < e_js * 0.8, "Z {e_z} vs JS {e_js}");
    }

    #[test]
    fn wenom_converges_at_fifth_order_and_maps_are_consistent() {
        // The Henrick map is the identity at the optimal weights.
        for g in [0.1, 0.6, 0.3] {
            assert!((henrick_map(g, g) - g).abs() < 1e-14);
        }
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let e1 = weno_line_error(WenoOrder::Weno5M, 32, f);
        let e2 = weno_line_error(WenoOrder::Weno5M, 64, f);
        let rate = (e1 / e2).log2();
        assert!(rate > 4.3, "observed rate {rate}");
    }

    #[test]
    fn wenom_is_essentially_non_oscillatory_at_a_step() {
        let n = 32;
        let ng = 3;
        let v: Vec<f64> = (0..n + 2 * ng)
            .map(|i| if i < (n + 2 * ng) / 2 { 2.0 } else { -1.0 })
            .collect();
        let mut left = vec![0.0; n + 1];
        let mut right = vec![0.0; n + 1];
        reconstruct_line(WenoOrder::Weno5M, &v, n, &mut left, &mut right);
        for m in 0..=n {
            assert!(left[m] > -1.04 && left[m] < 2.04, "left[{m}]={}", left[m]);
            assert!(right[m] > -1.04 && right[m] < 2.04);
        }
    }

    #[test]
    fn wenoz_is_essentially_non_oscillatory_at_a_step() {
        let n = 32;
        let ng = 3;
        let v: Vec<f64> = (0..n + 2 * ng)
            .map(|i| if i < (n + 2 * ng) / 2 { 1.0 } else { 0.0 })
            .collect();
        let mut left = vec![0.0; n + 1];
        let mut right = vec![0.0; n + 1];
        reconstruct_line(WenoOrder::Weno5Z, &v, n, &mut left, &mut right);
        for m in 0..=n {
            assert!(left[m] > -0.01 && left[m] < 1.01, "left[{m}]={}", left[m]);
            assert!(right[m] > -0.01 && right[m] < 1.01);
        }
    }

    #[test]
    fn sweep_kernel_matches_line_function() {
        let n = 12;
        let ng = 3;
        let dims = Dims4::new(n + 2 * ng, 3, 2, 2);
        let packed = Flat4D::from_fn(dims, |i1, i2, i3, i4| {
            ((i1 * 7 + i2 * 3 + i3 * 11 + i4 * 5) % 13) as f64 * 0.5
        });
        let fdims = Dims4::new(n + 1, 3, 2, 2);
        let mut left = Flat4D::zeros(fdims);
        let mut right = Flat4D::zeros(fdims);
        let ctx = Context::serial();
        reconstruct_sweep(&ctx, WenoOrder::Weno5, &packed, n, &mut left, &mut right);

        let mut lref = vec![0.0; n + 1];
        let mut rref = vec![0.0; n + 1];
        for i4 in 0..2 {
            for i3 in 0..2 {
                for i2 in 0..3 {
                    reconstruct_line(
                        WenoOrder::Weno5,
                        packed.line(i2, i3, i4),
                        n,
                        &mut lref,
                        &mut rref,
                    );
                    for m in 0..=n {
                        assert_eq!(left.get(m, i2, i3, i4), lref[m]);
                        assert_eq!(right.get(m, i2, i3, i4), rref[m]);
                    }
                }
            }
        }
        // Ledger saw one item per face per line.
        let stats = ctx.ledger().kernel("s_weno_reconstruct").unwrap();
        assert_eq!(stats.items as usize, (n + 1) * 3 * 2 * 2);
    }
}
