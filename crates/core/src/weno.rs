//! WENO reconstruction (Jiang–Shu), the most expensive kernel family.
//!
//! Reconstruction is componentwise on primitive variables, line-by-line
//! along the sweep direction, exactly like MFC.  The field-level kernel
//! consumes a direction-coalesced [`Flat4D`] buffer so the stencil reads
//! are unit-stride — the access pattern whose absence costs 10x (§III-C).

use mfc_acc::{Context, KernelClass, KernelCost, Lane, LaneKernel, LaunchConfig, ParSlice};
use mfc_layout::Flat4D;
use serde::{Deserialize, Serialize};

/// Reconstruction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WenoOrder {
    /// Piecewise-constant (first-order) — baseline and fallback.
    First,
    /// Third-order WENO, 2 ghost layers.
    Weno3,
    /// Fifth-order WENO with Jiang–Shu weights, 3 ghost layers.
    Weno5,
    /// Fifth-order WENO-Z (Borges et al.): the tau-5 global smoothness
    /// ratio keeps fifth order at smooth critical points, where classic
    /// JS weights degrade.
    Weno5Z,
    /// Fifth-order mapped WENO (WENO-M, Henrick et al.): Jiang-Shu
    /// weights pushed through a mapping that restores the optimal weights
    /// faster near smooth extrema. MFC exposes exactly this trio
    /// (wenojs / wenom / wenoz).
    Weno5M,
}

impl WenoOrder {
    /// Ghost layers the stencil needs on each side.
    pub fn ghost_layers(self) -> usize {
        match self {
            WenoOrder::First => 1,
            WenoOrder::Weno3 => 2,
            WenoOrder::Weno5 | WenoOrder::Weno5Z | WenoOrder::Weno5M => 3,
        }
    }

    /// Approximate FLOPs per reconstructed face value (both sides),
    /// counted from the arithmetic below; feeds the roofline ledger.
    pub fn flops_per_face(self) -> f64 {
        match self {
            WenoOrder::First => 2.0,
            WenoOrder::Weno3 => 2.0 * 26.0,
            WenoOrder::Weno5 => 2.0 * 72.0,
            WenoOrder::Weno5Z => 2.0 * 78.0,
            WenoOrder::Weno5M => 2.0 * 92.0,
        }
    }
}

/// Jiang–Shu smoothness regularization.
const EPS: f64 = 1e-6;

/// Fifth-order upwind-biased value at the right face of the center cell,
/// from the five cell averages `v[0..5]` (center at `v[2]`).
///
/// Generic over [`Lane`] — like every face function here — with scalar
/// literals broadcast via `splat` around the identical op sequence, so
/// each packed lane computes bitwise the `f64` result for its face.
#[inline(always)]
pub fn weno5_face<L: Lane>(v: &[L; 5]) -> L {
    // Candidate stencil reconstructions at x_{i+1/2}.
    let q0 = (L::splat(2.0) * v[0] - L::splat(7.0) * v[1] + L::splat(11.0) * v[2]) / L::splat(6.0);
    let q1 = (-v[1] + L::splat(5.0) * v[2] + L::splat(2.0) * v[3]) / L::splat(6.0);
    let q2 = (L::splat(2.0) * v[2] + L::splat(5.0) * v[3] - v[4]) / L::splat(6.0);
    // Smoothness indicators.
    let b0 = L::splat(13.0 / 12.0) * sq(v[0] - L::splat(2.0) * v[1] + v[2])
        + L::splat(0.25) * sq(v[0] - L::splat(4.0) * v[1] + L::splat(3.0) * v[2]);
    let b1 = L::splat(13.0 / 12.0) * sq(v[1] - L::splat(2.0) * v[2] + v[3])
        + L::splat(0.25) * sq(v[1] - v[3]);
    let b2 = L::splat(13.0 / 12.0) * sq(v[2] - L::splat(2.0) * v[3] + v[4])
        + L::splat(0.25) * sq(L::splat(3.0) * v[2] - L::splat(4.0) * v[3] + v[4]);
    // Nonlinear weights from the optimal linear weights (1/10, 6/10, 3/10).
    let a0 = L::splat(0.1) / sq(L::splat(EPS) + b0);
    let a1 = L::splat(0.6) / sq(L::splat(EPS) + b1);
    let a2 = L::splat(0.3) / sq(L::splat(EPS) + b2);
    (a0 * q0 + a1 * q1 + a2 * q2) / (a0 + a1 + a2)
}

/// WENO-Z regularization (larger than JS's to keep the tau ratio clean).
const EPS_Z: f64 = 1e-40;

/// Fifth-order WENO-Z value at the right face of the center cell.
#[inline(always)]
pub fn weno5z_face<L: Lane>(v: &[L; 5]) -> L {
    let q0 = (L::splat(2.0) * v[0] - L::splat(7.0) * v[1] + L::splat(11.0) * v[2]) / L::splat(6.0);
    let q1 = (-v[1] + L::splat(5.0) * v[2] + L::splat(2.0) * v[3]) / L::splat(6.0);
    let q2 = (L::splat(2.0) * v[2] + L::splat(5.0) * v[3] - v[4]) / L::splat(6.0);
    let b0 = L::splat(13.0 / 12.0) * sq(v[0] - L::splat(2.0) * v[1] + v[2])
        + L::splat(0.25) * sq(v[0] - L::splat(4.0) * v[1] + L::splat(3.0) * v[2]);
    let b1 = L::splat(13.0 / 12.0) * sq(v[1] - L::splat(2.0) * v[2] + v[3])
        + L::splat(0.25) * sq(v[1] - v[3]);
    let b2 = L::splat(13.0 / 12.0) * sq(v[2] - L::splat(2.0) * v[3] + v[4])
        + L::splat(0.25) * sq(L::splat(3.0) * v[2] - L::splat(4.0) * v[3] + v[4]);
    // Global fifth-order smoothness indicator.
    let tau5 = (b0 - b2).abs();
    let a0 = L::splat(0.1) * (L::splat(1.0) + tau5 / (b0 + L::splat(EPS_Z)));
    let a1 = L::splat(0.6) * (L::splat(1.0) + tau5 / (b1 + L::splat(EPS_Z)));
    let a2 = L::splat(0.3) * (L::splat(1.0) + tau5 / (b2 + L::splat(EPS_Z)));
    (a0 * q0 + a1 * q1 + a2 * q2) / (a0 + a1 + a2)
}

/// Henrick's mapping: pulls a nonlinear weight toward its optimal value
/// `g` at fifth order, `g_k(w) = w (g + g^2 - 3 g w + w^2) / (g^2 + w (1 - 2 g))`.
#[inline(always)]
fn henrick_map<L: Lane>(w: L, g: f64) -> L {
    // The scalar-only subexpressions (`g + g*g`, `3g`, `g*g`, `1 - 2g`)
    // are splat after evaluation: float ops on the scalar constant are
    // deterministic, so this matches the inline scalar evaluation order.
    w * (L::splat(g + g * g) - L::splat(3.0 * g) * w + w * w)
        / (L::splat(g * g) + w * L::splat(1.0 - 2.0 * g))
}

/// Fifth-order mapped WENO (WENO-M) value at the right face of the
/// center cell.
#[inline(always)]
pub fn weno5m_face<L: Lane>(v: &[L; 5]) -> L {
    let q0 = (L::splat(2.0) * v[0] - L::splat(7.0) * v[1] + L::splat(11.0) * v[2]) / L::splat(6.0);
    let q1 = (-v[1] + L::splat(5.0) * v[2] + L::splat(2.0) * v[3]) / L::splat(6.0);
    let q2 = (L::splat(2.0) * v[2] + L::splat(5.0) * v[3] - v[4]) / L::splat(6.0);
    let b0 = L::splat(13.0 / 12.0) * sq(v[0] - L::splat(2.0) * v[1] + v[2])
        + L::splat(0.25) * sq(v[0] - L::splat(4.0) * v[1] + L::splat(3.0) * v[2]);
    let b1 = L::splat(13.0 / 12.0) * sq(v[1] - L::splat(2.0) * v[2] + v[3])
        + L::splat(0.25) * sq(v[1] - v[3]);
    let b2 = L::splat(13.0 / 12.0) * sq(v[2] - L::splat(2.0) * v[3] + v[4])
        + L::splat(0.25) * sq(L::splat(3.0) * v[2] - L::splat(4.0) * v[3] + v[4]);
    // JS weights first...
    let a0 = L::splat(0.1) / sq(L::splat(EPS) + b0);
    let a1 = L::splat(0.6) / sq(L::splat(EPS) + b1);
    let a2 = L::splat(0.3) / sq(L::splat(EPS) + b2);
    let sum = a0 + a1 + a2;
    // ...then the Henrick map and renormalization.
    let m0 = henrick_map(a0 / sum, 0.1);
    let m1 = henrick_map(a1 / sum, 0.6);
    let m2 = henrick_map(a2 / sum, 0.3);
    (m0 * q0 + m1 * q1 + m2 * q2) / (m0 + m1 + m2)
}

/// Third-order variant from three cell averages (center at `v[1]`).
#[inline(always)]
pub fn weno3_face<L: Lane>(v: &[L; 3]) -> L {
    let q0 = (-v[0] + L::splat(3.0) * v[1]) / L::splat(2.0);
    let q1 = (v[1] + v[2]) / L::splat(2.0);
    let b0 = sq(v[1] - v[0]);
    let b1 = sq(v[2] - v[1]);
    let a0 = L::splat(1.0 / 3.0) / sq(L::splat(EPS) + b0);
    let a1 = L::splat(2.0 / 3.0) / sq(L::splat(EPS) + b1);
    (a0 * q0 + a1 * q1) / (a0 + a1)
}

#[inline(always)]
fn sq<L: Lane>(x: L) -> L {
    x * x
}

/// Reconstruct left/right states at every face of one padded line.
///
/// `v` holds `n + 2*ng` cell values (`ng = order.ghost_layers()`);
/// `left[m]`/`right[m]` receive the states on either side of face `m`
/// (between padded cells `ng-1+m` and `ng+m`) for `m in 0..=n`.
pub fn reconstruct_line(
    order: WenoOrder,
    v: &[f64],
    n: usize,
    left: &mut [f64],
    right: &mut [f64],
) {
    let ng = order.ghost_layers();
    assert_eq!(v.len(), n + 2 * ng, "padded line length mismatch");
    reconstruct_line_padded(order, v, ng, n, left, right);
}

/// [`reconstruct_line`] with an explicit pad width, which may exceed the
/// stencil's ghost requirement (a WENO5-sized line temporarily degraded to
/// WENO3 by the recovery ladder): the stencil just ignores the extra
/// layers. This is the per-pencil entry point of the fused sweep engine;
/// it runs the exact same face arithmetic as the staged field kernel.
pub fn reconstruct_line_padded(
    order: WenoOrder,
    v: &[f64],
    pad: usize,
    n: usize,
    left: &mut [f64],
    right: &mut [f64],
) {
    assert!(
        pad >= order.ghost_layers(),
        "line pad {pad} narrower than the stencil"
    );
    assert_eq!(v.len(), n + 2 * pad, "padded line length mismatch");
    assert!(left.len() > n && right.len() > n);
    for m in 0..=n {
        let (lv, rv) = face_pair::<f64>(order, v, pad - 1 + m);
        left[m] = lv;
        right[m] = rv;
    }
}

/// Lane-packed [`reconstruct_line_padded`]: reconstruct the `n + 1` faces
/// as full `L::WIDTH` packets followed by a scalar tail, returning
/// `(full_packets, tail_faces)` for the caller's lane-tiling counters.
///
/// Each packet performs, lane for lane, the scalar face arithmetic, and
/// the tail *is* the scalar path — so the outputs are bitwise identical
/// to [`reconstruct_line_padded`] at every width.
pub fn reconstruct_line_padded_vec<L: Lane>(
    order: WenoOrder,
    v: &[f64],
    pad: usize,
    n: usize,
    left: &mut [f64],
    right: &mut [f64],
) -> (usize, usize) {
    assert!(
        pad >= order.ghost_layers(),
        "line pad {pad} narrower than the stencil"
    );
    assert_eq!(v.len(), n + 2 * pad, "padded line length mismatch");
    assert!(left.len() > n && right.len() > n);
    let nfaces = n + 1;
    let packets = nfaces / L::WIDTH;
    for p in 0..packets {
        let m = p * L::WIDTH;
        let (lv, rv) = face_pair::<L>(order, v, pad - 1 + m);
        lv.store(&mut left[m..]);
        rv.store(&mut right[m..]);
    }
    for m in packets * L::WIDTH..nfaces {
        let (lv, rv) = face_pair::<f64>(order, v, pad - 1 + m);
        left[m] = lv;
        right[m] = rv;
    }
    (packets, nfaces % L::WIDTH)
}

/// Field-level WENO sweep: reconstruct every variable along every line of a
/// direction-coalesced buffer.
///
/// `packed` has extents `(n + 2*ng, m2, m3, nv)`; `left`/`right` receive
/// `(n + 1, m2, m3, nv)` face states.  One ledger item = one face of one
/// variable (what a device thread computes).
pub fn reconstruct_sweep(
    ctx: &Context,
    order: WenoOrder,
    packed: &Flat4D,
    n: usize,
    left: &mut Flat4D,
    right: &mut Flat4D,
) {
    let ng = order.ghost_layers();
    let pd = packed.dims();
    // Derive the pad from the buffer so a wider-than-necessary buffer (a
    // WENO5-sized domain temporarily degraded to WENO3 by the recovery
    // ladder) reconstructs in place: the stencil just ignores the extra
    // ghost layers.
    assert!(
        pd.n1 > n && (pd.n1 - n).is_multiple_of(2),
        "packed extent {} incompatible with {n} interior cells",
        pd.n1
    );
    let pad = (pd.n1 - n) / 2;
    assert!(
        pad >= ng,
        "packed pad {pad} narrower than the {ng}-layer stencil"
    );
    let nlines = pd.n2 * pd.n3 * pd.n4;
    let fd = left.dims();
    assert_eq!((fd.n1, fd.n2, fd.n3, fd.n4), (n + 1, pd.n2, pd.n3, pd.n4));
    assert_eq!(right.dims(), left.dims());

    let cost = KernelCost::new(
        KernelClass::Weno,
        order.flops_per_face(),
        8.0 * (2 * ng + 1) as f64, // stencil footprint per face
        2.0 * 8.0,                 // left + right
    );
    let cfg = LaunchConfig::tuned("s_weno_reconstruct");
    // Lane-tiled launch: one row per line, lanes packed along the face
    // index (the unit-stride direction of the coalesced buffer), exactly
    // the `vector`-level mapping of the paper's gang/vector kernels. Item
    // count and ordering match the scalar launch, so the ledger is
    // unchanged and the outputs are bitwise identical at every width.
    let kernel = WenoSweepKernel {
        order,
        src: packed.as_slice(),
        lout: ParSlice::new(left.as_mut_slice()),
        rout: ParSlice::new(right.as_mut_slice()),
        ext: pd.n1,
        nf1: fd.n1,
        pad,
    };
    ctx.launch_vec(&cfg, cost, nlines, n + 1, &kernel);
}

/// Lane kernel of [`reconstruct_sweep`]: row = line, col = face index.
struct WenoSweepKernel<'a> {
    order: WenoOrder,
    src: &'a [f64],
    lout: ParSlice<'a>,
    rout: ParSlice<'a>,
    /// Padded line extent of `src`.
    ext: usize,
    /// Face-line extent of the outputs.
    nf1: usize,
    pad: usize,
}

impl LaneKernel for WenoSweepKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, line: usize, m: usize) {
        let v = &self.src[line * self.ext..(line + 1) * self.ext];
        let (lv, rv) = face_pair::<L>(self.order, v, self.pad - 1 + m);
        self.lout.set_lanes(line * self.nf1 + m, lv);
        self.rout.set_lanes(line * self.nf1 + m, rv);
    }
}

/// Left/right reconstructed values at face `m` of a padded line, with the
/// center cell at `c = pad - 1 + m` — the single per-face arithmetic both
/// the full and region-restricted sweeps share.
///
/// At a packed width each stencil slot becomes one unit-stride lane load
/// at its offset from `c`, so lane `i` sees exactly the scalar stencil of
/// face `m + i`. The furthest slots are `c - 2` and `c + 3` (WENO5), which
/// stay inside the `pad >= ghost_layers()` padding for every full packet
/// the sweeps tile (`m + WIDTH - 1 <= n`).
#[inline(always)]
fn face_pair<L: Lane>(order: WenoOrder, v: &[f64], c: usize) -> (L, L) {
    let at = |d: isize| L::load(&v[(c as isize + d) as usize..]);
    match order {
        WenoOrder::First => (at(0), at(1)),
        WenoOrder::Weno3 => (
            weno3_face(&[at(-1), at(0), at(1)]),
            weno3_face(&[at(2), at(1), at(0)]),
        ),
        WenoOrder::Weno5 => (
            weno5_face(&[at(-2), at(-1), at(0), at(1), at(2)]),
            weno5_face(&[at(3), at(2), at(1), at(0), at(-1)]),
        ),
        WenoOrder::Weno5Z => (
            weno5z_face(&[at(-2), at(-1), at(0), at(1), at(2)]),
            weno5z_face(&[at(3), at(2), at(1), at(0), at(-1)]),
        ),
        WenoOrder::Weno5M => (
            weno5m_face(&[at(-2), at(-1), at(0), at(1), at(2)]),
            weno5m_face(&[at(3), at(2), at(1), at(0), at(-1)]),
        ),
    }
}

/// Region-restricted [`reconstruct_sweep`]: reconstruct only faces
/// `f_lo..f_lo + f_count` along the sweep axis, on the transverse line
/// window `t1_lo..t1_lo + t1_n` × `t2_lo..t2_lo + t2_n` (padded sweep
/// coordinates), for every variable. Face values land at their absolute
/// indices in `left`/`right` through the identical per-face arithmetic,
/// so the restricted faces are bitwise identical to a full sweep — the
/// overlapped stepping mode builds its interior and shell passes from
/// this.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_sweep_region(
    ctx: &Context,
    order: WenoOrder,
    packed: &Flat4D,
    n: usize,
    f_lo: usize,
    f_count: usize,
    t1_lo: usize,
    t1_n: usize,
    t2_lo: usize,
    t2_n: usize,
    left: &mut Flat4D,
    right: &mut Flat4D,
) {
    let ng = order.ghost_layers();
    let pd = packed.dims();
    assert!(
        pd.n1 > n && (pd.n1 - n).is_multiple_of(2),
        "packed extent {} incompatible with {n} interior cells",
        pd.n1
    );
    let pad = (pd.n1 - n) / 2;
    assert!(
        pad >= ng,
        "packed pad {pad} narrower than the {ng}-layer stencil"
    );
    assert!(f_lo + f_count <= n + 1, "face window outside the sweep");
    assert!(t1_lo + t1_n <= pd.n2 && t2_lo + t2_n <= pd.n3);
    let fd = left.dims();
    assert_eq!((fd.n1, fd.n2, fd.n3, fd.n4), (n + 1, pd.n2, pd.n3, pd.n4));
    assert_eq!(right.dims(), left.dims());
    if f_count == 0 || t1_n == 0 || t2_n == 0 {
        return;
    }

    let cost = KernelCost::new(
        KernelClass::Weno,
        order.flops_per_face(),
        8.0 * (2 * ng + 1) as f64,
        2.0 * 8.0,
    );
    let cfg = LaunchConfig::tuned("s_weno_reconstruct");
    let rlines = t1_n * t2_n * pd.n4;
    // Same lane mapping as the full sweep: rows are restricted lines,
    // lanes pack along the face window, packets never leave it.
    let kernel = WenoRegionKernel {
        order,
        src: packed.as_slice(),
        lout: ParSlice::new(left.as_mut_slice()),
        rout: ParSlice::new(right.as_mut_slice()),
        ext: pd.n1,
        nf1: fd.n1,
        pad,
        f_lo,
        t1_lo,
        t1_n,
        t2_lo,
        t2_n,
        n2: pd.n2,
        n3: pd.n3,
    };
    ctx.launch_vec(&cfg, cost, rlines, f_count, &kernel);
}

/// Lane kernel of [`reconstruct_sweep_region`]: row = restricted line
/// index, col = offset into the face window.
struct WenoRegionKernel<'a> {
    order: WenoOrder,
    src: &'a [f64],
    lout: ParSlice<'a>,
    rout: ParSlice<'a>,
    ext: usize,
    nf1: usize,
    pad: usize,
    f_lo: usize,
    t1_lo: usize,
    t1_n: usize,
    t2_lo: usize,
    t2_n: usize,
    n2: usize,
    n3: usize,
}

impl LaneKernel for WenoRegionKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, lr: usize, col: usize) {
        let m = self.f_lo + col;
        let t1i = self.t1_lo + lr % self.t1_n;
        let rest = lr / self.t1_n;
        let t2i = self.t2_lo + rest % self.t2_n;
        let e = rest / self.t2_n;
        let line = t1i + self.n2 * (t2i + self.n3 * e);
        let v = &self.src[line * self.ext..(line + 1) * self.ext];
        let (lv, rv) = face_pair::<L>(self.order, v, self.pad - 1 + m);
        self.lout.set_lanes(line * self.nf1 + m, lv);
        self.rout.set_lanes(line * self.nf1 + m, rv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfc_layout::Dims4;

    /// Cell average of `f` over `[a, b]` via Simpson (plenty for tests).
    fn cell_avg(f: impl Fn(f64) -> f64, a: f64, b: f64) -> f64 {
        (f(a) + 4.0 * f(0.5 * (a + b)) + f(b)) / 6.0
    }

    fn weno_line_error(order: WenoOrder, n: usize, f: impl Fn(f64) -> f64 + Copy) -> f64 {
        let ng = order.ghost_layers();
        let h = 1.0 / n as f64;
        let v: Vec<f64> = (0..n + 2 * ng)
            .map(|i| {
                let a = (i as f64 - ng as f64) * h;
                cell_avg(f, a, a + h)
            })
            .collect();
        let mut left = vec![0.0; n + 1];
        let mut right = vec![0.0; n + 1];
        reconstruct_line(order, &v, n, &mut left, &mut right);
        // Compare to exact face values.
        (0..=n)
            .map(|m| {
                let x = m as f64 * h;
                (left[m] - f(x)).abs().max((right[m] - f(x)).abs())
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn weno5_exact_for_quadratics() {
        // Every 3-cell candidate reconstructs quadratics exactly from cell
        // averages, so the nonlinear combination is exact too.
        let err = weno_line_error(WenoOrder::Weno5, 16, |x| 3.0 * x * x - 2.0 * x + 1.0);
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn weno3_exact_for_linear() {
        let err = weno_line_error(WenoOrder::Weno3, 16, |x| 4.0 * x - 7.0);
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn weno5_converges_at_high_order() {
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let e1 = weno_line_error(WenoOrder::Weno5, 32, f);
        let e2 = weno_line_error(WenoOrder::Weno5, 64, f);
        let rate = (e1 / e2).log2();
        assert!(rate > 4.0, "observed rate {rate} (e1={e1}, e2={e2})");
    }

    #[test]
    fn weno3_converges_at_third_order() {
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let e1 = weno_line_error(WenoOrder::Weno3, 64, f);
        let e2 = weno_line_error(WenoOrder::Weno3, 128, f);
        let rate = (e1 / e2).log2();
        assert!(rate > 2.0, "observed rate {rate}");
    }

    #[test]
    fn weno5_is_essentially_non_oscillatory_at_a_step() {
        let n = 32;
        let ng = 3;
        let v: Vec<f64> = (0..n + 2 * ng)
            .map(|i| if i < (n + 2 * ng) / 2 { 1.0 } else { 0.0 })
            .collect();
        let mut left = vec![0.0; n + 1];
        let mut right = vec![0.0; n + 1];
        reconstruct_line(WenoOrder::Weno5, &v, n, &mut left, &mut right);
        for m in 0..=n {
            assert!(
                left[m] > -1e-6 && left[m] < 1.0 + 1e-6,
                "left[{m}]={}",
                left[m]
            );
            assert!(right[m] > -1e-6 && right[m] < 1.0 + 1e-6);
        }
    }

    #[test]
    fn constant_states_reconstruct_exactly() {
        for order in [
            WenoOrder::First,
            WenoOrder::Weno3,
            WenoOrder::Weno5,
            WenoOrder::Weno5Z,
            WenoOrder::Weno5M,
        ] {
            let ng = order.ghost_layers();
            let n = 8;
            let v = vec![5.5; n + 2 * ng];
            let mut l = vec![0.0; n + 1];
            let mut r = vec![0.0; n + 1];
            reconstruct_line(order, &v, n, &mut l, &mut r);
            assert!(l.iter().chain(r.iter()).all(|&x| (x - 5.5).abs() < 1e-13));
        }
    }

    #[test]
    fn wenoz_converges_at_fifth_order() {
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let e1 = weno_line_error(WenoOrder::Weno5Z, 32, f);
        let e2 = weno_line_error(WenoOrder::Weno5Z, 64, f);
        let rate = (e1 / e2).log2();
        assert!(rate > 4.3, "observed rate {rate} (e1={e1}, e2={e2})");
    }

    #[test]
    fn wenoz_beats_js_at_smooth_critical_points() {
        // f' = f'' = 0 at x = 0.5. At large amplitude the smoothness
        // indicators dwarf JS's epsilon, so its weights genuinely deviate
        // from optimal there and accuracy degrades; WENO-Z's tau-5 ratio
        // keeps the weights near-optimal. (At small amplitudes JS hides
        // behind epsilon = 1e-6 and both are fine.)
        let amp = 1.0e4;
        let f = move |x: f64| amp * (x - 0.5).powi(3) + 0.1 * amp;
        let e_js = weno_line_error(WenoOrder::Weno5, 32, f) / amp;
        let e_z = weno_line_error(WenoOrder::Weno5Z, 32, f) / amp;
        assert!(e_z < e_js * 0.8, "Z {e_z} vs JS {e_js}");
    }

    #[test]
    fn wenom_converges_at_fifth_order_and_maps_are_consistent() {
        // The Henrick map is the identity at the optimal weights.
        for g in [0.1, 0.6, 0.3] {
            assert!((henrick_map(g, g) - g).abs() < 1e-14);
        }
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let e1 = weno_line_error(WenoOrder::Weno5M, 32, f);
        let e2 = weno_line_error(WenoOrder::Weno5M, 64, f);
        let rate = (e1 / e2).log2();
        assert!(rate > 4.3, "observed rate {rate}");
    }

    #[test]
    fn wenom_is_essentially_non_oscillatory_at_a_step() {
        let n = 32;
        let ng = 3;
        let v: Vec<f64> = (0..n + 2 * ng)
            .map(|i| if i < (n + 2 * ng) / 2 { 2.0 } else { -1.0 })
            .collect();
        let mut left = vec![0.0; n + 1];
        let mut right = vec![0.0; n + 1];
        reconstruct_line(WenoOrder::Weno5M, &v, n, &mut left, &mut right);
        for m in 0..=n {
            assert!(left[m] > -1.04 && left[m] < 2.04, "left[{m}]={}", left[m]);
            assert!(right[m] > -1.04 && right[m] < 2.04);
        }
    }

    #[test]
    fn wenoz_is_essentially_non_oscillatory_at_a_step() {
        let n = 32;
        let ng = 3;
        let v: Vec<f64> = (0..n + 2 * ng)
            .map(|i| if i < (n + 2 * ng) / 2 { 1.0 } else { 0.0 })
            .collect();
        let mut left = vec![0.0; n + 1];
        let mut right = vec![0.0; n + 1];
        reconstruct_line(WenoOrder::Weno5Z, &v, n, &mut left, &mut right);
        for m in 0..=n {
            assert!(left[m] > -0.01 && left[m] < 1.01, "left[{m}]={}", left[m]);
            assert!(right[m] > -0.01 && right[m] < 1.01);
        }
    }

    #[test]
    fn sweep_kernel_matches_line_function() {
        let n = 12;
        let ng = 3;
        let dims = Dims4::new(n + 2 * ng, 3, 2, 2);
        let packed = Flat4D::from_fn(dims, |i1, i2, i3, i4| {
            ((i1 * 7 + i2 * 3 + i3 * 11 + i4 * 5) % 13) as f64 * 0.5
        });
        let fdims = Dims4::new(n + 1, 3, 2, 2);
        let mut left = Flat4D::zeros(fdims);
        let mut right = Flat4D::zeros(fdims);
        let ctx = Context::serial();
        reconstruct_sweep(&ctx, WenoOrder::Weno5, &packed, n, &mut left, &mut right);

        let mut lref = vec![0.0; n + 1];
        let mut rref = vec![0.0; n + 1];
        for i4 in 0..2 {
            for i3 in 0..2 {
                for i2 in 0..3 {
                    reconstruct_line(
                        WenoOrder::Weno5,
                        packed.line(i2, i3, i4),
                        n,
                        &mut lref,
                        &mut rref,
                    );
                    for m in 0..=n {
                        assert_eq!(left.get(m, i2, i3, i4), lref[m]);
                        assert_eq!(right.get(m, i2, i3, i4), rref[m]);
                    }
                }
            }
        }
        // Ledger saw one item per face per line.
        let stats = ctx.ledger().kernel("s_weno_reconstruct").unwrap();
        assert_eq!(stats.items as usize, (n + 1) * 3 * 2 * 2);
    }
}
