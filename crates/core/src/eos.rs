//! Conservative ↔ primitive conversion for single cells.
//!
//! These are the per-cell bodies of MFC's `s_convert_*` kernels; the
//! sweep-level kernels in [`crate::state`] call them for every cell.

use mfc_acc::Lane;

use crate::eqidx::EqIdx;
use crate::fluid::{Fluid, MixtureRules};

/// Maximum number of fluids supported without heap allocation in kernels.
///
/// MFC's common two-phase problems have `nf` of O(1) (§III-C); a fixed
/// upper bound is exactly the "compile-time-sized private array" the
/// paper's §III-D optimization needs.
pub const MAX_FLUIDS: usize = 8;

/// Convert one cell's conservative vector to primitives, in place layouts
/// per [`EqIdx`].
///
/// Returns the mixture density (handy for callers that need it anyway).
///
/// Generic over [`Lane`]: at `L = f64` this is the scalar original; at a
/// packed width each lane performs exactly the same operation sequence on
/// its own cell, so lane `i` of the packed result is bitwise the scalar
/// result for cell `i`.
#[inline]
pub fn cons_to_prim<L: Lane>(eq: &EqIdx, fluids: &[Fluid], cons: &[L], prim: &mut [L]) -> L {
    debug_assert_eq!(cons.len(), eq.neq());
    debug_assert_eq!(prim.len(), eq.neq());
    debug_assert!(fluids.len() <= MAX_FLUIDS);

    // Partial densities are floored at zero: high-order reconstruction can
    // drive a vanishing phase's alpha*rho slightly negative at diffuse
    // interfaces (MFC bounds the same way with its `sgm_eps` floor).
    let mut rho = L::splat(0.0);
    for i in 0..eq.nf() {
        let ar = cons[eq.cont(i)].max(L::splat(0.0));
        prim[eq.cont(i)] = ar;
        rho = rho + ar;
    }
    // A non-positive mixture density is *not* asserted here: IEEE division
    // keeps the conversion well-defined (producing inf/NaN primitives) and
    // the health scan reports the offending cell so the recovery ladder can
    // retry the step instead of the process aborting.

    let mut kinetic = L::splat(0.0);
    for d in 0..eq.ndim() {
        let u = cons[eq.mom(d)] / rho;
        prim[eq.mom(d)] = u;
        kinetic = kinetic + L::splat(0.5) * rho * u * u;
    }

    let mut alphas = [L::splat(0.0); MAX_FLUIDS];
    eq.alphas(cons, &mut alphas[..eq.nf()]);
    for i in 0..eq.n_adv() {
        prim[eq.adv(i)] = cons[eq.adv(i)];
    }

    let mix = MixtureRules::evaluate(fluids, &alphas[..eq.nf()]);
    prim[eq.energy()] = mix.pressure(cons[eq.energy()] - kinetic);
    rho
}

/// Convert one cell's primitive vector to conservatives.
#[inline]
pub fn prim_to_cons<L: Lane>(eq: &EqIdx, fluids: &[Fluid], prim: &[L], cons: &mut [L]) {
    debug_assert_eq!(cons.len(), eq.neq());
    debug_assert_eq!(prim.len(), eq.neq());

    let mut rho = L::splat(0.0);
    for i in 0..eq.nf() {
        let ar = prim[eq.cont(i)];
        cons[eq.cont(i)] = ar;
        rho = rho + ar;
    }

    let mut kinetic = L::splat(0.0);
    for d in 0..eq.ndim() {
        let u = prim[eq.mom(d)];
        cons[eq.mom(d)] = rho * u;
        kinetic = kinetic + L::splat(0.5) * rho * u * u;
    }

    let mut alphas = [L::splat(0.0); MAX_FLUIDS];
    eq.alphas(prim, &mut alphas[..eq.nf()]);
    for i in 0..eq.n_adv() {
        cons[eq.adv(i)] = prim[eq.adv(i)];
    }

    let mix = MixtureRules::evaluate(fluids, &alphas[..eq.nf()]);
    cons[eq.energy()] = mix.internal_energy(prim[eq.energy()]) + kinetic;
}

/// Mixture density, pressure, and frozen sound speed of a primitive cell.
#[inline]
pub fn sound_speed<L: Lane>(eq: &EqIdx, fluids: &[Fluid], prim: &[L]) -> (L, L, L) {
    let mut rho = L::splat(0.0);
    for i in 0..eq.nf() {
        rho = rho + prim[eq.cont(i)];
    }
    let p = prim[eq.energy()];
    let mut alphas = [L::splat(0.0); MAX_FLUIDS];
    eq.alphas(prim, &mut alphas[..eq.nf()]);
    let mix = MixtureRules::evaluate(fluids, &alphas[..eq.nf()]);
    (rho, p, mix.sound_speed(rho, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_prim(eq: &EqIdx) -> Vec<f64> {
        let mut p = vec![0.0; eq.neq()];
        for i in 0..eq.nf() {
            p[eq.cont(i)] = 0.5 + i as f64 * 0.3;
        }
        for d in 0..eq.ndim() {
            p[eq.mom(d)] = 10.0 * (d as f64 + 1.0);
        }
        p[eq.energy()] = 1.0e5;
        for i in 0..eq.n_adv() {
            p[eq.adv(i)] = 0.8 / eq.nf() as f64;
        }
        p
    }

    #[test]
    fn round_trip_all_layouts() {
        for (nf, fluids) in [
            (1usize, vec![Fluid::air()]),
            (2, vec![Fluid::air(), Fluid::water()]),
            (3, vec![Fluid::air(), Fluid::water(), Fluid::new(1.6, 1e5)]),
        ] {
            for ndim in 1..=3 {
                let eq = EqIdx::new(nf, ndim);
                let prim = sample_prim(&eq);
                let mut cons = vec![0.0; eq.neq()];
                let mut back = vec![0.0; eq.neq()];
                prim_to_cons(&eq, &fluids, &prim, &mut cons);
                cons_to_prim(&eq, &fluids, &cons, &mut back);
                for (a, b) in prim.iter().zip(&back) {
                    assert!(
                        (a - b).abs() < 1e-9 * a.abs().max(1.0),
                        "nf={nf} ndim={ndim}: {prim:?} -> {back:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn energy_matches_manual_single_fluid() {
        // Euler: rho E = p/(gamma-1) + 1/2 rho u^2
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let prim = [1.2, 30.0, 1.0e5];
        let mut cons = [0.0; 3];
        prim_to_cons(&eq, &fluids, &prim, &mut cons);
        let want = 1.0e5 / 0.4 + 0.5 * 1.2 * 900.0;
        assert!((cons[eq.energy()] - want).abs() < 1e-6);
        assert!((cons[eq.mom(0)] - 36.0).abs() < 1e-12);
    }

    #[test]
    fn cons_to_prim_returns_density() {
        let eq = EqIdx::new(2, 2);
        let fluids = [Fluid::air(), Fluid::water()];
        let prim = sample_prim(&eq);
        let mut cons = vec![0.0; eq.neq()];
        prim_to_cons(&eq, &fluids, &prim, &mut cons);
        let mut back = vec![0.0; eq.neq()];
        let rho = cons_to_prim(&eq, &fluids, &cons, &mut back);
        assert!((rho - (prim[0] + prim[1])).abs() < 1e-12);
    }

    #[test]
    fn sound_speed_positive_and_sane() {
        let eq = EqIdx::new(2, 1);
        let fluids = [Fluid::air(), Fluid::water()];
        let mut prim = vec![0.0; eq.neq()];
        prim[eq.cont(0)] = 1.2 * 0.999;
        prim[eq.cont(1)] = 1000.0 * 0.001;
        prim[eq.mom(0)] = 0.0;
        prim[eq.energy()] = 1.0e5;
        prim[eq.adv(0)] = 0.999; // mostly air
        let (rho, p, c) = sound_speed(&eq, &fluids, &prim);
        assert!(rho > 1.0 && rho < 3.0);
        assert_eq!(p, 1.0e5);
        assert!(c > 200.0 && c < 500.0, "c = {c}");
    }
}
