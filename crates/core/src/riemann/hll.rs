//! HLL two-wave solver — baseline that smears contacts.
//!
//! Because the contact wave is averaged away, the partial densities
//! diffuse while the upwinded volume fractions do not, so the mixture EOS
//! coefficients decouple from the densities at material interfaces.  This
//! is the classic reason diffuse-interface codes use HLLC (restoring the
//! contact) rather than HLL: treat this solver as a single-fluid baseline
//! for accuracy comparisons, not a production multiphase solver.

use crate::domain::MAX_EQ;
use crate::eos::prim_to_cons;
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use mfc_acc::Lane;

use super::{face_state, physical_flux};

/// Compute the HLL flux across one face; returns the HLLC-style contact
/// speed estimate (for the alpha source, kept consistent across solvers).
///
/// Select form over [`Lane`] like [`super::hllc::hllc_flux`]: all wave
/// patterns are fully evaluated and bit-selected in the scalar solver's
/// priority order, so the `L = f64` instantiation is bitwise the branchy
/// original and packed lanes match it per face.
#[inline]
pub fn hll_flux<L: Lane>(
    eq: &EqIdx,
    fluids: &[Fluid],
    axis: usize,
    priml: &[L],
    primr: &[L],
    flux: &mut [L],
) -> L {
    let neq = eq.neq();
    let l = face_state(eq, fluids, priml, axis);
    let r = face_state(eq, fluids, primr, axis);
    let sl = (l.un - l.c).min(r.un - r.c);
    let sr = (l.un + l.c).max(r.un + r.c);
    let denom = l.rho * (sl - l.un) - r.rho * (sr - r.un);
    let s_star = L::select(
        denom.abs().lt(L::splat(1e-300)),
        L::splat(0.5) * (l.un + r.un),
        (r.p - l.p + l.rho * l.un * (sl - l.un) - r.rho * r.un * (sr - r.un)) / denom,
    );

    let mut fl = [L::splat(0.0); MAX_EQ];
    let mut fr = [L::splat(0.0); MAX_EQ];
    physical_flux(eq, fluids, priml, axis, &mut fl[..neq]);
    physical_flux(eq, fluids, primr, axis, &mut fr[..neq]);
    let mut ql = [L::splat(0.0); MAX_EQ];
    let mut qr = [L::splat(0.0); MAX_EQ];
    prim_to_cons(eq, fluids, priml, &mut ql[..neq]);
    prim_to_cons(eq, fluids, primr, &mut qr[..neq]);

    let mut sub = [L::splat(0.0); MAX_EQ];
    let inv = L::splat(1.0) / (sr - sl);
    for (e, s) in sub.iter_mut().enumerate().take(neq) {
        *s = (sr * fl[e] - sl * fr[e] + sl * sr * (qr[e] - ql[e])) * inv;
    }
    // Volume fractions are material invariants (see the HLLC module): the
    // HLL average treats them like conserved densities, which couples
    // alpha to the acoustic waves and destabilizes the alpha*div(u)
    // closure. Upwind them by the contact estimate instead.
    let side = s_star.ge(L::splat(0.0));
    for i in 0..eq.n_adv() {
        let e = eq.adv(i);
        sub[e] = L::select(side, priml[e], primr[e]) * s_star;
    }

    let sup_l = sl.ge(L::splat(0.0));
    let sup_r = sr.le(L::splat(0.0));
    for e in 0..neq {
        flux[e] = L::select(sup_l, fl[e], L::select(sup_r, fr[e], sub[e]));
    }
    s_star
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::riemann::hllc::hllc_flux;

    #[test]
    fn hll_smears_contacts_more_than_hllc() {
        // Isolated contact: HLLC flux equals upwind flux, HLL adds
        // diffusion proportional to the density jump.
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let priml = [1.0, 20.0, 1.0e5];
        let primr = [0.1, 20.0, 1.0e5];
        let mut f_hll = vec![0.0; 3];
        let mut f_hllc = vec![0.0; 3];
        hll_flux(&eq, &fluids, 0, &priml, &primr, &mut f_hll);
        hllc_flux(&eq, &fluids, 0, &priml, &primr, &mut f_hllc);
        let mut upwind = vec![0.0; 3];
        physical_flux(&eq, &fluids, &priml, 0, &mut upwind);
        let err_hll = (f_hll[0] - upwind[0]).abs();
        let err_hllc = (f_hllc[0] - upwind[0]).abs();
        assert!(err_hllc < 1e-9);
        assert!(err_hll > 1.0, "HLL should be diffusive here: {err_hll}");
    }

    #[test]
    fn hll_flux_between_upwind_fluxes_for_subsonic_jump() {
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let priml = [1.0, 0.0, 2.0e5];
        let primr = [0.6, 0.0, 1.0e5];
        let mut f = vec![0.0; 3];
        hll_flux(&eq, &fluids, 0, &priml, &primr, &mut f);
        // Momentum flux should sit between the two one-sided values.
        let mut fl = vec![0.0; 3];
        let mut fr = vec![0.0; 3];
        physical_flux(&eq, &fluids, &priml, 0, &mut fl);
        physical_flux(&eq, &fluids, &primr, 0, &mut fr);
        let (lo, hi) = (fl[1].min(fr[1]), fl[1].max(fr[1]));
        assert!(f[1] >= lo - 1e-9 && f[1] <= hi + 1e-9);
    }
}
