//! Exact Riemann solver for two stiffened gases (validation oracle).
//!
//! Toro's exact ideal-gas solver generalizes to the stiffened-gas EOS by
//! working with the shifted pressure `p + pi_inf` in every sound speed,
//! shock relation, and isentrope (Ivings, Causon & Toro 1998).  Each side
//! may carry its own `(gamma, pi_inf)`, so air–water problems have an
//! exact solution to test the multiphase solver against.

use crate::fluid::Fluid;

/// One side's primitive state.
#[derive(Debug, Clone, Copy)]
pub struct PrimSide {
    pub rho: f64,
    pub u: f64,
    pub p: f64,
    pub fluid: Fluid,
}

impl PrimSide {
    fn sound_speed(&self) -> f64 {
        self.fluid.sound_speed(self.rho, self.p)
    }

    /// Shifted pressure `p + pi_inf`.
    fn ps(&self) -> f64 {
        self.p + self.fluid.pi_inf
    }
}

/// The solved wave structure.
#[derive(Debug, Clone)]
pub struct ExactRiemann {
    left: PrimSide,
    right: PrimSide,
    /// Star-region pressure.
    pub p_star: f64,
    /// Contact velocity.
    pub u_star: f64,
}

impl ExactRiemann {
    /// Solve for the star state by Newton iteration on the pressure
    /// function `f_L(p) + f_R(p) + (u_R - u_L) = 0`.
    pub fn solve(left: PrimSide, right: PrimSide) -> Self {
        let du = right.u - left.u;
        // Initial guess: PVRS (primitive-variable solver), floored.
        let cl = left.sound_speed();
        let cr = right.sound_speed();
        let p_pv = 0.5 * (left.p + right.p) - 0.125 * du * (left.rho + right.rho) * (cl + cr);
        let floor = 1e-8 * (left.ps().max(right.ps()));
        let mut p = p_pv
            .max(left.p.min(right.p))
            .max(floor - left.fluid.pi_inf.min(right.fluid.pi_inf));
        if !(p.is_finite()) || p + left.fluid.pi_inf.min(right.fluid.pi_inf) <= 0.0 {
            p = 0.5 * (left.p + right.p);
        }

        for _ in 0..100 {
            let (fl, dfl) = pressure_fn(&left, p);
            let (fr, dfr) = pressure_fn(&right, p);
            let g = fl + fr + du;
            let dg = dfl + dfr;
            let step = g / dg;
            let mut p_new = p - step;
            // Keep the shifted pressures positive.
            let lo = -left.fluid.pi_inf.max(right.fluid.pi_inf) * 0.0 + floor
                - left.fluid.pi_inf.min(right.fluid.pi_inf);
            if p_new < lo {
                p_new = 0.5 * (p + lo);
            }
            if (p_new - p).abs() <= 1e-12 * p_new.abs().max(1.0) {
                p = p_new;
                break;
            }
            p = p_new;
        }
        let (fl, _) = pressure_fn(&left, p);
        let (fr, _) = pressure_fn(&right, p);
        let u_star = 0.5 * (left.u + right.u) + 0.5 * (fr - fl);
        ExactRiemann {
            left,
            right,
            p_star: p,
            u_star,
        }
    }

    /// Sample the self-similar solution at speed `xi = x/t`:
    /// returns `(rho, u, p)`.
    pub fn sample(&self, xi: f64) -> (f64, f64, f64) {
        if xi <= self.u_star {
            sample_side(&self.left, self.p_star, self.u_star, xi, -1.0)
        } else {
            sample_side(&self.right, self.p_star, self.u_star, xi, 1.0)
        }
    }
}

/// Toro's `f_K(p)` and its derivative for a stiffened gas.
fn pressure_fn(side: &PrimSide, p: f64) -> (f64, f64) {
    let g = side.fluid.gamma;
    let pi = side.fluid.pi_inf;
    let ps_k = side.ps();
    let ps = p + pi;
    let c = side.sound_speed();
    if p > side.p {
        // Shock.
        let a = 2.0 / ((g + 1.0) * side.rho);
        let b = (g - 1.0) / (g + 1.0) * ps_k;
        let q = (a / (ps + b)).sqrt();
        let f = (ps - ps_k) * q;
        let df = q * (1.0 - 0.5 * (ps - ps_k) / (ps + b));
        (f, df)
    } else {
        // Rarefaction.
        let pr = ps / ps_k;
        let f = 2.0 * c / (g - 1.0) * (pr.powf((g - 1.0) / (2.0 * g)) - 1.0);
        let df = 1.0 / (side.rho * c) * pr.powf(-(g + 1.0) / (2.0 * g));
        (f, df)
    }
}

/// Sample one side of the wave fan. `sign` is -1 for left, +1 for right.
fn sample_side(side: &PrimSide, p_star: f64, u_star: f64, xi: f64, sign: f64) -> (f64, f64, f64) {
    let g = side.fluid.gamma;
    let pi = side.fluid.pi_inf;
    let c = side.sound_speed();
    let ps_k = side.ps();
    let ps_star = p_star + pi;

    if p_star > side.p {
        // Shock on this side.
        let ms = (ps_star / ps_k * (g + 1.0) / (2.0 * g) + (g - 1.0) / (2.0 * g)).sqrt();
        let s = side.u + sign * c * ms;
        let outside = (sign < 0.0 && xi <= s) || (sign > 0.0 && xi >= s);
        if outside {
            (side.rho, side.u, side.p)
        } else {
            let r = ps_star / ps_k;
            let gm = (g - 1.0) / (g + 1.0);
            let rho = side.rho * (r + gm) / (gm * r + 1.0);
            (rho, u_star, p_star)
        }
    } else {
        // Rarefaction on this side.
        let c_star = c * (ps_star / ps_k).powf((g - 1.0) / (2.0 * g));
        let head = side.u + sign * c;
        let tail = u_star + sign * c_star;
        let outside = (sign < 0.0 && xi <= head) || (sign > 0.0 && xi >= head);
        let inside_star = (sign < 0.0 && xi >= tail) || (sign > 0.0 && xi <= tail);
        if outside {
            (side.rho, side.u, side.p)
        } else if inside_star {
            let rho = side.rho * (ps_star / ps_k).powf(1.0 / g);
            (rho, u_star, p_star)
        } else {
            // Inside the fan.
            let u = (2.0 / (g + 1.0)) * (-sign * c + (g - 1.0) / 2.0 * side.u + xi);
            let cf = (2.0 / (g + 1.0)) * (c - sign * (g - 1.0) / 2.0 * (side.u - xi));
            let ps = ps_k * (cf / c).powf(2.0 * g / (g - 1.0));
            let rho = side.rho * (ps / ps_k).powf(1.0 / g);
            (rho, u, ps - pi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn air_side(rho: f64, u: f64, p: f64) -> PrimSide {
        PrimSide {
            rho,
            u,
            p,
            fluid: Fluid::air(),
        }
    }

    #[test]
    fn sod_star_state_matches_toro() {
        // Toro, Test 1: p* = 0.30313, u* = 0.92745.
        let sol = ExactRiemann::solve(air_side(1.0, 0.0, 1.0), air_side(0.125, 0.0, 0.1));
        assert!((sol.p_star - 0.30313).abs() < 1e-4, "p*={}", sol.p_star);
        assert!((sol.u_star - 0.92745).abs() < 1e-4, "u*={}", sol.u_star);
    }

    #[test]
    fn toro_test2_double_rarefaction() {
        // Toro, Test 2: p* = 0.00189, u* = 0 (symmetric).
        let sol = ExactRiemann::solve(air_side(1.0, -2.0, 0.4), air_side(1.0, 2.0, 0.4));
        assert!((sol.p_star - 0.00189).abs() < 5e-4, "p*={}", sol.p_star);
        assert!(sol.u_star.abs() < 1e-10, "u*={}", sol.u_star);
    }

    #[test]
    fn toro_test3_strong_shock() {
        // Toro, Test 3: p* = 460.894, u* = 19.5975.
        let sol = ExactRiemann::solve(air_side(1.0, 0.0, 1000.0), air_side(1.0, 0.0, 0.01));
        assert!(
            (sol.p_star - 460.894).abs() / 460.894 < 1e-3,
            "p*={}",
            sol.p_star
        );
        assert!(
            (sol.u_star - 19.5975).abs() / 19.5975 < 1e-3,
            "u*={}",
            sol.u_star
        );
    }

    #[test]
    fn sampling_recovers_initial_states_far_from_fan() {
        let sol = ExactRiemann::solve(air_side(1.0, 0.0, 1.0), air_side(0.125, 0.0, 0.1));
        let (rho, u, p) = sol.sample(-10.0);
        assert_eq!((rho, u, p), (1.0, 0.0, 1.0));
        let (rho, u, p) = sol.sample(10.0);
        assert_eq!((rho, u, p), (0.125, 0.0, 0.1));
    }

    #[test]
    fn sampled_profile_is_monotone_through_sod_rarefaction() {
        let sol = ExactRiemann::solve(air_side(1.0, 0.0, 1.0), air_side(0.125, 0.0, 0.1));
        let mut last_p = f64::INFINITY;
        // Sweep through the left rarefaction fan.
        let mut xi = -1.2;
        while xi < sol.u_star {
            let (_, _, p) = sol.sample(xi);
            assert!(p <= last_p + 1e-12);
            last_p = p;
            xi += 0.01;
        }
    }

    #[test]
    fn pressure_continuous_across_contact() {
        let sol = ExactRiemann::solve(air_side(1.0, 0.3, 2.0), air_side(0.5, -0.2, 0.6));
        let (_, ul, pl) = sol.sample(sol.u_star - 1e-9);
        let (_, ur, pr) = sol.sample(sol.u_star + 1e-9);
        assert!((pl - pr).abs() < 1e-6 * pl);
        assert!((ul - ur).abs() < 1e-6 * ul.abs().max(1.0));
    }

    #[test]
    fn stiffened_water_air_shock_tube_solves() {
        // Air at high pressure driving into water: exercises per-side
        // gamma/pi_inf. Sanity: p* between the two initial pressures... is
        // not guaranteed, but positivity and ordering of waves are.
        let left = PrimSide {
            rho: 1.2,
            u: 0.0,
            p: 1.0e7,
            fluid: Fluid::air(),
        };
        let right = PrimSide {
            rho: 1000.0,
            u: 0.0,
            p: 1.0e5,
            fluid: Fluid::water(),
        };
        let sol = ExactRiemann::solve(left, right);
        assert!(
            sol.p_star > 1.0e5 && sol.p_star < 1.0e7,
            "p*={}",
            sol.p_star
        );
        assert!(sol.u_star > 0.0); // contact moves into the water
        let (rho, _, p) = sol.sample(sol.u_star + 1.0);
        assert!(rho > 1000.0, "water compressed behind shock: rho={rho}");
        assert!((p - sol.p_star).abs() < 1e-6 * p);
    }

    #[test]
    fn velocity_jump_consistency() {
        // u* from the solve equals the sampled velocity at the contact.
        let sol = ExactRiemann::solve(air_side(2.0, 1.0, 3.0), air_side(1.0, -1.0, 1.0));
        let (_, u, _) = sol.sample(sol.u_star * (1.0 - 1e-12));
        assert!((u - sol.u_star).abs() < 1e-9);
    }
}
