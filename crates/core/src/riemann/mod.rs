//! Riemann solvers at cell faces.
//!
//! * [`hllc`]: the production solver (Toro's HLLC adapted to the
//!   5-equation model, following Coralic & Colonius) — the second-most
//!   expensive kernel in the paper.
//! * [`hll`], [`rusanov`]: two-wave and single-wave baselines.
//! * [`exact`]: the exact stiffened-gas Riemann solver, used purely as a
//!   validation oracle (Sod-type tests compare the full solver and the
//!   HLLC fluxes against it).

pub mod exact;
pub mod hll;
pub mod hllc;
pub mod rusanov;

use crate::eos::MAX_FLUIDS;
use crate::eqidx::EqIdx;
use crate::fluid::{Fluid, MixtureRules};
use mfc_acc::Lane;
use serde::{Deserialize, Serialize};

pub use exact::{ExactRiemann, PrimSide};

/// Which approximate solver the flux kernel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RiemannSolver {
    Hllc,
    Hll,
    Rusanov,
}

impl RiemannSolver {
    /// Approximate FLOPs per face per equation-system solve, from the
    /// arithmetic in each implementation (divisions/sqrts weighted 4/8).
    pub fn flops_per_face(self, eq: &EqIdx) -> f64 {
        let neq = eq.neq() as f64;
        match self {
            // 2 EOS evals (~30 each incl. sqrt), wave speeds, star states
            // and flux assembly ~12 per equation.
            RiemannSolver::Hllc => 90.0 + 14.0 * neq,
            RiemannSolver::Hll => 80.0 + 12.0 * neq,
            RiemannSolver::Rusanov => 70.0 + 8.0 * neq,
        }
    }

    /// Solve one face: primitive states on both sides → flux and the
    /// interface (contact) velocity that closes the volume-fraction source
    /// term `alpha_i div(u)`.
    ///
    /// Generic over [`Lane`]: at `L = f64` this is the scalar solver; at a
    /// packed width each lane solves its own face with the identical op
    /// sequence (wave-pattern branches become bit selects of fully
    /// evaluated alternatives), so the result is bitwise the scalar one.
    #[inline]
    pub fn flux<L: Lane>(
        self,
        eq: &EqIdx,
        fluids: &[Fluid],
        axis: usize,
        priml: &[L],
        primr: &[L],
        flux: &mut [L],
    ) -> L {
        match self {
            RiemannSolver::Hllc => hllc::hllc_flux(eq, fluids, axis, priml, primr, flux),
            RiemannSolver::Hll => hll::hll_flux(eq, fluids, axis, priml, primr, flux),
            RiemannSolver::Rusanov => rusanov::rusanov_flux(eq, fluids, axis, priml, primr, flux),
        }
    }
}

/// Crate-public alias for [`face_state`], used by source-term kernels.
#[inline(always)]
pub(crate) fn face_state_public<L: Lane>(
    eq: &EqIdx,
    fluids: &[Fluid],
    prim: &[L],
    axis: usize,
) -> FaceState<L> {
    face_state(eq, fluids, prim, axis)
}

/// Scalar face quantities derived from one primitive state (one value per
/// lane when `L` is a packed width).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaceState<L = f64> {
    pub rho: L,
    /// Normal velocity.
    pub un: L,
    pub p: L,
    pub c: L,
    /// Total energy density `rho E`.
    pub rho_e: L,
}

/// Evaluate density, pressure, sound speed, and total energy of a
/// primitive state (normal along `axis`).
#[inline(always)]
pub(crate) fn face_state<L: Lane>(
    eq: &EqIdx,
    fluids: &[Fluid],
    prim: &[L],
    axis: usize,
) -> FaceState<L> {
    let mut rho = L::splat(0.0);
    for i in 0..eq.nf() {
        rho = rho + prim[eq.cont(i)];
    }
    let p = prim[eq.energy()];
    let mut alphas = [L::splat(0.0); MAX_FLUIDS];
    eq.alphas(prim, &mut alphas[..eq.nf()]);
    let mix = MixtureRules::evaluate(fluids, &alphas[..eq.nf()]);
    let mut kinetic = L::splat(0.0);
    for d in 0..eq.ndim() {
        kinetic = kinetic + L::splat(0.5) * rho * prim[eq.mom(d)] * prim[eq.mom(d)];
    }
    FaceState {
        rho,
        un: prim[eq.mom(axis)],
        p,
        c: mix.sound_speed(rho, p),
        rho_e: mix.internal_energy(p) + kinetic,
    }
}

/// The physical flux of the homogeneous (conservative) part of the
/// 5-equation system, from a primitive state. The volume-fraction flux is
/// the conservative `alpha u_n` part; the non-conservative `alpha div(u)`
/// source is handled by the RHS using the returned interface velocities.
#[inline(always)]
pub(crate) fn physical_flux<L: Lane>(
    eq: &EqIdx,
    fluids: &[Fluid],
    prim: &[L],
    axis: usize,
    out: &mut [L],
) {
    let fs = face_state(eq, fluids, prim, axis);
    for i in 0..eq.nf() {
        out[eq.cont(i)] = prim[eq.cont(i)] * fs.un;
    }
    for d in 0..eq.ndim() {
        out[eq.mom(d)] = fs.rho * prim[eq.mom(d)] * fs.un;
    }
    out[eq.mom(axis)] = out[eq.mom(axis)] + fs.p;
    out[eq.energy()] = (fs.rho_e + fs.p) * fs.un;
    for i in 0..eq.n_adv() {
        out[eq.adv(i)] = prim[eq.adv(i)] * fs.un;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::prim_to_cons;

    pub(crate) fn two_fluid_prim(eq: &EqIdx, alpha_air: f64, u: f64, p: f64) -> Vec<f64> {
        let mut prim = vec![0.0; eq.neq()];
        prim[eq.cont(0)] = 1.2 * alpha_air;
        prim[eq.cont(1)] = 1000.0 * (1.0 - alpha_air);
        prim[eq.mom(0)] = u;
        prim[eq.energy()] = p;
        prim[eq.adv(0)] = alpha_air;
        prim
    }

    #[test]
    fn physical_flux_matches_manual_euler() {
        // Single-fluid 1D: F = [rho u, rho u^2 + p, (E + p) u]
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let prim = [1.2, 30.0, 1.0e5];
        let mut f = [0.0; 3];
        physical_flux(&eq, &fluids, &prim, 0, &mut f);
        let e = 1.0e5 / 0.4 + 0.5 * 1.2 * 900.0;
        assert!((f[0] - 36.0).abs() < 1e-10);
        assert!((f[1] - (1.2 * 900.0 + 1.0e5)).abs() < 1e-7);
        assert!((f[2] - (e + 1.0e5) * 30.0).abs() < 1e-6);
    }

    #[test]
    fn all_solvers_are_consistent() {
        // F(q, q) must equal the physical flux.
        let eq = EqIdx::new(2, 2);
        let fluids = [Fluid::air(), Fluid::water()];
        let mut prim = two_fluid_prim(&eq, 0.7, 25.0, 2.0e5);
        prim[eq.mom(1)] = -12.0;
        let mut want = vec![0.0; eq.neq()];
        physical_flux(&eq, &fluids, &prim, 0, &mut want);
        for solver in [
            RiemannSolver::Hllc,
            RiemannSolver::Hll,
            RiemannSolver::Rusanov,
        ] {
            let mut got = vec![0.0; eq.neq()];
            solver.flux(&eq, &fluids, 0, &prim, &prim, &mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                    "{solver:?}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn solvers_are_symmetric_under_mirror() {
        // Mirroring both states about the face must negate the density
        // flux and preserve the momentum flux.
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let l = [1.2, 50.0, 1.5e5];
        let r = [0.8, -10.0, 0.9e5];
        let ml = [0.8, 10.0, 0.9e5];
        let mr = [1.2, -50.0, 1.5e5];
        for solver in [
            RiemannSolver::Hllc,
            RiemannSolver::Hll,
            RiemannSolver::Rusanov,
        ] {
            let mut f = vec![0.0; 3];
            let mut fm = vec![0.0; 3];
            solver.flux(&eq, &fluids, 0, &l, &r, &mut f);
            solver.flux(&eq, &fluids, 0, &ml, &mr, &mut fm);
            assert!(
                (f[0] + fm[0]).abs() < 1e-9 * f[0].abs().max(1.0),
                "{solver:?}"
            );
            assert!(
                (f[1] - fm[1]).abs() < 1e-9 * f[1].abs().max(1.0),
                "{solver:?}"
            );
            assert!(
                (f[2] + fm[2]).abs() < 1e-6 * f[2].abs().max(1.0),
                "{solver:?}"
            );
        }
    }

    #[test]
    fn interface_velocity_sign_follows_flow() {
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        // Uniform rightward flow: interface velocity must be u.
        let prim = [1.2, 42.0, 1.0e5];
        let mut f = vec![0.0; 3];
        for solver in [
            RiemannSolver::Hllc,
            RiemannSolver::Hll,
            RiemannSolver::Rusanov,
        ] {
            let s = solver.flux(&eq, &fluids, 0, &prim, &prim, &mut f);
            assert!((s - 42.0).abs() < 1e-9, "{solver:?}: s = {s}");
        }
    }

    #[test]
    fn supersonic_flux_is_pure_upwind() {
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        // Both states moving right at Mach > 1: flux must equal F(qL).
        let l = [1.2, 600.0, 1.0e5];
        let r = [0.5, 650.0, 0.8e5];
        let mut want = vec![0.0; 3];
        physical_flux(&eq, &fluids, &l, 0, &mut want);
        for solver in [RiemannSolver::Hllc, RiemannSolver::Hll] {
            let mut got = vec![0.0; 3];
            solver.flux(&eq, &fluids, 0, &l, &r, &mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9 * w.abs().max(1.0), "{solver:?}");
            }
        }
    }

    #[test]
    fn conservative_state_helper_consistency() {
        // face_state's rho_e agrees with prim_to_cons.
        let eq = EqIdx::new(2, 1);
        let fluids = [Fluid::air(), Fluid::water()];
        let prim = two_fluid_prim(&eq, 0.4, 15.0, 3.0e5);
        let mut cons = vec![0.0; eq.neq()];
        prim_to_cons(&eq, &fluids, &prim, &mut cons);
        let fs = face_state(&eq, &fluids, &prim, 0);
        assert!((fs.rho_e - cons[eq.energy()]).abs() < 1e-6);
    }
}
