//! HLLC approximate Riemann solver for the 5-equation model.
//!
//! Toro's three-wave solver with Davis wave-speed estimates, extended to
//! carry partial densities and volume fractions through the star region
//! like passive densities (Coralic & Colonius 2014).  Returns the contact
//! speed `S*`, which the RHS uses as the interface velocity in the
//! non-conservative `alpha div(u)` term.

use crate::domain::MAX_EQ;
use crate::eos::prim_to_cons;
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use mfc_acc::Lane;

use super::{face_state, physical_flux};

/// Compute the HLLC flux across one face; returns the contact speed `S*`.
///
/// Written once against [`Lane`] in *select form*: every wave-pattern
/// alternative (supersonic left/right, star region of either side) is
/// fully evaluated and the `if` cascade of the scalar solver becomes a
/// cascade of bit selects in the same priority order. Each select picks
/// the exact bits of an expression that is, op for op, the scalar
/// solver's expression for that case — so at `L = f64` the result is
/// bitwise the branchy original, and a packed lane equals the scalar
/// solve of its own face. IEEE arithmetic never traps, so evaluating the
/// discarded alternatives (which may produce inf/NaN) is harmless.
#[inline]
pub fn hllc_flux<L: Lane>(
    eq: &EqIdx,
    fluids: &[Fluid],
    axis: usize,
    priml: &[L],
    primr: &[L],
    flux: &mut [L],
) -> L {
    let neq = eq.neq();
    let l = face_state(eq, fluids, priml, axis);
    let r = face_state(eq, fluids, primr, axis);

    // Davis estimates.
    let sl = (l.un - l.c).min(r.un - r.c);
    let sr = (l.un + l.c).max(r.un + r.c);
    // Contact speed. A vanishing denominator falls back to the mean normal
    // velocity (the `denom.abs() < 1e-300` guard of the scalar solver).
    let denom = l.rho * (sl - l.un) - r.rho * (sr - r.un);
    let s_star = L::select(
        denom.abs().lt(L::splat(1e-300)),
        L::splat(0.5) * (l.un + r.un),
        (r.p - l.p + l.rho * l.un * (sl - l.un) - r.rho * r.un * (sr - r.un)) / denom,
    );

    let mut fl = [L::splat(0.0); MAX_EQ];
    let mut fr = [L::splat(0.0); MAX_EQ];
    physical_flux(eq, fluids, priml, axis, &mut fl[..neq]);
    physical_flux(eq, fluids, primr, axis, &mut fr[..neq]);
    let mut ql = [L::splat(0.0); MAX_EQ];
    let mut qr = [L::splat(0.0); MAX_EQ];
    prim_to_cons(eq, fluids, priml, &mut ql[..neq]);
    prim_to_cons(eq, fluids, primr, &mut qr[..neq]);

    // Star-region correction on the subsonic side containing x/t = 0:
    // F = F_K + S_K (q*_K - q_K), K picked by the sign of S* exactly like
    // the scalar solver's `if s_star >= 0.0`.
    let side = s_star.ge(L::splat(0.0));
    let sk = L::select(side, sl, sr);
    let fs_un = L::select(side, l.un, r.un);
    let fs_rho = L::select(side, l.rho, r.rho);
    let fs_p = L::select(side, l.p, r.p);
    let chi = (sk - fs_un) / (sk - s_star);

    let mut sub = [L::splat(0.0); MAX_EQ];
    // Partial densities scale by chi like the mixture density.
    for i in 0..eq.nf() {
        let e = eq.cont(i);
        let q = L::select(side, ql[e], qr[e]);
        sub[e] = L::select(side, fl[e], fr[e]) + sk * (chi * q - q);
    }
    // Volume fractions are material invariants: constant across the
    // acoustic waves, jumping only at the contact, and the star-region
    // velocity is S*.  Sampling the star state at x/t = 0 therefore gives
    // F_alpha = alpha_K S*.  (Scaling alpha by chi like a density couples
    // alpha to the acoustic field and is linearly unstable together with
    // the alpha*div(u) closure.)
    for i in 0..eq.n_adv() {
        let e = eq.adv(i);
        sub[e] = L::select(side, ql[e], qr[e]) * s_star;
    }
    // Momentum: normal component jumps to S*, tangential are advected.
    for d in 0..eq.ndim() {
        let e = eq.mom(d);
        let q = L::select(side, ql[e], qr[e]);
        let q_star = if d == axis {
            chi * fs_rho * s_star
        } else {
            chi * q
        };
        sub[e] = L::select(side, fl[e], fr[e]) + sk * (q_star - q);
    }
    // Energy.
    let e = eq.energy();
    let q = L::select(side, ql[e], qr[e]);
    let e_star = chi * (q + (s_star - fs_un) * (fs_rho * s_star + fs_p / (sk - fs_un)));
    sub[e] = L::select(side, fl[e], fr[e]) + sk * (e_star - q);

    // Wave-pattern cascade, in the scalar solver's priority order: a
    // supersonic-left lane takes F(qL), else supersonic-right takes F(qR),
    // else the star-region flux.
    let sup_l = sl.ge(L::splat(0.0));
    let sup_r = sr.le(L::splat(0.0));
    for e in 0..neq {
        flux[e] = L::select(sup_l, fl[e], L::select(sup_r, fr[e], sub[e]));
    }
    s_star
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::riemann::exact::{ExactRiemann, PrimSide};

    /// HLLC's interface flux for a Sod problem should be in the
    /// neighbourhood of the exact Godunov flux.  The Davis wave-speed
    /// estimate puts S* at 0.676 where the exact contact moves at 0.927,
    /// so a sizable single-flux deviation is expected (and harmless: the
    /// full solver converges to the exact solution — see
    /// `solver::tests::sod_shock_tube_matches_exact_solution`).
    #[test]
    fn sod_flux_close_to_exact_godunov_flux() {
        let eq = EqIdx::new(1, 1);
        let air = Fluid::air();
        let fluids = [air];
        let priml = [1.0, 0.0, 1.0];
        let primr = [0.125, 0.0, 0.1];

        let mut f_hllc = vec![0.0; 3];
        hllc_flux(&eq, &fluids, 0, &priml, &primr, &mut f_hllc);

        let ex = ExactRiemann::solve(
            PrimSide {
                rho: 1.0,
                u: 0.0,
                p: 1.0,
                fluid: air,
            },
            PrimSide {
                rho: 0.125,
                u: 0.0,
                p: 0.1,
                fluid: air,
            },
        );
        let (rho, u, p) = ex.sample(0.0);
        let prim_g = [rho, u, p];
        let mut f_exact = vec![0.0; 3];
        physical_flux(&eq, &fluids, &prim_g, 0, &mut f_exact);

        for (h, e) in f_hllc.iter().zip(&f_exact) {
            let scale = e.abs().max(0.1);
            assert!(
                (h - e).abs() / scale < 0.35,
                "hllc {f_hllc:?} vs exact {f_exact:?}"
            );
        }
    }

    #[test]
    fn isolated_contact_is_resolved_exactly() {
        // Equal pressure & velocity, jump in density: HLLC preserves it.
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let priml = [1.0, 20.0, 1.0e5];
        let primr = [0.1, 20.0, 1.0e5];
        let mut f = vec![0.0; 3];
        let s = hllc_flux(&eq, &fluids, 0, &priml, &primr, &mut f);
        assert!((s - 20.0).abs() < 1e-9);
        // Upwind side is the left: flux = F(qL).
        let mut want = vec![0.0; 3];
        physical_flux(&eq, &fluids, &priml, 0, &mut want);
        for (g, w) in f.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8 * w.abs().max(1.0));
        }
    }

    #[test]
    fn contact_speed_between_acoustic_speeds() {
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let priml = [1.0, 0.0, 2.0e5];
        let primr = [0.5, -30.0, 0.5e5];
        let l = face_state(&eq, &fluids, &priml, 0);
        let r = face_state(&eq, &fluids, &primr, 0);
        let sl = (l.un - l.c).min(r.un - r.c);
        let sr = (l.un + l.c).max(r.un + r.c);
        let mut f = vec![0.0; 3];
        let s = hllc_flux(&eq, &fluids, 0, &priml, &primr, &mut f);
        assert!(sl < s && s < sr, "SL={sl} S*={s} SR={sr}");
    }

    #[test]
    fn two_fluid_interface_advects_alpha() {
        // Material interface between air and water at uniform p, u: the
        // alpha flux must be alpha*u of the upwind side.
        let eq = EqIdx::new(2, 1);
        let fluids = [Fluid::air(), Fluid::water()];
        let mut priml = vec![0.0; eq.neq()];
        priml[eq.cont(0)] = 1.2;
        priml[eq.cont(1)] = 0.0;
        priml[eq.mom(0)] = 5.0;
        priml[eq.energy()] = 1.0e5;
        priml[eq.adv(0)] = 1.0; // pure air
        let mut primr = vec![0.0; eq.neq()];
        primr[eq.cont(0)] = 0.0;
        primr[eq.cont(1)] = 1000.0;
        primr[eq.mom(0)] = 5.0;
        primr[eq.energy()] = 1.0e5;
        primr[eq.adv(0)] = 0.0; // pure water
        let mut f = vec![0.0; eq.neq()];
        let s = hllc_flux(&eq, &fluids, 0, &priml, &primr, &mut f);
        assert!((s - 5.0).abs() < 1e-9);
        assert!((f[eq.adv(0)] - 1.0 * 5.0).abs() < 1e-9);
        assert!((f[eq.cont(0)] - 1.2 * 5.0).abs() < 1e-9);
        assert!(f[eq.cont(1)].abs() < 1e-9);
    }
}
