//! Rusanov (local Lax–Friedrichs) single-wave solver — the most diffusive
//! baseline.

use crate::domain::MAX_EQ;
use crate::eos::prim_to_cons;
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use mfc_acc::Lane;

use super::{face_state, physical_flux};

/// Compute the Rusanov flux; returns the mean normal velocity as the
/// interface-velocity estimate.
///
/// Already branch-free, so the [`Lane`] version is a direct elementwise
/// transcription: each packed lane performs the scalar op sequence.
#[inline]
pub fn rusanov_flux<L: Lane>(
    eq: &EqIdx,
    fluids: &[Fluid],
    axis: usize,
    priml: &[L],
    primr: &[L],
    flux: &mut [L],
) -> L {
    let neq = eq.neq();
    let l = face_state(eq, fluids, priml, axis);
    let r = face_state(eq, fluids, primr, axis);
    let smax = (l.un.abs() + l.c).max(r.un.abs() + r.c);

    let mut fl = [L::splat(0.0); MAX_EQ];
    let mut fr = [L::splat(0.0); MAX_EQ];
    physical_flux(eq, fluids, priml, axis, &mut fl[..neq]);
    physical_flux(eq, fluids, primr, axis, &mut fr[..neq]);
    let mut ql = [L::splat(0.0); MAX_EQ];
    let mut qr = [L::splat(0.0); MAX_EQ];
    prim_to_cons(eq, fluids, priml, &mut ql[..neq]);
    prim_to_cons(eq, fluids, primr, &mut qr[..neq]);

    for e in 0..neq {
        flux[e] = L::splat(0.5) * (fl[e] + fr[e]) - L::splat(0.5) * smax * (qr[e] - ql[e]);
    }
    L::splat(0.5) * (l.un + r.un)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dissipation_scales_with_jump() {
        let eq = EqIdx::new(1, 1);
        let fluids = [Fluid::air()];
        let base = [1.0, 0.0, 1.0e5];
        let mut f_small = vec![0.0; 3];
        let mut f_big = vec![0.0; 3];
        rusanov_flux(&eq, &fluids, 0, &base, &[0.99, 0.0, 1.0e5], &mut f_small);
        rusanov_flux(&eq, &fluids, 0, &base, &[0.5, 0.0, 1.0e5], &mut f_big);
        // Mass flux magnitude (pure dissipation here) grows with the jump.
        assert!(f_big[0].abs() > 10.0 * f_small[0].abs());
        assert!(f_big[0] > 0.0); // transports mass toward the deficit side
    }

    #[test]
    fn stationary_uniform_state_has_zero_mass_flux() {
        let eq = EqIdx::new(2, 1);
        let fluids = [Fluid::air(), Fluid::water()];
        let mut prim = vec![0.0; eq.neq()];
        prim[eq.cont(0)] = 0.6;
        prim[eq.cont(1)] = 400.0;
        prim[eq.energy()] = 1.0e5;
        prim[eq.adv(0)] = 0.5;
        let mut f = vec![0.0; eq.neq()];
        let s = rusanov_flux(&eq, &fluids, 0, &prim, &prim, &mut f);
        assert_eq!(s, 0.0);
        assert!(f[eq.cont(0)].abs() < 1e-12);
        assert!((f[eq.mom(0)] - 1.0e5).abs() < 1e-7); // pressure only
    }
}
