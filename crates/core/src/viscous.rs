//! Viscous fluxes — the Navier–Stokes terms of the Coralic & Colonius
//! scheme MFC implements (the paper's §III-F validates against
//! Taylor–Green vortices, which require them).
//!
//! Face-based conservative discretization: at every face the full stress
//! tensor row for that face normal is evaluated with second-order central
//! differences (normal derivative across the face, transverse derivatives
//! averaged from the adjacent cell centers), with the Stokes hypothesis
//! `lambda = -2/3 mu` and volume-fraction-weighted mixture viscosity
//! `mu = sum_i alpha_i mu_i`.

use mfc_acc::{Context, KernelClass, KernelCost, Lane, LaneKernel, LaunchConfig, ParSlice};

use crate::domain::{Domain, MAX_EQ};
use crate::eos::MAX_FLUIDS;
use crate::eqidx::EqIdx;
use crate::fluid::Fluid;
use crate::state::StateField;

/// Mixture dynamic viscosity of one primitive cell.
#[inline(always)]
fn cell_mu(dom: &Domain, fluids: &[Fluid], prim: &StateField, i: usize, j: usize, k: usize) -> f64 {
    let eq = dom.eq;
    let mut cell = [0.0; MAX_EQ];
    prim.load_cell(i, j, k, &mut cell[..eq.neq()]);
    let mut alphas = [0.0; MAX_FLUIDS];
    eq.alphas(&cell[..eq.neq()], &mut alphas[..eq.nf()]);
    fluids
        .iter()
        .zip(&alphas[..eq.nf()])
        .map(|(f, &a)| a * f.viscosity)
        .sum()
}

/// Whether any component is viscous.
pub fn is_viscous(fluids: &[Fluid]) -> bool {
    fluids.iter().any(|f| f.viscosity > 0.0)
}

/// Largest mixture kinematic viscosity over the interior (for the viscous
/// CFL bound).
pub fn max_kinematic_viscosity(dom: &Domain, fluids: &[Fluid], prim: &StateField) -> f64 {
    let eq = dom.eq;
    let mut nu_max = 0.0f64;
    let mut cell = [0.0; MAX_EQ];
    for (i, j, k) in dom.interior() {
        prim.load_cell(i, j, k, &mut cell[..eq.neq()]);
        let rho: f64 = (0..eq.nf()).map(|f| cell[eq.cont(f)]).sum();
        let mu = cell_mu(dom, fluids, prim, i, j, k);
        nu_max = nu_max.max(mu / rho.max(1e-300));
    }
    nu_max
}

/// Add the viscous flux divergence to `rhs` over interior cells.
///
/// `prim` must have valid ghost values (one layer beyond each interior
/// face is touched by the transverse derivatives, well inside the WENO
/// halo). `widths[d]` are ghost-inclusive cell widths.
pub fn add_viscous_fluxes(
    ctx: &Context,
    dom: &Domain,
    fluids: &[Fluid],
    prim: &StateField,
    widths: &[Vec<f64>; 3],
    rhs: &mut StateField,
) {
    let eq = dom.eq;
    let ndim = eq.ndim();
    let cost = KernelCost::new(
        KernelClass::Other,
        (ndim * ndim * 20 + 30) as f64,
        8.0 * (4 * ndim * ndim) as f64,
        8.0 * (ndim + 1) as f64,
    );
    let cfg = LaunchConfig::tuned("s_viscous_flux");
    let d3 = dom.dims3();
    let kernel = ViscousKernel {
        eq,
        fluids,
        src: prim.as_slice(),
        widths: [&widths[0], &widths[1], &widths[2]],
        ndim,
        ny: dom.n[1],
        pad: [dom.pad(0), dom.pad(1), dom.pad(2)],
        stride: [1, d3.n1, d3.n1 * d3.n2],
        block: d3.len(),
        rsl: ParSlice::new(rhs.as_mut_slice()),
    };
    ctx.launch_vec(&cfg, cost, dom.n[1] * dom.n[2], dom.n[0], &kernel);
}

/// A stencil cell of the viscous kernel: flat base index of the packet's
/// first lane plus the (ghost-inclusive) grid coordinates of that lane.
/// Lanes occupy `base..base + WIDTH` along the unit-stride x axis, so a
/// shift along any axis is a single base offset.
#[derive(Clone, Copy)]
struct CellRef {
    base: usize,
    c: [usize; 3],
}

/// Lane kernel of the viscous flux divergence: row = (j, k) interior
/// line, col = interior x offset. Every stencil access is unit-stride in
/// x, so shifted packets load ghost values exactly where the scalar
/// stencil would; transverse cell widths are uniform per packet and enter
/// as splats.
struct ViscousKernel<'a> {
    eq: EqIdx,
    fluids: &'a [Fluid],
    src: &'a [f64],
    widths: [&'a [f64]; 3],
    ndim: usize,
    /// Interior cells along y.
    ny: usize,
    pad: [usize; 3],
    /// Flat strides of the three axes.
    stride: [usize; 3],
    /// Ghost-inclusive cells per equation block.
    block: usize,
    rsl: ParSlice<'a>,
}

impl ViscousKernel<'_> {
    /// Shift a stencil cell along an axis by `s` (±1).
    #[inline(always)]
    fn shifted(&self, cell: CellRef, axis: usize, s: isize) -> CellRef {
        let mut c = cell.c;
        c[axis] = (c[axis] as isize + s) as usize;
        CellRef {
            base: (cell.base as isize + s * self.stride[axis] as isize) as usize,
            c,
        }
    }

    /// Cell width along `axis`: lane-varying along x, uniform (splat)
    /// transversally.
    #[inline(always)]
    fn width_at<L: Lane>(&self, axis: usize, cell: CellRef) -> L {
        if axis == 0 {
            L::load(&self.widths[0][cell.c[0]..])
        } else {
            L::splat(self.widths[axis][cell.c[axis]])
        }
    }

    /// Velocity component `d` at a stencil cell.
    #[inline(always)]
    fn vel<L: Lane>(&self, cell: CellRef, d: usize) -> L {
        L::load(&self.src[cell.base + self.eq.mom(d) * self.block..])
    }

    /// Mixture dynamic viscosity (volume-fraction weighted), per lane —
    /// the lane transcription of [`cell_mu`].
    #[inline(always)]
    fn mu_at<L: Lane>(&self, cell: CellRef) -> L {
        let eq = &self.eq;
        let neq = eq.neq();
        let mut p = [L::splat(0.0); MAX_EQ];
        for (e, v) in p.iter_mut().enumerate().take(neq) {
            *v = L::load(&self.src[cell.base + e * self.block..]);
        }
        let mut alphas = [L::splat(0.0); MAX_FLUIDS];
        eq.alphas(&p[..neq], &mut alphas[..eq.nf()]);
        let mut mu = L::splat(0.0);
        for (f, a) in self.fluids.iter().zip(&alphas[..eq.nf()]) {
            mu = mu + *a * L::splat(f.viscosity);
        }
        mu
    }

    /// Central derivative of velocity component `comp` along `axis`.
    #[inline(always)]
    fn cell_dudx<L: Lane>(&self, cell: CellRef, comp: usize, axis: usize) -> L {
        let lo = self.shifted(cell, axis, -1);
        let hi = self.shifted(cell, axis, 1);
        let h = self.width_at::<L>(axis, cell);
        (self.vel::<L>(hi, comp) - self.vel::<L>(lo, comp)) / (L::splat(2.0) * h)
    }

    /// Flux of j-momentum (and of energy) through the face between `cell`
    /// and its +1 neighbour along `axis`.
    #[inline(always)]
    fn face_flux<L: Lane>(&self, cell: CellRef, axis: usize, out: &mut [L; 4]) {
        let ndim = self.ndim;
        let nb = self.shifted(cell, axis, 1);
        let h = L::splat(0.5) * (self.width_at::<L>(axis, cell) + self.width_at::<L>(axis, nb));
        let mu = L::splat(0.5) * (self.mu_at::<L>(cell) + self.mu_at::<L>(nb));
        // Velocity gradients at the face: normal by a compact difference,
        // transverse by averaging the adjacent cell-centered centrals.
        let mut grad = [[L::splat(0.0); 3]; 3]; // grad[comp][axis2] = d u_comp / d x_axis2
        for (comp, grad_c) in grad.iter_mut().enumerate().take(ndim) {
            for (ax2, g) in grad_c.iter_mut().enumerate().take(ndim) {
                *g = if ax2 == axis {
                    (self.vel::<L>(nb, comp) - self.vel::<L>(cell, comp)) / h
                } else {
                    L::splat(0.5)
                        * (self.cell_dudx::<L>(cell, comp, ax2)
                            + self.cell_dudx::<L>(nb, comp, ax2))
                };
            }
        }
        let mut div = L::splat(0.0);
        for (d, g) in grad.iter().enumerate().take(ndim) {
            div = div + g[d];
        }
        for (j, o) in out.iter_mut().enumerate().take(ndim) {
            let mut tau = mu * (grad[j][axis] + grad[axis][j]);
            if j == axis {
                tau = tau - L::splat(2.0 / 3.0) * mu * div;
            }
            *o = tau;
        }
        // Energy flux: u_j (face average) * tau_{axis j}.
        let mut fe = L::splat(0.0);
        for (j, &oj) in out.iter().enumerate().take(ndim) {
            let uj = L::splat(0.5) * (self.vel::<L>(cell, j) + self.vel::<L>(nb, j));
            fe = fe + uj * oj;
        }
        out[ndim] = fe;
    }
}

impl LaneKernel for ViscousKernel<'_> {
    #[inline(always)]
    fn packet<L: Lane>(&self, row: usize, col: usize) {
        let eq = &self.eq;
        let i = col + self.pad[0];
        let j = row % self.ny + self.pad[1];
        let k = row / self.ny + self.pad[2];
        let base = i + self.stride[1] * j + self.stride[2] * k;
        let cell = CellRef { base, c: [i, j, k] };
        for axis in 0..self.ndim {
            let lo_cell = self.shifted(cell, axis, -1);
            let h = self.width_at::<L>(axis, cell);
            let mut f_hi = [L::splat(0.0); 4];
            let mut f_lo = [L::splat(0.0); 4];
            self.face_flux(cell, axis, &mut f_hi);
            self.face_flux(lo_cell, axis, &mut f_lo);
            for d in 0..self.ndim {
                self.rsl
                    .add_lanes(base + eq.mom(d) * self.block, (f_hi[d] - f_lo[d]) / h);
            }
            self.rsl.add_lanes(
                base + eq.energy() * self.block,
                (f_hi[self.ndim] - f_lo[self.ndim]) / h,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqidx::EqIdx;
    use crate::grid::Grid;

    fn setup(n: usize, mu: f64) -> (Domain, [Vec<f64>; 3], Vec<Fluid>, StateField) {
        let eq = EqIdx::new(1, 2);
        let dom = Domain::new([n, n, 1], 3, eq);
        let grid = Grid::uniform([n, n, 1], [0.0; 3], [1.0, 1.0, 1.0]);
        let widths = [
            grid.x.widths_with_ghosts(dom.pad(0)),
            grid.y.widths_with_ghosts(dom.pad(1)),
            grid.z.widths_with_ghosts(dom.pad(2)),
        ];
        let fluids = vec![Fluid::air().with_viscosity(mu)];
        (dom, widths, fluids, StateField::zeros(dom))
    }

    #[test]
    fn uniform_flow_has_zero_viscous_flux() {
        let (dom, widths, fluids, mut prim) = setup(8, 0.1);
        let eq = dom.eq;
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    prim.set(i, j, k, eq.cont(0), 1.2);
                    prim.set(i, j, k, eq.mom(0), 30.0);
                    prim.set(i, j, k, eq.mom(1), -10.0);
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let mut rhs = StateField::zeros(dom);
        let ctx = Context::serial();
        add_viscous_fluxes(&ctx, &dom, &fluids, &prim, &widths, &mut rhs);
        let max = rhs.as_slice().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max < 1e-10, "max = {max}");
    }

    #[test]
    fn linear_shear_has_zero_momentum_diffusion_but_positive_dissipation() {
        // u_x = S*y: tau_xy = mu*S constant → momentum RHS = 0; the energy
        // RHS is d(u tau)/dy = S * mu * S > 0 (viscous heating).
        let (dom, widths, fluids, mut prim) = setup(8, 0.5);
        let eq = dom.eq;
        let s_rate = 2.0;
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    let y = (j as f64 - dom.pad(1) as f64 + 0.5) / 8.0;
                    prim.set(i, j, k, eq.cont(0), 1.2);
                    prim.set(i, j, k, eq.mom(0), s_rate * y);
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let mut rhs = StateField::zeros(dom);
        let ctx = Context::serial();
        add_viscous_fluxes(&ctx, &dom, &fluids, &prim, &widths, &mut rhs);
        let (i, j) = (4 + dom.pad(0), 4 + dom.pad(1));
        assert!(rhs.get(i, j, 0, eq.mom(0)).abs() < 1e-10);
        assert!(rhs.get(i, j, 0, eq.mom(1)).abs() < 1e-10);
        let want = fluids[0].viscosity * s_rate * s_rate / 8.0 * 8.0; // mu S^2
        let got = rhs.get(i, j, 0, eq.energy());
        assert!((got - want).abs() < 1e-8 * want, "got {got} want {want}");
    }

    #[test]
    fn sinusoidal_shear_diffuses_toward_mean() {
        // u_x = sin(2 pi y): RHS_x = -mu k^2 sin(2 pi y) / rho ... in
        // momentum form RHS = mu * d2u/dy2 = -mu k^2 u.
        let n = 32;
        let (dom, widths, fluids, mut prim) = setup(n, 0.1);
        let eq = dom.eq;
        let kwave = 2.0 * std::f64::consts::PI;
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    let y = (j as f64 - dom.pad(1) as f64 + 0.5) / n as f64;
                    prim.set(i, j, k, eq.cont(0), 1.0);
                    prim.set(i, j, k, eq.mom(0), (kwave * y).sin());
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let mut rhs = StateField::zeros(dom);
        let ctx = Context::serial();
        add_viscous_fluxes(&ctx, &dom, &fluids, &prim, &widths, &mut rhs);
        for j in 0..n {
            let y = (j as f64 + 0.5) / n as f64;
            let u = (kwave * y).sin();
            let want = -fluids[0].viscosity * kwave * kwave * u;
            let got = rhs.get(8 + dom.pad(0), j + dom.pad(1), 0, eq.mom(0));
            assert!(
                (got - want).abs() < 0.02 * fluids[0].viscosity * kwave * kwave,
                "j={j}: got {got} want {want}"
            );
        }
    }

    #[test]
    fn mixture_viscosity_weighted_by_volume_fraction() {
        let eq = EqIdx::new(2, 1);
        let dom = Domain::new([8, 1, 1], 3, eq);
        let fluids = vec![
            Fluid::air().with_viscosity(2.0),
            Fluid::water().with_viscosity(10.0),
        ];
        let mut prim = StateField::zeros(dom);
        for i in 0..dom.ext(0) {
            prim.set(i, 0, 0, eq.cont(0), 1.2 * 0.25);
            prim.set(i, 0, 0, eq.cont(1), 1000.0 * 0.75);
            prim.set(i, 0, 0, eq.energy(), 1.0e5);
            prim.set(i, 0, 0, eq.adv(0), 0.25);
        }
        let mu = cell_mu(&dom, &fluids, &prim, 4, 0, 0);
        assert!((mu - (0.25 * 2.0 + 0.75 * 10.0)).abs() < 1e-12);
        assert!(is_viscous(&fluids));
        assert!(!is_viscous(&[Fluid::air()]));
    }
}
