//! Viscous fluxes — the Navier–Stokes terms of the Coralic & Colonius
//! scheme MFC implements (the paper's §III-F validates against
//! Taylor–Green vortices, which require them).
//!
//! Face-based conservative discretization: at every face the full stress
//! tensor row for that face normal is evaluated with second-order central
//! differences (normal derivative across the face, transverse derivatives
//! averaged from the adjacent cell centers), with the Stokes hypothesis
//! `lambda = -2/3 mu` and volume-fraction-weighted mixture viscosity
//! `mu = sum_i alpha_i mu_i`.

use mfc_acc::{Context, KernelClass, KernelCost, LaunchConfig, ParSlice};

use crate::domain::{Domain, MAX_EQ};
use crate::eos::MAX_FLUIDS;
use crate::fluid::Fluid;
use crate::state::StateField;

/// Mixture dynamic viscosity of one primitive cell.
#[inline(always)]
fn cell_mu(dom: &Domain, fluids: &[Fluid], prim: &StateField, i: usize, j: usize, k: usize) -> f64 {
    let eq = dom.eq;
    let mut cell = [0.0; MAX_EQ];
    prim.load_cell(i, j, k, &mut cell[..eq.neq()]);
    let mut alphas = [0.0; MAX_FLUIDS];
    eq.alphas(&cell[..eq.neq()], &mut alphas[..eq.nf()]);
    fluids
        .iter()
        .zip(&alphas[..eq.nf()])
        .map(|(f, &a)| a * f.viscosity)
        .sum()
}

/// Whether any component is viscous.
pub fn is_viscous(fluids: &[Fluid]) -> bool {
    fluids.iter().any(|f| f.viscosity > 0.0)
}

/// Largest mixture kinematic viscosity over the interior (for the viscous
/// CFL bound).
pub fn max_kinematic_viscosity(dom: &Domain, fluids: &[Fluid], prim: &StateField) -> f64 {
    let eq = dom.eq;
    let mut nu_max = 0.0f64;
    let mut cell = [0.0; MAX_EQ];
    for (i, j, k) in dom.interior() {
        prim.load_cell(i, j, k, &mut cell[..eq.neq()]);
        let rho: f64 = (0..eq.nf()).map(|f| cell[eq.cont(f)]).sum();
        let mu = cell_mu(dom, fluids, prim, i, j, k);
        nu_max = nu_max.max(mu / rho.max(1e-300));
    }
    nu_max
}

/// Velocity at a cell (ghost-inclusive indices).
#[inline(always)]
fn vel(dom: &Domain, prim: &StateField, i: usize, j: usize, k: usize, d: usize) -> f64 {
    prim.get(i, j, k, dom.eq.mom(d))
}

/// Shift a coordinate along an axis by `s` (±1).
#[inline(always)]
fn shift(c: (usize, usize, usize), axis: usize, s: isize) -> (usize, usize, usize) {
    let mut v = [c.0 as isize, c.1 as isize, c.2 as isize];
    v[axis] += s;
    (v[0] as usize, v[1] as usize, v[2] as usize)
}

/// Central derivative of velocity component `comp` along `axis` at a cell.
#[inline(always)]
fn cell_dudx(
    dom: &Domain,
    prim: &StateField,
    widths: &[Vec<f64>; 3],
    c: (usize, usize, usize),
    comp: usize,
    axis: usize,
) -> f64 {
    let lo = shift(c, axis, -1);
    let hi = shift(c, axis, 1);
    let idx = [c.0, c.1, c.2][axis];
    let h = widths[axis][idx];
    (vel(dom, prim, hi.0, hi.1, hi.2, comp) - vel(dom, prim, lo.0, lo.1, lo.2, comp)) / (2.0 * h)
}

/// Add the viscous flux divergence to `rhs` over interior cells.
///
/// `prim` must have valid ghost values (one layer beyond each interior
/// face is touched by the transverse derivatives, well inside the WENO
/// halo). `widths[d]` are ghost-inclusive cell widths.
pub fn add_viscous_fluxes(
    ctx: &Context,
    dom: &Domain,
    fluids: &[Fluid],
    prim: &StateField,
    widths: &[Vec<f64>; 3],
    rhs: &mut StateField,
) {
    let eq = dom.eq;
    let ndim = eq.ndim();
    let (nx, ny) = (dom.n[0], dom.n[1]);
    let cost = KernelCost::new(
        KernelClass::Other,
        (ndim * ndim * 20 + 30) as f64,
        8.0 * (4 * ndim * ndim) as f64,
        8.0 * (ndim + 1) as f64,
    );
    let cfg = LaunchConfig::tuned("s_viscous_flux");

    // Flux of j-momentum (and of energy) through the face between cell c
    // and its +1 neighbour along `axis`.
    let face_flux = |c: (usize, usize, usize), axis: usize, out: &mut [f64]| {
        let nb = shift(c, axis, 1);
        let idx = [c.0, c.1, c.2][axis];
        let h = 0.5 * (widths[axis][idx] + widths[axis][idx + 1]);
        let mu = 0.5
            * (cell_mu(dom, fluids, prim, c.0, c.1, c.2)
                + cell_mu(dom, fluids, prim, nb.0, nb.1, nb.2));
        // Velocity gradients at the face: normal by a compact difference,
        // transverse by averaging the adjacent cell-centered centrals.
        let mut grad = [[0.0; 3]; 3]; // grad[comp][axis2] = d u_comp / d x_axis2
        for (comp, grad_c) in grad.iter_mut().enumerate().take(ndim) {
            for (ax2, g) in grad_c.iter_mut().enumerate().take(ndim) {
                *g = if ax2 == axis {
                    (vel(dom, prim, nb.0, nb.1, nb.2, comp) - vel(dom, prim, c.0, c.1, c.2, comp))
                        / h
                } else {
                    0.5 * (cell_dudx(dom, prim, widths, c, comp, ax2)
                        + cell_dudx(dom, prim, widths, nb, comp, ax2))
                };
            }
        }
        let div: f64 = (0..ndim).map(|d| grad[d][d]).sum();
        for (j, o) in out.iter_mut().enumerate().take(ndim) {
            let mut tau = mu * (grad[j][axis] + grad[axis][j]);
            if j == axis {
                tau -= 2.0 / 3.0 * mu * div;
            }
            *o = tau;
        }
        // Energy flux: u_j (face average) * tau_{axis j}.
        let mut fe = 0.0;
        for (j, &oj) in out.iter().enumerate().take(ndim) {
            let uj = 0.5 * (vel(dom, prim, c.0, c.1, c.2, j) + vel(dom, prim, nb.0, nb.1, nb.2, j));
            fe += uj * oj;
        }
        out[ndim] = fe;
    };

    let d3 = dom.dims3();
    let block = d3.len();
    let rsl = ParSlice::new(rhs.as_mut_slice());
    ctx.launch_par(&cfg, cost, dom.interior_cells(), |item| {
        let i = item % nx + dom.pad(0);
        let j = (item / nx) % ny + dom.pad(1);
        let k = item / (nx * ny) + dom.pad(2);
        let c = (i, j, k);
        let cell = d3.idx(i, j, k);
        for axis in 0..ndim {
            let lo_cell = shift(c, axis, -1);
            let idx = [i, j, k][axis];
            let h = widths[axis][idx];
            let mut f_hi = [0.0; 4];
            let mut f_lo = [0.0; 4];
            face_flux(c, axis, &mut f_hi);
            face_flux(lo_cell, axis, &mut f_lo);
            for d in 0..ndim {
                rsl.add(cell + eq.mom(d) * block, (f_hi[d] - f_lo[d]) / h);
            }
            rsl.add(cell + eq.energy() * block, (f_hi[ndim] - f_lo[ndim]) / h);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eqidx::EqIdx;
    use crate::grid::Grid;

    fn setup(n: usize, mu: f64) -> (Domain, [Vec<f64>; 3], Vec<Fluid>, StateField) {
        let eq = EqIdx::new(1, 2);
        let dom = Domain::new([n, n, 1], 3, eq);
        let grid = Grid::uniform([n, n, 1], [0.0; 3], [1.0, 1.0, 1.0]);
        let widths = [
            grid.x.widths_with_ghosts(dom.pad(0)),
            grid.y.widths_with_ghosts(dom.pad(1)),
            grid.z.widths_with_ghosts(dom.pad(2)),
        ];
        let fluids = vec![Fluid::air().with_viscosity(mu)];
        (dom, widths, fluids, StateField::zeros(dom))
    }

    #[test]
    fn uniform_flow_has_zero_viscous_flux() {
        let (dom, widths, fluids, mut prim) = setup(8, 0.1);
        let eq = dom.eq;
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    prim.set(i, j, k, eq.cont(0), 1.2);
                    prim.set(i, j, k, eq.mom(0), 30.0);
                    prim.set(i, j, k, eq.mom(1), -10.0);
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let mut rhs = StateField::zeros(dom);
        let ctx = Context::serial();
        add_viscous_fluxes(&ctx, &dom, &fluids, &prim, &widths, &mut rhs);
        let max = rhs.as_slice().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max < 1e-10, "max = {max}");
    }

    #[test]
    fn linear_shear_has_zero_momentum_diffusion_but_positive_dissipation() {
        // u_x = S*y: tau_xy = mu*S constant → momentum RHS = 0; the energy
        // RHS is d(u tau)/dy = S * mu * S > 0 (viscous heating).
        let (dom, widths, fluids, mut prim) = setup(8, 0.5);
        let eq = dom.eq;
        let s_rate = 2.0;
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    let y = (j as f64 - dom.pad(1) as f64 + 0.5) / 8.0;
                    prim.set(i, j, k, eq.cont(0), 1.2);
                    prim.set(i, j, k, eq.mom(0), s_rate * y);
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let mut rhs = StateField::zeros(dom);
        let ctx = Context::serial();
        add_viscous_fluxes(&ctx, &dom, &fluids, &prim, &widths, &mut rhs);
        let (i, j) = (4 + dom.pad(0), 4 + dom.pad(1));
        assert!(rhs.get(i, j, 0, eq.mom(0)).abs() < 1e-10);
        assert!(rhs.get(i, j, 0, eq.mom(1)).abs() < 1e-10);
        let want = fluids[0].viscosity * s_rate * s_rate / 8.0 * 8.0; // mu S^2
        let got = rhs.get(i, j, 0, eq.energy());
        assert!((got - want).abs() < 1e-8 * want, "got {got} want {want}");
    }

    #[test]
    fn sinusoidal_shear_diffuses_toward_mean() {
        // u_x = sin(2 pi y): RHS_x = -mu k^2 sin(2 pi y) / rho ... in
        // momentum form RHS = mu * d2u/dy2 = -mu k^2 u.
        let n = 32;
        let (dom, widths, fluids, mut prim) = setup(n, 0.1);
        let eq = dom.eq;
        let kwave = 2.0 * std::f64::consts::PI;
        for k in 0..dom.ext(2) {
            for j in 0..dom.ext(1) {
                for i in 0..dom.ext(0) {
                    let y = (j as f64 - dom.pad(1) as f64 + 0.5) / n as f64;
                    prim.set(i, j, k, eq.cont(0), 1.0);
                    prim.set(i, j, k, eq.mom(0), (kwave * y).sin());
                    prim.set(i, j, k, eq.energy(), 1.0e5);
                }
            }
        }
        let mut rhs = StateField::zeros(dom);
        let ctx = Context::serial();
        add_viscous_fluxes(&ctx, &dom, &fluids, &prim, &widths, &mut rhs);
        for j in 0..n {
            let y = (j as f64 + 0.5) / n as f64;
            let u = (kwave * y).sin();
            let want = -fluids[0].viscosity * kwave * kwave * u;
            let got = rhs.get(8 + dom.pad(0), j + dom.pad(1), 0, eq.mom(0));
            assert!(
                (got - want).abs() < 0.02 * fluids[0].viscosity * kwave * kwave,
                "j={j}: got {got} want {want}"
            );
        }
    }

    #[test]
    fn mixture_viscosity_weighted_by_volume_fraction() {
        let eq = EqIdx::new(2, 1);
        let dom = Domain::new([8, 1, 1], 3, eq);
        let fluids = vec![
            Fluid::air().with_viscosity(2.0),
            Fluid::water().with_viscosity(10.0),
        ];
        let mut prim = StateField::zeros(dom);
        for i in 0..dom.ext(0) {
            prim.set(i, 0, 0, eq.cont(0), 1.2 * 0.25);
            prim.set(i, 0, 0, eq.cont(1), 1000.0 * 0.75);
            prim.set(i, 0, 0, eq.energy(), 1.0e5);
            prim.set(i, 0, 0, eq.adv(0), 0.25);
        }
        let mu = cell_mu(&dom, &fluids, &prim, 4, 0, 0);
        assert!((mu - (0.25 * 2.0 + 0.75 * 10.0)).abs() < 1e-12);
        assert!(is_viscous(&fluids));
        assert!(!is_viscous(&[Fluid::air()]));
    }
}
