//! Fluid definitions and the Allaire mixture rules.

use mfc_acc::Lane;
use serde::{Deserialize, Serialize};

/// One fluid component, closed by the stiffened-gas EOS
/// `p = (gamma - 1) rho e - gamma pi_inf`.
///
/// `pi_inf = 0` recovers an ideal gas; a large `pi_inf` models a nearly
/// incompressible liquid as a "high-pressure gas" (§II-A).
///
/// ```
/// use mfc_core::fluid::Fluid;
/// let air = Fluid::air();
/// assert!((air.sound_speed(1.225, 101325.0) - 340.3).abs() < 1.0);
/// let water = Fluid::water().with_viscosity(1.0e-3);
/// assert!(water.sound_speed(1000.0, 101325.0) > 1400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fluid {
    /// Ratio of specific heats.
    pub gamma: f64,
    /// Liquid stiffness (Pa).
    pub pi_inf: f64,
    /// Dynamic (shear) viscosity (Pa·s); 0 disables viscous fluxes for
    /// this component.
    #[serde(default)]
    pub viscosity: f64,
}

impl Fluid {
    pub fn new(gamma: f64, pi_inf: f64) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
        assert!(pi_inf >= 0.0, "pi_inf must be non-negative, got {pi_inf}");
        Fluid {
            gamma,
            pi_inf,
            viscosity: 0.0,
        }
    }

    /// Attach a dynamic viscosity.
    pub fn with_viscosity(mut self, mu: f64) -> Self {
        assert!(mu >= 0.0, "viscosity must be non-negative, got {mu}");
        self.viscosity = mu;
        self
    }

    /// Air at standard conditions.
    pub fn air() -> Self {
        Fluid::new(1.4, 0.0)
    }

    /// Water under the stiffened-gas fit of Coralic & Colonius
    /// (gamma = 6.12, pi_inf = 3.43e8 Pa).
    pub fn water() -> Self {
        Fluid::new(6.12, 3.43e8)
    }

    /// `1/(gamma-1)` — this fluid's contribution per unit volume fraction
    /// to the mixture Gamma.
    #[inline(always)]
    pub fn big_gamma(&self) -> f64 {
        1.0 / (self.gamma - 1.0)
    }

    /// `gamma pi_inf/(gamma-1)` — contribution to the mixture Pi.
    #[inline(always)]
    pub fn big_pi(&self) -> f64 {
        self.gamma * self.pi_inf / (self.gamma - 1.0)
    }

    /// Sound speed of the pure fluid at density `rho` and pressure `p`.
    #[inline(always)]
    pub fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        (self.gamma * (p + self.pi_inf) / rho).sqrt()
    }
}

/// Volume-fraction-weighted mixture coefficients of the Allaire model.
///
/// With `Gamma = sum_i alpha_i/(gamma_i - 1)` and
/// `Pi = sum_i alpha_i gamma_i pi_i/(gamma_i - 1)`, the mixture internal
/// energy is `rho e = Gamma p + Pi`, which is what keeps pressure free of
/// spurious oscillations across material interfaces.
/// Generic over [`Lane`] (defaulting to plain `f64`) so packed kernels
/// evaluate the rules on whole lane packets; every operation is
/// elementwise, so each lane performs exactly the scalar sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureRules<L = f64> {
    /// `sum alpha_i / (gamma_i - 1)`.
    pub big_gamma: L,
    /// `sum alpha_i gamma_i pi_i / (gamma_i - 1)`.
    pub big_pi: L,
}

impl<L: Lane> MixtureRules<L> {
    /// Evaluate the mixture coefficients for the given volume fractions.
    ///
    /// `alphas` must have one entry per fluid; entries should be in
    /// `[0, 1]` and sum to 1 (enforced elsewhere; small diffuse-interface
    /// excursions are tolerated).
    #[inline]
    pub fn evaluate(fluids: &[Fluid], alphas: &[L]) -> Self {
        debug_assert_eq!(fluids.len(), alphas.len());
        let mut big_gamma = L::splat(0.0);
        let mut big_pi = L::splat(0.0);
        for (f, &a) in fluids.iter().zip(alphas) {
            big_gamma = big_gamma + a * L::splat(f.big_gamma());
            big_pi = big_pi + a * L::splat(f.big_pi());
        }
        MixtureRules { big_gamma, big_pi }
    }

    /// Mixture pressure from total energy:
    /// `p = (rho E - 1/2 rho |u|^2 - Pi) / Gamma`.
    #[inline(always)]
    pub fn pressure(&self, rho_e_internal: L) -> L {
        (rho_e_internal - self.big_pi) / self.big_gamma
    }

    /// Mixture internal energy density `rho e = Gamma p + Pi`.
    #[inline(always)]
    pub fn internal_energy(&self, p: L) -> L {
        self.big_gamma * p + self.big_pi
    }

    /// Frozen mixture sound speed:
    /// `c^2 = (p (1 + Gamma) + Pi) / (Gamma rho)`.
    ///
    /// Reduces to `gamma (p + pi)/rho` for a single fluid.
    #[inline(always)]
    pub fn sound_speed(&self, rho: L, p: L) -> L {
        let c2 = (p * (L::splat(1.0) + self.big_gamma) + self.big_pi) / (self.big_gamma * rho);
        c2.max(L::splat(0.0)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_gas_sound_speed() {
        let air = Fluid::air();
        let c = air.sound_speed(1.225, 101325.0);
        assert!((c - 340.29).abs() < 0.5, "c = {c}");
    }

    #[test]
    fn water_is_stiff() {
        let w = Fluid::water();
        let c = w.sound_speed(1000.0, 101325.0);
        assert!(c > 1400.0 && c < 1500.0, "c = {c}");
    }

    #[test]
    fn single_fluid_mixture_recovers_pure_fluid() {
        let air = Fluid::air();
        let m = MixtureRules::evaluate(&[air], &[1.0]);
        let (rho, p) = (1.2, 1.0e5);
        assert!((m.sound_speed(rho, p) - air.sound_speed(rho, p)).abs() < 1e-9);
        // rho e round trip
        let rho_e = m.internal_energy(p);
        assert!((m.pressure(rho_e) - p).abs() < 1e-9);
    }

    #[test]
    fn mixture_coefficients_interpolate_linearly() {
        let fluids = [Fluid::air(), Fluid::water()];
        let m_half = MixtureRules::evaluate(&fluids, &[0.5, 0.5]);
        let expect_gamma = 0.5 * fluids[0].big_gamma() + 0.5 * fluids[1].big_gamma();
        let expect_pi = 0.5 * fluids[0].big_pi() + 0.5 * fluids[1].big_pi();
        assert!((m_half.big_gamma - expect_gamma).abs() < 1e-12);
        assert!((m_half.big_pi - expect_pi).abs() < 1e-6);
    }

    #[test]
    fn pressure_energy_round_trip_two_fluid() {
        let fluids = [Fluid::air(), Fluid::water()];
        let m = MixtureRules::evaluate(&fluids, &[0.3, 0.7]);
        for p in [1.0e4, 1.0e5, 2.0e7] {
            let rho_e = m.internal_energy(p);
            assert!((m.pressure(rho_e) - p).abs() < 1e-6 * p.max(1.0));
        }
    }

    #[test]
    #[should_panic]
    fn gamma_at_most_one_rejected() {
        let _ = Fluid::new(1.0, 0.0);
    }
}
