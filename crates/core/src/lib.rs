//! MFC-style compressible multiphase flow solver.
//!
//! This crate reimplements, from scratch in Rust, the numerics of MFC
//! (Bryngelson et al., CPC 2021) as exercised by the SC'24 OpenACC
//! offloading paper:
//!
//! * the 5-equation Allaire diffuse-interface model for N immiscible
//!   fluids closed by the stiffened-gas equation of state ([`fluid`],
//!   [`eos`]),
//! * third/fifth-order WENO reconstruction ([`weno`]),
//! * the HLLC approximate Riemann solver, with HLL/Rusanov baselines and an
//!   exact stiffened-gas Riemann solver as the validation oracle
//!   ([`riemann`]),
//! * dimension-by-dimension finite-volume right-hand sides with coalesced
//!   sweep buffers ([`rhs`]), SSP Runge–Kutta time stepping ([`time`]),
//! * uniform and tanh-stretched grids ([`grid`]), periodic / reflective /
//!   transmissive boundaries ([`bc`]), axisymmetric geometric sources
//!   ([`axisym`]), the azimuthal low-pass filter for cylindrical grids
//!   ([`filter`]), and a ghost-cell immersed boundary method ([`ibm`]),
//! * a single-device driver ([`solver`]) and a distributed driver running
//!   the real pack/`sendrecv`/unpack halo exchange on simulated ranks
//!   ([`par`]),
//! * a numerical-health watchdog fused into the primitive-conversion pass
//!   and a graceful-degradation recovery ladder that retries faulted steps
//!   under progressively more dissipative policies ([`health`],
//!   [`recovery`]), with crash-safe CRC-checked checkpoints ([`restart`]),
//! * initial-condition patches for the paper's cases — shock tubes, shock
//!   droplet, shock bubble cloud, airfoil flow ([`case`]),
//! * conservation/error diagnostics and grind-time accounting ([`diag`]).
//!
//! Hot kernels are launched through [`mfc_acc`]'s directive-style executor,
//! so every WENO/Riemann/packing launch lands in a profiling ledger with
//! analytic FLOP/byte counts — the data the performance model uses to
//! regenerate the paper's rooflines and breakdowns.

pub mod axisym;
pub mod bc;
pub mod case;
pub mod cfl;
pub mod diag;
pub mod domain;
pub mod eos;
pub mod eqidx;
pub mod filter;
pub mod fluid;
pub mod fused;
pub mod grid;
pub mod health;
pub mod ibm;
pub mod limiter;
pub mod output;
pub mod par;
pub mod probes;
pub mod recovery;
pub mod restart;
pub mod rhs;
pub mod riemann;
pub mod solver;
pub mod state;
pub mod time;
pub mod viscous;
pub mod weno;

pub use case::{CaseBuilder, Patch};
pub use domain::Domain;
pub use eqidx::EqIdx;
pub use fluid::{Fluid, MixtureRules};
pub use grid::{Grid, Grid1D};
pub use health::{HealthConfig, Violation, ViolationKind};
pub use recovery::{RecoveryAction, RecoveryPolicy, SolverError, StepFault, StepOutcome};
pub use solver::{Solver, SolverConfig, StepControl};
pub use state::StateField;
pub use time::TimeScheme;
pub use weno::WenoOrder;
