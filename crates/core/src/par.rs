//! Distributed solver: 3-D block decomposition + halo exchange (§III-A).
//!
//! Runs the same numerics as [`crate::solver::Solver`] on simulated ranks
//! ([`mfc_mpsim`]), with the paper's communication structure: per
//! dimension, each rank packs its boundary slabs into 1-D buffers,
//! `sendrecv`s with its neighbours, and unpacks into ghost layers.  The
//! exchange order (x → y → z, full transverse extents) reproduces the
//! serial ghost-fill sequence exactly, so a distributed run is *bitwise*
//! identical to the single-rank run — which the integration tests assert.
//!
//! Without GPU-aware MPI ([`Staging::HostStaged`]), every halo buffer pays
//! a device→host copy before the send and a host→device copy after the
//! receive; both land in the transfer ledger, and their modelled cost is
//! Fig. 4's gap.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mfc_acc::{Context, Ledger, QueueSet, ResilienceEvent, ResilienceEventKind, TransferDirection};
use mfc_mpsim::{
    best_block_dims, validate_halo_extents, CartComm, Comm, CommFault, FailurePolicy, FaultCtx,
    SpareWake, Staging, World,
};
use mfc_trace::{Category, Tracer};
use serde::{Deserialize, Serialize};

use crate::bc::{apply_bcs, BcSpec};
use crate::case::CaseBuilder;
use crate::cfl;
use crate::domain::Domain;
use crate::fluid::Fluid;
use crate::grid::{Grid, Grid1D};
use crate::health::{scan_and_convert, HealthConfig, Violation};
use crate::recovery::{RecoveryPolicy, RecoveryState};
use crate::rhs::{
    compute_rhs, rhs_overlap_begin, rhs_overlap_finish, rhs_overlap_interior_axis, OverlapPlan,
    RhsConfig, RhsWorkspace,
};
use crate::solver::{DtMode, SolverConfig};
use crate::state::StateField;
use crate::time::{rk_step, RkWorkspace};

/// How halo buffers are exchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ExchangeMode {
    /// Paired `MPI_Sendrecv`, the paper's default path.
    Sendrecv,
    /// Post all receives, then all sends, then complete (`MPI_Irecv` /
    /// `MPI_Isend` / `MPI_Waitall`) — the overlap-friendly variant.
    NonBlocking,
    /// Per axis, post the nonblocking exchange and run the interior RHS
    /// sweep on an async queue while the messages are in flight; after
    /// the drain, finish the boundary shells. The OpenACC `async(queue)`
    /// overlap of the paper's §III-B, bitwise identical to the other
    /// modes (the same per-face arithmetic runs in the same order).
    Overlapped,
}

/// An assembled ghost-free global field, x-fastest then y, z, equation.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalField {
    pub n: [usize; 3],
    pub neq: usize,
    pub data: Vec<f64>,
}

impl GlobalField {
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize, e: usize) -> f64 {
        self.data[i + self.n[0] * (j + self.n[1] * (k + self.n[2] * e))]
    }

    /// Largest absolute difference from another field.
    pub fn max_abs_diff(&self, other: &GlobalField) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Per-rank communication statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    pub messages: u64,
    pub bytes: u64,
}

/// Run `steps` time steps of `case` on `n_ranks` simulated ranks; returns
/// the assembled global conservative state and rank-0's comm statistics.
pub fn run_distributed(
    case: &CaseBuilder,
    cfg: SolverConfig,
    n_ranks: usize,
    steps: usize,
    staging: Staging,
) -> Result<(GlobalField, CommStats), ResilienceError> {
    run_distributed_with_mode(case, cfg, n_ranks, steps, staging, ExchangeMode::Sendrecv)
}

/// [`run_distributed`] with an explicit halo-exchange mode.
///
/// Step acceptance is a collective decision: each rank scans its block's
/// health after the update and an allreduce-min over the per-rank verdicts
/// (mirroring the global `dt` reduction) makes every rank agree — so on a
/// numerical fault all ranks return the same typed error in lockstep
/// instead of one rank panicking while its peers hang in a receive.
pub fn run_distributed_with_mode(
    case: &CaseBuilder,
    cfg: SolverConfig,
    n_ranks: usize,
    steps: usize,
    staging: Staging,
    mode: ExchangeMode,
) -> Result<(GlobalField, CommStats), ResilienceError> {
    run_distributed_traced(case, cfg, n_ranks, steps, staging, mode, None)
}

/// [`run_distributed_with_mode`] with an optional span tracer: each rank
/// attaches its per-rank [`mfc_trace::TraceHandle`] to both the launch
/// context (kernel events) and the communicator (message events), wraps
/// the step phases in spans, and flushes its kernel ledger into the trace
/// at the end — `mfc-run --trace` builds its per-rank timelines from this.
pub fn run_distributed_traced(
    case: &CaseBuilder,
    cfg: SolverConfig,
    n_ranks: usize,
    steps: usize,
    staging: Staging,
    mode: ExchangeMode,
    tracer: Option<Arc<Tracer>>,
) -> Result<(GlobalField, CommStats), ResilienceError> {
    let eq = case.eq();
    let ng = cfg.rhs.order.ghost_layers().max(1);
    let global_n = case.cells;
    let dims = best_block_dims(n_ranks, global_n);
    assert_eq!(
        dims.iter().product::<usize>(),
        n_ranks,
        "rank count must factorize onto the grid"
    );
    validate_halo_extents(dims, global_n, ng).map_err(|e| ResilienceError::Decomposition {
        detail: e.to_string(),
    })?;
    let periodic = [
        case.bc.axis_periodic(0),
        case.bc.axis_periodic(1),
        case.bc.axis_periodic(2),
    ];
    let global_grid = case.grid();

    let mut results = World::run(n_ranks, |mut comm| {
        let mut ctx = Context::with_workers(cfg.workers).with_vector_width(cfg.vector_width);
        if let Some(tr) = &tracer {
            let h = tr.handle(comm.rank());
            comm.set_tracer(Arc::clone(&h));
            ctx.set_tracer(h);
        }
        let cart = CartComm::new(comm.rank(), dims, periodic);
        // Local block.
        let mut n = [1usize; 3];
        let mut off = [0usize; 3];
        for d in 0..eq.ndim() {
            let (o, l) = cart.local_extent(d, global_n[d]);
            off[d] = o;
            n[d] = l;
        }
        let dom = Domain::new(n, ng, eq);
        let local_grid = Grid {
            x: global_grid.x.slice(off[0], n[0]),
            y: if eq.ndim() >= 2 {
                global_grid.y.slice(off[1], n[1])
            } else {
                Grid1D::collapsed()
            },
            z: if eq.ndim() >= 3 {
                global_grid.z.slice(off[2], n[2])
            } else {
                Grid1D::collapsed()
            },
        };
        let mut q = case.init_block(&ctx, &dom, &global_grid, off);
        let mut ws = RhsWorkspace::new(dom, &local_grid);
        let mut rk = RkWorkspace::new(&q);
        let mut stats = CommStats::default();

        // Faces whose ghosts come from a neighbour rather than physical BCs.
        let mut skip = [(false, false); 3];
        for (d, s) in skip.iter_mut().enumerate().take(eq.ndim()) {
            *s = (
                cart.neighbor(d, -1).is_some(),
                cart.neighbor(d, 1).is_some(),
            );
        }

        let widths = [
            local_grid.x.widths_with_ghosts(dom.pad(0)),
            local_grid.y.widths_with_ghosts(dom.pad(1)),
            local_grid.z.widths_with_ghosts(dom.pad(2)),
        ];

        let plan = OverlapPlan::new(&dom);

        let health = HealthConfig::default();
        for s in 0..steps {
            let _step_span = ctx.span("step", Category::Phase);
            // Global dt. A locally degenerate CFL reduction (all-NaN or
            // vacuum state) is encoded as a negative dt so the min-
            // reduction carries the verdict to every rank.
            let _dt_span = ctx.span("dt_reduce", Category::Phase);
            let dt = match cfg.dt {
                DtMode::Fixed(dt) => dt,
                DtMode::Cfl(c) => {
                    crate::state::cons_to_prim_field(&ctx, &case.fluids, &q, &mut ws.prim);
                    let local = cfl::try_max_dt_geom(
                        &ctx,
                        &case.fluids,
                        &ws.prim,
                        [&widths[0], &widths[1], &widths[2]],
                        c,
                        None,
                    )
                    .unwrap_or(-1.0);
                    comm.allreduce_min(local)
                }
            };
            drop(_dt_span);
            ctx.trace_counter("dt", dt);
            if dt <= 0.0 {
                return Err(ResilienceError::Numerical {
                    rank: comm.rank(),
                    step: s as u64,
                    detail: "degenerate wave-speed rate in the CFL reduction".into(),
                    violation: None,
                });
            }
            {
                let _rk_span = ctx.span("rk_stages", Category::Phase);
                let (comm_ref, stats_ref) = (&mut comm, &mut stats);
                let fluids = &case.fluids;
                let bc = &case.bc;
                let ws_ref = &mut ws;
                let ctx_ref = &ctx;
                rk_step(cfg.scheme, dt, &mut q, &mut rk, |q, rhs| {
                    if mode == ExchangeMode::Overlapped {
                        overlapped_halo_rhs(
                            ctx_ref, comm_ref, &cart, q, staging, stats_ref, &cfg.rhs, fluids, bc,
                            skip, &plan, ws_ref, rhs, false,
                        )
                        .expect("plain (non-policied) waits cannot fault");
                    } else {
                        exchange_halos(ctx_ref, comm_ref, &cart, q, staging, mode, stats_ref);
                        apply_bcs(ctx_ref, q, bc, skip);
                        compute_rhs(ctx_ref, &cfg.rhs, fluids, q, ws_ref, rhs);
                    }
                });
            }
            // Collective step acceptance: the watchdog's verdict travels
            // the same allreduce-min path as the global dt.
            let _health_span = ctx.span("health_verdict", Category::Phase);
            let viol = scan_and_convert(&ctx, &case.fluids, &health, &q, &mut ws.prim);
            let verdict = comm.allreduce_min(if viol.is_some() { 0.0 } else { 1.0 });
            if verdict < 1.0 {
                return Err(ResilienceError::Numerical {
                    rank: comm.rank(),
                    step: s as u64,
                    detail: viol
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "a peer rank reported a nonphysical state".into()),
                    violation: viol,
                });
            }
        }

        ctx.flush_ledger_to_trace();

        // Ship the interior home.
        let mut block = Vec::with_capacity(dom.interior_cells() * eq.neq());
        for e in 0..eq.neq() {
            for (i, j, k) in dom.interior() {
                block.push(q.get(i, j, k, e));
            }
        }
        let gathered = comm.gather(block);
        Ok((gathered, off, n, stats))
    });

    // Assemble on the host side from rank 0's gather. On a numerical
    // abort every rank returns an error; prefer the one carrying the
    // offending-cell report.
    if results.iter().any(|r| r.is_err()) {
        let mut first = None;
        for r in results {
            if let Err(e) = r {
                if matches!(
                    &e,
                    ResilienceError::Numerical {
                        violation: Some(_),
                        ..
                    }
                ) {
                    return Err(e);
                }
                first.get_or_insert(e);
            }
        }
        return Err(first.expect("at least one rank errored"));
    }
    let (gathered, _, _, stats0) = results.remove(0).expect("checked above");
    let blocks = gathered.expect("rank 0 holds the gather");
    // Sanity-check the extents the ranks reported against the same
    // arithmetic recomputed host-side (which `assemble_global` uses).
    for (idx, reported) in results.iter().enumerate() {
        let cart = CartComm::new(idx + 1, dims, periodic);
        let mut off = [0usize; 3];
        let mut n = [1usize; 3];
        for d in 0..eq.ndim() {
            let (o, l) = cart.local_extent(d, global_n[d]);
            off[d] = o;
            n[d] = l;
        }
        let reported = reported.as_ref().expect("checked above");
        debug_assert_eq!(reported.1, off);
        debug_assert_eq!(reported.2, n);
    }
    Ok((
        assemble_global(eq, global_n, dims, periodic, &blocks),
        stats0,
    ))
}

/// Scatter per-rank interior blocks (in gather order) into one global
/// field, recomputing each rank's extents from the decomposition.
fn assemble_global(
    eq: crate::eqidx::EqIdx,
    global_n: [usize; 3],
    dims: [usize; 3],
    periodic: [bool; 3],
    blocks: &[Vec<f64>],
) -> GlobalField {
    let neq = eq.neq();
    let mut data = vec![0.0; global_n[0] * global_n[1] * global_n[2] * neq];
    for (rank, block) in blocks.iter().enumerate() {
        let cart = CartComm::new(rank, dims, periodic);
        let mut off = [0usize; 3];
        let mut n = [1usize; 3];
        for d in 0..eq.ndim() {
            let (o, l) = cart.local_extent(d, global_n[d]);
            off[d] = o;
            n[d] = l;
        }
        let mut it = block.iter();
        for e in 0..neq {
            for k in 0..n[2] {
                for j in 0..n[1] {
                    for i in 0..n[0] {
                        let gi = off[0] + i;
                        let gj = off[1] + j;
                        let gk = off[2] + k;
                        data[gi + global_n[0] * (gj + global_n[1] * (gk + global_n[2] * e))] =
                            *it.next().unwrap();
                    }
                }
            }
        }
    }
    GlobalField {
        n: global_n,
        neq,
        data,
    }
}

/// Options for [`run_distributed_resilient`].
#[derive(Debug, Clone)]
pub struct ResilienceOpts {
    /// Steps between checkpoint waves; 0 disables checkpointing entirely,
    /// in which case a rank death has nothing to roll back to and the run
    /// ends with [`ResilienceError::Unrecoverable`] instead of hanging.
    pub checkpoint_every: u64,
    /// Directory receiving the per-rank `ckpt_r{rank}_w{wave}.bin` files.
    pub ckpt_dir: PathBuf,
    /// Fault script plus the shared failure-detector board; `None` runs
    /// the same driver fault-free (plain blocking semantics).
    pub faults: Option<Arc<FaultCtx>>,
    /// Ledger receiving checkpoint / fault-detection / rollback / replay
    /// events with per-event wall timing.
    pub events: Option<Arc<Ledger>>,
    /// Graceful-degradation recovery ladder for numerical faults; `None`
    /// aborts the run on the first health violation.
    pub recovery: Option<RecoveryPolicy>,
    /// Health-watchdog tolerances.
    pub health: HealthConfig,
    /// Span tracer: each rank attaches a per-rank timeline recording step
    /// phases, checkpoint waves, rollbacks, and every kernel launch and
    /// message (`mfc-run --trace`). `None` keeps the untraced fast path.
    pub trace: Option<Arc<Tracer>>,
    /// Halo-exchange mode. [`ExchangeMode::Sendrecv`] and
    /// [`ExchangeMode::NonBlocking`] both run the policied paired
    /// exchange; [`ExchangeMode::Overlapped`] hides the exchange behind
    /// the interior sweeps with policied waits at the drain.
    pub exchange: ExchangeMode,
    /// What the survivors do when a rank death is *permanent* (the
    /// simulated process never restarts): resurrect in place (the
    /// transient default, which makes a permanent loss unrecoverable),
    /// shrink the communicator and redistribute the last committed wave,
    /// or promote a hot spare into the vacant slot.
    pub failure_policy: FailurePolicy,
    /// Hot spare ranks provisioned outside the decomposition, idle until
    /// [`FailurePolicy::Spare`] promotes one. Ignored fault-free.
    pub spares: usize,
    /// Checkpoint retention: keep the newest `ckpt_keep` committed waves
    /// per rank, garbage-collecting older files after each commit.
    /// Clamped to at least 1 — the newest committed wave is never
    /// deleted.
    pub ckpt_keep: usize,
}

impl ResilienceOpts {
    /// Fault-free checkpointing setup (no fault script, no event ledger).
    pub fn fault_free(ckpt_dir: impl Into<PathBuf>, checkpoint_every: u64) -> Self {
        ResilienceOpts {
            checkpoint_every,
            ckpt_dir: ckpt_dir.into(),
            faults: None,
            events: None,
            recovery: None,
            health: HealthConfig::default(),
            trace: None,
            exchange: ExchangeMode::Sendrecv,
            failure_policy: FailurePolicy::Revive,
            spares: 0,
            ckpt_keep: 2,
        }
    }
}

/// Terminal failure of a resilient run. Every rank returns the same
/// variant (the decision is taken from shared board state after the
/// recovery rendezvous, or from a collective health verdict), so the run
/// ends cleanly rather than hanging.
#[derive(Debug, Clone, PartialEq)]
pub enum ResilienceError {
    /// A fault was detected but no checkpoint wave had been committed,
    /// so there is nothing to roll back to.
    Unrecoverable { rank: usize, detail: String },
    /// The numerical-health watchdog rejected a step and the recovery
    /// ladder (if any) was exhausted. `violation` carries the offending
    /// cell on the rank that observed it locally.
    Numerical {
        rank: usize,
        step: u64,
        detail: String,
        violation: Option<Violation>,
    },
    /// The rank layout makes some block thinner than the halo depth along
    /// a split axis ([`mfc_mpsim::DecompositionError`]): its send slab
    /// would overlap the opposite ghost region. Rejected host-side before
    /// any rank is spawned.
    Decomposition { detail: String },
    /// A checkpoint write (or the checkpoint directory creation) failed.
    /// The abort is collective: every rank learns of the failed write
    /// through the commit reduction and returns this in lockstep.
    Io { rank: usize, detail: String },
    /// The fault script or resilience configuration is inconsistent with
    /// the run — a death targets a rank outside the world, the scripted
    /// permanent deaths leave no survivor quorum, or the fault board was
    /// sized without the spare pool. Rejected host-side.
    Plan { detail: String },
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::Unrecoverable { rank, detail } => {
                write!(f, "unrecoverable fault (rank {rank}): {detail}")
            }
            ResilienceError::Numerical {
                rank, step, detail, ..
            } => {
                write!(f, "numerical abort at step {step} (rank {rank}): {detail}")
            }
            ResilienceError::Decomposition { detail } => {
                write!(f, "invalid decomposition: {detail}")
            }
            ResilienceError::Io { rank, detail } => {
                write!(f, "checkpoint I/O failure (rank {rank}): {detail}")
            }
            ResilienceError::Plan { detail } => {
                write!(f, "invalid fault plan: {detail}")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// What one rank's closure returns from a resilient run: the gathered
/// per-rank blocks on rank 0 (`None` elsewhere) plus its comm counters.
type RankOutcome = Result<(Option<Vec<Vec<f64>>>, CommStats), ResilienceError>;

/// What a rank does after a policied operation fails or it executes a
/// scripted death: roll back, or give up because nothing was committed.
enum RecoveryOutcome {
    /// Rolled back to this wave; resume stepping from its header.
    RolledBack { wave: u64 },
    /// No committed wave exists — the run is unrecoverable.
    Abort,
}

/// One decomposition epoch in a resilient run: checkpoint waves from
/// `first_wave` onward were written by `size` ranks laid out as `dims`.
/// A shrink appends a new entry, so a rollback can tell whether a wave's
/// shards match the current layout or need cross-shard redistribution.
#[derive(Debug, Clone, Copy)]
struct Era {
    first_wave: u64,
    dims: [usize; 3],
    size: usize,
}

/// Fault-tolerant [`run_distributed`]: same numerics and decomposition,
/// but every step's collectives and halo exchanges go through the
/// fault-aware ("policied") path, the conservative state is checkpointed
/// every `opts.checkpoint_every` steps, and any detected failure —
/// message loss beyond the retry budget, a silent rank, or a scripted
/// rank death — triggers a global rollback to the last committed
/// checkpoint wave and a replay.
///
/// Because checkpoints are bitwise snapshots and the numerics are
/// deterministic, a faulty run that recovers produces output **bitwise
/// identical** to a fault-free run — the resilience tests assert this.
pub fn run_distributed_resilient(
    case: &CaseBuilder,
    cfg: SolverConfig,
    n_ranks: usize,
    steps: usize,
    staging: Staging,
    opts: &ResilienceOpts,
) -> Result<(GlobalField, CommStats), ResilienceError> {
    let eq = case.eq();
    let ng = cfg.rhs.order.ghost_layers().max(1);
    let global_n = case.cells;
    let dims = best_block_dims(n_ranks, global_n);
    assert_eq!(
        dims.iter().product::<usize>(),
        n_ranks,
        "rank count must factorize onto the grid"
    );
    validate_halo_extents(dims, global_n, ng).map_err(|e| ResilienceError::Decomposition {
        detail: e.to_string(),
    })?;
    let periodic = [
        case.bc.axis_periodic(0),
        case.bc.axis_periodic(1),
        case.bc.axis_periodic(2),
    ];
    let global_grid = case.grid();
    if let Some(faults) = &opts.faults {
        // Reject plans that cannot end well before any rank is spawned: a
        // death outside the world would never fire (the run would hang
        // waiting for it under Spare), and permanent deaths that leave no
        // survivor quorum have no one left to reach consensus.
        faults
            .plan
            .validate_for(n_ranks)
            .map_err(|detail| ResilienceError::Plan { detail })?;
        if faults.board.size() != n_ranks + opts.spares {
            return Err(ResilienceError::Plan {
                detail: format!(
                    "fault board sized for {} physical ranks but the run needs {} \
                     ({n_ranks} active + {} spare); build it with FaultCtx::new_with_spares",
                    faults.board.size(),
                    n_ranks + opts.spares,
                    opts.spares
                ),
            });
        }
        faults.board.set_policy(opts.failure_policy);
    }
    if opts.checkpoint_every > 0 {
        std::fs::create_dir_all(&opts.ckpt_dir).map_err(|e| ResilienceError::Io {
            rank: 0,
            detail: format!("creating checkpoint dir {}: {e}", opts.ckpt_dir.display()),
        })?;
    }
    let total_steps = steps as u64;
    let every = opts.checkpoint_every;

    let rank_body = |mut comm: &mut Comm| -> RankOutcome {
        let phys = comm.phys_rank();
        let mut ctx = Context::with_workers(cfg.workers).with_vector_width(cfg.vector_width);
        if let Some(tr) = &opts.trace {
            let h = tr.handle(phys);
            comm.set_tracer(Arc::clone(&h));
            ctx.set_tracer(h);
        }
        let mut stats = CommStats::default();
        let mut needs_recovery = false;
        // Set once when a hot spare is woken into a vacant slot; consumed
        // after the rendezvous to record the promotion exactly once.
        let mut promoted_into: Option<usize> = None;

        if comm.is_spare() {
            // Hot spares idle outside the decomposition until the board
            // either promotes one into a dead rank's slot or the run ends.
            let faults = comm
                .fault_ctx()
                .expect("spare ranks require a fault ctx")
                .clone();
            match faults.board.spare_wait(phys) {
                SpareWake::Shutdown => {
                    ctx.flush_ledger_to_trace();
                    return Ok((None, stats));
                }
                SpareWake::Promote { slot } => {
                    promoted_into = Some(slot);
                    needs_recovery = true;
                }
            }
        }

        // Logical rank: the slot in the current epoch's roster. It moves
        // when the communicator shrinks or a spare is promoted, so every
        // use goes through the cell.
        let me = Cell::new(promoted_into.unwrap_or_else(|| comm.rank()));
        // Current decomposition epoch; a shrink recomputes both.
        let mut dims_cur = dims;
        let mut size_cur = n_ranks;

        let build_layout = |logical: usize, dims_now: [usize; 3]| {
            let cart = CartComm::new(logical, dims_now, periodic);
            let mut n = [1usize; 3];
            let mut off = [0usize; 3];
            for d in 0..eq.ndim() {
                let (o, l) = cart.local_extent(d, global_n[d]);
                off[d] = o;
                n[d] = l;
            }
            let dom = Domain::new(n, ng, eq);
            let local_grid = Grid {
                x: global_grid.x.slice(off[0], n[0]),
                y: if eq.ndim() >= 2 {
                    global_grid.y.slice(off[1], n[1])
                } else {
                    Grid1D::collapsed()
                },
                z: if eq.ndim() >= 3 {
                    global_grid.z.slice(off[2], n[2])
                } else {
                    Grid1D::collapsed()
                },
            };
            let mut skip = [(false, false); 3];
            for (d, s) in skip.iter_mut().enumerate().take(eq.ndim()) {
                *s = (
                    cart.neighbor(d, -1).is_some(),
                    cart.neighbor(d, 1).is_some(),
                );
            }
            let widths = [
                local_grid.x.widths_with_ghosts(dom.pad(0)),
                local_grid.y.widths_with_ghosts(dom.pad(1)),
                local_grid.z.widths_with_ghosts(dom.pad(2)),
            ];
            (cart, dom, local_grid, off, skip, widths)
        };

        let (mut cart, mut dom, mut local_grid, mut off, mut skip, mut widths) =
            build_layout(me.get(), dims_cur);
        let mut q = case.init_block(&ctx, &dom, &global_grid, off);
        let mut ws = RhsWorkspace::new(dom, &local_grid);
        let mut rk = RkWorkspace::new(&q);
        let mut plan = OverlapPlan::new(&dom);

        let note =
            |kind: ResilienceEventKind, step: u64, wave: u64, wall: Duration, detail: String| {
                if let Some(ledger) = &opts.events {
                    ledger.record_event(ResilienceEvent {
                        kind,
                        rank: me.get(),
                        step,
                        wave,
                        wall,
                        detail,
                    });
                }
            };

        let mut t = 0.0f64;
        let mut step: u64 = 0;
        let mut next_wave: u64 = 0;
        let mut deaths_done: HashSet<usize> = HashSet::new();
        // Set after a rollback: (pre-fault step to replay through, timer).
        let mut replay_target: Option<(u64, Instant)> = None;
        // Which decomposition wrote each checkpoint wave: waves at or past
        // `first_wave` of the last entry belong to the current epoch, so a
        // rollback knows whether a wave loads directly or must be
        // redistributed from the old layout's shards. Deterministic and
        // identical on every survivor.
        let mut eras: Vec<Era> = vec![Era {
            first_wave: 0,
            dims,
            size: n_ranks,
        }];
        // Numerical-recovery ladder state and the q^n retry snapshot.
        let policy = opts.recovery.clone();
        let mut rec = RecoveryState::default();
        let mut attempts: u32 = 0;
        let mut q_save = q.clone();

        'steps: while step < total_steps {
            // ---- Recovery: rendezvous, reconfigure, roll back, resume
            // (or abort). ----
            if needs_recovery {
                needs_recovery = false;
                let _recovery_span = ctx.span("rollback", Category::Recovery);
                let faults = comm
                    .fault_ctx()
                    .expect("recovery requires a fault ctx")
                    .clone();
                let fault_step = step;
                let t0 = Instant::now();
                // Everyone meets at the rendezvous. A transiently dead
                // rank is revived in place (a restarted process); a
                // permanently dead one never arrives, and the survivors'
                // consensus either shrinks the roster around the hole or
                // waits for a promoted spare to fill it. The generation
                // bump fences off every pre-fault message still in flight.
                let reconf = faults.board.rendezvous();
                comm.finish_recovery(reconf.gen);
                if !reconf.lost.is_empty() {
                    let detail = match faults.board.policy() {
                        FailurePolicy::Revive => format!(
                            "rank slot(s) {:?} lost permanently under FailurePolicy::Revive \
                             (no shrink, no spares)",
                            reconf.lost
                        ),
                        FailurePolicy::Spare => format!(
                            "spare pool exhausted with rank slot(s) {:?} still vacant",
                            reconf.lost
                        ),
                        FailurePolicy::Shrink => {
                            format!("rank slot(s) {:?} unrecoverable", reconf.lost)
                        }
                    };
                    return Err(ResilienceError::Unrecoverable {
                        rank: me.get(),
                        detail,
                    });
                }
                let prev_size = comm.size();
                comm.adopt_roster(reconf.roster);
                me.set(comm.rank());
                let shrunk = comm.size() < prev_size;
                if shrunk {
                    // Survivor consensus reached: recompute the Cartesian
                    // decomposition for the smaller world and rebuild
                    // every layout-derived structure. Deterministic on
                    // each survivor, so a rejection is collective.
                    let _shrink_span = ctx.span("shrink", Category::Recovery);
                    size_cur = comm.size();
                    dims_cur = best_block_dims(size_cur, global_n);
                    if let Err(e) = validate_halo_extents(dims_cur, global_n, ng) {
                        return Err(ResilienceError::Decomposition {
                            detail: format!("after shrinking to {size_cur} ranks: {e}"),
                        });
                    }
                    let built = build_layout(me.get(), dims_cur);
                    cart = built.0;
                    dom = built.1;
                    local_grid = built.2;
                    off = built.3;
                    skip = built.4;
                    widths = built.5;
                    ws = RhsWorkspace::new(dom, &local_grid);
                    plan = OverlapPlan::new(&dom);
                    if me.get() == 0 {
                        note(
                            ResilienceEventKind::Shrink,
                            step,
                            faults.board.committed_wave().unwrap_or(0),
                            t0.elapsed(),
                            format!(
                                "survivor consensus: {prev_size} -> {size_cur} ranks, \
                                 dims {dims_cur:?}"
                            ),
                        );
                    }
                }
                if let Some(slot) = promoted_into.take() {
                    let _promote_span = ctx.span("promote_spare", Category::Recovery);
                    note(
                        ResilienceEventKind::PromoteSpare,
                        step,
                        faults.board.committed_wave().unwrap_or(0),
                        t0.elapsed(),
                        format!("physical rank {phys} promoted into logical slot {slot}"),
                    );
                }
                let outcome = match faults.board.committed_wave() {
                    None => RecoveryOutcome::Abort,
                    Some(wave) => RecoveryOutcome::RolledBack { wave },
                };
                match outcome {
                    RecoveryOutcome::Abort => {
                        return Err(ResilienceError::Unrecoverable {
                            rank: me.get(),
                            detail: "fault before any committed checkpoint wave".into(),
                        });
                    }
                    RecoveryOutcome::RolledBack { wave } => {
                        // Walk back from the committed wave until one loads
                        // on *every* rank: a truncated or bit-flipped file
                        // fails its CRC locally, and the collective min
                        // makes all ranks skip that wave together. A wave
                        // written by an older (pre-shrink) decomposition is
                        // reassembled cross-shard: each new owner loads
                        // exactly the cells it now owns from the old
                        // layout's files.
                        let mut candidate = wave as i64;
                        let (header, restored, loaded_wave, redistributed) = loop {
                            if candidate < 0 {
                                return Err(ResilienceError::Unrecoverable {
                                    rank: me.get(),
                                    detail: "no loadable checkpoint wave (all corrupt)".into(),
                                });
                            }
                            let cand = candidate as u64;
                            let era = *eras
                                .iter()
                                .rev()
                                .find(|e| e.first_wave <= cand)
                                .expect("era list covers wave 0");
                            let same_layout = era.dims == dims_cur && era.size == size_cur;
                            let local = if same_layout {
                                let path =
                                    crate::restart::wave_path(&opts.ckpt_dir, me.get(), cand);
                                crate::restart::load_checkpoint(&path)
                            } else {
                                let _redist_span = ctx.span("redistribute", Category::Recovery);
                                crate::restart::load_redistributed(
                                    &opts.ckpt_dir,
                                    cand,
                                    era.dims,
                                    era.size,
                                    global_n,
                                    dom,
                                    off,
                                )
                            };
                            // Post-rendezvous every roster slot is alive
                            // again, so the plain (non-policied)
                            // collective is safe.
                            let ok = comm.allreduce_min(if local.is_ok() { 1.0 } else { 0.0 });
                            if ok >= 1.0 {
                                let (h, r) = local.expect("agreed loadable");
                                break (h, r, cand, !same_layout);
                            }
                            if me.get() == 0 {
                                let why = match local {
                                    Ok(_) => "a peer rank's block failed".to_string(),
                                    Err(e) => e.to_string(),
                                };
                                note(
                                    ResilienceEventKind::Rollback,
                                    step,
                                    cand,
                                    t0.elapsed(),
                                    format!("wave {candidate} unreadable, skipping: {why}"),
                                );
                            }
                            candidate -= 1;
                        };
                        debug_assert_eq!(header.domain(), dom);
                        q = restored;
                        t = header.t;
                        step = header.steps;
                        next_wave = loaded_wave + 1;
                        if redistributed && me.get() == 0 {
                            let era = eras
                                .iter()
                                .rev()
                                .find(|e| e.first_wave <= loaded_wave)
                                .expect("era list covers wave 0");
                            note(
                                ResilienceEventKind::Redistribute,
                                step,
                                loaded_wave,
                                t0.elapsed(),
                                format!(
                                    "wave {loaded_wave} re-sharded from {} ranks {:?} onto \
                                     {size_cur} ranks {dims_cur:?}",
                                    era.size, era.dims
                                ),
                            );
                        }
                        if shrunk {
                            // Checkpoints from here on belong to the new
                            // decomposition; their wave numbers strictly
                            // exceed every pre-shrink wave.
                            eras.push(Era {
                                first_wave: next_wave,
                                dims: dims_cur,
                                size: size_cur,
                            });
                            rk = RkWorkspace::new(&q);
                            q_save = q.clone();
                        }
                        // The replay is a fresh deterministic run from the
                        // wave: restart the ladder state with it.
                        rec = RecoveryState::default();
                        attempts = 0;
                        let target =
                            replay_target.map_or(fault_step, |(old, _)| old.max(fault_step));
                        replay_target = Some((target, Instant::now()));
                        if me.get() == 0 {
                            note(
                                ResilienceEventKind::Rollback,
                                step,
                                loaded_wave,
                                t0.elapsed(),
                                format!(
                                    "all ranks rolled back to wave {loaded_wave} (step {step})"
                                ),
                            );
                        }
                    }
                }
                continue;
            }

            if let Some(faults) = comm.fault_ctx().cloned() {
                // Scripted death: drop all in-memory state and stop
                // communicating; peers notice via the failure detector.
                // Consumed by plan index so the death does not re-fire
                // when the replay passes this step again. Deaths are
                // scripted against *physical* ranks — the machine dies,
                // whatever logical slot it currently holds.
                if let Some(idx) = faults.plan.death_at(phys, step) {
                    if deaths_done.insert(idx) {
                        if faults.plan.deaths[idx].permanent {
                            // Permanent loss: this simulated process never
                            // restarts. It must not release the spare pool
                            // (its own slot may still need a spare), so no
                            // shutdown — just flush and leave.
                            faults.board.mark_dead_permanent(phys);
                            ctx.flush_ledger_to_trace();
                            return Ok((None, stats));
                        }
                        faults.board.mark_dead(phys);
                        needs_recovery = true;
                        continue;
                    }
                }
                if let Some(hold) = faults.plan.stall_for(phys, step) {
                    std::thread::sleep(hold);
                }
                if faults.board.recovery_pending() {
                    needs_recovery = true;
                    continue;
                }
            }

            // ---- Checkpoint wave: save locally, commit collectively. ----
            if every > 0 && step == next_wave * every {
                let _ckpt_span = ctx.span("checkpoint", Category::Io);
                let wave = next_wave;
                let t0 = Instant::now();
                let path = crate::restart::wave_path(&opts.ckpt_dir, me.get(), wave);
                let saved = crate::restart::save_checkpoint(&path, &q, t, step);
                // The commit is a policied collective: the wave only
                // counts once every live rank has durably written its
                // block, and a dead/silent rank fails the commit instead
                // of hanging it. A *failed write* travels the same min-
                // reduction, so every rank aborts with the same typed
                // error instead of one rank panicking mid-collective.
                let flag = if saved.is_ok() { 1.0 } else { 0.0 };
                match comm.allreduce_policied(flag, f64::min) {
                    Ok(v) if v >= 1.0 => {
                        if let Some(faults) = comm.fault_ctx() {
                            faults.board.commit_wave(wave);
                        }
                        // Retention: drop the oldest wave outside the keep
                        // window. Exactly one candidate per commit, always
                        // strictly older than the newest committed wave,
                        // and GC only ever runs here — between commits —
                        // so it cannot race a rollback's candidate scan.
                        let keep = opts.ckpt_keep.max(1) as u64;
                        if let Some(old) = wave.checked_sub(keep) {
                            let _ = std::fs::remove_file(crate::restart::wave_path(
                                &opts.ckpt_dir,
                                me.get(),
                                old,
                            ));
                        }
                        next_wave += 1;
                        if me.get() == 0 {
                            note(
                                ResilienceEventKind::Checkpoint,
                                step,
                                wave,
                                t0.elapsed(),
                                format!("wave {wave} committed by {} ranks", comm.size()),
                            );
                        }
                    }
                    Ok(_) => {
                        let detail = match saved {
                            Err(e) => format!("writing {}: {e}", path.display()),
                            Ok(()) => "a peer rank failed its checkpoint write".into(),
                        };
                        return Err(ResilienceError::Io {
                            rank: me.get(),
                            detail,
                        });
                    }
                    Err(fault) => {
                        detect_fault(comm, &fault, step, t0.elapsed(), &note);
                        needs_recovery = true;
                        continue;
                    }
                }
            }

            // ---- One step, under the numerical-recovery ladder. The
            // q^n snapshot is what a rejected attempt retries from; the
            // verdict allreduce mirrors the dt reduction, so every rank
            // accepts, retries, or aborts the same attempt in lockstep.
            let _step_span = ctx.span("step", Category::Phase);
            q_save.as_mut_slice().copy_from_slice(q.as_slice());
            let dt = loop {
                let eff = match &policy {
                    Some(p) => p.effective_config(&cfg, rec.rung),
                    None => cfg,
                };

                // ---- Global dt; the policied allreduce doubles as the
                // per-step heartbeat (rank 0 touches every rank). A
                // degenerate local CFL state is encoded as -1.0, which the
                // min-reduction turns into a collective rejection. ----
                let _dt_span = ctx.span("dt_reduce", Category::Phase);
                let t_op = Instant::now();
                let local_dt = match eff.dt {
                    DtMode::Fixed(dt) => dt,
                    DtMode::Cfl(c) => {
                        crate::state::cons_to_prim_field(&ctx, &case.fluids, &q, &mut ws.prim);
                        cfl::try_max_dt_geom(
                            &ctx,
                            &case.fluids,
                            &ws.prim,
                            [&widths[0], &widths[1], &widths[2]],
                            c,
                            None,
                        )
                        .unwrap_or(-1.0)
                    }
                };
                let dt = match comm.allreduce_policied(local_dt, f64::min) {
                    Ok(v) => v,
                    Err(fault) => {
                        detect_fault(comm, &fault, step, t_op.elapsed(), &note);
                        needs_recovery = true;
                        continue 'steps;
                    }
                };
                drop(_dt_span);
                ctx.trace_counter("dt", dt);

                let mut local_viol: Option<Violation> = None;
                let degenerate = dt <= 0.0;
                if !degenerate {
                    // ---- RK stages with the fault-aware halo exchange. A
                    // halo failure abandons the remaining stages (the
                    // state will be rolled back anyway). ----
                    let mut halo_fault: Option<CommFault> = None;
                    {
                        let _rk_span = ctx.span("rk_stages", Category::Phase);
                        let (comm_ref, stats_ref) = (&mut comm, &mut stats);
                        let fault_ref = &mut halo_fault;
                        let fluids = &case.fluids;
                        let bc = &case.bc;
                        let ws_ref = &mut ws;
                        let ctx_ref = &ctx;
                        let rhs_cfg = &eff.rhs;
                        let exchange = opts.exchange;
                        rk_step(eff.scheme, dt, &mut q, &mut rk, |q, rhs| {
                            if fault_ref.is_some() {
                                return;
                            }
                            if exchange == ExchangeMode::Overlapped {
                                // A drain fault abandons the stage mid-
                                // evaluation; q/rhs are rolled back anyway.
                                if let Err(f) = overlapped_halo_rhs(
                                    ctx_ref, comm_ref, &cart, q, staging, stats_ref, rhs_cfg,
                                    fluids, bc, skip, &plan, ws_ref, rhs, true,
                                ) {
                                    *fault_ref = Some(f);
                                }
                            } else {
                                if let Err(f) = exchange_halos_policied(
                                    ctx_ref, comm_ref, &cart, q, staging, stats_ref,
                                ) {
                                    *fault_ref = Some(f);
                                    return;
                                }
                                apply_bcs(ctx_ref, q, bc, skip);
                                compute_rhs(ctx_ref, rhs_cfg, fluids, q, ws_ref, rhs);
                            }
                        });
                    }
                    if let Some(fault) = halo_fault {
                        detect_fault(comm, &fault, step, t_op.elapsed(), &note);
                        needs_recovery = true;
                        continue 'steps;
                    }

                    // ---- Health verdict: local scan, then an
                    // allreduce-min over 1.0 (clean) / 0.0 (faulted), so
                    // acceptance is a collective decision. ----
                    let _health_span = ctx.span("health_verdict", Category::Phase);
                    local_viol =
                        scan_and_convert(&ctx, &case.fluids, &opts.health, &q, &mut ws.prim);
                    let flag = if local_viol.is_some() { 0.0 } else { 1.0 };
                    match comm.allreduce_policied(flag, f64::min) {
                        Ok(v) if v >= 1.0 => break dt,
                        Ok(_) => {}
                        Err(fault) => {
                            detect_fault(comm, &fault, step, t_op.elapsed(), &note);
                            needs_recovery = true;
                            continue 'steps;
                        }
                    }
                }

                // ---- Rejected: restore q^n, then escalate or abort —
                // deterministically, so every rank does the same. ----
                let wave = next_wave.saturating_sub(1);
                if let Some(v) = &local_viol {
                    note(
                        ResilienceEventKind::HealthFault,
                        step,
                        wave,
                        t_op.elapsed(),
                        v.to_string(),
                    );
                } else if degenerate && me.get() == 0 {
                    note(
                        ResilienceEventKind::HealthFault,
                        step,
                        wave,
                        t_op.elapsed(),
                        "degenerate wave-speed rate in the CFL reduction".into(),
                    );
                }
                q.as_mut_slice().copy_from_slice(q_save.as_slice());
                attempts += 1;
                let exhausted = match &policy {
                    None => true,
                    Some(p) => attempts > p.max_retries || !rec.escalate(p),
                };
                if exhausted {
                    let detail = local_viol.as_ref().map_or_else(
                        || {
                            if degenerate {
                                "degenerate wave-speed rate in the CFL reduction".to_string()
                            } else {
                                "a peer rank reported a nonphysical state".to_string()
                            }
                        },
                        |v| v.to_string(),
                    );
                    if let Some(dir) = policy.as_ref().and_then(|p| p.crash_dump_dir.as_ref()) {
                        let _ = std::fs::create_dir_all(dir);
                        let dump = dir.join(format!("crash_rank{}_step{step}.bin", me.get()));
                        if crate::restart::save_checkpoint(&dump, &q, t, step).is_ok() {
                            note(
                                ResilienceEventKind::CrashDump,
                                step,
                                wave,
                                t_op.elapsed(),
                                format!("diagnostic checkpoint at {}", dump.display()),
                            );
                        }
                    }
                    return Err(ResilienceError::Numerical {
                        rank: me.get(),
                        step,
                        detail,
                        violation: local_viol,
                    });
                }
                ctx.trace_instant("retry", Category::Recovery);
                ctx.trace_instant("degrade", Category::Recovery);
                if me.get() == 0 {
                    let p = policy.as_ref().expect("exhausted is true when None");
                    note(
                        ResilienceEventKind::Retry,
                        step,
                        wave,
                        t_op.elapsed(),
                        format!("attempt {} from saved q^n", attempts + 1),
                    );
                    note(
                        ResilienceEventKind::Degrade,
                        step,
                        wave,
                        t_op.elapsed(),
                        format!("rung {}: {}", rec.rung, p.ladder[rec.rung - 1].name()),
                    );
                }
            };

            t += dt;
            step += 1;
            attempts = 0;
            if let Some(p) = &policy {
                if rec.accept(p) && me.get() == 0 {
                    note(
                        ResilienceEventKind::Restore,
                        step,
                        next_wave.saturating_sub(1),
                        Duration::ZERO,
                        format!(
                            "default policy restored after {} clean steps",
                            p.restore_after
                        ),
                    );
                }
            }
            if let Some((target, since)) = replay_target {
                if step >= target {
                    if me.get() == 0 {
                        note(
                            ResilienceEventKind::Replay,
                            step,
                            next_wave.saturating_sub(1),
                            since.elapsed(),
                            format!("replayed through pre-fault step {target}"),
                        );
                    }
                    replay_target = None;
                }
            }
        }

        ctx.flush_ledger_to_trace();

        // All scripted faults are behind us (peers past their last death
        // cannot re-die), so the final gather uses the plain path.
        let mut block = Vec::with_capacity(dom.interior_cells() * eq.neq());
        for e in 0..eq.neq() {
            for (i, j, k) in dom.interior() {
                block.push(q.get(i, j, k, e));
            }
        }
        let gathered = comm.gather(block);
        Ok((gathered, stats))
    };

    let body = |mut comm: Comm| -> RankOutcome {
        let out = rank_body(&mut comm);
        // Idle spares block in spare_wait until someone raises the
        // shutdown flag. Every exit releases them — except a permanently
        // dead rank, whose own vacant slot may still be waiting for a
        // spare to claim it.
        let perm_dead = comm
            .fault_ctx()
            .is_some_and(|f| f.board.is_perm_dead(comm.phys_rank()));
        if !perm_dead {
            if let Some(f) = comm.fault_ctx() {
                f.board.shutdown();
            }
        }
        out
    };

    let results = match &opts.faults {
        Some(faults) => World::run_with_spares(n_ranks, opts.spares, Arc::clone(faults), body),
        None => World::run(n_ranks, body),
    };
    // Prefer the violation-carrying numerical error; then any error.
    // (Every terminal error is collective, so the survivors agree.)
    let mut first_err = None;
    for r in &results {
        if let Err(e) = r {
            if matches!(
                e,
                ResilienceError::Numerical {
                    violation: Some(_),
                    ..
                }
            ) {
                return Err(e.clone());
            }
            if first_err.is_none() {
                first_err = Some(e.clone());
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    // The gather lands on whichever physical rank holds logical slot 0 at
    // the end — not necessarily physical rank 0 (it may have died
    // permanently, or a spare may hold its slot).
    let mut assembled = None;
    for r in results {
        let (gathered, stats) = r.expect("errors handled above");
        if let Some(blocks) = gathered {
            assembled = Some((blocks, stats));
        }
    }
    let (blocks, stats0) = assembled.expect("some rank holds the gather");
    // `blocks.len()` is the world size at exit; after a shrink it is
    // smaller than `n_ranks` and the layout is the reconfigured one.
    let dims_final = best_block_dims(blocks.len(), global_n);
    Ok((
        assemble_global(eq, global_n, dims_final, periodic, &blocks),
        stats0,
    ))
}

/// Classify a policied-operation failure: the first rank to see a
/// *primary* fault (dead peer, timeout) raises the recovery alarm and
/// records the detection event; ranks that merely observe the alarm
/// (`RecoveryRequested`) just join the rendezvous.
fn detect_fault(
    comm: &Comm,
    fault: &CommFault,
    step: u64,
    latency: Duration,
    note: &impl Fn(ResilienceEventKind, u64, u64, Duration, String),
) {
    if matches!(fault, CommFault::RecoveryRequested) {
        return;
    }
    let faults = comm.fault_ctx().expect("policied fault without fault ctx");
    if faults.board.request_recovery() {
        let wave = faults.board.committed_wave().unwrap_or(0);
        note(
            ResilienceEventKind::FaultDetected,
            step,
            wave,
            latency,
            fault.to_string(),
        );
    }
}

/// Fault-aware [`exchange_halos`]: paired send + policied receive per
/// axis and direction. Any detector verdict aborts the exchange.
fn exchange_halos_policied(
    ctx: &Context,
    comm: &mut Comm,
    cart: &CartComm,
    q: &mut StateField,
    staging: Staging,
    stats: &mut CommStats,
) -> Result<(), CommFault> {
    let _span = ctx.span("halo_exchange", Category::Phase);
    let dom = *q.domain();
    for axis in 0..dom.eq.ndim() {
        for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
            let send_to = cart.neighbor(axis, send_dir);
            let recv_from = cart.neighbor(axis, -send_dir);
            let tag = (axis as u64) << 8 | tag;
            if let Some(dest) = send_to {
                let buf = pack_send_slab(ctx, q, axis, send_dir, staging, stats);
                comm.send(dest, tag, buf);
            }
            if let Some(src) = recv_from {
                let buf = comm.recv_policied(src, tag)?;
                unpack_recv_slab(ctx, q, axis, send_dir, staging, &buf);
            }
        }
    }
    Ok(())
}

/// Run distributed and let every rank write its interior block with the
/// wave-throttled file-per-process writer (§III-A), as output step
/// `step_id` under `dir`. Returns the decomposition dims needed to
/// post-process the files back into a global field
/// ([`crate::output::postprocess_wave_files`]).
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_with_output(
    case: &CaseBuilder,
    cfg: SolverConfig,
    n_ranks: usize,
    steps: usize,
    staging: Staging,
    mode: ExchangeMode,
    dir: &std::path::Path,
    wave_size: usize,
    step_id: usize,
    tracer: Option<Arc<Tracer>>,
) -> Result<[usize; 3], ResilienceError> {
    let eq = case.eq();
    let ng = cfg.rhs.order.ghost_layers().max(1);
    let global_n = case.cells;
    let dims = best_block_dims(n_ranks, global_n);
    validate_halo_extents(dims, global_n, ng).map_err(|e| ResilienceError::Decomposition {
        detail: e.to_string(),
    })?;
    let periodic = [
        case.bc.axis_periodic(0),
        case.bc.axis_periodic(1),
        case.bc.axis_periodic(2),
    ];
    let global_grid = case.grid();
    let writer = mfc_mpsim::WaveWriter::new(wave_size);

    World::run(n_ranks, |mut comm| {
        let mut ctx = Context::with_workers(cfg.workers).with_vector_width(cfg.vector_width);
        if let Some(tr) = &tracer {
            let h = tr.handle(comm.rank());
            comm.set_tracer(Arc::clone(&h));
            ctx.set_tracer(h);
        }
        let cart = CartComm::new(comm.rank(), dims, periodic);
        let mut n = [1usize; 3];
        let mut off = [0usize; 3];
        for d in 0..eq.ndim() {
            let (o, l) = cart.local_extent(d, global_n[d]);
            off[d] = o;
            n[d] = l;
        }
        let dom = Domain::new(n, ng, eq);
        let local_grid = Grid {
            x: global_grid.x.slice(off[0], n[0]),
            y: if eq.ndim() >= 2 {
                global_grid.y.slice(off[1], n[1])
            } else {
                Grid1D::collapsed()
            },
            z: if eq.ndim() >= 3 {
                global_grid.z.slice(off[2], n[2])
            } else {
                Grid1D::collapsed()
            },
        };
        let mut q = case.init_block(&ctx, &dom, &global_grid, off);
        let mut ws = RhsWorkspace::new(dom, &local_grid);
        let mut rk = RkWorkspace::new(&q);
        let mut stats = CommStats::default();
        let mut skip = [(false, false); 3];
        for (d, s) in skip.iter_mut().enumerate().take(eq.ndim()) {
            *s = (
                cart.neighbor(d, -1).is_some(),
                cart.neighbor(d, 1).is_some(),
            );
        }
        let widths = [
            local_grid.x.widths_with_ghosts(dom.pad(0)),
            local_grid.y.widths_with_ghosts(dom.pad(1)),
            local_grid.z.widths_with_ghosts(dom.pad(2)),
        ];
        let plan = OverlapPlan::new(&dom);
        for _ in 0..steps {
            let _step_span = ctx.span("step", Category::Phase);
            let dt = match cfg.dt {
                DtMode::Fixed(dt) => dt,
                DtMode::Cfl(c) => {
                    crate::state::cons_to_prim_field(&ctx, &case.fluids, &q, &mut ws.prim);
                    let local = cfl::max_dt(
                        &ctx,
                        &case.fluids,
                        &ws.prim,
                        [&widths[0], &widths[1], &widths[2]],
                        c,
                    );
                    comm.allreduce_min(local)
                }
            };
            let (comm_ref, stats_ref) = (&mut comm, &mut stats);
            let fluids = &case.fluids;
            let bc = &case.bc;
            let ws_ref = &mut ws;
            let ctx_ref = &ctx;
            rk_step(cfg.scheme, dt, &mut q, &mut rk, |q, rhs| {
                if mode == ExchangeMode::Overlapped {
                    overlapped_halo_rhs(
                        ctx_ref, comm_ref, &cart, q, staging, stats_ref, &cfg.rhs, fluids, bc,
                        skip, &plan, ws_ref, rhs, false,
                    )
                    .expect("plain (non-policied) waits cannot fault");
                } else {
                    exchange_halos(ctx_ref, comm_ref, &cart, q, staging, mode, stats_ref);
                    apply_bcs(ctx_ref, q, bc, skip);
                    compute_rhs(ctx_ref, &cfg.rhs, fluids, q, ws_ref, rhs);
                }
            });
        }
        // §III-A output: bring the state back to the host (a ledger
        // event) and write in throttled waves.
        let block = crate::output::block_to_vec(&q);
        ctx.ledger()
            .record_transfer(TransferDirection::DeviceToHost, (block.len() * 8) as u64);
        writer
            .write(&comm, dir, step_id, &block)
            .expect("wave write failed");
        ctx.flush_ledger_to_trace();
    });
    Ok(dims)
}

/// Serial reference producing the same [`GlobalField`] shape.
pub fn run_single(case: &CaseBuilder, cfg: SolverConfig, steps: usize) -> GlobalField {
    let mut solver = crate::solver::Solver::new(
        case,
        cfg,
        Context::with_workers(cfg.workers).with_vector_width(cfg.vector_width),
    );
    solver
        .run_steps(steps)
        .expect("serial reference run hit a numerical fault");
    let dom = *solver.domain();
    let eq = dom.eq;
    let q = solver.state();
    let n = case.cells;
    let mut data = Vec::with_capacity(dom.interior_cells() * eq.neq());
    for e in 0..eq.neq() {
        for (i, j, k) in dom.interior() {
            let _ = (i, j, k);
            data.push(q.get(i, j, k, e));
        }
    }
    GlobalField {
        n,
        neq: eq.neq(),
        data,
    }
}

/// One overlapped halo exchange + RHS evaluation: the async-queue analog
/// of the paper's OpenACC `async(queue)` overlap (§III-B).
///
/// Per axis (x → y → z, preserving the corner-fill chain: axis *k*'s pack
/// reads axis *k−1*'s unpacked ghosts), this posts the nonblocking
/// receives and sends (`halo_post`), drains the interior sweep for that
/// axis from its [`QueueSet`] queue while the messages are in flight
/// (`interior_rhs`), then completes the receives and unpacks
/// (`halo_drain` — the *exposed* communication time). Once every axis has
/// exchanged, physical BCs are applied and [`rhs_overlap_finish`] runs
/// the boundary shells plus the grid-global closures (`shell_rhs`).
///
/// Bitwise identical to `exchange_halos` + `apply_bcs` + `compute_rhs`:
/// the interior region is inset `dom.ng` cells from every exchanged face,
/// so its stencils never read a ghost, and each cell accumulates its
/// axis contributions in the same x, y, z order either way.
///
/// With `policied`, the drain waits go through the fault detector; a
/// verdict abandons the exchange (after letting leftover interior queues
/// run, so no queued work is dropped) and the caller rolls back.
#[allow(clippy::too_many_arguments)]
fn overlapped_halo_rhs(
    ctx: &Context,
    comm: &mut Comm,
    cart: &CartComm,
    q: &mut StateField,
    staging: Staging,
    stats: &mut CommStats,
    rhs_cfg: &RhsConfig,
    fluids: &[Fluid],
    bc: &BcSpec,
    skip: [(bool, bool); 3],
    plan: &OverlapPlan,
    ws: &mut RhsWorkspace,
    rhs: &mut StateField,
    policied: bool,
) -> Result<(), CommFault> {
    let dom = *q.domain();
    rhs_overlap_begin(ctx, rhs_cfg, fluids, q, ws, rhs);

    let mut fault: Option<CommFault> = None;
    {
        // Interior sweeps live on per-axis async queues; the closures
        // share the workspace through a RefCell because each runs at its
        // queue's wait point, never concurrently.
        let work = RefCell::new((&mut *ws, &mut *rhs));
        let mut qs = QueueSet::new(ctx);
        if let Some(interior) = &plan.interior {
            for axis in 0..dom.eq.ndim() {
                let work = &work;
                qs.enqueue(axis as u32, move |ctx| {
                    let mut guard = work.borrow_mut();
                    let (ws, rhs) = &mut *guard;
                    rhs_overlap_interior_axis(ctx, rhs_cfg, fluids, ws, rhs, interior, axis);
                });
            }
        }
        'axes: for axis in 0..dom.eq.ndim() {
            let mut pending = Vec::new();
            {
                let _post = ctx.span("halo_post", Category::Phase);
                for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
                    if let Some(src) = cart.neighbor(axis, -send_dir) {
                        let tag = (axis as u64) << 8 | tag;
                        pending.push((send_dir, comm.irecv(src, tag)));
                    }
                }
                for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
                    if let Some(dest) = cart.neighbor(axis, send_dir) {
                        let tag = (axis as u64) << 8 | tag;
                        let buf = pack_send_slab(ctx, q, axis, send_dir, staging, stats);
                        comm.isend(dest, tag, buf);
                    }
                }
            }
            if plan.interior.is_some() {
                // The compute hidden behind this axis's messages.
                let _interior = ctx.span("interior_rhs", Category::Phase);
                qs.wait(axis as u32);
            }
            // What remains after the hiding is the exposed comm time.
            let _drain = ctx.span("halo_drain", Category::Phase);
            for (send_dir, req) in pending {
                let buf = if policied {
                    match comm.wait_policied(req) {
                        Ok(b) => b,
                        Err(f) => {
                            fault = Some(f);
                            break 'axes;
                        }
                    }
                } else {
                    comm.wait(req)
                };
                unpack_recv_slab(ctx, q, axis, send_dir, staging, &buf);
            }
        }
        // On a fault, later axes' interior queues are still populated;
        // run them out (the state is rolled back anyway) rather than
        // dropping enqueued work.
        qs.wait_all();
    }
    if let Some(f) = fault {
        return Err(f);
    }

    apply_bcs(ctx, q, bc, skip);
    let _shell = ctx.span("shell_rhs", Category::Phase);
    rhs_overlap_finish(ctx, rhs_cfg, fluids, q, ws, rhs, plan);
    Ok(())
}

/// One full halo exchange: per axis, both directions, ship `ng` layers.
#[allow(clippy::too_many_arguments)]
fn exchange_halos(
    ctx: &Context,
    comm: &mut Comm,
    cart: &CartComm,
    q: &mut StateField,
    staging: Staging,
    mode: ExchangeMode,
    stats: &mut CommStats,
) {
    let _span = ctx.span("halo_exchange", Category::Phase);
    let dom = *q.domain();

    for axis in 0..dom.eq.ndim() {
        // dir = +1: send my high interior slab to the +1 neighbour, receive
        // my low ghost slab from the -1 neighbour. Then the reverse.
        match mode {
            ExchangeMode::Sendrecv => {
                for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
                    let send_to = cart.neighbor(axis, send_dir);
                    let recv_from = cart.neighbor(axis, -send_dir);
                    let tag = (axis as u64) << 8 | tag;

                    if let Some(dest) = send_to {
                        let buf = pack_send_slab(ctx, q, axis, send_dir, staging, stats);
                        comm.send(dest, tag, buf);
                    }
                    if let Some(src) = recv_from {
                        let buf = comm.recv(src, tag);
                        unpack_recv_slab(ctx, q, axis, send_dir, staging, &buf);
                    }
                }
            }
            ExchangeMode::NonBlocking => {
                // Post both receives first, then both sends, then drain —
                // the MPI_Irecv/Isend/Waitall pattern.
                let mut pending = Vec::new();
                for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
                    if let Some(src) = cart.neighbor(axis, -send_dir) {
                        let tag = (axis as u64) << 8 | tag;
                        pending.push((send_dir, comm.irecv(src, tag)));
                    }
                }
                for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
                    if let Some(dest) = cart.neighbor(axis, send_dir) {
                        let tag = (axis as u64) << 8 | tag;
                        let buf = pack_send_slab(ctx, q, axis, send_dir, staging, stats);
                        comm.isend(dest, tag, buf);
                    }
                }
                for (send_dir, req) in pending {
                    let buf = comm.wait(req);
                    unpack_recv_slab(ctx, q, axis, send_dir, staging, &buf);
                }
            }
            ExchangeMode::Overlapped => {
                unreachable!("overlapped exchange goes through overlapped_halo_rhs")
            }
        }
    }
}

/// Pack the interior slab adjacent to the `send_dir` face of `axis`,
/// accounting for staging transfers and message statistics.
fn pack_send_slab(
    ctx: &Context,
    q: &StateField,
    axis: usize,
    send_dir: i32,
    staging: Staging,
    stats: &mut CommStats,
) -> Vec<f64> {
    let dom = *q.domain();
    let ng = dom.ng;
    let lo = if send_dir > 0 {
        dom.pad(axis) + dom.n[axis] - ng
    } else {
        dom.pad(axis)
    };
    let buf = pack_slab(q, axis, lo, ng);
    if staging == Staging::HostStaged {
        ctx.ledger()
            .record_transfer(TransferDirection::DeviceToHost, (buf.len() * 8) as u64);
    }
    stats.messages += 1;
    stats.bytes += (buf.len() * 8) as u64;
    buf
}

/// Unpack a received buffer into the ghost slab opposite the `send_dir`
/// face of `axis`.
fn unpack_recv_slab(
    ctx: &Context,
    q: &mut StateField,
    axis: usize,
    send_dir: i32,
    staging: Staging,
    buf: &[f64],
) {
    let dom = *q.domain();
    let ng = dom.ng;
    if staging == Staging::HostStaged {
        ctx.ledger()
            .record_transfer(TransferDirection::HostToDevice, (buf.len() * 8) as u64);
    }
    let lo = if send_dir > 0 {
        0
    } else {
        dom.pad(axis) + dom.n[axis]
    };
    unpack_slab(q, axis, lo, ng, buf);
}

/// Pack `count` layers starting at padded index `lo` along `axis`, full
/// transverse (ghost-inclusive) extents, into a flat send buffer.
fn pack_slab(q: &StateField, axis: usize, lo: usize, count: usize) -> Vec<f64> {
    let dom = *q.domain();
    let (t1, t2) = transverse_extents(&dom, axis);
    let neq = dom.eq.neq();
    let mut buf = Vec::with_capacity(count * t1 * t2 * neq);
    for e in 0..neq {
        for b in 0..t2 {
            for a in 0..t1 {
                for s in lo..lo + count {
                    let (i, j, k) = axis_coord(axis, s, a, b);
                    buf.push(q.get(i, j, k, e));
                }
            }
        }
    }
    buf
}

/// Inverse of [`pack_slab`].
fn unpack_slab(q: &mut StateField, axis: usize, lo: usize, count: usize, buf: &[f64]) {
    let dom = *q.domain();
    let (t1, t2) = transverse_extents(&dom, axis);
    let neq = dom.eq.neq();
    assert_eq!(
        buf.len(),
        count * t1 * t2 * neq,
        "halo buffer size mismatch"
    );
    let mut it = buf.iter();
    for e in 0..neq {
        for b in 0..t2 {
            for a in 0..t1 {
                for s in lo..lo + count {
                    let (i, j, k) = axis_coord(axis, s, a, b);
                    q.set(i, j, k, e, *it.next().unwrap());
                }
            }
        }
    }
}

fn transverse_extents(dom: &Domain, axis: usize) -> (usize, usize) {
    match axis {
        0 => (dom.ext(1), dom.ext(2)),
        1 => (dom.ext(0), dom.ext(2)),
        _ => (dom.ext(0), dom.ext(1)),
    }
}

#[inline]
fn axis_coord(axis: usize, s: usize, a: usize, b: usize) -> (usize, usize, usize) {
    match axis {
        0 => (s, a, b),
        1 => (a, s, b),
        _ => (a, b, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::presets;

    #[test]
    fn distributed_sod_matches_serial_bitwise() {
        let case = presets::sod(64);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 10);
        for ranks in [2usize, 4] {
            let (dist, stats) =
                run_distributed(&case, cfg, ranks, 10, Staging::DeviceDirect).unwrap();
            assert_eq!(dist.n, serial.n);
            let diff = dist.max_abs_diff(&serial);
            assert_eq!(diff, 0.0, "ranks={ranks}: max diff {diff:e}");
            assert!(stats.messages > 0);
        }
    }

    #[test]
    fn distributed_2d_periodic_matches_serial() {
        let case = presets::two_phase_benchmark(2, [16, 16, 1]);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 4);
        let (dist, _) = run_distributed(&case, cfg, 4, 4, Staging::DeviceDirect).unwrap();
        let diff = dist.max_abs_diff(&serial);
        assert_eq!(diff, 0.0, "max diff {diff:e}");
    }

    #[test]
    fn staged_and_direct_produce_identical_physics() {
        let case = presets::two_phase_benchmark(2, [16, 16, 1]);
        let cfg = SolverConfig::default();
        let (a, _) = run_distributed(&case, cfg, 2, 3, Staging::DeviceDirect).unwrap();
        let (b, _) = run_distributed(&case, cfg, 2, 3, Staging::HostStaged).unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    fn resil_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mfc_resil_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resilient_fault_free_matches_serial_bitwise() {
        let case = presets::sod(32);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 8);
        let dir = resil_dir("ff");
        let opts = ResilienceOpts::fault_free(&dir, 3);
        let (field, _) =
            run_distributed_resilient(&case, cfg, 2, 8, Staging::DeviceDirect, &opts).unwrap();
        assert_eq!(field.max_abs_diff(&serial), 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resilient_recovers_from_rank_death_bitwise() {
        use mfc_mpsim::{DetectorConfig, FaultPlan, RankDeath};

        let case = presets::sod(32);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 10);
        let dir = resil_dir("death");
        let plan = FaultPlan {
            deaths: vec![RankDeath {
                rank: 1,
                step: 6,
                permanent: false,
            }],
            ..FaultPlan::none()
        };
        let faults = Arc::new(FaultCtx::new(plan, 2).with_detector(DetectorConfig {
            slice_ms: 5,
            retries: 8,
            backoff: 1.5,
        }));
        let events = Arc::new(Ledger::default());
        let opts = ResilienceOpts {
            checkpoint_every: 4,
            ckpt_dir: dir.clone(),
            faults: Some(faults),
            events: Some(Arc::clone(&events)),
            recovery: None,
            health: HealthConfig::default(),
            trace: None,
            exchange: ExchangeMode::Sendrecv,
            failure_policy: FailurePolicy::Revive,
            spares: 0,
            ckpt_keep: 2,
        };
        let (field, _) =
            run_distributed_resilient(&case, cfg, 2, 10, Staging::DeviceDirect, &opts).unwrap();
        assert_eq!(
            field.max_abs_diff(&serial),
            0.0,
            "recovered run must be bitwise identical to fault-free"
        );
        // The ledger tells the whole story: waves committed, the death
        // detected, a rollback, and a completed replay.
        use mfc_acc::ResilienceEventKind as K;
        assert!(!events.events_of(K::Checkpoint).is_empty());
        assert_eq!(events.events_of(K::FaultDetected).len(), 1);
        assert_eq!(events.events_of(K::Rollback).len(), 1);
        assert_eq!(events.events_of(K::Replay).len(), 1);
        let rb = &events.events_of(K::Rollback)[0];
        assert_eq!(rb.wave, 1, "death at step 6 rolls back to wave 1 (step 4)");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unrecoverable_death_reports_instead_of_hanging() {
        use mfc_mpsim::{DetectorConfig, FaultPlan, RankDeath};

        let case = presets::sod(32);
        let cfg = SolverConfig::default();
        let dir = resil_dir("unrec");
        let plan = FaultPlan {
            deaths: vec![RankDeath {
                rank: 1,
                step: 2,
                permanent: false,
            }],
            ..FaultPlan::none()
        };
        let faults = Arc::new(FaultCtx::new(plan, 2).with_detector(DetectorConfig {
            slice_ms: 5,
            retries: 6,
            backoff: 1.5,
        }));
        let opts = ResilienceOpts {
            checkpoint_every: 0, // checkpointing disabled: nothing to roll back to
            ckpt_dir: dir.clone(),
            faults: Some(faults),
            events: None,
            recovery: None,
            health: HealthConfig::default(),
            trace: None,
            exchange: ExchangeMode::Sendrecv,
            failure_policy: FailurePolicy::Revive,
            spares: 0,
            ckpt_keep: 2,
        };
        let err = run_distributed_resilient(&case, cfg, 2, 6, Staging::DeviceDirect, &opts)
            .expect_err("death without checkpoints cannot be recovered");
        assert!(matches!(err, ResilienceError::Unrecoverable { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resilient_rides_through_message_faults_bitwise() {
        use mfc_mpsim::{DetectorConfig, FaultPlan, MsgDelay, MsgFault};

        let case = presets::sod(32);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 6);
        let dir = resil_dir("msg");
        let plan = FaultPlan {
            drops: vec![
                MsgFault {
                    src: 0,
                    dst: 1,
                    nth: 3,
                },
                MsgFault {
                    src: 1,
                    dst: 0,
                    nth: 7,
                },
            ],
            delays: vec![MsgDelay {
                src: 1,
                dst: 0,
                nth: 4,
                hold: 2,
            }],
            ..FaultPlan::none()
        };
        let faults = Arc::new(FaultCtx::new(plan, 2).with_detector(DetectorConfig {
            slice_ms: 5,
            retries: 8,
            backoff: 1.5,
        }));
        let opts = ResilienceOpts {
            checkpoint_every: 3,
            ckpt_dir: dir.clone(),
            faults: Some(faults),
            events: None,
            recovery: None,
            health: HealthConfig::default(),
            trace: None,
            exchange: ExchangeMode::Sendrecv,
            failure_policy: FailurePolicy::Revive,
            spares: 0,
            ckpt_keep: 2,
        };
        let (field, _) =
            run_distributed_resilient(&case, cfg, 2, 6, Staging::DeviceDirect, &opts).unwrap();
        assert_eq!(
            field.max_abs_diff(&serial),
            0.0,
            "drops/delays are absorbed by retransmission, not physics"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overlapped_exchange_matches_serial_bitwise() {
        use crate::rhs::RhsMode;
        let case = presets::sod(64);
        for mode in [RhsMode::Staged, RhsMode::Fused] {
            let mut cfg = SolverConfig::default();
            cfg.rhs.mode = mode;
            let serial = run_single(&case, cfg, 10);
            for ranks in [2usize, 4] {
                let (dist, stats) = run_distributed_with_mode(
                    &case,
                    cfg,
                    ranks,
                    10,
                    Staging::DeviceDirect,
                    ExchangeMode::Overlapped,
                )
                .unwrap();
                let diff = dist.max_abs_diff(&serial);
                assert_eq!(diff, 0.0, "{mode:?} ranks={ranks}: max diff {diff:e}");
                assert!(stats.messages > 0);
            }
        }
    }

    #[test]
    fn overlapped_exchange_matches_serial_2d_periodic() {
        let case = presets::two_phase_benchmark(2, [16, 16, 1]);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 4);
        let (dist, _) = run_distributed_with_mode(
            &case,
            cfg,
            4,
            4,
            Staging::DeviceDirect,
            ExchangeMode::Overlapped,
        )
        .unwrap();
        assert_eq!(dist.max_abs_diff(&serial), 0.0);
    }

    #[test]
    fn thin_rank_decomposition_is_a_typed_error() {
        // Regression (thin-rank halo bug): 8 ranks over 16 cells of sod
        // gives 2-cell blocks under a 3-layer halo. This used to spawn
        // ranks and die inside `Domain::new` ("rank panicked"); now it is
        // rejected host-side with a typed error naming the axis.
        let case = presets::sod(16);
        let cfg = SolverConfig::default();
        let err = run_distributed(&case, cfg, 8, 1, Staging::DeviceDirect)
            .expect_err("2-cell-wide ranks cannot source a 3-layer halo");
        match err {
            ResilienceError::Decomposition { detail } => {
                assert!(detail.contains("axis 0"), "detail: {detail}");
            }
            other => panic!("expected Decomposition error, got {other:?}"),
        }
        // The resilient and output drivers reject it too.
        let dir = resil_dir("thin");
        let opts = ResilienceOpts::fault_free(&dir, 0);
        let err = run_distributed_resilient(&case, cfg, 8, 1, Staging::DeviceDirect, &opts)
            .expect_err("resilient driver must also reject thin ranks");
        assert!(matches!(err, ResilienceError::Decomposition { .. }));
        let err = run_distributed_with_output(
            &case,
            cfg,
            8,
            1,
            Staging::DeviceDirect,
            ExchangeMode::Sendrecv,
            &dir,
            4,
            0,
            None,
        )
        .expect_err("output driver must also reject thin ranks");
        assert!(matches!(err, ResilienceError::Decomposition { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resilient_overlapped_rides_through_message_faults_bitwise() {
        use mfc_mpsim::{DetectorConfig, FaultPlan, MsgFault};

        let case = presets::sod(32);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 6);
        let dir = resil_dir("omsg");
        let plan = FaultPlan {
            drops: vec![MsgFault {
                src: 0,
                dst: 1,
                nth: 3,
            }],
            ..FaultPlan::none()
        };
        let faults = Arc::new(FaultCtx::new(plan, 2).with_detector(DetectorConfig {
            slice_ms: 5,
            retries: 8,
            backoff: 1.5,
        }));
        let opts = ResilienceOpts {
            checkpoint_every: 3,
            ckpt_dir: dir.clone(),
            faults: Some(faults),
            events: None,
            recovery: None,
            health: HealthConfig::default(),
            trace: None,
            exchange: ExchangeMode::Overlapped,
            failure_policy: FailurePolicy::Revive,
            spares: 0,
            ckpt_keep: 2,
        };
        let (field, _) =
            run_distributed_resilient(&case, cfg, 2, 6, Staging::DeviceDirect, &opts).unwrap();
        assert_eq!(
            field.max_abs_diff(&serial),
            0.0,
            "a dropped halo under overlap is detected at the drain and rolled back"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn comm_volume_scales_with_halo_area() {
        let cfg = SolverConfig::default();
        let small = presets::two_phase_benchmark(2, [16, 16, 1]);
        let big = presets::two_phase_benchmark(2, [32, 32, 1]);
        let (_, s_small) = run_distributed(&small, cfg, 2, 1, Staging::DeviceDirect).unwrap();
        let (_, s_big) = run_distributed(&big, cfg, 2, 1, Staging::DeviceDirect).unwrap();
        // Halo area doubles (one split axis, transverse extent doubles).
        assert!(s_big.bytes > s_small.bytes);
        assert_eq!(s_big.messages, s_small.messages);
    }
}
