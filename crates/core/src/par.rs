//! Distributed solver: 3-D block decomposition + halo exchange (§III-A).
//!
//! Runs the same numerics as [`crate::solver::Solver`] on simulated ranks
//! ([`mfc_mpsim`]), with the paper's communication structure: per
//! dimension, each rank packs its boundary slabs into 1-D buffers,
//! `sendrecv`s with its neighbours, and unpacks into ghost layers.  The
//! exchange order (x → y → z, full transverse extents) reproduces the
//! serial ghost-fill sequence exactly, so a distributed run is *bitwise*
//! identical to the single-rank run — which the integration tests assert.
//!
//! Without GPU-aware MPI ([`Staging::HostStaged`]), every halo buffer pays
//! a device→host copy before the send and a host→device copy after the
//! receive; both land in the transfer ledger, and their modelled cost is
//! Fig. 4's gap.

use mfc_acc::{Context, TransferDirection};
use mfc_mpsim::{best_block_dims, CartComm, Comm, Staging, World};
use serde::{Deserialize, Serialize};

use crate::bc::apply_bcs;
use crate::case::CaseBuilder;
use crate::cfl;
use crate::domain::Domain;
use crate::grid::{Grid, Grid1D};
use crate::rhs::{compute_rhs, RhsWorkspace};
use crate::solver::{DtMode, SolverConfig};
use crate::state::StateField;
use crate::time::{rk_step, RkWorkspace};

/// How halo buffers are exchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ExchangeMode {
    /// Paired `MPI_Sendrecv`, the paper's default path.
    Sendrecv,
    /// Post all receives, then all sends, then complete (`MPI_Irecv` /
    /// `MPI_Isend` / `MPI_Waitall`) — the overlap-friendly variant.
    NonBlocking,
}

/// An assembled ghost-free global field, x-fastest then y, z, equation.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalField {
    pub n: [usize; 3],
    pub neq: usize,
    pub data: Vec<f64>,
}

impl GlobalField {
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize, e: usize) -> f64 {
        self.data[i + self.n[0] * (j + self.n[1] * (k + self.n[2] * e))]
    }

    /// Largest absolute difference from another field.
    pub fn max_abs_diff(&self, other: &GlobalField) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Per-rank communication statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    pub messages: u64,
    pub bytes: u64,
}

/// Run `steps` time steps of `case` on `n_ranks` simulated ranks; returns
/// the assembled global conservative state and rank-0's comm statistics.
pub fn run_distributed(
    case: &CaseBuilder,
    cfg: SolverConfig,
    n_ranks: usize,
    steps: usize,
    staging: Staging,
) -> (GlobalField, CommStats) {
    run_distributed_with_mode(case, cfg, n_ranks, steps, staging, ExchangeMode::Sendrecv)
}

/// [`run_distributed`] with an explicit halo-exchange mode.
pub fn run_distributed_with_mode(
    case: &CaseBuilder,
    cfg: SolverConfig,
    n_ranks: usize,
    steps: usize,
    staging: Staging,
    mode: ExchangeMode,
) -> (GlobalField, CommStats) {
    let eq = case.eq();
    let ng = cfg.rhs.order.ghost_layers().max(1);
    let global_n = case.cells;
    let dims = best_block_dims(n_ranks, global_n);
    assert_eq!(
        dims.iter().product::<usize>(),
        n_ranks,
        "rank count must factorize onto the grid"
    );
    let periodic = [
        case.bc.axis_periodic(0),
        case.bc.axis_periodic(1),
        case.bc.axis_periodic(2),
    ];
    let global_grid = case.grid();

    let mut results = World::run(n_ranks, |mut comm| {
        let ctx = Context::serial();
        let cart = CartComm::new(comm.rank(), dims, periodic);
        // Local block.
        let mut n = [1usize; 3];
        let mut off = [0usize; 3];
        for d in 0..eq.ndim() {
            let (o, l) = cart.local_extent(d, global_n[d]);
            off[d] = o;
            n[d] = l;
        }
        let dom = Domain::new(n, ng, eq);
        let local_grid = Grid {
            x: global_grid.x.slice(off[0], n[0]),
            y: if eq.ndim() >= 2 {
                global_grid.y.slice(off[1], n[1])
            } else {
                Grid1D::collapsed()
            },
            z: if eq.ndim() >= 3 {
                global_grid.z.slice(off[2], n[2])
            } else {
                Grid1D::collapsed()
            },
        };
        let mut q = case.init_block(&ctx, &dom, &global_grid, off);
        let mut ws = RhsWorkspace::new(dom, &local_grid);
        let mut rk = RkWorkspace::new(&q);
        let mut stats = CommStats::default();

        // Faces whose ghosts come from a neighbour rather than physical BCs.
        let mut skip = [(false, false); 3];
        for d in 0..eq.ndim() {
            skip[d] = (
                cart.neighbor(d, -1).is_some(),
                cart.neighbor(d, 1).is_some(),
            );
        }

        let widths = [
            local_grid.x.widths_with_ghosts(dom.pad(0)),
            local_grid.y.widths_with_ghosts(dom.pad(1)),
            local_grid.z.widths_with_ghosts(dom.pad(2)),
        ];

        for _ in 0..steps {
            // Global dt.
            let dt = match cfg.dt {
                DtMode::Fixed(dt) => dt,
                DtMode::Cfl(c) => {
                    crate::state::cons_to_prim_field(&ctx, &case.fluids, &q, &mut ws.prim);
                    let local = cfl::max_dt(
                        &ctx,
                        &case.fluids,
                        &ws.prim,
                        [&widths[0], &widths[1], &widths[2]],
                        c,
                    );
                    comm.allreduce_min(local)
                }
            };
            let (comm_ref, stats_ref) = (&mut comm, &mut stats);
            let fluids = &case.fluids;
            let bc = &case.bc;
            let ws_ref = &mut ws;
            let ctx_ref = &ctx;
            rk_step(cfg.scheme, dt, &mut q, &mut rk, |q, rhs| {
                exchange_halos(ctx_ref, comm_ref, &cart, q, staging, mode, stats_ref);
                apply_bcs(ctx_ref, q, bc, skip);
                compute_rhs(ctx_ref, &cfg.rhs, fluids, q, ws_ref, rhs);
            });
        }

        // Ship the interior home.
        let mut block = Vec::with_capacity(dom.interior_cells() * eq.neq());
        for e in 0..eq.neq() {
            for (i, j, k) in dom.interior() {
                block.push(q.get(i, j, k, e));
            }
        }
        let gathered = comm.gather(block);
        (gathered, off, n, stats)
    });

    // Assemble on the host side from rank 0's gather.
    let (gathered, _, _, stats0) = results.remove(0);
    let blocks = gathered.expect("rank 0 holds the gather");
    // Recompute every rank's extents (same arithmetic as inside the run)
    // and sanity-check against what the ranks reported.
    let mut offsets = vec![[0usize; 3]; n_ranks];
    let mut sizes = vec![[1usize; 3]; n_ranks];
    for rank in 0..n_ranks {
        let cart = CartComm::new(rank, dims, periodic);
        let mut off = [0usize; 3];
        let mut n = [1usize; 3];
        for d in 0..eq.ndim() {
            let (o, l) = cart.local_extent(d, global_n[d]);
            off[d] = o;
            n[d] = l;
        }
        if rank > 0 {
            let reported = &results[rank - 1];
            debug_assert_eq!(reported.1, off);
            debug_assert_eq!(reported.2, n);
        }
        offsets[rank] = off;
        sizes[rank] = n;
    }

    let neq = eq.neq();
    let mut data = vec![0.0; global_n[0] * global_n[1] * global_n[2] * neq];
    for (rank, block) in blocks.iter().enumerate() {
        let off = offsets[rank];
        let n = sizes[rank];
        let mut it = block.iter();
        for e in 0..neq {
            for k in 0..n[2] {
                for j in 0..n[1] {
                    for i in 0..n[0] {
                        let gi = off[0] + i;
                        let gj = off[1] + j;
                        let gk = off[2] + k;
                        data[gi + global_n[0] * (gj + global_n[1] * (gk + global_n[2] * e))] =
                            *it.next().unwrap();
                    }
                }
            }
        }
    }
    (
        GlobalField {
            n: global_n,
            neq,
            data,
        },
        stats0,
    )
}

/// Run distributed and let every rank write its interior block with the
/// wave-throttled file-per-process writer (§III-A), as output step
/// `step_id` under `dir`. Returns the decomposition dims needed to
/// post-process the files back into a global field
/// ([`crate::output::postprocess_wave_files`]).
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_with_output(
    case: &CaseBuilder,
    cfg: SolverConfig,
    n_ranks: usize,
    steps: usize,
    staging: Staging,
    dir: &std::path::Path,
    wave_size: usize,
    step_id: usize,
) -> [usize; 3] {
    let eq = case.eq();
    let ng = cfg.rhs.order.ghost_layers().max(1);
    let global_n = case.cells;
    let dims = best_block_dims(n_ranks, global_n);
    let periodic = [
        case.bc.axis_periodic(0),
        case.bc.axis_periodic(1),
        case.bc.axis_periodic(2),
    ];
    let global_grid = case.grid();
    let writer = mfc_mpsim::WaveWriter::new(wave_size);

    World::run(n_ranks, |mut comm| {
        let ctx = Context::serial();
        let cart = CartComm::new(comm.rank(), dims, periodic);
        let mut n = [1usize; 3];
        let mut off = [0usize; 3];
        for d in 0..eq.ndim() {
            let (o, l) = cart.local_extent(d, global_n[d]);
            off[d] = o;
            n[d] = l;
        }
        let dom = Domain::new(n, ng, eq);
        let local_grid = Grid {
            x: global_grid.x.slice(off[0], n[0]),
            y: if eq.ndim() >= 2 {
                global_grid.y.slice(off[1], n[1])
            } else {
                Grid1D::collapsed()
            },
            z: if eq.ndim() >= 3 {
                global_grid.z.slice(off[2], n[2])
            } else {
                Grid1D::collapsed()
            },
        };
        let mut q = case.init_block(&ctx, &dom, &global_grid, off);
        let mut ws = RhsWorkspace::new(dom, &local_grid);
        let mut rk = RkWorkspace::new(&q);
        let mut stats = CommStats::default();
        let mut skip = [(false, false); 3];
        for d in 0..eq.ndim() {
            skip[d] = (
                cart.neighbor(d, -1).is_some(),
                cart.neighbor(d, 1).is_some(),
            );
        }
        let widths = [
            local_grid.x.widths_with_ghosts(dom.pad(0)),
            local_grid.y.widths_with_ghosts(dom.pad(1)),
            local_grid.z.widths_with_ghosts(dom.pad(2)),
        ];
        for _ in 0..steps {
            let dt = match cfg.dt {
                DtMode::Fixed(dt) => dt,
                DtMode::Cfl(c) => {
                    crate::state::cons_to_prim_field(&ctx, &case.fluids, &q, &mut ws.prim);
                    let local = cfl::max_dt(
                        &ctx,
                        &case.fluids,
                        &ws.prim,
                        [&widths[0], &widths[1], &widths[2]],
                        c,
                    );
                    comm.allreduce_min(local)
                }
            };
            let (comm_ref, stats_ref) = (&mut comm, &mut stats);
            let fluids = &case.fluids;
            let bc = &case.bc;
            let ws_ref = &mut ws;
            let ctx_ref = &ctx;
            rk_step(cfg.scheme, dt, &mut q, &mut rk, |q, rhs| {
                exchange_halos(
                    ctx_ref,
                    comm_ref,
                    &cart,
                    q,
                    staging,
                    ExchangeMode::Sendrecv,
                    stats_ref,
                );
                apply_bcs(ctx_ref, q, bc, skip);
                compute_rhs(ctx_ref, &cfg.rhs, fluids, q, ws_ref, rhs);
            });
        }
        // §III-A output: bring the state back to the host (a ledger
        // event) and write in throttled waves.
        let block = crate::output::block_to_vec(&q);
        ctx.ledger()
            .record_transfer(TransferDirection::DeviceToHost, (block.len() * 8) as u64);
        writer
            .write(&comm, dir, step_id, &block)
            .expect("wave write failed");
    });
    dims
}

/// Serial reference producing the same [`GlobalField`] shape.
pub fn run_single(case: &CaseBuilder, cfg: SolverConfig, steps: usize) -> GlobalField {
    let mut solver = crate::solver::Solver::new(case, cfg, Context::serial());
    solver.run_steps(steps);
    let dom = *solver.domain();
    let eq = dom.eq;
    let q = solver.state();
    let n = case.cells;
    let mut data = Vec::with_capacity(dom.interior_cells() * eq.neq());
    for e in 0..eq.neq() {
        for (i, j, k) in dom.interior() {
            let _ = (i, j, k);
            data.push(q.get(i, j, k, e));
        }
    }
    GlobalField {
        n,
        neq: eq.neq(),
        data,
    }
}

/// One full halo exchange: per axis, both directions, ship `ng` layers.
#[allow(clippy::too_many_arguments)]
fn exchange_halos(
    ctx: &Context,
    comm: &mut Comm,
    cart: &CartComm,
    q: &mut StateField,
    staging: Staging,
    mode: ExchangeMode,
    stats: &mut CommStats,
) {
    let dom = *q.domain();
    
    for axis in 0..dom.eq.ndim() {
        // dir = +1: send my high interior slab to the +1 neighbour, receive
        // my low ghost slab from the -1 neighbour. Then the reverse.
        match mode {
            ExchangeMode::Sendrecv => {
                for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
                    let send_to = cart.neighbor(axis, send_dir);
                    let recv_from = cart.neighbor(axis, -send_dir);
                    let tag = (axis as u64) << 8 | tag;

                    if let Some(dest) = send_to {
                        let buf = pack_send_slab(ctx, q, axis, send_dir, staging, stats);
                        comm.send(dest, tag, buf);
                    }
                    if let Some(src) = recv_from {
                        let buf = comm.recv(src, tag);
                        unpack_recv_slab(ctx, q, axis, send_dir, staging, &buf);
                    }
                }
            }
            ExchangeMode::NonBlocking => {
                // Post both receives first, then both sends, then drain —
                // the MPI_Irecv/Isend/Waitall pattern.
                let mut pending = Vec::new();
                for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
                    if let Some(src) = cart.neighbor(axis, -send_dir) {
                        let tag = (axis as u64) << 8 | tag;
                        pending.push((send_dir, comm.irecv(src, tag)));
                    }
                }
                for &(send_dir, tag) in &[(1i32, 0u64), (-1i32, 1u64)] {
                    if let Some(dest) = cart.neighbor(axis, send_dir) {
                        let tag = (axis as u64) << 8 | tag;
                        let buf = pack_send_slab(ctx, q, axis, send_dir, staging, stats);
                        comm.isend(dest, tag, buf);
                    }
                }
                for (send_dir, req) in pending {
                    let buf = comm.wait(req);
                    unpack_recv_slab(ctx, q, axis, send_dir, staging, &buf);
                }
            }
        }
    }
}

/// Pack the interior slab adjacent to the `send_dir` face of `axis`,
/// accounting for staging transfers and message statistics.
fn pack_send_slab(
    ctx: &Context,
    q: &StateField,
    axis: usize,
    send_dir: i32,
    staging: Staging,
    stats: &mut CommStats,
) -> Vec<f64> {
    let dom = *q.domain();
    let ng = dom.ng;
    let lo = if send_dir > 0 {
        dom.pad(axis) + dom.n[axis] - ng
    } else {
        dom.pad(axis)
    };
    let buf = pack_slab(q, axis, lo, ng);
    if staging == Staging::HostStaged {
        ctx.ledger()
            .record_transfer(TransferDirection::DeviceToHost, (buf.len() * 8) as u64);
    }
    stats.messages += 1;
    stats.bytes += (buf.len() * 8) as u64;
    buf
}

/// Unpack a received buffer into the ghost slab opposite the `send_dir`
/// face of `axis`.
fn unpack_recv_slab(
    ctx: &Context,
    q: &mut StateField,
    axis: usize,
    send_dir: i32,
    staging: Staging,
    buf: &[f64],
) {
    let dom = *q.domain();
    let ng = dom.ng;
    if staging == Staging::HostStaged {
        ctx.ledger()
            .record_transfer(TransferDirection::HostToDevice, (buf.len() * 8) as u64);
    }
    let lo = if send_dir > 0 {
        0
    } else {
        dom.pad(axis) + dom.n[axis]
    };
    unpack_slab(q, axis, lo, ng, buf);
}

/// Pack `count` layers starting at padded index `lo` along `axis`, full
/// transverse (ghost-inclusive) extents, into a flat send buffer.
fn pack_slab(q: &StateField, axis: usize, lo: usize, count: usize) -> Vec<f64> {
    let dom = *q.domain();
    let (t1, t2) = transverse_extents(&dom, axis);
    let neq = dom.eq.neq();
    let mut buf = Vec::with_capacity(count * t1 * t2 * neq);
    for e in 0..neq {
        for b in 0..t2 {
            for a in 0..t1 {
                for s in lo..lo + count {
                    let (i, j, k) = axis_coord(axis, s, a, b);
                    buf.push(q.get(i, j, k, e));
                }
            }
        }
    }
    buf
}

/// Inverse of [`pack_slab`].
fn unpack_slab(q: &mut StateField, axis: usize, lo: usize, count: usize, buf: &[f64]) {
    let dom = *q.domain();
    let (t1, t2) = transverse_extents(&dom, axis);
    let neq = dom.eq.neq();
    assert_eq!(buf.len(), count * t1 * t2 * neq, "halo buffer size mismatch");
    let mut it = buf.iter();
    for e in 0..neq {
        for b in 0..t2 {
            for a in 0..t1 {
                for s in lo..lo + count {
                    let (i, j, k) = axis_coord(axis, s, a, b);
                    q.set(i, j, k, e, *it.next().unwrap());
                }
            }
        }
    }
}

fn transverse_extents(dom: &Domain, axis: usize) -> (usize, usize) {
    match axis {
        0 => (dom.ext(1), dom.ext(2)),
        1 => (dom.ext(0), dom.ext(2)),
        _ => (dom.ext(0), dom.ext(1)),
    }
}

#[inline]
fn axis_coord(axis: usize, s: usize, a: usize, b: usize) -> (usize, usize, usize) {
    match axis {
        0 => (s, a, b),
        1 => (a, s, b),
        _ => (a, b, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::presets;

    #[test]
    fn distributed_sod_matches_serial_bitwise() {
        let case = presets::sod(64);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 10);
        for ranks in [2usize, 4] {
            let (dist, stats) = run_distributed(&case, cfg, ranks, 10, Staging::DeviceDirect);
            assert_eq!(dist.n, serial.n);
            let diff = dist.max_abs_diff(&serial);
            assert_eq!(diff, 0.0, "ranks={ranks}: max diff {diff:e}");
            assert!(stats.messages > 0);
        }
    }

    #[test]
    fn distributed_2d_periodic_matches_serial() {
        let case = presets::two_phase_benchmark(2, [16, 16, 1]);
        let cfg = SolverConfig::default();
        let serial = run_single(&case, cfg, 4);
        let (dist, _) = run_distributed(&case, cfg, 4, 4, Staging::DeviceDirect);
        let diff = dist.max_abs_diff(&serial);
        assert_eq!(diff, 0.0, "max diff {diff:e}");
    }

    #[test]
    fn staged_and_direct_produce_identical_physics() {
        let case = presets::two_phase_benchmark(2, [16, 16, 1]);
        let cfg = SolverConfig::default();
        let (a, _) = run_distributed(&case, cfg, 2, 3, Staging::DeviceDirect);
        let (b, _) = run_distributed(&case, cfg, 2, 3, Staging::HostStaged);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn comm_volume_scales_with_halo_area() {
        let cfg = SolverConfig::default();
        let small = presets::two_phase_benchmark(2, [16, 16, 1]);
        let big = presets::two_phase_benchmark(2, [32, 32, 1]);
        let (_, s_small) = run_distributed(&small, cfg, 2, 1, Staging::DeviceDirect);
        let (_, s_big) = run_distributed(&big, cfg, 2, 1, Staging::DeviceDirect);
        // Halo area doubles (one split axis, transverse extent doubles).
        assert!(s_big.bytes > s_small.bytes);
        assert_eq!(s_big.messages, s_small.messages);
    }
}
