//! Strong-stability-preserving Runge–Kutta time integration.

use serde::{Deserialize, Serialize};

use crate::state::StateField;

/// Time integration scheme (MFC's `time_stepper` 1/2/3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeScheme {
    /// Forward Euler.
    Rk1,
    /// SSP-RK2 (Heun).
    Rk2,
    /// SSP-RK3 (Shu–Osher) — MFC's default with WENO5.
    Rk3,
}

impl TimeScheme {
    pub fn stages(self) -> usize {
        match self {
            TimeScheme::Rk1 => 1,
            TimeScheme::Rk2 => 2,
            TimeScheme::Rk3 => 3,
        }
    }

    /// Formal order of accuracy.
    pub fn order(self) -> usize {
        self.stages()
    }
}

/// Scratch states for multi-stage schemes.
pub struct RkWorkspace {
    /// Copy of `q^n` kept across stages.
    pub q0: StateField,
    /// Stage RHS.
    pub rhs: StateField,
}

impl RkWorkspace {
    pub fn new(template: &StateField) -> Self {
        RkWorkspace {
            q0: template.clone(),
            rhs: StateField::zeros(*template.domain()),
        }
    }
}

/// Advance `q` by one step of `scheme` with step `dt`.
///
/// `eval_rhs(q, rhs)` must fill ghost cells of `q` (BCs/halo) and then the
/// interior of `rhs`; it is called once per stage.  The convex SSP
/// combinations act on the full ghost-inclusive arrays, which is harmless
/// because ghosts are refilled before each use.
pub fn rk_step(
    scheme: TimeScheme,
    dt: f64,
    q: &mut StateField,
    ws: &mut RkWorkspace,
    mut eval_rhs: impl FnMut(&mut StateField, &mut StateField),
) {
    match scheme {
        TimeScheme::Rk1 => {
            eval_rhs(q, &mut ws.rhs);
            q.axpy(dt, &ws.rhs);
        }
        TimeScheme::Rk2 => {
            ws.q0.as_mut_slice().copy_from_slice(q.as_slice());
            // q1 = q0 + dt L(q0)
            eval_rhs(q, &mut ws.rhs);
            q.axpy(dt, &ws.rhs);
            // q^{n+1} = 1/2 q0 + 1/2 (q1 + dt L(q1))
            eval_rhs(q, &mut ws.rhs);
            q.axpy(dt, &ws.rhs);
            let q0 = &ws.q0;
            let tmp = q.clone();
            q.lincomb(0.5, q0, 0.5, &tmp);
        }
        TimeScheme::Rk3 => {
            ws.q0.as_mut_slice().copy_from_slice(q.as_slice());
            // Stage 1: q1 = q0 + dt L(q0)
            eval_rhs(q, &mut ws.rhs);
            q.axpy(dt, &ws.rhs);
            // Stage 2: q2 = 3/4 q0 + 1/4 (q1 + dt L(q1))
            eval_rhs(q, &mut ws.rhs);
            q.axpy(dt, &ws.rhs);
            let tmp = q.clone();
            q.lincomb(0.75, &ws.q0, 0.25, &tmp);
            // Stage 3: q^{n+1} = 1/3 q0 + 2/3 (q2 + dt L(q2))
            eval_rhs(q, &mut ws.rhs);
            q.axpy(dt, &ws.rhs);
            let tmp = q.clone();
            q.lincomb(1.0 / 3.0, &ws.q0, 2.0 / 3.0, &tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::eqidx::EqIdx;

    fn scalar_field(v: f64) -> StateField {
        let dom = Domain::new([1, 1, 1], 1, EqIdx::new(1, 1));
        let mut s = StateField::zeros(dom);
        s.set(1, 0, 0, 0, v);
        s
    }

    /// Integrate dy/dt = lambda y and check the convergence order against
    /// the exact exponential.
    fn decay_error(scheme: TimeScheme, dt: f64) -> f64 {
        let lambda = -1.0;
        let mut q = scalar_field(1.0);
        let mut ws = RkWorkspace::new(&q);
        let steps = (1.0 / dt).round() as usize;
        for _ in 0..steps {
            rk_step(scheme, dt, &mut q, &mut ws, |q, rhs| {
                let v = q.get(1, 0, 0, 0);
                rhs.fill(0.0);
                rhs.set(1, 0, 0, 0, lambda * v);
            });
        }
        (q.get(1, 0, 0, 0) - (-1.0f64).exp()).abs()
    }

    #[test]
    fn rk_schemes_converge_at_design_order() {
        for (scheme, min_rate) in [
            (TimeScheme::Rk1, 0.9),
            (TimeScheme::Rk2, 1.9),
            (TimeScheme::Rk3, 2.9),
        ] {
            let e1 = decay_error(scheme, 0.05);
            let e2 = decay_error(scheme, 0.025);
            let rate = (e1 / e2).log2();
            assert!(
                rate > min_rate,
                "{scheme:?}: rate {rate} (e1={e1:.2e}, e2={e2:.2e})"
            );
        }
    }

    #[test]
    fn rhs_called_once_per_stage() {
        for scheme in [TimeScheme::Rk1, TimeScheme::Rk2, TimeScheme::Rk3] {
            let mut q = scalar_field(1.0);
            let mut ws = RkWorkspace::new(&q);
            let mut calls = 0;
            rk_step(scheme, 0.01, &mut q, &mut ws, |_, rhs| {
                calls += 1;
                rhs.fill(0.0);
            });
            assert_eq!(calls, scheme.stages());
        }
    }

    #[test]
    fn zero_rhs_preserves_state_exactly() {
        for scheme in [TimeScheme::Rk1, TimeScheme::Rk2, TimeScheme::Rk3] {
            let mut q = scalar_field(3.25);
            let mut ws = RkWorkspace::new(&q);
            rk_step(scheme, 0.1, &mut q, &mut ws, |_, rhs| rhs.fill(0.0));
            assert_eq!(q.get(1, 0, 0, 0), 3.25, "{scheme:?}");
        }
    }
}
