//! 3-D block ("cuboid") cartesian decomposition (§III-A).
//!
//! MFC splits the domain into near-cubic 3-D blocks rather than slabs or
//! pencils: for a fixed process count the cube minimizes the
//! surface-to-volume ratio and therefore the halo-exchange volume.

/// Factor `n` ranks into `[p1, p2, p3]` as close to a cube as possible,
/// weighted by the global extents so blocks end up near-cubic in *cells*.
///
/// Among all factorizations `p1*p2*p3 = n`, picks the one minimizing the
/// total halo surface of a `gx × gy × gz` domain.
pub fn best_block_dims(n: usize, extents: [usize; 3]) -> [usize; 3] {
    assert!(n > 0);
    let [gx, gy, gz] = extents.map(|e| e.max(1) as f64);
    let mut best = [n, 1, 1];
    let mut best_surface = f64::INFINITY;
    let mut best_aspect = f64::INFINITY;
    for p1 in 1..=n {
        if !n.is_multiple_of(p1) {
            continue;
        }
        let rem = n / p1;
        for p2 in 1..=rem {
            if !rem.is_multiple_of(p2) {
                continue;
            }
            let p3 = rem / p2;
            // Per-block extents.
            let (bx, by, bz) = (gx / p1 as f64, gy / p2 as f64, gz / p3 as f64);
            // Decomposing along an axis of extent 1 is useless.
            if (bx < 1.0 && p1 > 1) || (by < 1.0 && p2 > 1) || (bz < 1.0 && p3 > 1) {
                continue;
            }
            // Total exchanged face area per block (both faces per split axis).
            let mut surface = 0.0;
            if p1 > 1 {
                surface += 2.0 * by * bz;
            }
            if p2 > 1 {
                surface += 2.0 * bx * bz;
            }
            if p3 > 1 {
                surface += 2.0 * bx * by;
            }
            // Tie-break equal surfaces toward cubic blocks (what
            // MPI_Dims_create produces): smallest block aspect ratio wins.
            let aspect = bx.max(by).max(bz) / bx.min(by).min(bz);
            if surface < best_surface * (1.0 - 1e-12)
                || (surface < best_surface * (1.0 + 1e-12) && aspect < best_aspect)
            {
                best_surface = surface;
                best_aspect = aspect;
                best = [p1, p2, p3];
            }
        }
    }
    best
}

/// A decomposition whose thinnest rank cannot source a full halo slab.
///
/// `pack_send_slab` ships the `ng` interior layers adjacent to each split
/// face. On a rank whose local extent along that axis is below `ng`, those
/// layers would overlap the *opposite* ghost region, silently sending
/// stale ghost data as if it were interior. Such decompositions are a
/// configuration error, rejected before any rank is spawned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompositionError {
    /// Axis whose blocks are too thin.
    pub axis: usize,
    /// Rank count along that axis.
    pub ranks: usize,
    /// Global cell count along that axis.
    pub global: usize,
    /// Thinnest per-rank extent along that axis (`global / ranks`).
    pub thinnest: usize,
    /// Required halo depth.
    pub ng: usize,
}

impl std::fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decomposition splits axis {} ({} cells over {} ranks) into blocks as thin as \
             {} cells, below the {}-layer halo depth; a send slab would overlap the \
             opposite ghost region",
            self.axis, self.global, self.ranks, self.thinnest, self.ng
        )
    }
}

impl std::error::Error for DecompositionError {}

/// Validate that every rank of a `dims` decomposition of a `global` domain
/// is at least `ng` cells wide along every *split* axis.
///
/// The thinnest block along an axis is `global / p` (the remainder goes to
/// the low ranks), so the check is exact, not conservative. Unsplit axes
/// (`p == 1`) never exchange halos and are not constrained.
pub fn validate_halo_extents(
    dims: [usize; 3],
    global: [usize; 3],
    ng: usize,
) -> Result<(), DecompositionError> {
    for axis in 0..3 {
        let p = dims[axis];
        if p > 1 && global[axis] / p < ng {
            return Err(DecompositionError {
                axis,
                ranks: p,
                global: global[axis],
                thinnest: global[axis] / p,
                ng,
            });
        }
    }
    Ok(())
}

/// A cartesian topology over `size = p1*p2*p3` ranks.
///
/// Rank ordering is x-fastest: `rank = c1 + p1*(c2 + p2*c3)`.
#[derive(Debug, Clone)]
pub struct CartComm {
    dims: [usize; 3],
    periodic: [bool; 3],
    rank: usize,
}

impl CartComm {
    pub fn new(rank: usize, dims: [usize; 3], periodic: [bool; 3]) -> Self {
        let size = dims[0] * dims[1] * dims[2];
        assert!(rank < size, "rank {rank} outside {dims:?} topology");
        CartComm {
            dims,
            periodic,
            rank,
        }
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's coordinates in the topology.
    pub fn coords(&self) -> [usize; 3] {
        let [p1, p2, _] = self.dims;
        [self.rank % p1, (self.rank / p1) % p2, self.rank / (p1 * p2)]
    }

    /// Rank at the given coordinates.
    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        let [p1, p2, p3] = self.dims;
        debug_assert!(coords[0] < p1 && coords[1] < p2 && coords[2] < p3);
        coords[0] + p1 * (coords[1] + p2 * coords[2])
    }

    /// Neighbour along `axis` in direction `dir` (-1 or +1), or `None` at a
    /// non-periodic boundary (`MPI_Cart_shift` returning `MPI_PROC_NULL`).
    pub fn neighbor(&self, axis: usize, dir: i32) -> Option<usize> {
        assert!(axis < 3 && (dir == 1 || dir == -1));
        let mut c = self.coords();
        let p = self.dims[axis];
        let cur = c[axis] as i64 + dir as i64;
        let wrapped = if cur < 0 || cur >= p as i64 {
            if !self.periodic[axis] {
                return None;
            }
            ((cur % p as i64) + p as i64) as usize % p
        } else {
            cur as usize
        };
        c[axis] = wrapped;
        Some(self.rank_of(c))
    }

    /// Split a global extent into this rank's `(offset, length)` along
    /// `axis`, distributing the remainder to the low ranks (MPC convention).
    pub fn local_extent(&self, axis: usize, global: usize) -> (usize, usize) {
        let p = self.dims[axis];
        let c = self.coords()[axis];
        let base = global / p;
        let rem = global % p;
        let len = base + usize::from(c < rem);
        let offset = c * base + c.min(rem);
        (offset, len)
    }
}

/// The `(offset, extent)` cell block a rank owns under a decomposition:
/// `local_extent` applied per axis for the first `ndim` axes, with the
/// trailing degenerate axes pinned to `(0, 1)` exactly as the distributed
/// drivers lay ranks out. A pure function of `(rank, dims)`, so recovery
/// code can locate *another* rank's checkpoint shard — including ranks of
/// a decomposition that no longer exists after a shrink.
pub fn block_extents(
    rank: usize,
    dims: [usize; 3],
    global: [usize; 3],
    ndim: usize,
) -> ([usize; 3], [usize; 3]) {
    let cart = CartComm::new(rank, dims, [false; 3]);
    let mut off = [0usize; 3];
    let mut n = [1usize; 3];
    for d in 0..ndim {
        let (o, len) = cart.local_extent(d, global[d]);
        off[d] = o;
        n[d] = len;
    }
    (off, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_dims_prefers_cubes_for_cubic_domains() {
        assert_eq!(best_block_dims(8, [256, 256, 256]), [2, 2, 2]);
        assert_eq!(best_block_dims(64, [512, 512, 512]), [4, 4, 4]);
    }

    #[test]
    fn best_dims_respects_anisotropy() {
        // A domain long in x should be split along x first.
        let d = best_block_dims(4, [1024, 32, 32]);
        assert_eq!(d, [4, 1, 1]);
    }

    #[test]
    fn best_dims_handles_2d_domains() {
        let d = best_block_dims(16, [512, 512, 1]);
        assert_eq!(d[2], 1);
        assert_eq!(d[0] * d[1], 16);
    }

    #[test]
    fn coords_round_trip() {
        let dims = [3, 4, 5];
        for rank in 0..60 {
            let c = CartComm::new(rank, dims, [false; 3]);
            assert_eq!(c.rank_of(c.coords()), rank);
        }
    }

    #[test]
    fn neighbors_in_non_periodic_topology() {
        let c = CartComm::new(0, [2, 2, 1], [false; 3]);
        assert_eq!(c.neighbor(0, 1), Some(1));
        assert_eq!(c.neighbor(0, -1), None);
        assert_eq!(c.neighbor(1, 1), Some(2));
        assert_eq!(c.neighbor(2, 1), None);
    }

    #[test]
    fn neighbors_wrap_when_periodic() {
        let c = CartComm::new(0, [3, 1, 1], [true, false, false]);
        assert_eq!(c.neighbor(0, -1), Some(2));
        assert_eq!(c.neighbor(0, 1), Some(1));
    }

    #[test]
    fn local_extents_tile_the_axis_exactly() {
        let dims = [4, 1, 1];
        let global = 103; // deliberately not divisible
        let mut covered = vec![false; global];
        for rank in 0..4 {
            let c = CartComm::new(rank, dims, [false; 3]);
            let (off, len) = c.local_extent(0, global);
            for (i, cell) in covered.iter_mut().enumerate().skip(off).take(len) {
                assert!(!*cell, "cell {i} covered twice");
                *cell = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn thin_rank_decompositions_are_rejected() {
        // Regression (thin-rank halo bug): a 2-cell-wide rank under a
        // 3-layer halo would pack ghost cells into its send slab.
        let err = validate_halo_extents([4, 1, 1], [8, 8, 1], 3).unwrap_err();
        assert_eq!(err.axis, 0);
        assert_eq!(err.thinnest, 2);
        assert_eq!(err.ng, 3);
        // 1-cell-wide ranks fail too.
        assert!(validate_halo_extents([1, 8, 1], [16, 8, 1], 2).is_err());
        // Exactly ng cells per rank is fine, as are unsplit thin axes.
        assert!(validate_halo_extents([4, 1, 1], [12, 8, 1], 3).is_ok());
        assert!(validate_halo_extents([1, 1, 1], [2, 1, 1], 3).is_ok());
        // The remainder convention means global/p is the thinnest block:
        // 13 cells over 4 ranks -> 4,3,3,3, rejected at ng=4 not ng=3.
        assert!(validate_halo_extents([4, 1, 1], [13, 1, 1], 3).is_ok());
        assert!(validate_halo_extents([4, 1, 1], [13, 1, 1], 4).is_err());
    }

    #[test]
    fn block_extents_tile_the_domain_exactly() {
        let dims = [2, 3, 1];
        let global = [10, 7, 1];
        let mut covered = [false; 70];
        for rank in 0..6 {
            let (off, n) = block_extents(rank, dims, global, 2);
            assert_eq!(off[2], 0);
            assert_eq!(n[2], 1);
            for j in off[1]..off[1] + n[1] {
                for i in off[0]..off[0] + n[0] {
                    let idx = j * 10 + i;
                    assert!(!covered[idx], "cell ({i},{j}) covered twice");
                    covered[idx] = true;
                }
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn remainder_goes_to_low_ranks() {
        let c0 = CartComm::new(0, [3, 1, 1], [false; 3]);
        let c2 = CartComm::new(2, [3, 1, 1], [false; 3]);
        assert_eq!(c0.local_extent(0, 10), (0, 4));
        assert_eq!(c2.local_extent(0, 10), (7, 3));
    }
}
