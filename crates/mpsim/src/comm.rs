//! Ranks as threads, messages as mailbox deliveries.
//!
//! The transport is a per-rank mailbox (mutex + condvar) instead of a
//! channel, because the fault-injection layer needs to see every message
//! at the delivery point: dropped messages sit in a *limbo* store until
//! the receiver's retry path asks for a retransmit, delayed messages sit
//! in a countdown store ticked by subsequent deliveries, and per-flow
//! FIFO (MPI's non-overtaking guarantee) is enforced even while other
//! flows are reordered around a held message.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

use mfc_trace::{Category, CommOp, SpanGuard, TraceHandle};

use crate::fault::{CommFault, FaultCtx, SendFault};

/// Safety net: a plain (non-policied) receive that waits longer than this
/// panics instead of hanging the test suite; a correct fault-free program
/// never gets near it.
const PLAIN_RECV_DEADLINE: Duration = Duration::from_secs(120);

/// A tagged point-to-point message.
#[derive(Debug)]
struct Message {
    src: usize,
    tag: u64,
    /// Recovery generation the sender was in; receivers discard messages
    /// from generations older than their own (stale pre-rollback data).
    gen: u64,
    /// Per-(src, dst) sequence number, used to restore flow order when
    /// held messages are flushed.
    seq: u64,
    payload: Vec<f64>,
}

#[derive(Debug, Default)]
struct MailboxQ {
    ready: VecDeque<Message>,
    /// Dropped messages awaiting retransmit.
    limbo: Vec<Message>,
    /// Delayed messages: (deliveries still to wait, message).
    delayed: Vec<(u32, Message)>,
}

#[derive(Debug, Default)]
struct Mailbox {
    q: Mutex<MailboxQ>,
    cv: Condvar,
}

impl Mailbox {
    /// Deliver one message, applying its send-side fault (if any) and
    /// keeping every `(src, tag)` flow FIFO:
    ///
    /// 1. if the new message is actually delivered, held messages of the
    ///    same flow are flushed ahead of it — a *faulted* message must
    ///    not rescue its held predecessors, or a dropped message would
    ///    reach the receiver without the retry path ever running;
    /// 2. the new message is enqueued (or held, per its fault);
    /// 3. delay countdowns tick, releasing expired messages *after* the
    ///    new one — which is what actually reorders flows — except that
    ///    an expired message stays held while an earlier message of its
    ///    own flow is still in limbo or delayed (non-overtaking).
    fn push(&self, msg: Message, fault: Option<SendFault>) {
        let mut q = self.q.lock().unwrap();
        match fault {
            Some(SendFault::Drop) => q.limbo.push(msg),
            Some(SendFault::Delay(hold)) => q.delayed.push((hold, msg)),
            None => {
                Self::flush_flow(&mut q, msg.src, msg.tag);
                q.ready.push_back(msg);
            }
        }
        Self::tick_delays(&mut q);
        self.cv.notify_all();
    }

    /// Move held messages of flow `(src, tag)` into the ready queue in
    /// sequence order (per-flow non-overtaking).
    fn flush_flow(q: &mut MailboxQ, src: usize, tag: u64) {
        let mut flushed: Vec<Message> = Vec::new();
        let mut i = 0;
        while i < q.limbo.len() {
            if q.limbo[i].src == src && q.limbo[i].tag == tag {
                flushed.push(q.limbo.swap_remove(i));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < q.delayed.len() {
            if q.delayed[i].1.src == src && q.delayed[i].1.tag == tag {
                flushed.push(q.delayed.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        flushed.sort_by_key(|m| m.seq);
        q.ready.extend(flushed);
    }

    /// One delivery happened: tick every countdown, release expired holds.
    ///
    /// An expired message is NOT released while an earlier-sequence
    /// message of the same `(src, tag)` flow is still held in limbo or
    /// delayed — it stays parked (at hold 0) until `flush_flow` or
    /// `promote_all` moves the whole flow in order.
    fn tick_delays(q: &mut MailboxQ) {
        for (hold, _) in q.delayed.iter_mut() {
            *hold = hold.saturating_sub(1);
        }
        let mut released: Vec<Message> = Vec::new();
        loop {
            let mut moved = false;
            let mut i = 0;
            while i < q.delayed.len() {
                let (hold, m) = &q.delayed[i];
                let blocked = *hold > 0
                    || q.limbo
                        .iter()
                        .any(|h| h.src == m.src && h.tag == m.tag && h.seq < m.seq)
                    || q.delayed.iter().enumerate().any(|(j, (_, h))| {
                        j != i && h.src == m.src && h.tag == m.tag && h.seq < m.seq
                    });
                if blocked {
                    i += 1;
                } else {
                    released.push(q.delayed.swap_remove(i).1);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        released.sort_by_key(|m| m.seq);
        q.ready.extend(released);
    }

    /// Retransmit everything recoverable (retry path): limbo and delayed
    /// messages all move to ready. Returns how many were promoted.
    fn promote_all(&self) -> usize {
        let mut q = self.q.lock().unwrap();
        let mut moved: Vec<Message> = q.limbo.drain(..).collect();
        moved.extend(q.delayed.drain(..).map(|(_, m)| m));
        moved.sort_by_key(|m| (m.src, m.tag, m.seq));
        let n = moved.len();
        q.ready.extend(moved);
        if n > 0 {
            self.cv.notify_all();
        }
        n
    }

    /// Pop the oldest ready message, waiting up to `timeout` for one.
    fn pop(&self, timeout: Duration) -> Option<Message> {
        let mut q = self.q.lock().unwrap();
        if let Some(m) = q.ready.pop_front() {
            return Some(m);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(q, deadline - now).unwrap();
            q = guard;
            if let Some(m) = q.ready.pop_front() {
                return Some(m);
            }
        }
    }
}

/// One rank's handle into the simulated world.
///
/// Mirrors the slice of the MPI API MFC uses. Receives match on
/// `(source, tag)`; out-of-order arrivals are buffered, so communication
/// patterns that rely on MPI's non-overtaking guarantee work unchanged.
/// The `*_policied` variants are the fault-aware exchange path: they
/// return `Err(CommFault)` instead of blocking forever when a peer is
/// dead, silent past the detector's patience, or when another rank has
/// initiated recovery.
pub struct Comm {
    /// Physical identity: this rank's mailbox index, fixed for the whole
    /// run. Fault plans and the [`crate::fault::FaultBoard`] speak
    /// physical ranks.
    phys: usize,
    /// Logical identity: this rank's slot in the current epoch's roster
    /// (`usize::MAX` for an idle hot spare outside the decomposition).
    /// All public operations — `rank()`, `send`, `recv`, collectives —
    /// speak logical ranks and translate through the roster, so a spare
    /// promotion or a communicator shrink is invisible to exchange code.
    logical: usize,
    /// Logical slot -> physical rank translation table for the epoch
    /// this rank currently runs in (see [`Comm::adopt_roster`]).
    roster: Vec<usize>,
    mailboxes: Arc<Vec<Mailbox>>,
    pending: VecDeque<Message>,
    barrier: Arc<Barrier>,
    faults: Option<Arc<FaultCtx>>,
    /// Recovery generation this rank currently runs in.
    gen: Cell<u64>,
    /// Per-physical-destination count of messages sent (fault keying +
    /// flow seq).
    send_seq: Vec<Cell<u64>>,
    /// Retransmits observed by this rank's retry path.
    retransmits: Cell<u64>,
    /// Retries burned by policied receives (detector activity).
    retries: Cell<u64>,
    /// Measured-profile recording endpoint; `None` (the default) keeps
    /// every operation on an untraced fast path.
    tracer: Option<Arc<TraceHandle>>,
}

impl Comm {
    /// This rank's logical id in the current epoch (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.logical
    }

    /// Number of logical ranks in the current epoch (`MPI_Comm_size`).
    /// Shrinks when a permanent loss is healed by dropping dead slots.
    pub fn size(&self) -> usize {
        self.roster.len()
    }

    /// This rank's fixed physical id (mailbox index): the identity fault
    /// plans and the fault board use.
    pub fn phys_rank(&self) -> usize {
        self.phys
    }

    /// Whether this rank is an idle hot spare outside the decomposition
    /// (no logical slot yet; promoted by [`Comm::adopt_roster`]).
    pub fn is_spare(&self) -> bool {
        self.logical == usize::MAX
    }

    /// Enter a reconfigured epoch: install the rendezvous' new
    /// logical->physical roster and recompute this rank's logical id (a
    /// promoted spare gains one; survivors of a shrink may keep theirs
    /// or slide down). Panics if this physical rank is not in the roster
    /// — a permanently dead rank must not adopt the epoch it left.
    pub fn adopt_roster(&mut self, roster: Vec<usize>) {
        self.logical = roster
            .iter()
            .position(|&p| p == self.phys)
            .expect("physical rank absent from the adopted roster");
        self.roster = roster;
    }

    /// The fault context this world runs under, if any.
    pub fn fault_ctx(&self) -> Option<&Arc<FaultCtx>> {
        self.faults.as_ref()
    }

    /// Attach a per-rank trace handle: subsequent sends/receives emit
    /// leaf comm events (payload bytes, blocked-wait time) and collectives
    /// open spans, giving the measured per-rank comm/compute split.
    pub fn set_tracer(&mut self, handle: Arc<TraceHandle>) {
        self.tracer = Some(handle);
    }

    /// The attached trace handle, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Arc<TraceHandle>> {
        self.tracer.as_ref()
    }

    /// Open a collective span on the attached trace (no-op untraced).
    fn trace_collective(&self, name: &'static str, bytes: u64) -> Option<SpanGuard> {
        self.tracer
            .as_ref()
            .map(|t| t.span_bytes(name, Category::Collective, bytes))
    }

    /// Retransmissions triggered by this rank's retries so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    /// Detector retries burned by this rank so far.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Non-blocking-ish send (`MPI_Send` with buffering semantics).
    /// `dest` is a logical rank, translated through the epoch roster.
    pub fn send(&self, dest: usize, tag: u64, payload: Vec<f64>) {
        assert!(
            dest < self.roster.len(),
            "send to rank {dest} of {}",
            self.roster.len()
        );
        let dest_phys = self.roster[dest];
        let t0 = Instant::now();
        let bytes = (payload.len() * 8) as u64;
        let nth = self.send_seq[dest_phys].get();
        self.send_seq[dest_phys].set(nth + 1);
        let fault = self
            .faults
            .as_ref()
            .and_then(|f| f.plan.send_fault(self.phys, dest_phys, nth));
        self.mailboxes[dest_phys].push(
            Message {
                src: self.phys,
                tag,
                gen: self.gen.get(),
                seq: nth,
                payload,
            },
            fault,
        );
        if let Some(t) = &self.tracer {
            t.comm(CommOp::Send, dest, bytes, t0);
        }
    }

    /// Take a matching message out of the local pending buffer, skipping
    /// and discarding stale-generation messages. `source` is logical.
    fn take_pending(&mut self, source: usize, tag: u64) -> Option<Vec<f64>> {
        let gen = self.gen.get();
        let src_phys = self.roster[source];
        self.pending.retain(|m| m.gen >= gen);
        self.pending
            .iter()
            .position(|m| m.src == src_phys && m.tag == tag)
            .map(|pos| self.pending.remove(pos).unwrap().payload)
    }

    /// Blocking receive matching `(source, tag)` (`MPI_Recv`).
    pub fn recv(&mut self, source: usize, tag: u64) -> Vec<f64> {
        let t0 = Instant::now();
        let payload = self.recv_blocking(source, tag);
        if let Some(t) = &self.tracer {
            t.comm(CommOp::Recv, source, (payload.len() * 8) as u64, t0);
        }
        payload
    }

    /// The untraced blocking-receive core shared by [`Comm::recv`],
    /// [`Comm::wait`] and the policied path.
    fn recv_blocking(&mut self, source: usize, tag: u64) -> Vec<f64> {
        if let Some(p) = self.take_pending(source, tag) {
            return p;
        }
        let src_phys = self.roster[source];
        let deadline = Instant::now() + PLAIN_RECV_DEADLINE;
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .expect("plain recv exceeded the deadlock safety net");
            let m = self.mailboxes[self.phys]
                .pop(remaining)
                .expect("plain recv exceeded the deadlock safety net");
            if m.gen < self.gen.get() {
                continue;
            }
            if m.src == src_phys && m.tag == tag {
                return m.payload;
            }
            self.pending.push_back(m);
        }
    }

    /// Fault-aware receive: waits in detector-sized slices; every expired
    /// slice re-checks the failure board (heartbeat), promotes
    /// retransmittable messages, and backs off. Errors out if the peer is
    /// dead, recovery was requested elsewhere, or patience runs out.
    pub fn recv_policied(&mut self, source: usize, tag: u64) -> Result<Vec<f64>, CommFault> {
        let t0 = Instant::now();
        let result = self.recv_policied_inner(source, tag);
        if let Some(t) = &self.tracer {
            // Failed receives still carry their blocked-wait time; the
            // payload size is zero because nothing arrived.
            let bytes = result.as_ref().map(|p| (p.len() * 8) as u64).unwrap_or(0);
            t.comm(CommOp::Recv, source, bytes, t0);
        }
        result
    }

    fn recv_policied_inner(&mut self, source: usize, tag: u64) -> Result<Vec<f64>, CommFault> {
        let faults = match self.faults.clone() {
            Some(f) => f,
            // No fault context: plain blocking semantics.
            None => return Ok(self.recv_blocking(source, tag)),
        };
        if let Some(p) = self.take_pending(source, tag) {
            return Ok(p);
        }
        let src_phys = self.roster[source];
        let mut attempt: u32 = 0;
        loop {
            let slice = faults.detector.slice(attempt);
            let deadline = Instant::now() + slice;
            // Drain whatever arrives within this slice.
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match self.mailboxes[self.phys].pop(deadline - now) {
                    None => break,
                    Some(m) => {
                        if m.gen < self.gen.get() {
                            continue;
                        }
                        if m.src == src_phys && m.tag == tag {
                            return Ok(m.payload);
                        }
                        self.pending.push_back(m);
                    }
                }
            }
            // Slice expired: heartbeat checks, then retransmit + retry.
            if faults.board.recovery_pending() {
                return Err(CommFault::RecoveryRequested);
            }
            if !faults.board.is_alive(src_phys) {
                return Err(CommFault::PeerDead { rank: source });
            }
            let promoted = self.mailboxes[self.phys].promote_all();
            self.retransmits
                .set(self.retransmits.get() + promoted as u64);
            self.retries.set(self.retries.get() + 1);
            attempt += 1;
            if attempt > faults.detector.retries {
                return Err(CommFault::Timeout { source, tag });
            }
        }
    }

    /// Combined send+receive (`MPI_Sendrecv`) — the halo-exchange primitive.
    ///
    /// Safe against head-of-line blocking because sends are buffered.
    pub fn sendrecv(
        &mut self,
        dest: usize,
        send_tag: u64,
        payload: Vec<f64>,
        source: usize,
        recv_tag: u64,
    ) -> Vec<f64> {
        self.send(dest, send_tag, payload);
        self.recv(source, recv_tag)
    }

    /// Fault-aware [`Comm::sendrecv`].
    pub fn sendrecv_policied(
        &mut self,
        dest: usize,
        send_tag: u64,
        payload: Vec<f64>,
        source: usize,
        recv_tag: u64,
    ) -> Result<Vec<f64>, CommFault> {
        self.send(dest, send_tag, payload);
        self.recv_policied(source, recv_tag)
    }

    /// Global synchronization (`MPI_Barrier`).
    pub fn barrier(&self) {
        let _span = self.trace_collective("barrier", 0);
        self.barrier.wait();
    }

    /// Fault-aware barrier: message-based (star), so a dead or silent
    /// rank surfaces as an error instead of a hang.
    pub fn barrier_policied(&mut self) -> Result<(), CommFault> {
        self.allreduce_policied(0.0, |a, b| a + b).map(|_| ())
    }

    /// All-reduce of one scalar (`MPI_Allreduce`): every rank receives
    /// `op` folded over every rank's contribution.
    pub fn allreduce(&mut self, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let _span = self.trace_collective("allreduce", 8);
        const REDUCE_TAG: u64 = u64::MAX - 1;
        const BCAST_TAG: u64 = u64::MAX - 2;
        if self.logical == 0 {
            let mut acc = value;
            for src in 1..self.size() {
                let v = self.recv(src, REDUCE_TAG);
                acc = op(acc, v[0]);
            }
            for dst in 1..self.size() {
                self.send(dst, BCAST_TAG, vec![acc]);
            }
            acc
        } else {
            self.send(0, REDUCE_TAG, vec![value]);
            self.recv(0, BCAST_TAG)[0]
        }
    }

    /// Fault-aware [`Comm::allreduce`]. Doubles as the per-step
    /// heartbeat: rank 0 touches every rank, so a dead rank is detected
    /// within one detector slice of the next collective.
    pub fn allreduce_policied(
        &mut self,
        value: f64,
        op: impl Fn(f64, f64) -> f64,
    ) -> Result<f64, CommFault> {
        let _span = self.trace_collective("allreduce", 8);
        const REDUCE_TAG: u64 = u64::MAX - 1;
        const BCAST_TAG: u64 = u64::MAX - 2;
        if self.logical == 0 {
            let mut acc = value;
            for src in 1..self.size() {
                let v = self.recv_policied(src, REDUCE_TAG)?;
                acc = op(acc, v[0]);
            }
            for dst in 1..self.size() {
                self.send(dst, BCAST_TAG, vec![acc]);
            }
            Ok(acc)
        } else {
            self.send(0, REDUCE_TAG, vec![value]);
            Ok(self.recv_policied(0, BCAST_TAG)?[0])
        }
    }

    /// Sum-reduce a scalar across ranks.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Min-reduce a scalar across ranks (the CFL Δt reduction).
    pub fn allreduce_min(&mut self, value: f64) -> f64 {
        self.allreduce(value, f64::min)
    }

    /// Max-reduce a scalar across ranks.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        self.allreduce(value, f64::max)
    }

    /// Gather every rank's buffer to rank 0 (`MPI_Gatherv`).
    /// Rank 0 receives `Some(buffers_by_rank)`, everyone else `None`.
    pub fn gather(&mut self, payload: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        let _span = self.trace_collective("gather", (payload.len() * 8) as u64);
        const GATHER_TAG: u64 = u64::MAX - 3;
        if self.logical == 0 {
            let mut out = vec![Vec::new(); self.size()];
            out[0] = payload;
            for (src, slot) in out.iter_mut().enumerate().skip(1) {
                *slot = self.recv(src, GATHER_TAG);
            }
            Some(out)
        } else {
            self.send(0, GATHER_TAG, payload);
            None
        }
    }

    /// Broadcast rank 0's buffer to everyone (`MPI_Bcast`). Non-root
    /// callers pass their (ignored) placeholder and receive the root's.
    pub fn bcast(&mut self, payload: Vec<f64>) -> Vec<f64> {
        let _span = self.trace_collective("bcast", (payload.len() * 8) as u64);
        const BCAST_TAG: u64 = u64::MAX - 4;
        if self.logical == 0 {
            for dst in 1..self.size() {
                self.send(dst, BCAST_TAG, payload.clone());
            }
            payload
        } else {
            self.recv(0, BCAST_TAG)
        }
    }

    /// Scatter rank 0's per-rank chunks (`MPI_Scatterv`): rank 0 passes
    /// `Some(chunks)` with one entry per rank, everyone else `None`; each
    /// rank receives its chunk.
    pub fn scatter(&mut self, chunks: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        let bytes = chunks
            .as_ref()
            .map(|c| c.iter().map(|v| v.len() * 8).sum::<usize>() as u64)
            .unwrap_or(0);
        let _span = self.trace_collective("scatter", bytes);
        const SCATTER_TAG: u64 = u64::MAX - 5;
        if self.logical == 0 {
            let mut chunks = chunks.expect("root must supply the chunks");
            assert_eq!(chunks.len(), self.size(), "need one chunk per rank");
            for (dst, chunk) in chunks.iter().enumerate().skip(1) {
                self.send(dst, SCATTER_TAG, chunk.clone());
            }
            std::mem::take(&mut chunks[0])
        } else {
            assert!(chunks.is_none(), "non-root ranks pass None");
            self.recv(0, SCATTER_TAG)
        }
    }

    /// Complete this rank's side of a recovery: discard every buffered
    /// message from the old generation and enter the board's current one.
    /// Call after [`crate::fault::FaultBoard::rendezvous`] returns.
    pub fn finish_recovery(&mut self, gen: u64) {
        self.pending.clear();
        self.gen.set(gen);
    }
}

/// A pending non-blocking receive (`MPI_Request` from `MPI_Irecv`).
///
/// Sends are buffered in this simulator, so `isend` completes
/// immediately; only receives need request objects.
#[derive(Debug)]
pub struct RecvRequest {
    source: usize,
    tag: u64,
}

impl Comm {
    /// Non-blocking send (`MPI_Isend`) — identical to [`Comm::send`]
    /// because sends are buffered, but kept as a named operation so
    /// communication code reads like its MPI original.
    pub fn isend(&self, dest: usize, tag: u64, payload: Vec<f64>) {
        self.send(dest, tag, payload);
    }

    /// Post a non-blocking receive (`MPI_Irecv`): returns a request to be
    /// completed with [`Comm::wait`] or [`Comm::waitall`].
    pub fn irecv(&self, source: usize, tag: u64) -> RecvRequest {
        RecvRequest { source, tag }
    }

    /// Complete one receive request (`MPI_Wait`).
    pub fn wait(&mut self, req: RecvRequest) -> Vec<f64> {
        let t0 = Instant::now();
        let payload = self.recv_blocking(req.source, req.tag);
        if let Some(t) = &self.tracer {
            t.comm(CommOp::Wait, req.source, (payload.len() * 8) as u64, t0);
        }
        payload
    }

    /// Fault-aware [`Comm::wait`].
    pub fn wait_policied(&mut self, req: RecvRequest) -> Result<Vec<f64>, CommFault> {
        self.recv_policied(req.source, req.tag)
    }

    /// Complete a batch of receive requests (`MPI_Waitall`); results are
    /// returned in the order the requests were posted.
    pub fn waitall(&mut self, reqs: Vec<RecvRequest>) -> Vec<Vec<f64>> {
        let _span = self.trace_collective("waitall", 0);
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }
}

/// Spawns `size` ranks and runs `body` on each; returns the per-rank
/// results ordered by rank (`mpirun` + collect).
///
/// ```
/// use mfc_mpsim::World;
/// let sums = World::run(4, |mut comm| comm.allreduce_sum(comm.rank() as f64));
/// assert_eq!(sums, vec![6.0; 4]);
/// ```
pub struct World;

impl World {
    pub fn run<T, F>(size: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        Self::run_inner(size, 0, None, body)
    }

    /// [`World::run`] under a fault script: the plan's message faults are
    /// applied by the transport, and each rank's `Comm` carries the
    /// shared [`FaultCtx`] for the policied exchange path.
    pub fn run_with_faults<T, F>(size: usize, faults: Arc<FaultCtx>, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert_eq!(
            faults.board.size(),
            size,
            "fault board sized for a different world"
        );
        Self::run_inner(size, 0, Some(faults), body)
    }

    /// [`World::run_with_faults`] plus `spares` hot-spare ranks: physical
    /// ranks `active..active + spares` start outside the decomposition
    /// ([`Comm::is_spare`]) and idle on the fault board until a recovery
    /// under `FailurePolicy::Spare` promotes one into a dead rank's
    /// logical slot. Results are ordered by physical rank (spares last).
    pub fn run_with_spares<T, F>(
        active: usize,
        spares: usize,
        faults: Arc<FaultCtx>,
        body: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert_eq!(
            faults.board.size(),
            active + spares,
            "fault board sized for a different world"
        );
        Self::run_inner(active, spares, Some(faults), body)
    }

    fn run_inner<T, F>(
        active: usize,
        spares: usize,
        faults: Option<Arc<FaultCtx>>,
        body: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(active > 0, "world needs at least one rank");
        let size = active + spares;
        let mailboxes: Arc<Vec<Mailbox>> =
            Arc::new((0..size).map(|_| Mailbox::default()).collect());
        let barrier = Arc::new(Barrier::new(size));

        let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for rank in 0..size {
                let comm = Comm {
                    phys: rank,
                    logical: if rank < active { rank } else { usize::MAX },
                    roster: (0..active).collect(),
                    mailboxes: Arc::clone(&mailboxes),
                    pending: VecDeque::new(),
                    barrier: Arc::clone(&barrier),
                    faults: faults.clone(),
                    gen: Cell::new(0),
                    send_seq: (0..size).map(|_| Cell::new(0)).collect(),
                    retransmits: Cell::new(0),
                    retries: Cell::new(0),
                    tracer: None,
                };
                let body = &body;
                handles.push(scope.spawn(move || body(comm)));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank panicked"));
            }
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DetectorConfig, FaultPlan, MsgDelay, MsgFault};

    #[test]
    fn ranks_know_their_identity() {
        let ids = World::run(4, |c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_sendrecv_shifts_values() {
        let n = 5;
        let got = World::run(n, |mut c| {
            let right = (c.rank() + 1) % n;
            let left = (c.rank() + n - 1) % n;
            let r = c.sendrecv(right, 7, vec![c.rank() as f64], left, 7);
            r[0]
        });
        for (rank, v) in got.iter().enumerate() {
            assert_eq!(*v as usize, (rank + n - 1) % n);
        }
    }

    #[test]
    fn recv_matches_tag_out_of_order() {
        let got = World::run(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![1.0]);
                c.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = c.recv(0, 2);
                let a = c.recv(0, 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(got[1], 12.0);
    }

    #[test]
    fn allreduce_ops() {
        let sums = World::run(4, |mut c| c.allreduce_sum(c.rank() as f64 + 1.0));
        assert!(sums.iter().all(|&s| s == 10.0));
        let mins = World::run(4, |mut c| c.allreduce_min(c.rank() as f64));
        assert!(mins.iter().all(|&m| m == 0.0));
        let maxs = World::run(4, |mut c| c.allreduce_max(c.rank() as f64));
        assert!(maxs.iter().all(|&m| m == 3.0));
    }

    #[test]
    fn gather_collects_by_rank() {
        let got = World::run(3, |mut c| c.gather(vec![c.rank() as f64; c.rank() + 1]));
        let root = got[0].as_ref().unwrap();
        assert_eq!(root[0], vec![0.0]);
        assert_eq!(root[1], vec![1.0, 1.0]);
        assert_eq!(root[2], vec![2.0, 2.0, 2.0]);
        assert!(got[1].is_none() && got[2].is_none());
    }

    #[test]
    fn bcast_delivers_roots_buffer() {
        let got = World::run(4, |mut c| {
            let local = if c.rank() == 0 {
                vec![7.0, 8.0]
            } else {
                vec![]
            };
            c.bcast(local)
        });
        for v in got {
            assert_eq!(v, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn scatter_delivers_per_rank_chunks() {
        let got = World::run(3, |mut c| {
            let chunks = if c.rank() == 0 {
                Some(vec![vec![0.0], vec![1.0, 1.0], vec![2.0, 2.0, 2.0]])
            } else {
                None
            };
            c.scatter(chunks)
        });
        assert_eq!(got[0], vec![0.0]);
        assert_eq!(got[1], vec![1.0, 1.0]);
        assert_eq!(got[2], vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let got = World::run(4, |c| {
            for _ in 0..10 {
                c.barrier();
            }
            1
        });
        assert_eq!(got.iter().sum::<i32>(), 4);
    }

    #[test]
    fn irecv_waitall_completes_out_of_order_arrivals() {
        let got = World::run(3, |mut c| {
            if c.rank() == 0 {
                // Post receives from both peers before anything arrives.
                let r2 = c.irecv(2, 9);
                let r1 = c.irecv(1, 9);
                let results = c.waitall(vec![r1, r2]);
                results[0][0] * 10.0 + results[1][0]
            } else {
                c.isend(0, 9, vec![c.rank() as f64]);
                0.0
            }
        });
        assert_eq!(got[0], 12.0);
    }

    #[test]
    fn isend_does_not_block_without_matching_recv_yet() {
        let got = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Two sends complete before the peer posts any receive.
                c.isend(1, 1, vec![1.0]);
                c.isend(1, 2, vec![2.0]);
                c.barrier();
                0.0
            } else {
                c.barrier();
                let a = c.wait(c.irecv(0, 2));
                let b = c.wait(c.irecv(0, 1));
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(got[1], 21.0);
    }

    #[test]
    fn single_rank_world_works() {
        let got = World::run(1, |mut c| c.allreduce_sum(5.0));
        assert_eq!(got, vec![5.0]);
    }

    // ------------------------------------------------ fault-layer tests

    fn faulty(plan: FaultPlan, size: usize) -> Arc<FaultCtx> {
        Arc::new(FaultCtx::new(plan, size).with_detector(DetectorConfig {
            slice_ms: 5,
            retries: 6,
            backoff: 1.5,
        }))
    }

    #[test]
    fn dropped_message_is_retransmitted_on_retry() {
        let plan = FaultPlan {
            drops: vec![MsgFault {
                src: 0,
                dst: 1,
                nth: 0,
            }],
            ..FaultPlan::default()
        };
        let got = World::run_with_faults(2, faulty(plan, 2), |mut c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![42.0]);
                0.0
            } else {
                let v = c.recv_policied(0, 3).expect("retransmit should recover");
                assert!(c.retransmits() >= 1, "drop must go through the retry path");
                v[0]
            }
        });
        assert_eq!(got[1], 42.0);
    }

    #[test]
    fn dropped_message_flushed_by_same_flow_successor() {
        // The drop's retransmit also happens when a later message of the
        // same (src, tag) flow arrives — per-flow FIFO is never violated.
        let plan = FaultPlan {
            drops: vec![MsgFault {
                src: 0,
                dst: 1,
                nth: 0,
            }],
            ..FaultPlan::default()
        };
        let got = World::run_with_faults(2, faulty(plan, 2), |mut c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![1.0]);
                c.send(1, 3, vec![2.0]);
                0.0
            } else {
                let a = c.recv_policied(0, 3).unwrap();
                let b = c.recv_policied(0, 3).unwrap();
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(got[1], 12.0, "flow order must survive the drop");
    }

    #[test]
    fn two_dropped_same_tag_messages_need_retransmit_and_stay_fifo() {
        // Regression: both messages of one (src, tag) flow are dropped.
        // The second drop must NOT flush the first out of limbo (that
        // would deliver a dropped message without the retry path ever
        // running); both must come back through retransmission, in
        // sequence order.
        let plan = FaultPlan {
            drops: vec![
                MsgFault {
                    src: 0,
                    dst: 1,
                    nth: 0,
                },
                MsgFault {
                    src: 0,
                    dst: 1,
                    nth: 1,
                },
            ],
            ..FaultPlan::default()
        };
        let got = World::run_with_faults(2, faulty(plan, 2), |mut c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![1.0]);
                c.send(1, 3, vec![2.0]);
                0.0
            } else {
                let a = c.recv_policied(0, 3).expect("first retransmit");
                let b = c.recv_policied(0, 3).expect("second retransmit");
                assert!(
                    c.retransmits() >= 2,
                    "both drops must go through the retry path, saw {}",
                    c.retransmits()
                );
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(got[1], 12.0, "flow order must survive the double drop");
    }

    #[test]
    fn delayed_successor_cannot_overtake_dropped_predecessor() {
        // Regression: a dropped message followed by a delayed one in the
        // same flow. The delay expiring must not release the successor
        // ahead of the still-dropped predecessor, and the faulted
        // successor must not silently flush the predecessor either.
        let plan = FaultPlan {
            drops: vec![MsgFault {
                src: 0,
                dst: 1,
                nth: 0,
            }],
            delays: vec![MsgDelay {
                src: 0,
                dst: 1,
                nth: 1,
                hold: 1,
            }],
            ..FaultPlan::default()
        };
        let got = World::run_with_faults(2, faulty(plan, 2), |mut c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![1.0]);
                c.send(1, 3, vec![2.0]);
                // Unrelated flow traffic ticks the delay countdown.
                c.send(1, 9, vec![0.0]);
                0.0
            } else {
                let a = c.recv_policied(0, 3).expect("dropped predecessor");
                let b = c.recv_policied(0, 3).expect("delayed successor");
                let _ = c.recv_policied(0, 9).unwrap();
                assert!(
                    c.retransmits() >= 1,
                    "the drop must go through the retry path, saw {}",
                    c.retransmits()
                );
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(got[1], 12.0, "flow order must survive drop + delay");
    }

    #[test]
    fn delayed_message_is_reordered_across_flows() {
        // Tag 1 is held for one delivery, so tag 2 (sent later) is
        // receivable first without buffering... but tag-matched recv makes
        // order transparent; assert both still arrive correctly.
        let plan = FaultPlan {
            delays: vec![MsgDelay {
                src: 0,
                dst: 1,
                nth: 0,
                hold: 1,
            }],
            ..FaultPlan::default()
        };
        let got = World::run_with_faults(2, faulty(plan, 2), |mut c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![1.0]);
                c.send(1, 2, vec![2.0]);
                0.0
            } else {
                let a = c.recv_policied(0, 1).unwrap();
                let b = c.recv_policied(0, 2).unwrap();
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(got[1], 12.0);
    }

    #[test]
    fn dead_peer_is_detected_not_hung() {
        let ctx = faulty(FaultPlan::default(), 2);
        let board_ctx = Arc::clone(&ctx);
        let got = World::run_with_faults(2, ctx, move |mut c| {
            if c.rank() == 1 {
                board_ctx.board.mark_dead(1);
                // Dead rank sends nothing and returns.
                return 0;
            }
            match c.recv_policied(1, 9) {
                Err(CommFault::PeerDead { rank: 1 }) => 1,
                other => panic!("expected PeerDead, got {other:?}"),
            }
        });
        assert_eq!(got[0], 1);
    }

    #[test]
    fn silent_alive_peer_times_out_after_retries() {
        let ctx = faulty(FaultPlan::default(), 2);
        let got = World::run_with_faults(2, ctx, |mut c| {
            if c.rank() == 1 {
                // Alive but never sends.
                c.barrier();
                return 0;
            }
            let r = match c.recv_policied(1, 9) {
                Err(CommFault::Timeout { source: 1, tag: 9 }) => 1,
                other => panic!("expected Timeout, got {other:?}"),
            };
            c.barrier();
            r
        });
        assert_eq!(got[0], 1);
    }

    #[test]
    fn recovery_request_unblocks_policied_receivers() {
        let ctx = faulty(FaultPlan::default(), 3);
        let req_ctx = Arc::clone(&ctx);
        let got = World::run_with_faults(3, ctx, move |mut c| {
            if c.rank() == 2 {
                req_ctx.board.request_recovery();
                return 1;
            }
            // Ranks 0 and 1 block on each other; the alarm frees them.
            match c.recv_policied(1 - c.rank(), 5) {
                Err(CommFault::RecoveryRequested) => 1,
                other => panic!("expected RecoveryRequested, got {other:?}"),
            }
        });
        assert_eq!(got, vec![1, 1, 1]);
    }

    #[test]
    fn stale_generation_messages_are_discarded() {
        let ctx = faulty(FaultPlan::default(), 2);
        let got = World::run_with_faults(2, ctx, |mut c| {
            if c.rank() == 0 {
                // Send in generation 0, then recover to generation 1 and
                // send the real value.
                c.send(1, 7, vec![-1.0]);
                c.barrier();
                c.finish_recovery(1);
                c.send(1, 7, vec![99.0]);
                0.0
            } else {
                c.barrier();
                c.finish_recovery(1);
                // The stale gen-0 message must be skipped.
                c.recv(0, 7)[0]
            }
        });
        assert_eq!(got[1], 99.0);
    }

    #[test]
    fn shrunk_roster_translates_logical_ranks() {
        // 3 ranks; rank 1 "leaves": ranks 0 and 2 adopt the shrunk
        // roster [0, 2] and keep exchanging under logical ids 0 and 1,
        // with the translation to physical mailboxes hidden inside Comm.
        let got = World::run(3, |mut c| {
            if c.phys_rank() == 1 {
                return -1.0;
            }
            c.adopt_roster(vec![0, 2]);
            assert_eq!(c.size(), 2);
            let me = c.rank();
            let peer = 1 - me;
            let r = c.sendrecv(peer, 3, vec![me as f64], peer, 3);
            r[0]
        });
        assert_eq!(got, vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn spare_world_runs_actives_and_releases_spares() {
        use crate::fault::{FaultCtx, SpareWake};
        let ctx = Arc::new(FaultCtx::new_with_spares(FaultPlan::none(), 2, 1));
        let bctx = Arc::clone(&ctx);
        let got = World::run_with_spares(2, 1, ctx, move |mut c| {
            if c.is_spare() {
                assert_eq!(c.phys_rank(), 2);
                return match bctx.board.spare_wait(c.phys_rank()) {
                    SpareWake::Shutdown => -1.0,
                    SpareWake::Promote { .. } => panic!("no deaths scheduled"),
                };
            }
            assert_eq!(c.size(), 2, "spares sit outside the communicator");
            let s = c.allreduce_sum(1.0);
            bctx.board.shutdown();
            s
        });
        assert_eq!(got, vec![2.0, 2.0, -1.0]);
    }
}
