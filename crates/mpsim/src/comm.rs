//! Ranks as threads, messages as channel sends.

use std::collections::VecDeque;
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A tagged point-to-point message.
#[derive(Debug)]
struct Message {
    src: usize,
    tag: u64,
    payload: Vec<f64>,
}

/// One rank's handle into the simulated world.
///
/// Mirrors the slice of the MPI API MFC uses. Receives match on
/// `(source, tag)`; out-of-order arrivals are buffered, so communication
/// patterns that rely on MPI's non-overtaking guarantee work unchanged.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Message>>>,
    inbox: Receiver<Message>,
    pending: VecDeque<Message>,
    barrier: Arc<Barrier>,
}

impl Comm {
    /// This rank's id (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Non-blocking-ish send (`MPI_Send` with buffering semantics).
    pub fn send(&self, dest: usize, tag: u64, payload: Vec<f64>) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        self.senders[dest]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .expect("destination rank hung up");
    }

    /// Blocking receive matching `(source, tag)` (`MPI_Recv`).
    pub fn recv(&mut self, source: usize, tag: u64) -> Vec<f64> {
        // Check previously-buffered out-of-order messages first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == source && m.tag == tag)
        {
            return self.pending.remove(pos).unwrap().payload;
        }
        loop {
            let m = self.inbox.recv().expect("world shut down mid-receive");
            if m.src == source && m.tag == tag {
                return m.payload;
            }
            self.pending.push_back(m);
        }
    }

    /// Combined send+receive (`MPI_Sendrecv`) — the halo-exchange primitive.
    ///
    /// Safe against head-of-line blocking because sends are buffered.
    pub fn sendrecv(
        &mut self,
        dest: usize,
        send_tag: u64,
        payload: Vec<f64>,
        source: usize,
        recv_tag: u64,
    ) -> Vec<f64> {
        self.send(dest, send_tag, payload);
        self.recv(source, recv_tag)
    }

    /// Global synchronization (`MPI_Barrier`).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-reduce of one scalar (`MPI_Allreduce`): every rank receives
    /// `op` folded over every rank's contribution.
    pub fn allreduce(&mut self, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        const REDUCE_TAG: u64 = u64::MAX - 1;
        const BCAST_TAG: u64 = u64::MAX - 2;
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                let v = self.recv(src, REDUCE_TAG);
                acc = op(acc, v[0]);
            }
            for dst in 1..self.size {
                self.send(dst, BCAST_TAG, vec![acc]);
            }
            acc
        } else {
            self.send(0, REDUCE_TAG, vec![value]);
            self.recv(0, BCAST_TAG)[0]
        }
    }

    /// Sum-reduce a scalar across ranks.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Min-reduce a scalar across ranks (the CFL Δt reduction).
    pub fn allreduce_min(&mut self, value: f64) -> f64 {
        self.allreduce(value, f64::min)
    }

    /// Max-reduce a scalar across ranks.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        self.allreduce(value, f64::max)
    }

    /// Gather every rank's buffer to rank 0 (`MPI_Gatherv`).
    /// Rank 0 receives `Some(buffers_by_rank)`, everyone else `None`.
    pub fn gather(&mut self, payload: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        const GATHER_TAG: u64 = u64::MAX - 3;
        if self.rank == 0 {
            let mut out = vec![Vec::new(); self.size];
            out[0] = payload;
            for src in 1..self.size {
                out[src] = self.recv(src, GATHER_TAG);
            }
            Some(out)
        } else {
            self.send(0, GATHER_TAG, payload);
            None
        }
    }

    /// Broadcast rank 0's buffer to everyone (`MPI_Bcast`). Non-root
    /// callers pass their (ignored) placeholder and receive the root's.
    pub fn bcast(&mut self, payload: Vec<f64>) -> Vec<f64> {
        const BCAST_TAG: u64 = u64::MAX - 4;
        if self.rank == 0 {
            for dst in 1..self.size {
                self.send(dst, BCAST_TAG, payload.clone());
            }
            payload
        } else {
            self.recv(0, BCAST_TAG)
        }
    }

    /// Scatter rank 0's per-rank chunks (`MPI_Scatterv`): rank 0 passes
    /// `Some(chunks)` with one entry per rank, everyone else `None`; each
    /// rank receives its chunk.
    pub fn scatter(&mut self, chunks: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        const SCATTER_TAG: u64 = u64::MAX - 5;
        if self.rank == 0 {
            let mut chunks = chunks.expect("root must supply the chunks");
            assert_eq!(chunks.len(), self.size, "need one chunk per rank");
            for (dst, chunk) in chunks.iter().enumerate().skip(1) {
                self.send(dst, SCATTER_TAG, chunk.clone());
            }
            std::mem::take(&mut chunks[0])
        } else {
            assert!(chunks.is_none(), "non-root ranks pass None");
            self.recv(0, SCATTER_TAG)
        }
    }
}

/// A pending non-blocking receive (`MPI_Request` from `MPI_Irecv`).
///
/// Sends are buffered in this simulator, so `isend` completes
/// immediately; only receives need request objects.
#[derive(Debug)]
pub struct RecvRequest {
    source: usize,
    tag: u64,
}

impl Comm {
    /// Non-blocking send (`MPI_Isend`) — identical to [`Comm::send`]
    /// because sends are buffered, but kept as a named operation so
    /// communication code reads like its MPI original.
    pub fn isend(&self, dest: usize, tag: u64, payload: Vec<f64>) {
        self.send(dest, tag, payload);
    }

    /// Post a non-blocking receive (`MPI_Irecv`): returns a request to be
    /// completed with [`Comm::wait`] or [`Comm::waitall`].
    pub fn irecv(&self, source: usize, tag: u64) -> RecvRequest {
        RecvRequest { source, tag }
    }

    /// Complete one receive request (`MPI_Wait`).
    pub fn wait(&mut self, req: RecvRequest) -> Vec<f64> {
        self.recv(req.source, req.tag)
    }

    /// Complete a batch of receive requests (`MPI_Waitall`); results are
    /// returned in the order the requests were posted.
    pub fn waitall(&mut self, reqs: Vec<RecvRequest>) -> Vec<Vec<f64>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }
}

/// Spawns `size` ranks and runs `body` on each; returns the per-rank
/// results ordered by rank (`mpirun` + collect).
///
/// ```
/// use mfc_mpsim::World;
/// let sums = World::run(4, |mut comm| comm.allreduce_sum(comm.rank() as f64));
/// assert_eq!(sums, vec![6.0; 4]);
/// ```
pub struct World;

impl World {
    pub fn run<T, F>(size: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(size > 0, "world needs at least one rank");
        let (senders, inboxes): (Vec<_>, Vec<_>) = (0..size).map(|_| unbounded()).unzip();
        let senders = Arc::new(senders);
        let barrier = Arc::new(Barrier::new(size));

        let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let comm = Comm {
                    rank,
                    size,
                    senders: Arc::clone(&senders),
                    inbox,
                    pending: VecDeque::new(),
                    barrier: Arc::clone(&barrier),
                };
                let body = &body;
                handles.push(scope.spawn(move || body(comm)));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank panicked"));
            }
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_their_identity() {
        let ids = World::run(4, |c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_sendrecv_shifts_values() {
        let n = 5;
        let got = World::run(n, |mut c| {
            let right = (c.rank() + 1) % n;
            let left = (c.rank() + n - 1) % n;
            let r = c.sendrecv(right, 7, vec![c.rank() as f64], left, 7);
            r[0]
        });
        for (rank, v) in got.iter().enumerate() {
            assert_eq!(*v as usize, (rank + n - 1) % n);
        }
    }

    #[test]
    fn recv_matches_tag_out_of_order() {
        let got = World::run(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![1.0]);
                c.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = c.recv(0, 2);
                let a = c.recv(0, 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(got[1], 12.0);
    }

    #[test]
    fn allreduce_ops() {
        let sums = World::run(4, |mut c| c.allreduce_sum(c.rank() as f64 + 1.0));
        assert!(sums.iter().all(|&s| s == 10.0));
        let mins = World::run(4, |mut c| c.allreduce_min(c.rank() as f64));
        assert!(mins.iter().all(|&m| m == 0.0));
        let maxs = World::run(4, |mut c| c.allreduce_max(c.rank() as f64));
        assert!(maxs.iter().all(|&m| m == 3.0));
    }

    #[test]
    fn gather_collects_by_rank() {
        let got = World::run(3, |mut c| c.gather(vec![c.rank() as f64; c.rank() + 1]));
        let root = got[0].as_ref().unwrap();
        assert_eq!(root[0], vec![0.0]);
        assert_eq!(root[1], vec![1.0, 1.0]);
        assert_eq!(root[2], vec![2.0, 2.0, 2.0]);
        assert!(got[1].is_none() && got[2].is_none());
    }

    #[test]
    fn bcast_delivers_roots_buffer() {
        let got = World::run(4, |mut c| {
            let local = if c.rank() == 0 { vec![7.0, 8.0] } else { vec![] };
            c.bcast(local)
        });
        for v in got {
            assert_eq!(v, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn scatter_delivers_per_rank_chunks() {
        let got = World::run(3, |mut c| {
            let chunks = if c.rank() == 0 {
                Some(vec![vec![0.0], vec![1.0, 1.0], vec![2.0, 2.0, 2.0]])
            } else {
                None
            };
            c.scatter(chunks)
        });
        assert_eq!(got[0], vec![0.0]);
        assert_eq!(got[1], vec![1.0, 1.0]);
        assert_eq!(got[2], vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let got = World::run(4, |c| {
            for _ in 0..10 {
                c.barrier();
            }
            1
        });
        assert_eq!(got.iter().sum::<i32>(), 4);
    }

    #[test]
    fn irecv_waitall_completes_out_of_order_arrivals() {
        let got = World::run(3, |mut c| {
            if c.rank() == 0 {
                // Post receives from both peers before anything arrives.
                let r2 = c.irecv(2, 9);
                let r1 = c.irecv(1, 9);
                let results = c.waitall(vec![r1, r2]);
                results[0][0] * 10.0 + results[1][0]
            } else {
                c.isend(0, 9, vec![c.rank() as f64]);
                0.0
            }
        });
        assert_eq!(got[0], 12.0);
    }

    #[test]
    fn isend_does_not_block_without_matching_recv_yet() {
        let got = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Two sends complete before the peer posts any receive.
                c.isend(1, 1, vec![1.0]);
                c.isend(1, 2, vec![2.0]);
                c.barrier();
                0.0
            } else {
                c.barrier();
                let a = c.wait(c.irecv(0, 2));
                let b = c.wait(c.irecv(0, 1));
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(got[1], 21.0);
    }

    #[test]
    fn single_rank_world_works() {
        let got = World::run(1, |mut c| c.allreduce_sum(5.0));
        assert_eq!(got, vec![5.0]);
    }
}
