//! Deterministic fault injection for the rank simulator.
//!
//! A [`FaultPlan`] scripts transport- and rank-level faults against a
//! simulated run: dropping, delaying, or reordering individual messages,
//! stalling a rank at a step boundary, and killing a rank outright at a
//! chosen step. Message faults are keyed on the per-(source, destination)
//! message index, so for a fixed plan and a fixed program the same fault
//! hits the same message every run — which is what lets the resilience
//! tests assert *bitwise* identical output with and without faults.
//!
//! Fault *semantics* follow a lossy-but-retransmitting network:
//!
//! * **drop** — the first copy of the message is lost; the transport
//!   retransmits when the receiver's timeout-based retry path asks for it
//!   ([`crate::comm::Comm::recv_policied`]), or immediately when a later
//!   message of the same `(source, tag)` flow arrives (per-flow FIFO, as
//!   MPI's non-overtaking rule requires).
//! * **delay** — the message is held back until `hold` subsequent
//!   deliveries into the same mailbox have happened (deterministic, no
//!   wall clock), again never overtaking its own flow.
//! * **reorder** is a delay with `hold = 1`.
//! * **stall** — the rank sleeps at a step boundary; if shorter than the
//!   detector's patience nothing happens, if longer the peers declare the
//!   rank failed (a *false positive*, which recovery still handles
//!   safely).
//! * **death** — the rank marks itself dead on the [`FaultBoard`] and
//!   loses its in-memory state; peers detect the failure via the
//!   heartbeat/timeout path and the whole world rolls back to the last
//!   committed checkpoint wave.
//!
//! The [`FaultBoard`] is the shared-memory stand-in for the cluster
//! fabric's failure detector plus the parallel file system's metadata:
//! per-rank liveness flags, the recovery generation counter, and the last
//! globally committed checkpoint wave.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A fault keyed to one point-to-point message: the `nth` (0-based)
/// message sent from `src` to `dst` over the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgFault {
    pub src: usize,
    pub dst: usize,
    pub nth: u64,
}

/// Hold the `nth` message from `src` to `dst` back until `hold` further
/// deliveries have arrived in the destination mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgDelay {
    pub src: usize,
    pub dst: usize,
    pub nth: u64,
    pub hold: u32,
}

/// Put `rank` to sleep for `millis` when it reaches step `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankStall {
    pub rank: usize,
    pub step: u64,
    pub millis: u64,
}

/// Kill `rank` when it reaches step `step` (before computing that step).
///
/// A default (`permanent: false`) death is transient: the rank "reboots"
/// into the recovery rendezvous and rejoins the world. A `permanent`
/// death models a lost node — the rank never comes back, and completing
/// the run requires a [`FailurePolicy`] that heals the loss (shrinking
/// the world or promoting a hot spare).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankDeath {
    pub rank: usize,
    pub step: u64,
    /// Defaults to `false` so every pre-existing plan JSON is unchanged.
    #[serde(default)]
    pub permanent: bool,
}

/// What the world does about a *permanent* rank loss, ULFM-style.
///
/// * `Revive` (default) — the historical behavior: recovery assumes every
///   dead rank reboots. A permanent death under this policy is reported
///   as a typed unrecoverable error instead of hanging.
/// * `Shrink` — the survivors agree on the survivor set (the mpsim analog
///   of `MPI_Comm_shrink`), recompute the Cartesian decomposition at the
///   smaller rank count, and redistribute the last committed checkpoint
///   wave onto the new layout.
/// * `Spare` — hot-spare ranks provisioned outside the decomposition
///   idle until the detector promotes one into the dead rank's slot; it
///   loads the dead rank's shard and the run resumes at the original
///   decomposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FailurePolicy {
    #[default]
    Revive,
    Shrink,
    Spare,
}

impl FailurePolicy {
    /// Parse the CLI spelling (`--failure-policy revive|shrink|spare`).
    pub fn from_flag(s: &str) -> Result<Self, String> {
        match s {
            "revive" => Ok(FailurePolicy::Revive),
            "shrink" => Ok(FailurePolicy::Shrink),
            "spare" => Ok(FailurePolicy::Spare),
            other => Err(format!(
                "unknown failure policy '{other}' (expected revive, shrink, or spare)"
            )),
        }
    }
}

/// A scripted, deterministic set of faults for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Free-form label for reports; not used by the machinery.
    #[serde(default)]
    pub seed: u64,
    #[serde(default)]
    pub drops: Vec<MsgFault>,
    #[serde(default)]
    pub delays: Vec<MsgDelay>,
    /// Sugar for `delays` with `hold = 1`.
    #[serde(default)]
    pub reorders: Vec<MsgFault>,
    #[serde(default)]
    pub stalls: Vec<RankStall>,
    #[serde(default)]
    pub deaths: Vec<RankDeath>,
}

/// What the transport should do with one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    /// Lose the first copy (recovered by retransmit).
    Drop,
    /// Hold for this many subsequent deliveries.
    Delay(u32),
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
            && self.delays.is_empty()
            && self.reorders.is_empty()
            && self.stalls.is_empty()
            && self.deaths.is_empty()
    }

    /// Parse a plan from its JSON form (the `--faults plan.json` file).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad fault plan: {e}"))
    }

    /// Fault applying to the `nth` message `src -> dst`, if any.
    pub fn send_fault(&self, src: usize, dst: usize, nth: u64) -> Option<SendFault> {
        if self
            .drops
            .iter()
            .any(|f| f.src == src && f.dst == dst && f.nth == nth)
        {
            return Some(SendFault::Drop);
        }
        if let Some(d) = self
            .delays
            .iter()
            .find(|d| d.src == src && d.dst == dst && d.nth == nth)
        {
            return Some(SendFault::Delay(d.hold.max(1)));
        }
        if self
            .reorders
            .iter()
            .any(|f| f.src == src && f.dst == dst && f.nth == nth)
        {
            return Some(SendFault::Delay(1));
        }
        None
    }

    /// Stall duration scheduled for `(rank, step)`, if any.
    pub fn stall_for(&self, rank: usize, step: u64) -> Option<Duration> {
        self.stalls
            .iter()
            .find(|s| s.rank == rank && s.step == step)
            .map(|s| Duration::from_millis(s.millis))
    }

    /// Index into `deaths` scheduled for `(rank, step)`, if any. The
    /// caller consumes each index once so a death does not re-fire when
    /// the rank replays the same step after recovery.
    pub fn death_at(&self, rank: usize, step: u64) -> Option<usize> {
        self.deaths
            .iter()
            .position(|d| d.rank == rank && d.step == step)
    }

    /// Highest step at which any death is scheduled (detection horizon).
    pub fn last_death_step(&self) -> Option<u64> {
        self.deaths.iter().map(|d| d.step).max()
    }

    /// Validate the plan against a world of `active` ranks: every death
    /// must target a real rank, and at least one rank must survive all
    /// permanent deaths (the survivor quorum that consensus-based
    /// recovery needs). Returns a human-readable configuration error —
    /// callers surface it as a typed config failure instead of letting
    /// the run hang at an impossible rendezvous.
    pub fn validate_for(&self, active: usize) -> Result<(), String> {
        for d in &self.deaths {
            if d.rank >= active {
                return Err(format!(
                    "fault plan kills rank {} but the world has only {active} ranks",
                    d.rank
                ));
            }
        }
        let perm: std::collections::BTreeSet<usize> = self
            .deaths
            .iter()
            .filter(|d| d.permanent)
            .map(|d| d.rank)
            .collect();
        if !perm.is_empty() && perm.len() >= active {
            return Err(format!(
                "fault plan permanently kills all {active} ranks; no survivor quorum remains"
            ));
        }
        Ok(())
    }
}

/// Failure raised by a policied (fault-aware) communication call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommFault {
    /// The failure detector marked this peer dead.
    PeerDead { rank: usize },
    /// All retries exhausted without the expected message (an
    /// alive-but-unresponsive peer; treated as a failure).
    Timeout { source: usize, tag: u64 },
    /// Another rank already initiated recovery; unwind and join it.
    RecoveryRequested,
}

impl std::fmt::Display for CommFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommFault::PeerDead { rank } => write!(f, "peer rank {rank} is dead"),
            CommFault::Timeout { source, tag } => {
                write!(f, "timed out waiting on rank {source} (tag {tag:#x})")
            }
            CommFault::RecoveryRequested => write!(f, "recovery requested by another rank"),
        }
    }
}

/// Heartbeat/timeout failure-detection tuning for policied receives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Initial wait slice before the first retry, in milliseconds. Every
    /// slice expiry re-checks peer liveness (the heartbeat read) and
    /// promotes retransmittable messages.
    pub slice_ms: u64,
    /// Retries before an alive peer is declared failed.
    pub retries: u32,
    /// Multiplicative backoff applied to the slice per retry.
    pub backoff: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // Patience ~= 20ms * (1.5^8 - 1)/0.5 ~= 1s for an alive-but-silent
        // peer; a dead peer is detected within one slice.
        DetectorConfig {
            slice_ms: 20,
            retries: 8,
            backoff: 1.5,
        }
    }
}

impl DetectorConfig {
    /// Slice duration for retry number `attempt` (0-based).
    pub fn slice(&self, attempt: u32) -> Duration {
        let ms = self.slice_ms as f64 * self.backoff.powi(attempt as i32);
        Duration::from_micros((ms * 1000.0) as u64)
    }
}

#[derive(Debug)]
struct BoardInner {
    alive: Vec<bool>,
    /// Permanently lost physical ranks — never revived by a rendezvous.
    perm_dead: Vec<bool>,
    /// Logical slot -> physical rank translation table for the current
    /// epoch. Starts as the identity over the active ranks; a spare
    /// promotion patches one slot, a shrink drops the dead slots.
    roster: Vec<usize>,
    /// Physical ranks of hot spares still idling outside the roster.
    idle_spares: Vec<usize>,
    policy: FailurePolicy,
    recovery: bool,
    gen: u64,
    arrived: usize,
    committed_wave: Option<u64>,
    /// Set when the run is over (success or collective abort): releases
    /// any spare still parked in [`FaultBoard::spare_wait`].
    shutdown: bool,
}

/// Outcome of a completed recovery rendezvous: the new epoch number, the
/// (possibly reconfigured) logical->physical roster, and any logical
/// slots whose owner is permanently dead and was *not* healed by the
/// failure policy — a non-empty `lost` means the run cannot continue.
#[derive(Debug, Clone)]
pub struct Reconfig {
    pub gen: u64,
    pub roster: Vec<usize>,
    pub lost: Vec<usize>,
}

/// What woke an idle hot spare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpareWake {
    /// The spare was promoted into logical slot `slot`; it must join the
    /// in-progress recovery rendezvous and load that slot's shard.
    Promote { slot: usize },
    /// The run ended without needing this spare.
    Shutdown,
}

/// Shared failure-detector and recovery-rendezvous state.
///
/// Models the pieces of a real cluster that survive a rank failure: the
/// fabric's liveness view of each rank, a recovery "alarm" any rank can
/// pull, the recovery generation (epoch) counter, and the last checkpoint
/// wave known globally committed (parallel-file-system metadata).
#[derive(Debug)]
pub struct FaultBoard {
    size: usize,
    inner: Mutex<BoardInner>,
    cv: Condvar,
}

impl FaultBoard {
    pub fn new(size: usize) -> Self {
        FaultBoard::with_spares(size, 0)
    }

    /// A board for `active` computing ranks plus `spares` hot spares
    /// (physical ranks `active..active + spares`) idling outside the
    /// decomposition until promoted.
    pub fn with_spares(active: usize, spares: usize) -> Self {
        let size = active + spares;
        FaultBoard {
            size,
            inner: Mutex::new(BoardInner {
                alive: vec![true; size],
                perm_dead: vec![false; size],
                roster: (0..active).collect(),
                idle_spares: (active..size).collect(),
                policy: FailurePolicy::default(),
                recovery: false,
                gen: 0,
                arrived: 0,
                committed_wave: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Total physical ranks backed by this board (active + spares).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Select how a permanent rank loss is healed. The driver sets this
    /// once before the run from its resilience options.
    pub fn set_policy(&self, policy: FailurePolicy) {
        self.inner.lock().unwrap().policy = policy;
    }

    pub fn policy(&self) -> FailurePolicy {
        self.inner.lock().unwrap().policy
    }

    /// Mark `rank` dead (called by the dying rank itself — the simulator
    /// analog of the fabric noticing a vanished process).
    pub fn mark_dead(&self, rank: usize) {
        self.inner.lock().unwrap().alive[rank] = false;
        self.cv.notify_all();
    }

    /// Mark `rank` permanently lost: it never reboots, and the next
    /// rendezvous runs the failure policy instead of reviving it.
    pub fn mark_dead_permanent(&self, rank: usize) {
        let mut b = self.inner.lock().unwrap();
        b.alive[rank] = false;
        b.perm_dead[rank] = true;
        self.cv.notify_all();
    }

    pub fn is_alive(&self, rank: usize) -> bool {
        self.inner.lock().unwrap().alive[rank]
    }

    pub fn is_perm_dead(&self, rank: usize) -> bool {
        self.inner.lock().unwrap().perm_dead[rank]
    }

    /// Current logical->physical roster (snapshot).
    pub fn roster(&self) -> Vec<usize> {
        self.inner.lock().unwrap().roster.clone()
    }

    /// Pull the recovery alarm. Returns `true` for the first caller of
    /// this generation (the detecting rank, which should log the event).
    pub fn request_recovery(&self) -> bool {
        let mut b = self.inner.lock().unwrap();
        let first = !b.recovery;
        b.recovery = true;
        self.cv.notify_all();
        first
    }

    /// Whether a recovery is pending that this rank should join.
    pub fn recovery_pending(&self) -> bool {
        self.inner.lock().unwrap().recovery
    }

    /// Current recovery generation (bumped once per completed rendezvous).
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().gen
    }

    /// Record that checkpoint wave `wave` is globally committed.
    pub fn commit_wave(&self, wave: u64) {
        let mut b = self.inner.lock().unwrap();
        b.committed_wave = Some(b.committed_wave.map_or(wave, |w| w.max(wave)));
    }

    /// Last globally committed checkpoint wave, if any.
    pub fn committed_wave(&self) -> Option<u64> {
        self.inner.lock().unwrap().committed_wave
    }

    /// Recovery rendezvous: blocks until every *expected* participant has
    /// arrived, then starts the next epoch. Transiently dead ranks are
    /// expected (they "reboot" into this call) and revived; permanently
    /// dead ranks never arrive, and the completion runs the failure
    /// policy instead:
    ///
    /// * `Shrink` — dead slots are dropped from the roster (the survivor
    ///   consensus: everyone observes the same shrunk translation table
    ///   under the one board lock).
    /// * `Spare` — completion additionally waits for an idle spare to
    ///   claim each dead slot (see [`FaultBoard::spare_wait`]); the
    ///   promoted spare then arrives as a participant. With the pool
    ///   exhausted, the unhealed slots are reported in `lost`.
    /// * `Revive` — dead slots stay in the roster and are reported in
    ///   `lost` (a typed unrecoverable error for the caller, not a hang).
    ///
    /// The returned epoch number (`gen`) fences stale in-flight messages:
    /// [`crate::comm::Comm::finish_recovery`] discards everything tagged
    /// with an older generation.
    pub fn rendezvous(&self) -> Reconfig {
        let mut b = self.inner.lock().unwrap();
        let my_gen = b.gen;
        b.arrived += 1;
        self.cv.notify_all();
        loop {
            if b.gen != my_gen {
                break;
            }
            let expected = b.roster.iter().filter(|&&p| !b.perm_dead[p]).count();
            let lost_slot = b.roster.iter().any(|&p| b.perm_dead[p]);
            let awaiting_spare =
                b.policy == FailurePolicy::Spare && lost_slot && !b.idle_spares.is_empty();
            if b.arrived >= expected && !awaiting_spare {
                if b.policy == FailurePolicy::Shrink {
                    let perm = &b.perm_dead;
                    let kept: Vec<usize> = b.roster.iter().copied().filter(|&p| !perm[p]).collect();
                    b.roster = kept;
                }
                b.arrived = 0;
                b.gen += 1;
                b.recovery = false;
                for r in 0..self.size {
                    b.alive[r] = !b.perm_dead[r];
                }
                self.cv.notify_all();
                break;
            }
            b = self.cv.wait(b).unwrap();
        }
        let lost = b
            .roster
            .iter()
            .enumerate()
            .filter(|&(_, &p)| b.perm_dead[p])
            .map(|(slot, _)| slot)
            .collect();
        Reconfig {
            gen: b.gen,
            roster: b.roster.clone(),
            lost,
        }
    }

    /// Park an idle hot spare (physical rank `phys`). Blocks until either
    /// a recovery under `FailurePolicy::Spare` promotes it into a dead
    /// rank's logical slot (the claim patches the roster under the board
    /// lock, so the survivors' rendezvous completion waits for the spare
    /// to arrive) or the run shuts down.
    pub fn spare_wait(&self, phys: usize) -> SpareWake {
        let mut b = self.inner.lock().unwrap();
        loop {
            if b.shutdown {
                return SpareWake::Shutdown;
            }
            if b.recovery && b.policy == FailurePolicy::Spare && b.idle_spares.contains(&phys) {
                let perm = &b.perm_dead;
                if let Some(slot) = b.roster.iter().position(|&p| perm[p]) {
                    b.roster[slot] = phys;
                    b.idle_spares.retain(|&s| s != phys);
                    b.alive[phys] = true;
                    self.cv.notify_all();
                    return SpareWake::Promote { slot };
                }
            }
            b = self.cv.wait(b).unwrap();
        }
    }

    /// Release any still-idle spares: the run is over (normal completion
    /// or a collective abort). Idempotent; a no-op for boards without
    /// spares.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.cv.notify_all();
    }
}

/// Everything a faulty world shares: the script plus the live board.
#[derive(Debug)]
pub struct FaultCtx {
    pub plan: FaultPlan,
    pub board: FaultBoard,
    pub detector: DetectorConfig,
}

impl FaultCtx {
    pub fn new(plan: FaultPlan, size: usize) -> Self {
        FaultCtx {
            plan,
            board: FaultBoard::new(size),
            detector: DetectorConfig::default(),
        }
    }

    /// A fault context for `active` computing ranks plus `spares` hot
    /// spares (for worlds run with [`crate::comm::World::run_with_spares`]).
    pub fn new_with_spares(plan: FaultPlan, active: usize, spares: usize) -> Self {
        FaultCtx {
            plan,
            board: FaultBoard::with_spares(active, spares),
            detector: DetectorConfig::default(),
        }
    }

    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            seed: 7,
            drops: vec![MsgFault {
                src: 0,
                dst: 1,
                nth: 3,
            }],
            delays: vec![MsgDelay {
                src: 1,
                dst: 0,
                nth: 2,
                hold: 2,
            }],
            reorders: vec![MsgFault {
                src: 2,
                dst: 0,
                nth: 0,
            }],
            stalls: vec![RankStall {
                rank: 1,
                step: 4,
                millis: 5,
            }],
            deaths: vec![RankDeath {
                rank: 2,
                step: 6,
                permanent: true,
            }],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back.drops, plan.drops);
        assert_eq!(back.delays, plan.delays);
        assert_eq!(back.reorders, plan.reorders);
        assert_eq!(back.stalls, plan.stalls);
        assert_eq!(back.deaths, plan.deaths);
    }

    #[test]
    fn plan_defaults_missing_sections_to_empty() {
        let plan = FaultPlan::from_json(r#"{"deaths": [{"rank": 1, "step": 5}]}"#).unwrap();
        assert_eq!(plan.deaths.len(), 1);
        assert!(
            !plan.deaths[0].permanent,
            "legacy plan JSON must stay transient"
        );
        assert!(plan.drops.is_empty());
        assert!(!plan.is_empty());
        assert_eq!(plan.last_death_step(), Some(5));
    }

    #[test]
    fn plan_quorum_validation_rejects_total_permanent_loss() {
        let kill = |rank| RankDeath {
            rank,
            step: 3,
            permanent: true,
        };
        let plan = FaultPlan {
            deaths: vec![kill(0), kill(1)],
            ..FaultPlan::none()
        };
        assert!(plan.validate_for(2).is_err(), "no survivor quorum");
        assert!(plan.validate_for(3).is_ok(), "one survivor remains");
        let out_of_range = FaultPlan {
            deaths: vec![RankDeath {
                rank: 9,
                step: 0,
                permanent: false,
            }],
            ..FaultPlan::none()
        };
        assert!(out_of_range.validate_for(4).is_err());
        assert!(FaultPlan::none().validate_for(1).is_ok());
    }

    #[test]
    fn send_fault_lookup_matches_by_index() {
        let plan = FaultPlan {
            drops: vec![MsgFault {
                src: 0,
                dst: 1,
                nth: 2,
            }],
            reorders: vec![MsgFault {
                src: 1,
                dst: 0,
                nth: 5,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.send_fault(0, 1, 2), Some(SendFault::Drop));
        assert_eq!(plan.send_fault(0, 1, 3), None);
        assert_eq!(plan.send_fault(1, 0, 5), Some(SendFault::Delay(1)));
    }

    #[test]
    fn board_rendezvous_revives_and_bumps_generation() {
        let board = std::sync::Arc::new(FaultBoard::new(3));
        board.mark_dead(1);
        assert!(!board.is_alive(1));
        assert!(board.request_recovery());
        assert!(!board.request_recovery(), "only the first requester wins");
        let gens: Vec<u64> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let b = std::sync::Arc::clone(&board);
                    s.spawn(move || b.rendezvous().gen)
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(gens, vec![1, 1, 1]);
        assert!(board.is_alive(1));
        assert!(!board.recovery_pending());
        assert_eq!(
            board.roster(),
            vec![0, 1, 2],
            "transient death: no reconfig"
        );
    }

    #[test]
    fn shrink_rendezvous_drops_permanently_dead_slots() {
        let board = std::sync::Arc::new(FaultBoard::new(4));
        board.set_policy(FailurePolicy::Shrink);
        board.mark_dead_permanent(2);
        board.request_recovery();
        let reconfs: Vec<Reconfig> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let b = std::sync::Arc::clone(&board);
                    s.spawn(move || b.rendezvous())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for rc in &reconfs {
            assert_eq!(rc.gen, 1);
            assert_eq!(rc.roster, vec![0, 1, 3], "survivor consensus");
            assert!(rc.lost.is_empty(), "shrink heals the loss");
        }
        assert!(!board.is_alive(2), "permanent death is never revived");
    }

    #[test]
    fn spare_rendezvous_promotes_an_idle_spare() {
        // 3 active ranks + 1 spare (physical rank 3); rank 1 dies
        // permanently, the spare takes its slot.
        let board = std::sync::Arc::new(FaultBoard::with_spares(3, 1));
        board.set_policy(FailurePolicy::Spare);
        board.mark_dead_permanent(1);
        board.request_recovery();
        let (survivors, wake) = std::thread::scope(|s| {
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let b = std::sync::Arc::clone(&board);
                    s.spawn(move || b.rendezvous())
                })
                .collect();
            let spare = {
                let b = std::sync::Arc::clone(&board);
                s.spawn(move || {
                    let wake = b.spare_wait(3);
                    if let SpareWake::Promote { .. } = wake {
                        b.rendezvous();
                    }
                    wake
                })
            };
            let survivors: Vec<Reconfig> = hs.into_iter().map(|h| h.join().unwrap()).collect();
            (survivors, spare.join().unwrap())
        });
        assert_eq!(wake, SpareWake::Promote { slot: 1 });
        for rc in &survivors {
            assert_eq!(rc.roster, vec![0, 3, 2], "spare fills the dead slot");
            assert!(rc.lost.is_empty());
        }
    }

    #[test]
    fn exhausted_spare_pool_reports_lost_slots() {
        let board = std::sync::Arc::new(FaultBoard::new(3));
        board.set_policy(FailurePolicy::Spare);
        board.mark_dead_permanent(1);
        board.request_recovery();
        let reconfs: Vec<Reconfig> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let b = std::sync::Arc::clone(&board);
                    s.spawn(move || b.rendezvous())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for rc in &reconfs {
            assert_eq!(rc.lost, vec![1], "no spare left to heal slot 1");
        }
    }

    #[test]
    fn shutdown_releases_idle_spares() {
        let board = std::sync::Arc::new(FaultBoard::with_spares(2, 1));
        let wake = std::thread::scope(|s| {
            let b = std::sync::Arc::clone(&board);
            let h = s.spawn(move || b.spare_wait(2));
            board.shutdown();
            h.join().unwrap()
        });
        assert_eq!(wake, SpareWake::Shutdown);
    }

    #[test]
    fn committed_wave_is_monotonic() {
        let board = FaultBoard::new(2);
        assert_eq!(board.committed_wave(), None);
        board.commit_wave(1);
        board.commit_wave(0);
        assert_eq!(board.committed_wave(), Some(1));
    }

    #[test]
    fn detector_backoff_grows() {
        let d = DetectorConfig::default();
        assert!(d.slice(3) > d.slice(0));
    }
}
