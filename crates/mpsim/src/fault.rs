//! Deterministic fault injection for the rank simulator.
//!
//! A [`FaultPlan`] scripts transport- and rank-level faults against a
//! simulated run: dropping, delaying, or reordering individual messages,
//! stalling a rank at a step boundary, and killing a rank outright at a
//! chosen step. Message faults are keyed on the per-(source, destination)
//! message index, so for a fixed plan and a fixed program the same fault
//! hits the same message every run — which is what lets the resilience
//! tests assert *bitwise* identical output with and without faults.
//!
//! Fault *semantics* follow a lossy-but-retransmitting network:
//!
//! * **drop** — the first copy of the message is lost; the transport
//!   retransmits when the receiver's timeout-based retry path asks for it
//!   ([`crate::comm::Comm::recv_policied`]), or immediately when a later
//!   message of the same `(source, tag)` flow arrives (per-flow FIFO, as
//!   MPI's non-overtaking rule requires).
//! * **delay** — the message is held back until `hold` subsequent
//!   deliveries into the same mailbox have happened (deterministic, no
//!   wall clock), again never overtaking its own flow.
//! * **reorder** is a delay with `hold = 1`.
//! * **stall** — the rank sleeps at a step boundary; if shorter than the
//!   detector's patience nothing happens, if longer the peers declare the
//!   rank failed (a *false positive*, which recovery still handles
//!   safely).
//! * **death** — the rank marks itself dead on the [`FaultBoard`] and
//!   loses its in-memory state; peers detect the failure via the
//!   heartbeat/timeout path and the whole world rolls back to the last
//!   committed checkpoint wave.
//!
//! The [`FaultBoard`] is the shared-memory stand-in for the cluster
//! fabric's failure detector plus the parallel file system's metadata:
//! per-rank liveness flags, the recovery generation counter, and the last
//! globally committed checkpoint wave.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A fault keyed to one point-to-point message: the `nth` (0-based)
/// message sent from `src` to `dst` over the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgFault {
    pub src: usize,
    pub dst: usize,
    pub nth: u64,
}

/// Hold the `nth` message from `src` to `dst` back until `hold` further
/// deliveries have arrived in the destination mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgDelay {
    pub src: usize,
    pub dst: usize,
    pub nth: u64,
    pub hold: u32,
}

/// Put `rank` to sleep for `millis` when it reaches step `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankStall {
    pub rank: usize,
    pub step: u64,
    pub millis: u64,
}

/// Kill `rank` when it reaches step `step` (before computing that step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankDeath {
    pub rank: usize,
    pub step: u64,
}

/// A scripted, deterministic set of faults for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Free-form label for reports; not used by the machinery.
    #[serde(default)]
    pub seed: u64,
    #[serde(default)]
    pub drops: Vec<MsgFault>,
    #[serde(default)]
    pub delays: Vec<MsgDelay>,
    /// Sugar for `delays` with `hold = 1`.
    #[serde(default)]
    pub reorders: Vec<MsgFault>,
    #[serde(default)]
    pub stalls: Vec<RankStall>,
    #[serde(default)]
    pub deaths: Vec<RankDeath>,
}

/// What the transport should do with one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    /// Lose the first copy (recovered by retransmit).
    Drop,
    /// Hold for this many subsequent deliveries.
    Delay(u32),
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
            && self.delays.is_empty()
            && self.reorders.is_empty()
            && self.stalls.is_empty()
            && self.deaths.is_empty()
    }

    /// Parse a plan from its JSON form (the `--faults plan.json` file).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad fault plan: {e}"))
    }

    /// Fault applying to the `nth` message `src -> dst`, if any.
    pub fn send_fault(&self, src: usize, dst: usize, nth: u64) -> Option<SendFault> {
        if self
            .drops
            .iter()
            .any(|f| f.src == src && f.dst == dst && f.nth == nth)
        {
            return Some(SendFault::Drop);
        }
        if let Some(d) = self
            .delays
            .iter()
            .find(|d| d.src == src && d.dst == dst && d.nth == nth)
        {
            return Some(SendFault::Delay(d.hold.max(1)));
        }
        if self
            .reorders
            .iter()
            .any(|f| f.src == src && f.dst == dst && f.nth == nth)
        {
            return Some(SendFault::Delay(1));
        }
        None
    }

    /// Stall duration scheduled for `(rank, step)`, if any.
    pub fn stall_for(&self, rank: usize, step: u64) -> Option<Duration> {
        self.stalls
            .iter()
            .find(|s| s.rank == rank && s.step == step)
            .map(|s| Duration::from_millis(s.millis))
    }

    /// Index into `deaths` scheduled for `(rank, step)`, if any. The
    /// caller consumes each index once so a death does not re-fire when
    /// the rank replays the same step after recovery.
    pub fn death_at(&self, rank: usize, step: u64) -> Option<usize> {
        self.deaths
            .iter()
            .position(|d| d.rank == rank && d.step == step)
    }

    /// Highest step at which any death is scheduled (detection horizon).
    pub fn last_death_step(&self) -> Option<u64> {
        self.deaths.iter().map(|d| d.step).max()
    }
}

/// Failure raised by a policied (fault-aware) communication call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommFault {
    /// The failure detector marked this peer dead.
    PeerDead { rank: usize },
    /// All retries exhausted without the expected message (an
    /// alive-but-unresponsive peer; treated as a failure).
    Timeout { source: usize, tag: u64 },
    /// Another rank already initiated recovery; unwind and join it.
    RecoveryRequested,
}

impl std::fmt::Display for CommFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommFault::PeerDead { rank } => write!(f, "peer rank {rank} is dead"),
            CommFault::Timeout { source, tag } => {
                write!(f, "timed out waiting on rank {source} (tag {tag:#x})")
            }
            CommFault::RecoveryRequested => write!(f, "recovery requested by another rank"),
        }
    }
}

/// Heartbeat/timeout failure-detection tuning for policied receives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Initial wait slice before the first retry, in milliseconds. Every
    /// slice expiry re-checks peer liveness (the heartbeat read) and
    /// promotes retransmittable messages.
    pub slice_ms: u64,
    /// Retries before an alive peer is declared failed.
    pub retries: u32,
    /// Multiplicative backoff applied to the slice per retry.
    pub backoff: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // Patience ~= 20ms * (1.5^8 - 1)/0.5 ~= 1s for an alive-but-silent
        // peer; a dead peer is detected within one slice.
        DetectorConfig {
            slice_ms: 20,
            retries: 8,
            backoff: 1.5,
        }
    }
}

impl DetectorConfig {
    /// Slice duration for retry number `attempt` (0-based).
    pub fn slice(&self, attempt: u32) -> Duration {
        let ms = self.slice_ms as f64 * self.backoff.powi(attempt as i32);
        Duration::from_micros((ms * 1000.0) as u64)
    }
}

#[derive(Debug)]
struct BoardInner {
    alive: Vec<bool>,
    recovery: bool,
    gen: u64,
    arrived: usize,
    committed_wave: Option<u64>,
}

/// Shared failure-detector and recovery-rendezvous state.
///
/// Models the pieces of a real cluster that survive a rank failure: the
/// fabric's liveness view of each rank, a recovery "alarm" any rank can
/// pull, the recovery generation (epoch) counter, and the last checkpoint
/// wave known globally committed (parallel-file-system metadata).
#[derive(Debug)]
pub struct FaultBoard {
    size: usize,
    inner: Mutex<BoardInner>,
    cv: Condvar,
}

impl FaultBoard {
    pub fn new(size: usize) -> Self {
        FaultBoard {
            size,
            inner: Mutex::new(BoardInner {
                alive: vec![true; size],
                recovery: false,
                gen: 0,
                arrived: 0,
                committed_wave: None,
            }),
            cv: Condvar::new(),
        }
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Mark `rank` dead (called by the dying rank itself — the simulator
    /// analog of the fabric noticing a vanished process).
    pub fn mark_dead(&self, rank: usize) {
        self.inner.lock().unwrap().alive[rank] = false;
        self.cv.notify_all();
    }

    pub fn is_alive(&self, rank: usize) -> bool {
        self.inner.lock().unwrap().alive[rank]
    }

    /// Pull the recovery alarm. Returns `true` for the first caller of
    /// this generation (the detecting rank, which should log the event).
    pub fn request_recovery(&self) -> bool {
        let mut b = self.inner.lock().unwrap();
        let first = !b.recovery;
        b.recovery = true;
        self.cv.notify_all();
        first
    }

    /// Whether a recovery is pending that this rank should join.
    pub fn recovery_pending(&self) -> bool {
        self.inner.lock().unwrap().recovery
    }

    /// Current recovery generation (bumped once per completed rendezvous).
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().gen
    }

    /// Record that checkpoint wave `wave` is globally committed.
    pub fn commit_wave(&self, wave: u64) {
        let mut b = self.inner.lock().unwrap();
        b.committed_wave = Some(b.committed_wave.map_or(wave, |w| w.max(wave)));
    }

    /// Last globally committed checkpoint wave, if any.
    pub fn committed_wave(&self) -> Option<u64> {
        self.inner.lock().unwrap().committed_wave
    }

    /// Recovery rendezvous: blocks until **all** ranks (the dead one
    /// included — it "reboots" into this call) have arrived, then starts
    /// the next generation: everyone is alive again, the alarm is reset,
    /// and the new generation number is returned so stale in-flight
    /// messages can be discarded by epoch.
    pub fn rendezvous(&self) -> u64 {
        let mut b = self.inner.lock().unwrap();
        let my_gen = b.gen;
        b.arrived += 1;
        if b.arrived == self.size {
            b.arrived = 0;
            b.gen += 1;
            b.recovery = false;
            b.alive.iter_mut().for_each(|a| *a = true);
            self.cv.notify_all();
        } else {
            while b.gen == my_gen {
                b = self.cv.wait(b).unwrap();
            }
        }
        b.gen
    }
}

/// Everything a faulty world shares: the script plus the live board.
#[derive(Debug)]
pub struct FaultCtx {
    pub plan: FaultPlan,
    pub board: FaultBoard,
    pub detector: DetectorConfig,
}

impl FaultCtx {
    pub fn new(plan: FaultPlan, size: usize) -> Self {
        FaultCtx {
            plan,
            board: FaultBoard::new(size),
            detector: DetectorConfig::default(),
        }
    }

    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            seed: 7,
            drops: vec![MsgFault {
                src: 0,
                dst: 1,
                nth: 3,
            }],
            delays: vec![MsgDelay {
                src: 1,
                dst: 0,
                nth: 2,
                hold: 2,
            }],
            reorders: vec![MsgFault {
                src: 2,
                dst: 0,
                nth: 0,
            }],
            stalls: vec![RankStall {
                rank: 1,
                step: 4,
                millis: 5,
            }],
            deaths: vec![RankDeath { rank: 2, step: 6 }],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back.drops, plan.drops);
        assert_eq!(back.delays, plan.delays);
        assert_eq!(back.reorders, plan.reorders);
        assert_eq!(back.stalls, plan.stalls);
        assert_eq!(back.deaths, plan.deaths);
    }

    #[test]
    fn plan_defaults_missing_sections_to_empty() {
        let plan = FaultPlan::from_json(r#"{"deaths": [{"rank": 1, "step": 5}]}"#).unwrap();
        assert_eq!(plan.deaths.len(), 1);
        assert!(plan.drops.is_empty());
        assert!(!plan.is_empty());
        assert_eq!(plan.last_death_step(), Some(5));
    }

    #[test]
    fn send_fault_lookup_matches_by_index() {
        let plan = FaultPlan {
            drops: vec![MsgFault {
                src: 0,
                dst: 1,
                nth: 2,
            }],
            reorders: vec![MsgFault {
                src: 1,
                dst: 0,
                nth: 5,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.send_fault(0, 1, 2), Some(SendFault::Drop));
        assert_eq!(plan.send_fault(0, 1, 3), None);
        assert_eq!(plan.send_fault(1, 0, 5), Some(SendFault::Delay(1)));
    }

    #[test]
    fn board_rendezvous_revives_and_bumps_generation() {
        let board = std::sync::Arc::new(FaultBoard::new(3));
        board.mark_dead(1);
        assert!(!board.is_alive(1));
        assert!(board.request_recovery());
        assert!(!board.request_recovery(), "only the first requester wins");
        let gens: Vec<u64> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let b = std::sync::Arc::clone(&board);
                    s.spawn(move || b.rendezvous())
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(gens, vec![1, 1, 1]);
        assert!(board.is_alive(1));
        assert!(!board.recovery_pending());
    }

    #[test]
    fn committed_wave_is_monotonic() {
        let board = FaultBoard::new(2);
        assert_eq!(board.committed_wave(), None);
        board.commit_wave(1);
        board.commit_wave(0);
        assert_eq!(board.committed_wave(), Some(1));
    }

    #[test]
    fn detector_backoff_grows() {
        let d = DetectorConfig::default();
        assert!(d.slice(3) > d.slice(0));
    }
}
