//! A message-passing simulator standing in for MPI on Summit/Frontier.
//!
//! The paper's distributed layer is plain MPI: a 3-D block decomposition,
//! nearest-neighbour `MPI_sendrecv` halo exchanges per dimension per time
//! step, a CFL `allreduce`, and file-per-process output throttled in waves
//! of 128 writers.  No MPI launcher or multi-node fabric exists here, so
//! this crate provides:
//!
//! * [`comm`]: ranks as OS threads exchanging typed messages over
//!   in-process mailboxes, with `send`/`recv`/`sendrecv`/`barrier`/
//!   `allreduce`/`gather` — enough surface to run MFC's actual
//!   communication code unchanged — plus fault-injecting variants
//!   ([`fault`]) used by the resilience tests.
//! * [`cart`]: the 3-D block ("cube over slab/pencil") cartesian
//!   decomposition of §III-A, including the near-cubic factorization that
//!   minimizes surface-to-volume ratio.
//! * [`costmodel`]: an analytic latency/bandwidth model of the Summit and
//!   Frontier interconnects, with an explicit host-staging term that models
//!   running *without* GPU-aware MPI (Fig. 4 is exactly this term).
//! * [`io`]: the file-per-process writer with wave throttling, plus the
//!   shared-file writer it replaced when scaling to 65,536 GCDs.
//!
//! Functional correctness (does the halo exchange deliver the right cells?)
//! is tested by running the real code on simulated ranks; *performance* at
//! Summit/Frontier scale comes from [`costmodel`], since a single node
//! cannot reproduce a 9,000-node interconnect.

pub mod cart;
pub mod comm;
pub mod costmodel;
pub mod fault;
pub mod io;

pub use cart::{
    best_block_dims, block_extents, validate_halo_extents, CartComm, DecompositionError,
};
pub use comm::{Comm, RecvRequest, World};
pub use costmodel::{CommParams, Staging};
pub use fault::{
    CommFault, DetectorConfig, FailurePolicy, FaultBoard, FaultCtx, FaultPlan, MsgDelay, MsgFault,
    RankDeath, RankStall, Reconfig, SpareWake,
};
pub use io::{SharedFileWriter, WaveWriter, DEFAULT_WAVE_SIZE};
