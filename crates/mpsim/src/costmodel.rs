//! Analytic communication cost model for the scaling studies.
//!
//! Functional communication runs on threads ([`crate::comm`]); *timing* at
//! 128–65,536 devices must be modelled, since no interconnect is attached.
//! The model is the standard postal model plus an explicit host-staging
//! term:
//!
//! ```text
//! t(msg) = latency + bytes / net_bw              (GPU-aware MPI)
//! t(msg) = latency + bytes / net_bw
//!        + 2 * (stage_latency + bytes / host_link_bw)   (host-staged)
//! ```
//!
//! The staged variant is what MFC pays when GPU-aware MPI is unavailable:
//! each halo buffer is copied device→host before `MPI_sendrecv` and
//! host→device after — Fig. 4's 81% → 92% strong-scaling gap is exactly
//! this term.

use serde::{Deserialize, Serialize};

/// Whether halo buffers travel directly from device memory (GPU-aware MPI)
/// or are staged through host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Staging {
    /// GPU-aware (HIP-coupled / CUDA-aware) MPI: NIC reads device memory.
    DeviceDirect,
    /// Host-staged: explicit D2H before send, H2D after receive.
    HostStaged,
}

/// Interconnect parameters for one machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CommParams {
    /// Per-message network latency (s).
    pub latency_s: f64,
    /// Per-device network injection bandwidth (bytes/s).
    pub net_bw: f64,
    /// Device↔host link bandwidth per device (bytes/s), used when staging.
    pub host_link_bw: f64,
    /// Per-copy launch/synchronization overhead when staging (s).
    pub stage_latency_s: f64,
    /// Transfer mode.
    pub staging: Staging,
}

impl CommParams {
    /// OLCF Summit: dual-rail EDR InfiniBand (~23 GB/s injection per
    /// socket ≈ per 3 GPUs → ~8 GB/s per GPU effective), NVLink 2.0 host
    /// links (50 GB/s per GPU), ~1.5 µs MPI latency.
    pub fn summit(staging: Staging) -> Self {
        CommParams {
            latency_s: 1.5e-6,
            net_bw: 8.0e9,
            host_link_bw: 50.0e9,
            stage_latency_s: 5.0e-6,
            staging,
        }
    }

    /// OLCF Frontier: Slingshot-11, 4×25 GB/s NICs per node shared by 8
    /// GCDs → ~12.5 GB/s per GCD, Infinity Fabric host link ~36 GB/s per
    /// GCD, ~2 µs latency.
    pub fn frontier(staging: Staging) -> Self {
        CommParams {
            latency_s: 2.0e-6,
            net_bw: 12.5e9,
            host_link_bw: 36.0e9,
            stage_latency_s: 5.0e-6,
            staging,
        }
    }

    /// Modelled time to exchange one message of `bytes`.
    pub fn message_time(&self, bytes: f64) -> f64 {
        let net = self.latency_s + bytes / self.net_bw;
        match self.staging {
            Staging::DeviceDirect => net,
            Staging::HostStaged => net + 2.0 * (self.stage_latency_s + bytes / self.host_link_bw),
        }
    }

    /// Modelled time for one full halo exchange of a `[bx, by, bz]`-cell
    /// block carrying `neq` variables with `ng` ghost layers: two faces per
    /// decomposed axis, 8 bytes per double.
    ///
    /// `split` says which axes actually have neighbours (an axis owned by a
    /// single rank exchanges nothing).
    pub fn halo_time(&self, block: [usize; 3], neq: usize, ng: usize, split: [bool; 3]) -> f64 {
        let [bx, by, bz] = block;
        let mut t = 0.0;
        let per_cell = 8.0 * neq as f64 * ng as f64;
        if split[0] {
            t += 2.0 * self.message_time(per_cell * (by * bz) as f64);
        }
        if split[1] {
            t += 2.0 * self.message_time(per_cell * (bx * bz) as f64);
        }
        if split[2] {
            t += 2.0 * self.message_time(per_cell * (bx * by) as f64);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_messages_cost_more() {
        let aware = CommParams::frontier(Staging::DeviceDirect);
        let staged = CommParams::frontier(Staging::HostStaged);
        let bytes = 1.0e6;
        assert!(staged.message_time(bytes) > aware.message_time(bytes));
        let gap = staged.message_time(bytes) - aware.message_time(bytes);
        let want = 2.0 * (staged.stage_latency_s + bytes / staged.host_link_bw);
        assert!((gap - want).abs() < 1e-15);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let p = CommParams::summit(Staging::DeviceDirect);
        let t = p.message_time(8.0);
        assert!((t - p.latency_s) / t < 0.01);
    }

    #[test]
    fn halo_time_counts_only_split_axes() {
        let p = CommParams::frontier(Staging::DeviceDirect);
        let t_all = p.halo_time([64, 64, 64], 7, 3, [true; 3]);
        let t_one = p.halo_time([64, 64, 64], 7, 3, [true, false, false]);
        assert!((t_all / t_one - 3.0).abs() < 1e-12);
        assert_eq!(p.halo_time([64, 64, 64], 7, 3, [false; 3]), 0.0);
    }

    #[test]
    fn halo_scales_with_face_area_not_volume() {
        let p = CommParams::frontier(Staging::DeviceDirect);
        // Doubling every edge quadruples (not octuples) the cost in the
        // bandwidth-dominated regime.
        let t1 = p.halo_time([256, 256, 256], 7, 3, [true; 3]);
        let t2 = p.halo_time([512, 512, 512], 7, 3, [true; 3]);
        let ratio = t2 / t1;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio={ratio}");
    }
}
