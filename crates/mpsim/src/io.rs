//! Parallel output strategies (§III-A).
//!
//! Before Frontier MFC wrote one shared binary file via collective MPI I/O.
//! At 65,536 GCDs the metadata storm of creating shared files made a
//! file-per-process approach faster — *if* file creation is throttled:
//! "write access is allowed in waves of 128 processes".  Both writers are
//! implemented here; the wave throttling is real (ranks outside the active
//! wave block on barriers), the parallel-filesystem contention is not.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use mfc_trace::Category;

use crate::comm::Comm;

/// MFC's production writer-wave width: "write access is allowed in waves
/// of 128 processes". Overridable per run (`mfc-run --io-wave`, `io.wave`
/// case key).
pub const DEFAULT_WAVE_SIZE: usize = 128;

/// File-per-process writer with wave throttling.
#[derive(Debug, Clone)]
pub struct WaveWriter {
    /// How many ranks may create/write files simultaneously (128 in MFC).
    pub wave_size: usize,
    /// Busy-work multiplications separating waves — the paper's "each
    /// wave offset by a set number of double-precision multiplication
    /// operations", which spreads metadata creation in time even without
    /// a barrier-capable filesystem. 0 disables.
    pub offset_flops: u64,
}

impl WaveWriter {
    pub fn new(wave_size: usize) -> Self {
        assert!(wave_size > 0);
        WaveWriter {
            wave_size,
            offset_flops: 0,
        }
    }

    /// A writer with the paper's production wave width
    /// ([`DEFAULT_WAVE_SIZE`]).
    pub fn paper_default() -> Self {
        WaveWriter::new(DEFAULT_WAVE_SIZE)
    }

    /// Configure the inter-wave busy-work offset.
    pub fn with_offset_flops(mut self, flops: u64) -> Self {
        self.offset_flops = flops;
        self
    }

    /// The inter-wave delay loop (kept observable so the optimizer cannot
    /// remove it).
    fn wave_offset(&self) {
        let mut x = 1.000000001f64;
        for _ in 0..self.offset_flops {
            x *= 1.000000001;
        }
        std::hint::black_box(x);
    }

    /// Path of one rank's file under `dir` for output step `step`.
    pub fn rank_path(dir: &Path, step: usize, rank: usize) -> PathBuf {
        dir.join(format!("step{step:06}_rank{rank:06}.bin"))
    }

    /// Write this rank's `data` to its own file, in waves.
    ///
    /// Every rank must call this (it synchronizes on barriers). Returns the
    /// wave index this rank wrote in.
    pub fn write(&self, comm: &Comm, dir: &Path, step: usize, data: &[f64]) -> io::Result<usize> {
        let _span = comm
            .tracer()
            .map(|t| t.span_bytes("io_wave_write", Category::Io, (data.len() * 8) as u64));
        let my_wave = comm.rank() / self.wave_size;
        let n_waves = comm.size().div_ceil(self.wave_size);
        for wave in 0..n_waves {
            if wave == my_wave {
                let t0 = Instant::now();
                let mut f = File::create(Self::rank_path(dir, step, comm.rank()))?;
                write_doubles(&mut f, data)?;
                if let Some(t) = comm.tracer() {
                    t.io("wave_file", (data.len() * 8) as u64, t0);
                }
            } else if wave < my_wave {
                // Ranks in later waves burn the configured multiplication
                // budget so waves stay offset in time.
                self.wave_offset();
            }
            // The offset between waves: everyone waits for the wave to finish
            // before the next begins.
            comm.barrier();
        }
        Ok(my_wave)
    }

    /// Read one rank's file back.
    pub fn read(dir: &Path, step: usize, rank: usize) -> io::Result<Vec<f64>> {
        let mut f = File::open(Self::rank_path(dir, step, rank))?;
        read_doubles(&mut f)
    }
}

/// Shared-file writer: every rank's block lands in one file at its rank
/// offset, in rank order (stand-in for collective MPI I/O into one binary).
///
/// Implemented by gathering to rank 0, which performs the single write —
/// the serialization point is exactly why this approach stopped scaling.
#[derive(Debug, Clone, Default)]
pub struct SharedFileWriter;

impl SharedFileWriter {
    pub fn shared_path(dir: &Path, step: usize) -> PathBuf {
        dir.join(format!("step{step:06}_shared.bin"))
    }

    /// Every rank contributes `data`; rank 0 writes the concatenation in
    /// rank order. All blocks must have equal length (uniform blocks).
    pub fn write(&self, comm: &mut Comm, dir: &Path, step: usize, data: &[f64]) -> io::Result<()> {
        let blocks = comm.gather(data.to_vec());
        if let Some(blocks) = blocks {
            let len0 = blocks[0].len();
            assert!(
                blocks.iter().all(|b| b.len() == len0),
                "shared-file writer requires uniform block sizes"
            );
            let mut f = File::create(Self::shared_path(dir, step))?;
            for b in &blocks {
                write_doubles(&mut f, b)?;
            }
        }
        comm.barrier();
        Ok(())
    }

    /// Read rank `rank`'s block of `block_len` doubles back from the shared
    /// file.
    pub fn read_block(
        dir: &Path,
        step: usize,
        rank: usize,
        block_len: usize,
    ) -> io::Result<Vec<f64>> {
        let bytes = std::fs::read(Self::shared_path(dir, step))?;
        let start = rank * block_len * 8;
        let end = start + block_len * 8;
        if end > bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "block extends past end of shared file",
            ));
        }
        Ok(bytes[start..end]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn write_doubles(w: &mut impl Write, data: &[f64]) -> io::Result<()> {
    let mut buf = io::BufWriter::new(w);
    for v in data {
        buf.write_all(&v.to_le_bytes())?;
    }
    buf.flush()
}

fn read_doubles(r: &mut impl Read) -> io::Result<Vec<f64>> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 8 != 0 {
        // A payload that is not a whole number of doubles is a truncated
        // or corrupt wave file; decoding the prefix would silently lose
        // the tail.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "wave file payload of {} bytes is not a multiple of 8",
                bytes.len()
            ),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mfc_mpsim_io_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn wave_writer_round_trips_per_rank_data() {
        let dir = tmpdir("wave");
        let n = 6;
        World::run(n, |c| {
            let data: Vec<f64> = (0..4).map(|i| (c.rank() * 10 + i) as f64).collect();
            WaveWriter::new(2).write(&c, &dir, 3, &data).unwrap();
        });
        for rank in 0..n {
            let back = WaveWriter::read(&dir, 3, rank).unwrap();
            assert_eq!(
                back,
                (0..4).map(|i| (rank * 10 + i) as f64).collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wave_indices_partition_ranks() {
        let dir = tmpdir("waveidx");
        let waves = World::run(5, |c| {
            WaveWriter::new(2)
                .write(&c, &dir, 0, &[c.rank() as f64])
                .unwrap()
        });
        assert_eq!(waves, vec![0, 0, 1, 1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn offset_flops_do_not_change_results() {
        let dir = tmpdir("waveoffset");
        World::run(4, |c| {
            WaveWriter::new(1)
                .with_offset_flops(10_000)
                .write(&c, &dir, 2, &[c.rank() as f64])
                .unwrap();
        });
        for rank in 0..4 {
            assert_eq!(WaveWriter::read(&dir, 2, rank).unwrap(), vec![rank as f64]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_file_blocks_land_at_rank_offsets() {
        let dir = tmpdir("shared");
        let n = 4;
        World::run(n, |mut c| {
            let data = vec![c.rank() as f64; 3];
            SharedFileWriter.write(&mut c, &dir, 1, &data).unwrap();
        });
        for rank in 0..n {
            let back = SharedFileWriter::read_block(&dir, 1, rank, 3).unwrap();
            assert_eq!(back, vec![rank as f64; 3]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_file_read_past_end_errors() {
        let dir = tmpdir("sharederr");
        World::run(2, |mut c| {
            SharedFileWriter.write(&mut c, &dir, 0, &[1.0]).unwrap();
        });
        assert!(SharedFileWriter::read_block(&dir, 0, 2, 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_wave_file_is_a_typed_error_not_a_panic_or_silent_drop() {
        // Regression: a wave file whose byte length is not a multiple of
        // 8 must surface as InvalidData — neither panic nor silently
        // decode the prefix and drop the tail.
        let dir = tmpdir("wavetrunc");
        World::run(1, |c| {
            WaveWriter::new(1).write(&c, &dir, 0, &[1.0, 2.0]).unwrap();
        });
        let path = WaveWriter::rank_path(&dir, 0, 0);
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len(), 16);
        std::fs::write(&path, &full[..11]).unwrap();

        let err = WaveWriter::read(&dir, 0, 0).expect_err("truncated payload must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("multiple of 8"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
