//! JSON case files → simulations.
//!
//! MFC drives its Fortran targets from Python case dictionaries; this
//! crate is the equivalent front door for the reproduction. A case file
//! describes fluids, grid, boundary conditions, patches, numerics, and
//! output; [`run_case`] executes it serially or on simulated ranks.
//!
//! ```json
//! {
//!   "name": "sod",
//!   "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
//!   "ndim": 1,
//!   "cells": [200, 1, 1],
//!   "lo": [0.0, 0.0, 0.0],
//!   "hi": [1.0, 1.0, 1.0],
//!   "bc": "transmissive",
//!   "patches": [
//!     { "region": "all",
//!       "state": { "alpha": [1.0], "rho": [0.125], "vel": [0,0,0], "p": 0.1 } },
//!     { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
//!       "state": { "alpha": [1.0], "rho": [1.0], "vel": [0,0,0], "p": 1.0 } }
//!   ],
//!   "numerics": { "order": "weno5", "solver": "hllc", "cfl": 0.5 },
//!   "run": { "steps": 100 },
//!   "output": { "dir": "out", "vtk": true }
//! }
//! ```

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use std::sync::Arc;

use mfc_acc::{resilience_summary, Context, Ledger};
use mfc_core::axisym::Geometry;
use mfc_core::bc::{BcKind, BcSpec};
use mfc_core::case::{CaseBuilder, Patch};
use mfc_core::fluid::Fluid;
use mfc_core::output::{postprocess_wave_files, write_vtk_rectilinear};
#[cfg(test)]
use mfc_core::par::run_single;
use mfc_core::par::{
    run_distributed_resilient, run_distributed_traced, run_distributed_with_output, ExchangeMode,
    GlobalField, ResilienceOpts,
};
use mfc_core::probes::{Probe, ProbeSet};
use mfc_core::recovery::RecoveryPolicy;
use mfc_core::rhs::{PackStrategy, RhsConfig, RhsMode};
use mfc_core::riemann::RiemannSolver;
use mfc_core::solver::{DtMode, Solver, SolverConfig};
use mfc_core::time::TimeScheme;
use mfc_core::weno::WenoOrder;
use mfc_core::HealthConfig;
use mfc_mpsim::{
    best_block_dims, validate_halo_extents, FailurePolicy, FaultCtx, FaultPlan, Staging,
    DEFAULT_WAVE_SIZE,
};
use mfc_trace::Tracer;

/// Boundary spec: one kind for all faces, or per-axis pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum BcConfig {
    Uniform(BcKind),
    Full { lo: [BcKind; 3], hi: [BcKind; 3] },
}

impl BcConfig {
    pub fn to_spec(&self) -> BcSpec {
        match self {
            BcConfig::Uniform(k) => BcSpec::all(*k),
            BcConfig::Full { lo, hi } => BcSpec { lo: *lo, hi: *hi },
        }
    }
}

/// Numerical options.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct NumericsConfig {
    pub order: WenoOrder,
    pub solver: RiemannSolver,
    pub pack: PackStrategy,
    /// Sweep engine: staged grid-sized buffers or the fused pencil engine.
    pub mode: RhsMode,
    /// Coordinate system: cartesian / axisymmetric / cylindrical3_d.
    pub geometry: Geometry,
    pub scheme: String,
    pub cfl: f64,
    /// Fixed dt overrides the CFL bound when set.
    pub dt: Option<f64>,
    /// Distributed runs: overlap the halo exchange with the interior RHS
    /// sweeps (async-queue analog of the paper's OpenACC overlap).
    /// Bitwise identical to the default exchange. Settable from the
    /// command line as `--overlap`.
    pub overlap: bool,
    /// Worker threads per rank for the gang-parallel kernels. Results are
    /// bitwise identical at every count; default 1 keeps goldens and
    /// serial baselines untouched. Settable as `--workers N`.
    pub workers: usize,
    /// SIMD lane width for the vectorized kernels (OpenACC `vector`
    /// analog). Must be a power of two in 1..=8; results are bitwise
    /// identical at every width. Settable as `--vector-width N`.
    pub vector_width: usize,
}

impl Default for NumericsConfig {
    fn default() -> Self {
        NumericsConfig {
            order: WenoOrder::Weno5,
            solver: RiemannSolver::Hllc,
            pack: PackStrategy::Tiled,
            mode: RhsMode::default(),
            geometry: Geometry::Cartesian,
            scheme: "rk3".to_string(),
            cfl: 0.5,
            dt: None,
            overlap: false,
            workers: 1,
            vector_width: mfc_acc::DEFAULT_WIDTH,
        }
    }
}

impl NumericsConfig {
    /// The halo-exchange mode distributed drivers run with.
    pub fn exchange(&self) -> ExchangeMode {
        if self.overlap {
            ExchangeMode::Overlapped
        } else {
            ExchangeMode::Sendrecv
        }
    }

    pub fn scheme(&self) -> Result<TimeScheme, String> {
        match self.scheme.as_str() {
            "rk1" | "euler" => Ok(TimeScheme::Rk1),
            "rk2" => Ok(TimeScheme::Rk2),
            "rk3" => Ok(TimeScheme::Rk3),
            other => Err(format!("unknown time scheme '{other}'")),
        }
    }

    pub fn to_solver_config(&self) -> Result<SolverConfig, String> {
        mfc_acc::validate_width(self.vector_width)?;
        Ok(SolverConfig {
            rhs: RhsConfig {
                order: self.order,
                solver: self.solver,
                pack: self.pack,
                mode: self.mode,
                geometry: self.geometry,
                ..Default::default()
            },
            scheme: self.scheme()?,
            dt: match self.dt {
                Some(dt) => DtMode::Fixed(dt),
                None => DtMode::Cfl(self.cfl),
            },
            workers: self.workers.max(1),
            vector_width: self.vector_width,
        })
    }
}

/// Stopping criteria and execution shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct RunConfig {
    /// Step budget (0 = until t_end only).
    pub steps: usize,
    /// Optional end time.
    pub t_end: Option<f64>,
    /// Simulated ranks (1 = serial).
    pub ranks: usize,
    /// Checkpoint wave period in steps (0 = off). Any non-zero value —
    /// or a fault plan — routes the run through the fault-tolerant
    /// driver. Settable from the command line as `--checkpoint-every N`.
    pub checkpoint_every: u64,
    /// Path to a fault-plan JSON file (see `mfc_mpsim::FaultPlan`).
    /// Settable from the command line as `--faults plan.json`.
    pub faults: Option<PathBuf>,
    /// Path to a recovery-ladder JSON file (see
    /// `mfc_core::RecoveryPolicy`); arms the numerical-health watchdog
    /// with graceful degradation. Settable from the command line as
    /// `--recovery ladder.json`.
    pub recovery: Option<PathBuf>,
    /// Per-step retry budget override for the recovery ladder; arms the
    /// default ladder when no `recovery` file is given. Settable from
    /// the command line as `--max-retries N`.
    pub max_retries: Option<u32>,
    /// Write a chrome-trace JSON (per-rank span timelines, kernel events
    /// with their ledger attributes, comm/collective/io events, and the
    /// embedded analytic kernel ledger) to this path after the run.
    /// Settable from the command line as `--trace out.json`. Load in
    /// Perfetto / chrome://tracing, or summarize with `mfc-trace-report`.
    pub trace: Option<PathBuf>,
    /// What the survivors do about a *permanent* rank death: `revive`
    /// (transient semantics — a permanent loss is unrecoverable),
    /// `shrink` (survivor consensus, smaller decomposition, checkpoint
    /// redistribution), or `spare` (promote a hot spare into the slot).
    /// Settable from the command line as `--failure-policy P`.
    pub failure_policy: FailurePolicy,
    /// Hot spare ranks provisioned outside the decomposition for
    /// `failure_policy: spare`. Settable from the command line as
    /// `--spares N`.
    pub spares: usize,
    /// Checkpoint retention: keep this many newest committed waves per
    /// rank (at least 1; the newest committed wave is never deleted).
    /// Settable from the command line as `--ckpt-keep N`.
    pub ckpt_keep: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            steps: 0,
            t_end: None,
            ranks: 0,
            checkpoint_every: 0,
            faults: None,
            recovery: None,
            max_retries: None,
            trace: None,
            failure_policy: FailurePolicy::Revive,
            spares: 0,
            ckpt_keep: 2,
        }
    }
}

/// Output options.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct OutputConfig {
    pub dir: PathBuf,
    /// Write a legacy-VTK file of the final state.
    pub vtk: bool,
}

impl Default for OutputConfig {
    fn default() -> Self {
        OutputConfig {
            dir: PathBuf::from("out"),
            vtk: false,
        }
    }
}

/// Wave-throttled I/O options (§III-A's writer waves).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct IoConfig {
    /// Writer-wave width for the file-per-process writer: at most this
    /// many ranks hold open files at once. MFC's production value is 128
    /// ([`mfc_mpsim::DEFAULT_WAVE_SIZE`]). Settable from the command line
    /// as `--io-wave N`.
    pub wave: usize,
    /// Distributed runs only: write per-rank wave files and reassemble
    /// the global field by post-processing them (the paper's I/O path)
    /// instead of the in-memory gather. The two are bitwise identical.
    pub wave_files: bool,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            wave: DEFAULT_WAVE_SIZE,
            wave_files: false,
        }
    }
}

/// A probe request in the case file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeConfig {
    pub name: String,
    pub x: [f64; 3],
}

/// A complete case file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseFile {
    pub name: String,
    pub fluids: Vec<Fluid>,
    pub ndim: usize,
    pub cells: [usize; 3],
    #[serde(default = "default_lo")]
    pub lo: [f64; 3],
    #[serde(default = "default_hi")]
    pub hi: [f64; 3],
    pub bc: BcConfig,
    pub patches: Vec<Patch>,
    #[serde(default)]
    pub smear_cells: f64,
    #[serde(default)]
    pub numerics: NumericsConfig,
    #[serde(default)]
    pub run: RunConfig,
    #[serde(default)]
    pub output: OutputConfig,
    #[serde(default)]
    pub io: IoConfig,
    /// Time-series probes sampled every step (serial runs only); each
    /// writes `<name>_probe.csv` under the output directory.
    #[serde(default)]
    pub probes: Vec<ProbeConfig>,
}

fn default_lo() -> [f64; 3] {
    [0.0; 3]
}

fn default_hi() -> [f64; 3] {
    [1.0; 3]
}

impl CaseFile {
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("case file parse error: {e}"))
    }

    pub fn from_path(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        Self::from_json(&text)
    }

    /// Validate and lower into a [`CaseBuilder`].
    pub fn to_case(&self) -> Result<CaseBuilder, String> {
        if self.fluids.is_empty() {
            return Err("at least one fluid is required".into());
        }
        if !(1..=3).contains(&self.ndim) {
            return Err(format!("ndim must be 1..=3, got {}", self.ndim));
        }
        if self.patches.is_empty() {
            return Err("at least one patch is required".into());
        }
        for (i, p) in self.patches.iter().enumerate() {
            if p.state.alpha.len() != self.fluids.len() || p.state.rho.len() != self.fluids.len() {
                return Err(format!(
                    "patch {i}: alpha/rho must have one entry per fluid ({})",
                    self.fluids.len()
                ));
            }
            let asum: f64 = p.state.alpha.iter().sum();
            if (asum - 1.0).abs() > 1e-6 {
                return Err(format!("patch {i}: volume fractions sum to {asum}, not 1"));
            }
        }
        let mut cb = CaseBuilder::new(self.fluids.clone(), self.ndim, self.cells)
            .extent(self.lo, self.hi)
            .bc(self.bc.to_spec())
            .smear(self.smear_cells);
        for p in &self.patches {
            cb = cb.patch(p.region, p.state.clone());
        }
        Ok(cb)
    }
}

/// Summary of a finished run.
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    pub name: String,
    pub steps: u64,
    pub time: f64,
    pub cells: usize,
    pub grind_ns: f64,
    pub vtk_path: Option<PathBuf>,
    /// Rendered resilience event table (checkpoints, detections,
    /// rollbacks, replays, health faults, retries with per-event
    /// timing); empty when nothing eventful happened.
    pub resilience: String,
}

/// Typed failure of [`run_case`]. `mfc-run` maps each variant to a
/// distinct process exit code (config → 2, I/O → 3, numerical → 4) so
/// scripts can tell a bad case file from a solver blow-up.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The case file or command-line configuration is invalid.
    Config(String),
    /// The filesystem said no (case/plan files, output dir, probes, VTK).
    Io(String),
    /// The numerical-health watchdog aborted the run (after exhausting
    /// the recovery ladder, if one was armed).
    Numerical(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(m) => write!(f, "invalid configuration: {m}"),
            RunError::Io(m) => write!(f, "i/o failure: {m}"),
            RunError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A bad rank layout or an inconsistent fault plan is a configuration
/// problem (exit code 2), a failed checkpoint write is I/O (exit code
/// 3); everything else a distributed driver reports is a solver blow-up.
fn map_resilience_err(e: mfc_core::par::ResilienceError) -> RunError {
    match &e {
        mfc_core::par::ResilienceError::Decomposition { .. }
        | mfc_core::par::ResilienceError::Plan { .. } => RunError::Config(e.to_string()),
        mfc_core::par::ResilienceError::Io { .. } => RunError::Io(e.to_string()),
        _ => RunError::Numerical(e.to_string()),
    }
}

/// Create `dir` (and parents) if needed and prove it is writable by
/// creating and removing a probe file, typed as [`RunError::Io`]
/// (exit 3). Long-running services call this at startup so an
/// unwritable artifact directory fails *before* any job runs, not when
/// the first result is flushed.
pub fn ensure_writable_dir(dir: &Path) -> Result<(), RunError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| RunError::Io(format!("cannot create {}: {e}", dir.display())))?;
    let probe = dir.join(format!(".mfc_write_probe_{}", std::process::id()));
    std::fs::write(&probe, b"probe")
        .map_err(|e| RunError::Io(format!("{} is not writable: {e}", dir.display())))?;
    std::fs::remove_file(&probe)
        .map_err(|e| RunError::Io(format!("{} is not writable: {e}", dir.display())))?;
    Ok(())
}

/// What [`dry_run`] validated, printed by `mfc-run --dry-run`.
#[derive(Debug, Clone, Serialize)]
pub struct DryRunReport {
    pub name: String,
    pub cells: [usize; 3],
    pub neq: usize,
    pub ranks: usize,
    /// Rank decomposition the distributed drivers would use.
    pub dims: [usize; 3],
    pub ghost_layers: usize,
    pub workers: usize,
    pub vector_width: usize,
    pub steps: usize,
    pub t_end: Option<f64>,
}

/// Fully validate a case without stepping: schema lowering, solver
/// configuration (time scheme, worker and vector-width bounds), stopping
/// criteria, I/O wave width, rank decomposition and halo extents, and any
/// fault-plan / recovery-ladder files referenced by the run spec. Never
/// creates directories and never steps the solver.
///
/// This is both what `mfc-run --dry-run` reports (exit 0/2/3) and the
/// admission-time validation `mfc-sched` applies so malformed jobs are
/// rejected at enqueue rather than mid-ensemble.
pub fn dry_run(case_file: &CaseFile) -> Result<DryRunReport, RunError> {
    let case = case_file.to_case().map_err(RunError::Config)?;
    let cfg = case_file
        .numerics
        .to_solver_config()
        .map_err(RunError::Config)?;
    if case_file.run.steps == 0 && case_file.run.t_end.is_none() {
        return Err(RunError::Config(
            "run.steps or run.t_end must be set".into(),
        ));
    }
    if case_file.io.wave == 0 {
        return Err(RunError::Config("io.wave must be at least 1".into()));
    }
    let ranks = case_file.run.ranks.max(1);
    if ranks > 1 && case_file.run.t_end.is_some() {
        return Err(RunError::Config(
            "t_end is only supported for serial runs; use run.steps".into(),
        ));
    }
    let ng = cfg.rhs.order.ghost_layers().max(1);
    let dims = best_block_dims(ranks, case_file.cells);
    validate_halo_extents(dims, case_file.cells, ng)
        .map_err(|e| RunError::Config(e.to_string()))?;
    if let Some(path) = &case_file.run.faults {
        let text = std::fs::read_to_string(path)
            .map_err(|e| RunError::Io(format!("cannot read fault plan {path:?}: {e}")))?;
        let plan = FaultPlan::from_json(&text)
            .map_err(|e| RunError::Config(format!("bad fault plan: {e}")))?;
        plan.validate_for(ranks)
            .map_err(|e| RunError::Config(format!("bad fault plan: {e}")))?;
    }
    if let Some(path) = &case_file.run.recovery {
        let text = std::fs::read_to_string(path)
            .map_err(|e| RunError::Io(format!("cannot read recovery ladder {path:?}: {e}")))?;
        let _: RecoveryPolicy = serde_json::from_str(&text)
            .map_err(|e| RunError::Config(format!("bad recovery ladder: {e}")))?;
    }
    Ok(DryRunReport {
        name: case_file.name.clone(),
        cells: case_file.cells,
        neq: case.eq().neq(),
        ranks,
        dims,
        ghost_layers: ng,
        workers: cfg.workers,
        vector_width: cfg.vector_width,
        steps: case_file.run.steps,
        t_end: case_file.run.t_end,
    })
}

/// Execute a case file end to end.
pub fn run_case(case_file: &CaseFile) -> Result<RunSummary, RunError> {
    let case = case_file.to_case().map_err(RunError::Config)?;
    let cfg = case_file
        .numerics
        .to_solver_config()
        .map_err(RunError::Config)?;
    let steps = if case_file.run.steps == 0 && case_file.run.t_end.is_none() {
        return Err(RunError::Config(
            "run.steps or run.t_end must be set".into(),
        ));
    } else {
        case_file.run.steps
    };

    if case_file.io.wave == 0 {
        return Err(RunError::Config("io.wave must be at least 1".into()));
    }

    ensure_writable_dir(&case_file.output.dir)?;

    // One span tracer for the whole run; every rank registers its own
    // timeline against it. `None` keeps the per-launch fast path.
    let tracer: Option<Arc<Tracer>> = case_file
        .run
        .trace
        .as_ref()
        .map(|_| Arc::new(Tracer::new()));

    // Recovery ladder: an explicit file, or the default ladder when only
    // a retry budget is given.
    let mut recovery: Option<RecoveryPolicy> = match &case_file.run.recovery {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| RunError::Io(format!("cannot read recovery ladder {path:?}: {e}")))?;
            Some(
                serde_json::from_str(&text)
                    .map_err(|e| RunError::Config(format!("bad recovery ladder: {e}")))?,
            )
        }
        None => None,
    };
    if let Some(n) = case_file.run.max_retries {
        recovery
            .get_or_insert_with(RecoveryPolicy::default)
            .max_retries = n;
    }

    // A fault plan, a checkpoint period, or a multi-rank recovery ladder
    // routes the run through the fault-tolerant driver (on simulated
    // ranks, even when ranks == 1).
    let resilient = case_file.run.checkpoint_every > 0
        || case_file.run.faults.is_some()
        || (recovery.is_some() && case_file.run.ranks > 1);
    let mut resilience = String::new();

    let (global, steps_done, t_done, grind_ns) = if resilient {
        if case_file.run.t_end.is_some() {
            return Err(RunError::Config(
                "t_end is only supported for serial runs; use run.steps".into(),
            ));
        }
        let ranks = case_file.run.ranks.max(1);
        let plan = match &case_file.run.faults {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| RunError::Io(format!("cannot read fault plan {path:?}: {e}")))?;
                FaultPlan::from_json(&text)
                    .map_err(|e| RunError::Config(format!("bad fault plan: {e}")))?
            }
            None => FaultPlan::none(),
        };
        plan.validate_for(ranks)
            .map_err(|e| RunError::Config(format!("bad fault plan: {e}")))?;
        let spares = case_file.run.spares;
        let faults = if plan.is_empty() && spares == 0 {
            None
        } else {
            Some(Arc::new(FaultCtx::new_with_spares(plan, ranks, spares)))
        };
        let events = Arc::new(Ledger::default());
        let opts = ResilienceOpts {
            checkpoint_every: case_file.run.checkpoint_every,
            ckpt_dir: case_file.output.dir.join("ckpt"),
            faults,
            events: Some(Arc::clone(&events)),
            recovery,
            health: HealthConfig::default(),
            trace: tracer.clone(),
            exchange: case_file.numerics.exchange(),
            failure_policy: case_file.run.failure_policy,
            spares,
            ckpt_keep: case_file.run.ckpt_keep,
        };
        let t0 = std::time::Instant::now();
        let (gf, _) =
            run_distributed_resilient(&case, cfg, ranks, steps, Staging::DeviceDirect, &opts)
                .map_err(map_resilience_err)?;
        let wall = t0.elapsed();
        resilience = resilience_summary(&events);
        let cells = gf.n.iter().product::<usize>();
        let grind = wall.as_nanos() as f64
            / (cells as f64 * gf.neq as f64 * (steps as f64 * cfg.scheme.stages() as f64).max(1.0));
        (gf, steps as u64, f64::NAN, grind)
    } else if case_file.run.ranks > 1 {
        if case_file.run.t_end.is_some() {
            return Err(RunError::Config(
                "t_end is only supported for serial runs; use run.steps".into(),
            ));
        }
        let t0 = std::time::Instant::now();
        let gf = if case_file.io.wave_files {
            // The paper's I/O path: every rank writes its block with the
            // wave-throttled writer, then the host post-processes the
            // files back into the global field (bitwise identical to the
            // in-memory gather).
            let wave_dir = case_file.output.dir.join("waves");
            std::fs::create_dir_all(&wave_dir)
                .map_err(|e| RunError::Io(format!("cannot create wave dir: {e}")))?;
            let dims = run_distributed_with_output(
                &case,
                cfg,
                case_file.run.ranks,
                steps,
                Staging::DeviceDirect,
                case_file.numerics.exchange(),
                &wave_dir,
                case_file.io.wave,
                steps,
                tracer.clone(),
            )
            .map_err(map_resilience_err)?;
            postprocess_wave_files(&wave_dir, steps, case.cells, case.eq(), dims)
                .map_err(|e| RunError::Io(format!("wave post-processing failed: {e}")))?
        } else {
            let (gf, _) = run_distributed_traced(
                &case,
                cfg,
                case_file.run.ranks,
                steps,
                Staging::DeviceDirect,
                case_file.numerics.exchange(),
                tracer.clone(),
            )
            .map_err(map_resilience_err)?;
            gf
        };
        let wall = t0.elapsed();
        let cells = gf.n.iter().product::<usize>();
        let grind = wall.as_nanos() as f64
            / (cells as f64 * gf.neq as f64 * (steps as f64 * cfg.scheme.stages() as f64).max(1.0));
        (gf, steps as u64, f64::NAN, grind)
    } else {
        // Explicit worker plumbing: the context uses exactly the
        // configured count (default 1) instead of silently grabbing the
        // machine's available parallelism.
        let mut ctx = Context::with_workers(cfg.workers).with_vector_width(cfg.vector_width);
        if let Some(tr) = &tracer {
            ctx.set_tracer(tr.handle(0));
        }
        let mut solver = Solver::new(&case, cfg, ctx);
        if let Some(p) = recovery {
            solver = solver.with_recovery(p);
        }
        let mut probes = if case_file.probes.is_empty() {
            None
        } else {
            Some(ProbeSet::new(
                case_file
                    .probes
                    .iter()
                    .map(|p| Probe {
                        name: p.name.clone(),
                        x: p.x,
                    })
                    .collect(),
                solver.domain(),
                solver.grid(),
            ))
        };
        let t_end = case_file.run.t_end.unwrap_or(f64::INFINITY);
        let max_steps = if steps == 0 { usize::MAX } else { steps };
        let mut taken = 0usize;
        while taken < max_steps && solver.time() < t_end {
            solver
                .step()
                .map_err(|e| RunError::Numerical(e.to_string()))?;
            taken += 1;
            if let Some(ps) = probes.as_mut() {
                ps.sample(solver.time(), &case.fluids, solver.state());
            }
        }
        if let Some(ps) = &probes {
            for idx in 0..ps.len() {
                let path = case_file
                    .output
                    .dir
                    .join(format!("{}_probe.csv", ps.probe(idx).name));
                let mut f = std::fs::File::create(&path)
                    .map_err(|e| RunError::Io(format!("cannot create probe file: {e}")))?;
                ps.write_csv(idx, &mut f)
                    .map_err(|e| RunError::Io(format!("probe write failed: {e}")))?;
            }
        }
        // Serial ladder activity (health faults, retries, rung changes)
        // lands in the solver's own ledger.
        resilience = resilience_summary(solver.context().ledger());
        solver.context().flush_ledger_to_trace();
        (
            run_single_snapshot(&solver, &case),
            solver.steps(),
            solver.time(),
            solver.grind().ns_per_cell_eq_rhs(),
        )
    };

    if let (Some(path), Some(tr)) = (&case_file.run.trace, &tracer) {
        mfc_trace::chrome::write_file(path, &tr.snapshot())
            .map_err(|e| RunError::Io(format!("trace write failed: {e}")))?;
    }

    let vtk_path = if case_file.output.vtk {
        let path = case_file.output.dir.join(format!("{}.vtk", case_file.name));
        let grid = case.grid();
        let eq = case.eq();
        // Named fields: partial densities, velocity, energy, alphas.
        let mut fields: Vec<(String, usize)> = Vec::new();
        for f in 0..eq.nf() {
            fields.push((format!("alpha_rho_{f}"), eq.cont(f)));
        }
        for d in 0..eq.ndim() {
            fields.push((format!("momentum_{d}"), eq.mom(d)));
        }
        fields.push(("energy".to_string(), eq.energy()));
        for a in 0..eq.n_adv() {
            fields.push((format!("alpha_{a}"), eq.adv(a)));
        }
        let refs: Vec<(&str, usize)> = fields.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        write_vtk_rectilinear(&path, &grid, &global, &refs)
            .map_err(|e| RunError::Io(format!("vtk write failed: {e}")))?;
        Some(path)
    } else {
        None
    };

    Ok(RunSummary {
        name: case_file.name.clone(),
        steps: steps_done,
        time: t_done,
        cells: global.n.iter().product(),
        grind_ns,
        vtk_path,
        resilience,
    })
}

/// Snapshot a serial solver's interior as a [`GlobalField`].
fn run_single_snapshot(solver: &Solver, case: &CaseBuilder) -> GlobalField {
    let dom = *solver.domain();
    let q = solver.state();
    let mut data = Vec::with_capacity(dom.interior_cells() * dom.eq.neq());
    for e in 0..dom.eq.neq() {
        for (i, j, k) in dom.interior() {
            data.push(q.get(i, j, k, e));
        }
    }
    GlobalField {
        n: case.cells,
        neq: dom.eq.neq(),
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Keep the serial snapshot helper honest against the parallel gather
    // path (formerly a dead `_assert_snapshot_matches_par` helper with an
    // `unwrap` on the run path).
    #[test]
    fn snapshot_matches_parallel_gather() {
        let cf = CaseFile::from_json(&sod_json()).unwrap();
        let case = cf.to_case().unwrap();
        let cfg = cf.numerics.to_solver_config().unwrap();
        let a = run_single(&case, cfg, 0);
        let solver = Solver::new(&case, cfg, Context::serial());
        let b = run_single_snapshot(&solver, &case);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    fn sod_json() -> String {
        r#"{
            "name": "sod",
            "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 }],
            "ndim": 1,
            "cells": [64, 1, 1],
            "bc": "transmissive",
            "patches": [
                { "region": "all",
                  "state": { "alpha": [1.0], "rho": [0.125], "vel": [0.0, 0.0, 0.0], "p": 0.1 } },
                { "region": { "half_space": { "axis": 0, "bound": 0.5 } },
                  "state": { "alpha": [1.0], "rho": [1.0], "vel": [0.0, 0.0, 0.0], "p": 1.0 } }
            ],
            "run": { "steps": 5 }
        }"#
        .to_string()
    }

    #[test]
    fn parses_minimal_case() {
        let cf = CaseFile::from_json(&sod_json()).unwrap();
        assert_eq!(cf.name, "sod");
        assert_eq!(cf.cells, [64, 1, 1]);
        assert_eq!(cf.numerics.cfl, 0.5); // default
        let case = cf.to_case().unwrap();
        assert_eq!(case.eq().neq(), 3);
    }

    #[test]
    fn runs_end_to_end() {
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.output.dir = std::env::temp_dir().join(format!("mfc_cli_{}", std::process::id()));
        cf.output.vtk = true;
        let summary = run_case(&cf).unwrap();
        assert_eq!(summary.steps, 5);
        assert!(summary.grind_ns > 0.0);
        let vtk = summary.vtk_path.unwrap();
        let text = std::fs::read_to_string(&vtk).unwrap();
        assert!(text.contains("SCALARS energy double 1"));
        let _ = std::fs::remove_dir_all(cf.output.dir);
    }

    #[test]
    fn distributed_run_via_case_file() {
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.run.ranks = 2;
        cf.output.dir = std::env::temp_dir().join(format!("mfc_cli_par_{}", std::process::id()));
        let summary = run_case(&cf).unwrap();
        assert_eq!(summary.steps, 5);
        let _ = std::fs::remove_dir_all(cf.output.dir);
    }

    #[test]
    fn overlapped_distributed_run_matches_default() {
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.run.ranks = 2;
        cf.output.dir = std::env::temp_dir().join(format!("mfc_cli_ov_{}", std::process::id()));
        let plain = run_case(&cf).unwrap();
        cf.numerics.overlap = true;
        assert_eq!(cf.numerics.exchange(), ExchangeMode::Overlapped);
        let overlapped = run_case(&cf).unwrap();
        assert_eq!(plain.steps, overlapped.steps);
        let _ = std::fs::remove_dir_all(cf.output.dir);
    }

    #[test]
    fn thin_rank_case_is_a_config_error() {
        // Regression (thin-rank halo bug): 64 cells over 32 ranks is 2
        // cells per rank under a 3-layer halo — a config error (exit 2),
        // not a rank panic.
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.run.ranks = 32;
        cf.output.dir = std::env::temp_dir().join(format!("mfc_cli_thin_{}", std::process::id()));
        let err = run_case(&cf).unwrap_err();
        assert!(
            matches!(&err, RunError::Config(m) if m.contains("decomposition")),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(cf.output.dir);
    }

    #[test]
    fn probes_write_time_series_csv() {
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.run.steps = 4;
        cf.probes = vec![ProbeConfig {
            name: "mid".into(),
            x: [0.5, 0.0, 0.0],
        }];
        cf.output.dir = std::env::temp_dir().join(format!("mfc_cli_probe_{}", std::process::id()));
        let summary = run_case(&cf).unwrap();
        assert_eq!(summary.steps, 4);
        let csv = std::fs::read_to_string(cf.output.dir.join("mid_probe.csv")).unwrap();
        assert_eq!(csv.lines().count(), 4);
        // Each row: t + 3 primitive values for 1-fluid 1-D.
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 4);
        let _ = std::fs::remove_dir_all(&cf.output.dir);
    }

    #[test]
    fn resilient_case_run_reports_events() {
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.run.ranks = 2;
        cf.run.steps = 8;
        cf.run.checkpoint_every = 3;
        cf.output.dir = std::env::temp_dir().join(format!("mfc_cli_resil_{}", std::process::id()));
        std::fs::create_dir_all(&cf.output.dir).unwrap();
        let plan_path = cf.output.dir.join("plan.json");
        std::fs::write(&plan_path, r#"{ "deaths": [ { "rank": 1, "step": 4 } ] }"#).unwrap();
        cf.run.faults = Some(plan_path);
        let summary = run_case(&cf).unwrap();
        assert_eq!(summary.steps, 8);
        assert!(
            summary.resilience.contains("checkpoint"),
            "{}",
            summary.resilience
        );
        assert!(
            summary.resilience.contains("fault_detected"),
            "{}",
            summary.resilience
        );
        assert!(
            summary.resilience.contains("rollback"),
            "{}",
            summary.resilience
        );
        assert!(
            summary.resilience.contains("replay"),
            "{}",
            summary.resilience
        );
        let _ = std::fs::remove_dir_all(&cf.output.dir);
    }

    #[test]
    fn resilient_fault_free_matches_plain_distributed() {
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.output.dir = std::env::temp_dir().join(format!("mfc_cli_rff_{}", std::process::id()));
        let plain = run_case(&cf).unwrap();
        assert!(plain.resilience.is_empty());
        cf.run.ranks = 2;
        cf.run.checkpoint_every = 2;
        let resilient = run_case(&cf).unwrap();
        // Checkpoint commits are recorded even without faults.
        assert!(resilient.resilience.contains("checkpoint"));
        let _ = std::fs::remove_dir_all(&cf.output.dir);
    }

    #[test]
    fn ensure_writable_dir_rejects_unwritable_path_as_io() {
        // A directory can never be created underneath a regular file;
        // the failure must be the typed I/O variant (exit 3), caught at
        // validation time rather than at first write.
        let base = std::env::temp_dir().join(format!("mfc_cli_wprobe_{}", std::process::id()));
        std::fs::write(&base, b"x").unwrap();
        let err = ensure_writable_dir(&base.join("sub")).unwrap_err();
        assert!(matches!(&err, RunError::Io(_)), "{err}");
        let _ = std::fs::remove_file(&base);
    }

    #[test]
    fn rejects_bad_alpha_sums() {
        let bad = sod_json().replace("\"alpha\": [1.0]", "\"alpha\": [0.7]");
        let cf = CaseFile::from_json(&bad).unwrap();
        let err = cf.to_case().unwrap_err();
        assert!(err.contains("sum"), "{err}");
    }

    #[test]
    fn rejects_missing_run_spec() {
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.run.steps = 0;
        cf.run.t_end = None;
        assert!(run_case(&cf).is_err());
    }

    #[test]
    fn rejects_unknown_scheme() {
        let mut cf = CaseFile::from_json(&sod_json()).unwrap();
        cf.numerics.scheme = "rk9".into();
        assert!(run_case(&cf).is_err());
    }

    #[test]
    fn two_fluid_case_with_sphere_patch_parses() {
        let json = r#"{
            "name": "bubble",
            "fluids": [{ "gamma": 1.4, "pi_inf": 0.0 },
                        { "gamma": 6.12, "pi_inf": 3.43e8, "viscosity": 1.0e-3 }],
            "ndim": 2,
            "cells": [16, 16, 1],
            "bc": "periodic",
            "smear_cells": 1.0,
            "patches": [
                { "region": "all",
                  "state": { "alpha": [1e-6, 0.999999], "rho": [1.2, 1000.0],
                              "vel": [0.0, 0.0, 0.0], "p": 1.0e5 } },
                { "region": { "sphere": { "center": [0.5, 0.5, 0.0], "radius": 0.2 } },
                  "state": { "alpha": [0.999999, 1e-6], "rho": [1.2, 1000.0],
                              "vel": [0.0, 0.0, 0.0], "p": 1.0e5 } }
            ],
            "numerics": { "order": "weno3", "solver": "hllc", "pack": "geam",
                           "scheme": "rk2", "cfl": 0.4, "dt": null },
            "run": { "steps": 2 }
        }"#;
        let cf = CaseFile::from_json(json).unwrap();
        assert_eq!(cf.fluids[1].viscosity, 1.0e-3);
        let cfg = cf.numerics.to_solver_config().unwrap();
        assert_eq!(cfg.scheme, TimeScheme::Rk2);
        let mut cf = cf;
        cf.output.dir = std::env::temp_dir().join(format!("mfc_cli_2f_{}", std::process::id()));
        let summary = run_case(&cf).unwrap();
        assert_eq!(summary.steps, 2);
        let _ = std::fs::remove_dir_all(cf.output.dir);
    }
}
