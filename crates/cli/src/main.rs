//! `mfc-run <case.json>` — execute a JSON case file.

use mfc_cli::{run_case, CaseFile};

const USAGE: &str = "usage: mfc-run <case.json> [--validate] \
[--faults plan.json] [--checkpoint-every N]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut validate_only = false;
    let mut faults: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut path: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--validate" => validate_only = true,
            "--faults" => match it.next() {
                Some(v) => faults = Some(v.clone()),
                None => die("--faults needs a plan file"),
            },
            "--checkpoint-every" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => checkpoint_every = Some(n),
                _ => die("--checkpoint-every needs a step count"),
            },
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    die("only one case file may be given");
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        eprintln!("see crates/cli/src/lib.rs for the case-file schema");
        std::process::exit(2);
    };
    let mut case = match CaseFile::from_path(std::path::Path::new(&path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // Command-line resilience flags override the case file.
    if let Some(plan) = faults {
        case.run.faults = Some(plan.into());
    }
    if let Some(every) = checkpoint_every {
        case.run.checkpoint_every = every;
    }
    if validate_only {
        match case
            .to_case()
            .and_then(|_| case.numerics.to_solver_config())
        {
            Ok(_) => {
                println!(
                    "case '{}' is valid ({:?} cells, {} fluids, {} patches)",
                    case.name,
                    case.cells,
                    case.fluids.len(),
                    case.patches.len()
                );
                return;
            }
            Err(e) => {
                eprintln!("invalid case: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "running case '{}' ({:?} cells, {} fluids)",
        case.name,
        case.cells,
        case.fluids.len()
    );
    match run_case(&case) {
        Ok(s) => {
            println!(
                "done: {} steps, t = {:.4e}, {} cells, grind {:.1} ns/cell/PDE/RHS",
                s.steps, s.time, s.cells, s.grind_ns
            );
            if !s.resilience.is_empty() {
                println!("resilience events:");
                print!("{}", s.resilience);
            }
            if let Some(p) = s.vtk_path {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2)
}
